//! Umbrella crate for the P-Tucker reproduction workspace.
//!
//! Re-exports the member crates under one roof so the `examples/` and
//! `tests/` directories (and downstream users who want a single
//! dependency) can reach everything through `ptucker_suite::…`.
//!
//! See `PAPER.md` for the source paper ("Scalable Tucker Factorization for
//! Sparse Tensors — Algorithms and Discoveries", Oh, Park, Sael, Kang;
//! ICDE 2018) and `ROADMAP.md` for where the workspace is headed.
//!
//! # Architecture
//!
//! The workspace is layered bottom-up:
//!
//! * [`linalg`] — dense kernels (Cholesky/LU/QR/eigen/SVD) on a small
//!   row-major `Matrix`. The hot-path entry points are the **in-place
//!   solvers** in `linalg::solve` (`cholesky_solve_in_place`,
//!   `lu_solve_in_place`): they factor in caller-provided buffers and
//!   overwrite the right-hand side, so solver loops can run without heap
//!   allocation. The allocating `Cholesky`/`Lu` wrappers are thin shims
//!   over the same routines.
//! * [`sched`] — OpenMP-style static/dynamic scheduling over scoped
//!   threads. `parallel_rows_mut_with` and `parallel_reduce_with` hand
//!   each worker a caller-owned **per-thread state**, which is how scratch
//!   arenas and accumulators are reused across an entire fit.
//! * [`memtrack`] — the intermediate-data budget that reproduces the
//!   paper's O.O.M. boundaries arithmetically.
//! * [`tensor`] / [`datagen`] — sparse/dense/core tensor types, I/O,
//!   train/test splits, and the synthetic generators.
//! * [`ptucker`] (`crates/core`) — the solver, organized as an
//!   **engine/kernel/scratch** stack: the fit driver is generic over a
//!   `ptucker::engine::RowUpdateKernel` (one implementation per variant —
//!   Direct, Cached, Approx — monomorphized, no per-row variant
//!   branching), and every per-row intermediate lives in a
//!   `ptucker::engine::Scratch` arena allocated once per worker thread.
//!   The net effect is a row-update loop with **zero heap allocations**;
//!   adding a new backend means implementing one trait.
//! * [`cp`], [`baselines`], [`discovery`] — the CP-ALS analogue (sharing
//!   the same scratch arenas), the paper's competitors (wOpt/CSF/S-HOT,
//!   ported onto the same allocation discipline), and the factor-analysis
//!   discoveries.
//!
//! Offline note: crates.io is unreachable in this build environment, so
//! `crates/shims/` vendors minimal API-compatible stand-ins for `rand`,
//! `crossbeam`, `parking_lot`, `criterion` and `proptest`.

#![forbid(unsafe_code)]

pub use ptucker;
pub use ptucker_baselines as baselines;
pub use ptucker_cp as cp;
pub use ptucker_datagen as datagen;
pub use ptucker_discovery as discovery;
pub use ptucker_linalg as linalg;
pub use ptucker_memtrack as memtrack;
pub use ptucker_sched as sched;
pub use ptucker_tensor as tensor;
