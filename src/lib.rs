//! Umbrella crate for the P-Tucker reproduction workspace.
//!
//! Re-exports the member crates under one roof so the `examples/` and
//! `tests/` directories (and downstream users who want a single
//! dependency) can reach everything through `ptucker_suite::…`.
//!
//! See `PAPER.md` for the source paper ("Scalable Tucker Factorization for
//! Sparse Tensors — Algorithms and Discoveries", Oh, Park, Sael, Kang;
//! ICDE 2018) and `ROADMAP.md` for where the workspace is headed.
//!
//! # Architecture
//!
//! The workspace is layered bottom-up:
//!
//! * [`linalg`] — dense kernels (Cholesky/LU/QR/eigen/SVD) on a small
//!   row-major `Matrix`. The hot-path entry points are the **in-place
//!   solvers** in `linalg::solve` (`cholesky_solve_in_place`,
//!   `lu_solve_in_place`): they factor in caller-provided buffers and
//!   overwrite the right-hand side, so solver loops can run without heap
//!   allocation. The allocating `Cholesky`/`Lu` wrappers are thin shims
//!   over the same routines. `linalg::kernels` adds the BLAS-1/2
//!   **micro-kernel primitives** (`dot`/`axpy`/`syr_in_place`/
//!   `hadamard_in_place`) every row-update inner loop is built from:
//!   chunked scalar code that autovectorizes anywhere, plus explicit
//!   AVX2+FMA `dot`/`axpy` paths behind the workspace-wide `simd` feature
//!   (runtime CPU detection, scalar fallback; CI tests both
//!   configurations).
//! * [`sched`] — OpenMP-style static/dynamic scheduling over scoped
//!   threads. `parallel_rows_mut_with` and `parallel_reduce_with` hand
//!   each worker a caller-owned **per-thread state**, which is how scratch
//!   arenas and accumulators are reused across an entire fit;
//!   `parallel_rows_mut_balanced` partitions rows into contiguous blocks
//!   of near-equal **nnz weight** (`weighted_blocks`), fixing static
//!   scheduling's skew imbalance without a dynamic queue.
//! * [`memtrack`] — the intermediate-data budget that reproduces the
//!   paper's O.O.M. boundaries arithmetically, now with a per-budget
//!   `BudgetPolicy` (overflow **spills** by default, or stays fatal under
//!   `Strict`), separate spill accounting, and the unlinked `ScratchFile`
//!   the out-of-core path stores its bulk arrays in.
//! * [`tensor`] / [`datagen`] — sparse/dense/core tensor types, I/O,
//!   train/test splits, and the synthetic generators. `tensor` also owns
//!   the **mode-major execution plan** (`ModeStreams`): per-mode streamed
//!   slice layouts — values plus packed other-mode indices physically
//!   reordered slice-by-slice — that every row-update loop in the
//!   workspace walks linearly instead of gathering through COO entry ids.
//!   A plan's storage is a `StreamStore`: fully resident, or spilled to a
//!   scratch file. Either placement is swept through one `SweepSource`
//!   abstraction — slice-aligned windows served as zero-copy views of a
//!   resident stream, or as pinned-buffer refills from the scratch file
//!   (double-buffered with a background prefetch worker).
//! * [`ptucker`] (`crates/core`) — the solver, organized as a
//!   **plan/engine/kernel/scratch** stack: the fit driver derives the
//!   `ModeStreams` plan once per fit (metered in the memory budget), is
//!   generic over a `ptucker::engine::RowUpdateKernel` (one implementation
//!   per variant — Direct, Cached, Approx — monomorphized, no per-row
//!   variant branching), and every per-row intermediate lives in a
//!   `ptucker::engine::Scratch` arena allocated once per worker thread.
//!   The δ accumulation is **run-blocked**: the `CoreTensor` type
//!   guarantees lexicographic entry order, so the core decomposes into
//!   runs sharing their first `N−1` coordinates, and each run costs one
//!   shared prefix product plus a contiguous `dot`/`axpy` micro-kernel
//!   over the packed core values. The Cached variant stores its `Pres`
//!   table in the swept mode's stream order (sequential sweeps; a
//!   parallel rescale plus an in-place cycle-chase reorder between
//!   modes). When the working set exceeds the memory budget,
//!   `PTucker::fit` switches to the **out-of-core driver**: the plan and
//!   the Pres table spill to scratch files and every mode sweep runs
//!   window-by-window over slice-aligned chunks, reproducing the
//!   in-memory trajectory bitwise (see `ARCHITECTURE.md`). The net
//!   effect is a row-update loop with **zero heap allocations**,
//!   strictly sequential memory traffic, and FMA-saturating inner
//!   loops; adding a new backend means implementing one trait.
//! * [`cp`], [`baselines`], [`discovery`] — the CP-ALS analogue (sharing
//!   the same scratch arenas and execution plan), the paper's competitors
//!   (wOpt/CSF/S-HOT, with S-HOT's row loop on the same plan), and the
//!   factor-analysis discoveries.
//!
//! Offline note: crates.io is unreachable in this build environment, so
//! `crates/shims/` vendors minimal API-compatible stand-ins for `rand`,
//! `crossbeam`, `parking_lot`, `criterion` and `proptest`.

#![forbid(unsafe_code)]

pub use ptucker;
pub use ptucker_baselines as baselines;
pub use ptucker_cp as cp;
pub use ptucker_datagen as datagen;
pub use ptucker_discovery as discovery;
pub use ptucker_linalg as linalg;
pub use ptucker_memtrack as memtrack;
pub use ptucker_sched as sched;
pub use ptucker_tensor as tensor;
