//! Umbrella crate for the P-Tucker reproduction workspace.
//!
//! Re-exports the member crates under one roof so the `examples/` and
//! `tests/` directories (and downstream users who want a single
//! dependency) can reach everything through `ptucker_suite::…`.
//!
//! See the workspace `README.md` for the architecture overview and
//! `DESIGN.md`/`EXPERIMENTS.md` for the paper-reproduction index.

#![forbid(unsafe_code)]

pub use ptucker;
pub use ptucker_baselines as baselines;
pub use ptucker_cp as cp;
pub use ptucker_datagen as datagen;
pub use ptucker_discovery as discovery;
pub use ptucker_linalg as linalg;
pub use ptucker_memtrack as memtrack;
pub use ptucker_sched as sched;
pub use ptucker_tensor as tensor;
