//! Head-to-head comparison of P-Tucker against every baseline on one
//! synthetic tensor — a miniature of the paper's Figures 6/11 in a single
//! run, including an O.O.M. demonstration for Tucker-wOpt.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use ptucker::{FitOptions, MemoryBudget, PTucker, PtuckerError, Schedule};
use ptucker_baselines::{s_hot, tucker_csf, tucker_wopt, BaselineOptions};
use ptucker_datagen::planted_lowrank;
use ptucker_tensor::TrainTestSplit;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let planted = planted_lowrank(&[60, 50, 40], &[4, 4, 4], 12_000, 0.02, &mut rng);
    let x = planted.tensor;
    let split = TrainTestSplit::new(&x, 0.1, &mut rng).expect("split");
    let ranks = vec![4, 4, 4];
    let iters = 8;
    println!(
        "tensor: dims {:?}, |Ω| = {} — fitting 4 methods, {iters} iterations each\n",
        x.dims(),
        x.nnz()
    );

    println!("method        time/iter    recon error    test RMSE    peak intermediates");
    let report = |name: &str, r: &ptucker::FitResult| {
        let rmse = r.decomposition.test_rmse(&split.test, 4, Schedule::Static);
        println!(
            "{name:<12}  {:>8.4}s    {:>10.4}    {:>8.4}    {:>14} B",
            r.stats.avg_seconds_per_iter(),
            r.stats.final_error,
            rmse,
            r.stats.peak_intermediate_bytes
        );
    };

    let pt = PTucker::new(
        FitOptions::new(ranks.clone())
            .max_iters(iters)
            .seed(5)
            .threads(4),
    )
    .expect("options")
    .fit(&split.train)
    .expect("p-tucker fit");
    report("P-Tucker", &pt);

    let base = BaselineOptions::new(ranks.clone())
        .max_iters(iters)
        .seed(5)
        .threads(4);
    report(
        "Tucker-wOpt",
        &tucker_wopt(&split.train, &base).expect("wopt"),
    );
    report("Tucker-CSF", &tucker_csf(&split.train, &base).expect("csf"));
    report("S-HOT", &s_hot(&split.train, &base).expect("s-hot"));

    // O.O.M. demonstration: give wOpt a budget far below its dense
    // intermediates — the exact mechanism behind the paper's O.O.M. cells.
    let starved = BaselineOptions::new(ranks).budget(MemoryBudget::new(1 << 20));
    match tucker_wopt(&split.train, &starved) {
        Err(PtuckerError::OutOfMemory(oom)) => println!(
            "\nTucker-wOpt with a 1 MiB budget: O.O.M. as expected \
             (requested {} B against {} B)",
            oom.requested, oom.budget
        ),
        other => println!("\nunexpected wOpt outcome under starvation: {other:?}"),
    }
}
