//! Fault-tolerant sharded fit, end to end: one worker is SIGKILLed
//! mid-fit (via an injected fault) and the fit survives it **bitwise**;
//! then a fit is interrupted at a checkpoint and resumed, again landing
//! bitwise on the uninterrupted result.
//!
//! ```text
//! cargo run --release --example fault_tolerant_fit
//! ```

use ptucker::{FitOptions, FitResult, PTucker};
use ptucker_datagen::planted_lowrank;
use ptucker_shard::{FaultPolicy, Recovery, ShardedFit, WorkerSpawn};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn assert_bitwise(a: &FitResult, b: &FitResult, tag: &str) {
    assert_eq!(
        a.stats.final_error.to_bits(),
        b.stats.final_error.to_bits(),
        "{tag}: final error drift"
    );
    for (fa, fb) in a.decomposition.factors.iter().zip(&b.decomposition.factors) {
        for (va, vb) in fa.as_slice().iter().zip(fb.as_slice()) {
            assert_eq!(va.to_bits(), vb.to_bits(), "{tag}: factor drift");
        }
    }
}

fn main() {
    // First thing: if this process was spawned as a worker, serve the
    // shard protocol on stdio and exit. The coordinator path continues.
    ptucker_shard::worker_guard();

    let mut rng = StdRng::seed_from_u64(42);
    let x = planted_lowrank(&[60, 50, 40], &[4, 4, 4], 12_000, 0.02, &mut rng).tensor;
    let opts = FitOptions::new(vec![4, 4, 4])
        .max_iters(5)
        .tol(0.0)
        .threads(2)
        .seed(7);
    println!(
        "tensor: dims {:?}, |Ω| = {} — chaos test: kill a worker mid-fit\n",
        x.dims(),
        x.nnz()
    );

    let solo = PTucker::new(opts.clone())
        .expect("options")
        .fit(&x)
        .expect("single-process fit");
    println!(
        "undisturbed:      {:>8.4}s, final error {:.6}",
        solo.stats.total_seconds, solo.stats.final_error
    );

    // Chaos 1: worker 1 of 3 SIGKILLs itself on receiving its 4th
    // ModeStart (iteration 1, mode 0). With a reassign policy, the
    // coordinator covers the dead rows itself, hands them to a
    // neighbouring survivor, and the fit completes bitwise.
    for recovery in [Recovery::Reassign, Recovery::Respawn] {
        let out = ShardedFit::new(3, WorkerSpawn::CurrentExe)
            .fault_policy(FaultPolicy {
                frame_timeout: Duration::from_secs(5),
                worker_retries: 2,
                backoff: Duration::from_millis(100),
                recovery,
            })
            .inject_fault(1, "recv:modestart:4:kill")
            .fit(&x, opts.clone())
            .expect("the fit must survive the kill");
        println!(
            "{recovery:?}: {:>8.4}s, final error {:.6}",
            out.fit.stats.total_seconds, out.fit.stats.final_error
        );
        for note in &out.recovered {
            println!("  recovery: {note}");
        }
        assert_bitwise(&solo, &out.fit, &format!("{recovery:?}"));
    }

    // Chaos 2: interrupt a sharded fit after 2 of 5 iterations (cadence-1
    // checkpointing), then resume from the file — bitwise again.
    let dir = std::env::temp_dir().join(format!("ptucker-ft-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt = dir.join("interrupted.ckpt");
    let interrupted = ShardedFit::new(2, WorkerSpawn::CurrentExe)
        .fit(
            &x,
            opts.clone()
                .max_iters(2)
                .checkpoint_every(1)
                .checkpoint_path(&ckpt),
        )
        .expect("interrupted fit");
    println!(
        "\ninterrupted after {} iterations, checkpoint at {}",
        interrupted.fit.stats.iterations.len(),
        ckpt.display()
    );
    let resumed = ShardedFit::new(2, WorkerSpawn::CurrentExe)
        .fit(&x, opts.resume_from(&ckpt))
        .expect("resumed fit");
    println!(
        "resumed:          {:>8.4}s, final error {:.6} ({} total iterations)",
        resumed.fit.stats.total_seconds,
        resumed.fit.stats.final_error,
        resumed.fit.stats.iterations.len()
    );
    assert_bitwise(&solo, &resumed.fit, "resume");
    let _ = std::fs::remove_file(&ckpt);

    println!("\nkilled, reassigned, respawned, interrupted, resumed — all bitwise identical");
}
