//! Image completion: recover a synthetic image tensor from a 10% pixel
//! sample — the paper's `Lena` workload (Table IV), with the licensed image
//! replaced by the smooth synthetic stand-in from `ptucker-datagen`.
//!
//! Compares all three P-Tucker variants on the same task and reports the
//! trade-offs the paper's Figures 8 and 9 illustrate: Cache is faster per
//! iteration but hungrier, Approx shrinks the core each iteration.
//!
//! ```text
//! cargo run --release --example image_completion
//! ```

use ptucker::{FitOptions, PTucker, Schedule, Variant};
use ptucker_datagen::realworld;
use ptucker_tensor::TrainTestSplit;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let x = realworld::lena_image(0.5, &mut rng);
    println!(
        "synthetic image tensor: dims {:?}, |Ω| = {} ({:.1}% of pixels)",
        x.dims(),
        x.nnz(),
        100.0 * x.density()
    );
    let split = TrainTestSplit::new(&x, 0.1, &mut rng).expect("split");
    let ranks = vec![3, 3, 3];

    let variants: [(&str, Variant); 3] = [
        ("P-Tucker        ", Variant::Default),
        ("P-Tucker-Cache  ", Variant::Cache),
        (
            "P-Tucker-Approx ",
            Variant::Approx {
                truncation_rate: 0.2,
            },
        ),
    ];

    println!("\nvariant            time/iter   test RMSE   peak intermediates   final |G|");
    for (name, variant) in variants {
        let fit = PTucker::new(
            FitOptions::new(ranks.clone())
                .max_iters(8)
                .seed(11)
                .threads(4)
                .variant(variant),
        )
        .expect("options")
        .fit(&split.train)
        .expect("fit");
        let rmse = fit
            .decomposition
            .test_rmse(&split.test, 4, Schedule::Static);
        println!(
            "{name}   {:>7.4}s   {:>9.4}   {:>15} B   {:>9}",
            fit.stats.avg_seconds_per_iter(),
            rmse,
            fit.stats.peak_intermediate_bytes,
            fit.stats.iterations.last().map(|s| s.core_nnz).unwrap_or(0),
        );
    }

    // Visual sanity check: reconstruct a small patch and compare against
    // the held-out pixels that fall inside it.
    let fit = PTucker::new(FitOptions::new(ranks).max_iters(8).seed(11).threads(4))
        .expect("options")
        .fit(&split.train)
        .expect("fit");
    let d = &fit.decomposition;
    let mut worst: f64 = 0.0;
    let mut checked = 0usize;
    for (idx, v) in split.test.iter() {
        if idx[0] < 64 && idx[1] < 64 {
            worst = worst.max((d.predict(idx) - v).abs());
            checked += 1;
        }
    }
    println!(
        "\npatch check: {checked} held-out pixels in the 64x64 corner, max |error| = {worst:.3}"
    );
}
