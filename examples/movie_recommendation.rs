//! Movie recommendation on a simulated MovieLens tensor — the paper's
//! motivating scenario: `(user, movie, year, hour; rating)` with most
//! entries missing.
//!
//! Fits P-Tucker on a 90% training split, reports the held-out RMSE against
//! the zero-imputing Tucker-CSF baseline (the Fig. 11 comparison), and then
//! runs the Section V discovery pipeline: K-means concepts over the movie
//! factor (Table V) and top core entries as cross-mode relations
//! (Table VI).
//!
//! ```text
//! cargo run --release --example movie_recommendation
//! ```

use ptucker::{FitOptions, PTucker, Schedule};
use ptucker_baselines::{tucker_csf, BaselineOptions};
use ptucker_datagen::realworld::{self, GENRE_NAMES};
use ptucker_discovery::{cluster_purity, discover_concepts, discover_relations};
use ptucker_tensor::TrainTestSplit;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    // ~0.2% of the full MovieLens scale keeps this example interactive.
    let sim = realworld::movielens(0.002, &mut rng);
    let x = sim.tensor;
    println!(
        "simulated MovieLens: dims {:?}, |Ω| = {}",
        x.dims(),
        x.nnz()
    );

    let split = TrainTestSplit::new(&x, 0.1, &mut rng).expect("split");
    let ranks = vec![8, 8, 4, 4];

    // --- P-Tucker (observed entries only) ------------------------------
    let ptucker_fit = PTucker::new(
        FitOptions::new(ranks.clone())
            .max_iters(10)
            .seed(1)
            .threads(4),
    )
    .expect("options")
    .fit(&split.train)
    .expect("fit");
    let rmse_pt = ptucker_fit
        .decomposition
        .test_rmse(&split.test, 4, Schedule::Static);

    // --- Tucker-CSF (missing entries treated as zeros) -----------------
    let csf_fit = tucker_csf(
        &split.train,
        &BaselineOptions::new(ranks.clone()).max_iters(10).seed(1),
    )
    .expect("csf fit");
    let rmse_csf = csf_fit
        .decomposition
        .test_rmse(&split.test, 4, Schedule::Static);

    println!("\nheld-out test RMSE (lower is better):");
    println!("  P-Tucker   : {rmse_pt:.4}");
    println!("  Tucker-CSF : {rmse_csf:.4}   (zero-imputing baseline)");
    println!("  ratio      : {:.1}x", rmse_csf / rmse_pt);

    // --- Concept discovery (Table V analogue) --------------------------
    // Cluster the movie factor rows; compare against the planted genres.
    let movie_factor = &ptucker_fit.decomposition.factors[1];
    let concepts = discover_concepts(movie_factor, GENRE_NAMES.len(), 3);
    let purity = cluster_purity(&concepts.clustering.assignments, &sim.movie_genre);
    println!("\nconcept discovery on the movie factor:");
    println!(
        "  clusters = {}, purity vs planted genres = {purity:.2}",
        concepts.num_clusters()
    );
    for c in 0..3.min(concepts.num_clusters()) {
        let reps = concepts.representatives(c, 3);
        let names: Vec<String> = reps
            .iter()
            .map(|&m| format!("Movie-{m} ({})", GENRE_NAMES[sim.movie_genre[m]]))
            .collect();
        println!("  concept C{}: {}", c + 1, names.join(", "));
    }

    // --- Relation discovery (Table VI analogue) ------------------------
    let relations = discover_relations(&ptucker_fit.decomposition.core, 3);
    println!("\nstrongest core relations (column indices per mode):");
    for (i, r) in relations.iter().enumerate() {
        println!("  R{}: G{:?} = {:.3e}", i + 1, r.index, r.strength);
    }
    println!(
        "\n(planted (year, hour) peaks in the generator: {:?})",
        realworld::PLANTED_YEAR_HOUR
    );
}
