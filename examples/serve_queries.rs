//! Serving queries: fit a model, stand up the `ptucker-serve` read
//! path on a Unix socket, and answer point-reconstruction and top-K
//! queries — then publish a refit under a live client and watch the
//! snapshot epoch advance without the session ever breaking.
//!
//! ```text
//! cargo run --release --example serve_queries
//! ```

use ptucker::{FitOptions, PTucker, Predictor};
use ptucker_datagen::planted_lowrank;
use ptucker_linalg::kernels::top_k_select;
use ptucker_serve::{serve, ServeOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Fit a small planted-low-rank tensor — the model we will serve.
    let mut rng = StdRng::seed_from_u64(42);
    let x = planted_lowrank(&[100, 80, 60], &[4, 4, 4], 20_000, 0.02, &mut rng).tensor;
    let opts = FitOptions::new(vec![4, 4, 4])
        .max_iters(5)
        .seed(7)
        .threads(2);
    let first = PTucker::new(opts.clone())
        .expect("options")
        .fit(&x)
        .expect("fit");
    println!(
        "fitted: dims {:?}, final error {:.4}",
        x.dims(),
        first.stats.final_error
    );

    // 2. Serve it. The handle owns the listener + worker threads; every
    //    connection answers queries against an immutable snapshot.
    let local = Predictor::new(first.decomposition.clone()).expect("predictor");
    let path = std::env::temp_dir().join(format!("ptucker-serve-demo-{}.sock", std::process::id()));
    let handle = serve(
        &path,
        Predictor::new(first.decomposition).expect("predictor"),
        ServeOptions::default(),
    )
    .expect("serve");
    let mut client = handle.connect().expect("connect");
    println!(
        "serving on {} — model {:?} ranks {:?}, snapshot epoch {}",
        path.display(),
        client.dims(),
        client.ranks(),
        client.epoch()
    );

    // 3. Point queries: the served value is bitwise the local predict.
    let probes = [[3usize, 5, 7], [0, 0, 0], [99, 79, 59]];
    for probe in &probes {
        let served = client.point(probe).expect("point query");
        let want = local.predict(probe);
        assert_eq!(served.to_bits(), want.to_bits(), "served ≠ local predict");
        println!("  x̂{probe:?} = {served:.4}  (bitwise = local reconstruction)");
    }

    // 4. Top-K over mode 0: "which rows score highest for this context" —
    //    the recommendation query. Checked against the scoring kernel.
    let (mode, others, k) = (0usize, [5usize, 7], 5usize);
    let top = client.top_k(mode, &others, k).expect("top-K query");
    let mut delta = vec![0.0; client.ranks()[mode]];
    let mut scores = vec![0.0; client.dims()[mode]];
    local.scores_into(&[5, 7], mode, &mut delta, &mut scores);
    let mut want = Vec::new();
    top_k_select(&scores, k, &mut want);
    assert_eq!(top, want, "served top-K ≠ local scoring kernel");
    println!("  top-{k} rows of mode {mode} for context {others:?}:");
    for &(row, score) in &top {
        println!("    row {row:>3}  score {score:.4}");
    }

    // 5. Publish a refit under the live client: readers keep answering
    //    lock-free from the old snapshot until they observe the new epoch.
    let refit = PTucker::new(opts.max_iters(15))
        .expect("options")
        .fit(&x)
        .expect("refit");
    let epoch = handle.publish(Predictor::new(refit.decomposition.clone()).expect("predictor"));
    let refreshed = client.info().expect("info");
    assert_eq!(refreshed, epoch, "client must observe the published epoch");
    let served = client.point(&[3, 5, 7]).expect("point after publish");
    let want = Predictor::new(refit.decomposition)
        .expect("predictor")
        .predict(&[3, 5, 7]);
    assert_eq!(served.to_bits(), want.to_bits(), "stale snapshot served");
    println!(
        "\npublished refit (error {:.4}) as epoch {epoch}; \
         the same session now serves the new model bitwise",
        refit.stats.final_error
    );

    // 6. Clean shutdown, with the session totals.
    client.goodbye().expect("goodbye");
    let stats = handle.shutdown().expect("shutdown");
    println!(
        "served {} connection(s): {} point + {} top-K + {} info requests, \
         {} error replies, {} publish(es), {} worker panic(s)",
        stats.connections,
        stats.point_requests,
        stats.topk_requests,
        stats.info_requests,
        stats.error_replies,
        stats.publishes,
        stats.worker_panics
    );
    assert_eq!(stats.worker_panics, 0);
    println!("serve_queries: OK");
}
