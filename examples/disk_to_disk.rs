//! Disk-to-disk fitting: the observed entries are **generated straight to
//! a scratch file** (never resident), the execution plan is built from
//! that file by external sort, and every whole-tensor pass of the fit
//! streams bounded COO segments — so the tensor can be arbitrarily larger
//! than the memory budget. The walkthrough checks the two claims that
//! make this useful:
//!
//! 1. the disk-to-disk trajectory is **bitwise identical** to the
//!    resident fit of the same entries, and
//! 2. peak tracked resident memory stays **within the budget**, below the
//!    COO source itself.
//!
//! ```text
//! cargo run --release --example disk_to_disk
//! ```

use ptucker::{FitOptions, MemoryBudget, PTucker};
use ptucker_datagen::stream::{scratch_to_tensor, stream_zipf_to_scratch};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Generate to disk: Zipf-skewed entries stream through a bounded
    //    flush buffer into an unlinked scratch file. Resident state while
    //    generating is the per-mode CDF tables plus that buffer — the
    //    120k entries never exist in memory together.
    let dims = [300usize, 200, 100];
    let nnz = 120_000;
    let limit: usize = 2 << 20; // 2 MiB resident budget
    let budget = MemoryBudget::new(limit);
    let mut rng = StdRng::seed_from_u64(4242);
    let src =
        stream_zipf_to_scratch(&dims, nnz, 1.1, &mut rng, &budget).expect("streaming generation");
    let coo_bytes = src.bytes() as usize;
    println!(
        "source: dims {dims:?}, |Ω| = {}, {coo_bytes} B on disk — budget {limit} B",
        src.nnz()
    );
    assert!(
        coo_bytes > limit,
        "the walkthrough wants a source larger than the budget"
    );

    let opts = || {
        FitOptions::new(vec![4, 3, 2])
            .max_iters(6)
            .tol(0.0)
            .threads(2)
            .seed(9)
    };

    // 2. Fit disk-to-disk: `fit_scratch` external-sorts the plan from the
    //    scratch file and streams the residual pass; window refills ride
    //    the N-deep prefetch ring (default depth 2).
    let disk = PTucker::new(opts().budget(budget.clone()))
        .unwrap()
        .fit_scratch(&src)
        .expect("disk-to-disk fit");

    // 3. Reference: the same entries collected into memory (test-scale
    //    convenience — the point of fit_scratch is never having to) and
    //    fitted resident.
    let x = scratch_to_tensor(&src).expect("collect for the reference fit");
    let resident = PTucker::new(opts()).unwrap().fit(&x).expect("resident fit");

    println!("\niter   resident error     disk-to-disk error");
    for (a, b) in resident.stats.iterations.iter().zip(&disk.stats.iterations) {
        println!(
            "{:>4}   {:<18.12} {:<18.12}",
            a.iter, a.reconstruction_error, b.reconstruction_error
        );
        assert_eq!(
            a.reconstruction_error.to_bits(),
            b.reconstruction_error.to_bits(),
            "disk-to-disk trajectory must agree bitwise"
        );
    }
    assert_eq!(
        resident.stats.final_error.to_bits(),
        disk.stats.final_error.to_bits()
    );

    // 4. The memory story: peak tracked resident bytes vs the COO source.
    println!(
        "\ndisk-to-disk: peak resident {} B vs {} B budget vs {} B of COO — \
         {} B spilled, {} B read / {} B written to scratch",
        disk.stats.peak_intermediate_bytes,
        limit,
        coo_bytes,
        disk.stats.peak_spilled_bytes,
        disk.stats.io_read_bytes,
        disk.stats.io_write_bytes
    );
    assert!(
        disk.stats.peak_intermediate_bytes <= limit,
        "peak resident {} B must stay within the {limit} B budget",
        disk.stats.peak_intermediate_bytes
    );
    assert!(disk.stats.io_read_bytes > 0 && disk.stats.io_write_bytes > 0);
    println!("bitwise-identical to the resident fit, in bounded memory ✓");
}
