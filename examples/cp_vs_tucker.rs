//! CP vs. Tucker ablation: what does the dense core buy?
//!
//! The paper motivates Tucker as "a generalized form of CP" that can model
//! cross-column relations through the core tensor. This example fits both
//! models on (a) data with genuine CP structure and (b) data with full
//! Tucker structure, showing that Tucker matches CP on CP data but CP
//! cannot match Tucker on Tucker data.
//!
//! ```text
//! cargo run --release --example cp_vs_tucker
//! ```

use ptucker::{FitOptions, PTucker, Schedule};
use ptucker_cp::{cp_als, CpOptions};
use ptucker_datagen::{planted_cp, reconstruct_at};
use ptucker_linalg::Matrix;
use ptucker_tensor::{CoreTensor, SparseTensor, TrainTestSplit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Planted Tucker data with zero-mean (signed) factors, so the dense core's
/// cross-column coupling dominates the signal instead of a mean direction.
fn planted_signed_tucker(
    dims: &[usize],
    rank: usize,
    nnz: usize,
    noise: f64,
    rng: &mut StdRng,
) -> SparseTensor {
    let factors: Vec<Matrix> = dims
        .iter()
        .map(|&i_n| {
            let data: Vec<f64> = (0..i_n * rank)
                .map(|_| rng.gen::<f64>() * 2.0 - 1.0)
                .collect();
            Matrix::from_vec(i_n, rank, data).expect("length matches")
        })
        .collect();
    let core = CoreTensor::dense_from_fn(vec![rank; dims.len()], |_| rng.gen::<f64>() * 2.0 - 1.0)
        .expect("valid dims");
    let mut seen = HashSet::new();
    let mut entries = Vec::with_capacity(nnz);
    while entries.len() < nnz {
        let idx: Vec<usize> = dims.iter().map(|&d| rng.gen_range(0..d)).collect();
        if seen.insert(idx.clone()) {
            let v = reconstruct_at(&core, &factors, &idx) + noise * (rng.gen::<f64>() - 0.5);
            entries.push((idx, v));
        }
    }
    SparseTensor::new(dims.to_vec(), entries).expect("valid entries")
}

fn fit_both(name: &str, x: &SparseTensor, rank: usize, rng: &mut StdRng) {
    let split = TrainTestSplit::new(x, 0.1, rng).expect("split");
    let ranks = vec![rank; x.order()];

    let tucker = PTucker::new(FitOptions::new(ranks).max_iters(15).seed(3).threads(2))
        .expect("options")
        .fit(&split.train)
        .expect("tucker fit");
    let cp = cp_als(
        &split.train,
        &CpOptions::new(rank).max_iters(15).seed(3).threads(2),
    )
    .expect("cp fit");

    let rmse_t = tucker
        .decomposition
        .test_rmse(&split.test, 2, Schedule::Static);
    let rmse_c = cp.decomposition.test_rmse(&split.test, 2, Schedule::Static);
    println!("\n{name} (dims {:?}, |Ω| = {}):", x.dims(), x.nnz());
    println!(
        "  Tucker  (J = {rank}):  recon {:.4}   test RMSE {:.4}   {:.3}s/iter",
        tucker.stats.final_error,
        rmse_t,
        tucker.stats.avg_seconds_per_iter()
    );
    println!(
        "  CP-ALS  (R = {rank}):  recon {:.4}   test RMSE {:.4}   {:.3}s/iter",
        cp.final_error,
        rmse_c,
        cp.seconds.iter().sum::<f64>() / cp.seconds.len().max(1) as f64
    );
}

fn main() {
    let mut rng = StdRng::seed_from_u64(31);

    // (a) Genuine CP data: superdiagonal core. Both models should fit well;
    // CP is cheaper per iteration (O(N·R) vs O(N·J^N) per entry).
    let cp_data = planted_cp(&[40, 35, 30], 3, 6_000, 0.02, &mut rng).tensor;
    fit_both("CP-structured data", &cp_data, 3, &mut rng);

    // (b) Full Tucker data with *signed* factors: a dense random core
    // couples all columns, and without a dominant mean direction a rank-3
    // CP cannot absorb the cross-column interactions (a generic 3x3x3 core
    // has CP-rank up to 5).
    let tucker_data = planted_signed_tucker(&[40, 35, 30], 3, 6_000, 0.02, &mut rng);
    fit_both("Tucker-structured data", &tucker_data, 3, &mut rng);

    println!(
        "\ntakeaway: the dense core is what lets Tucker capture cross-concept \
         relations — the foundation of the paper's Table VI discoveries."
    );
}
