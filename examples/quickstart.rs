//! Quickstart: factorize a small synthetic sparse tensor with P-Tucker and
//! predict missing entries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ptucker::{FitOptions, PTucker, Schedule};
use ptucker_datagen::planted_lowrank;
use ptucker_tensor::TrainTestSplit;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Build a sparse 3-way tensor with planted low-rank structure:
    //    100 x 80 x 60 grid, rank (4, 4, 4), 20 000 observed entries.
    let mut rng = StdRng::seed_from_u64(42);
    let planted = planted_lowrank(&[100, 80, 60], &[4, 4, 4], 20_000, 0.02, &mut rng);
    let x = planted.tensor;
    println!(
        "tensor: dims {:?}, |Ω| = {}, density = {:.2e}",
        x.dims(),
        x.nnz(),
        x.density()
    );

    // 2. Hold out 10% of the observed entries for evaluation — the paper's
    //    protocol for the accuracy experiments.
    let split = TrainTestSplit::new(&x, 0.1, &mut rng).expect("split");

    // 3. Fit P-Tucker with the paper's defaults (λ = 0.01, row-wise ALS,
    //    dynamic scheduling).
    let solver = PTucker::new(
        FitOptions::new(vec![4, 4, 4])
            .max_iters(15)
            .seed(7)
            .threads(4),
    )
    .expect("valid options");
    let result = solver.fit(&split.train).expect("fit succeeds");

    // 4. Inspect the run.
    println!("\niter   error        seconds");
    for s in &result.stats.iterations {
        println!(
            "{:>4}   {:<10.4}   {:.3}",
            s.iter, s.reconstruction_error, s.seconds
        );
    }
    println!(
        "\nconverged: {} | time/iter: {:.3}s | peak intermediates: {} B",
        result.stats.converged,
        result.stats.avg_seconds_per_iter(),
        result.stats.peak_intermediate_bytes
    );

    // 5. Evaluate: reconstruction error on train, RMSE on held-out entries,
    //    plus a sample prediction for a missing cell (Eq. 4 — never zero).
    let d = &result.decomposition;
    let rmse = d.test_rmse(&split.test, 4, Schedule::Static);
    println!(
        "final reconstruction error: {:.4}",
        result.stats.final_error
    );
    println!("held-out test RMSE:         {:.4}", rmse);
    println!(
        "orthogonality defect:       {:.2e} (factors are orthonormal)",
        d.orthogonality_defect()
    );
    let probe = [3usize, 5, 7];
    println!("predicted value at {:?}:  {:.4}", probe, d.predict(&probe));
}
