//! Multi-process sharded fit: a coordinator re-executes this example as
//! K=2 worker processes, each updating only its nnz-balanced share of
//! every factor's rows, with a per-mode factor-row all-reduce in
//! between — and the result is **bitwise identical** to the ordinary
//! single-process `PTucker::fit`.
//!
//! ```text
//! cargo run --release --example sharded_fit
//! ```

use ptucker::{FitOptions, PTucker};
use ptucker_datagen::planted_lowrank;
use ptucker_shard::{ShardedFit, WorkerSpawn};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // First thing: if this process was spawned as a worker, serve the
    // shard protocol on stdio and exit. The coordinator path continues.
    ptucker_shard::worker_guard();

    let mut rng = StdRng::seed_from_u64(42);
    let x = planted_lowrank(&[60, 50, 40], &[4, 4, 4], 12_000, 0.02, &mut rng).tensor;
    let opts = FitOptions::new(vec![4, 4, 4])
        .max_iters(5)
        .tol(0.0)
        .threads(2)
        .seed(7);
    println!(
        "tensor: dims {:?}, |Ω| = {} — single-process fit vs 2-way sharded fit\n",
        x.dims(),
        x.nnz()
    );

    let solo = PTucker::new(opts.clone())
        .expect("options")
        .fit(&x)
        .expect("single-process fit");
    println!(
        "single process: {:>8.4}s, final error {:.6}",
        solo.stats.total_seconds, solo.stats.final_error
    );

    let workers = 2;
    let out = ShardedFit::new(workers, WorkerSpawn::CurrentExe)
        .fit(&x, opts)
        .expect("sharded fit");
    println!(
        "{workers}-way sharded: {:>8.4}s, final error {:.6}, {} B sent / {} B received by the coordinator",
        out.fit.stats.total_seconds,
        out.fit.stats.final_error,
        out.fit.stats.bytes_sent,
        out.fit.stats.bytes_received
    );
    for (w, s) in out.worker_stats.iter().enumerate() {
        println!(
            "  worker {w}: {:>6} rows, {:>8} nnz, {:.4}s, {} B sent",
            s.rows_updated, s.nnz_processed, s.wall_seconds, s.bytes_sent
        );
    }

    // The acceptance bar, asserted: identical trajectory, identical model.
    assert_eq!(
        solo.stats.final_error.to_bits(),
        out.fit.stats.final_error.to_bits(),
        "sharded fit diverged from the single-process fit"
    );
    for (a, b) in solo
        .decomposition
        .factors
        .iter()
        .zip(&out.fit.decomposition.factors)
    {
        for (va, vb) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(va.to_bits(), vb.to_bits(), "factor drift");
        }
    }
    println!("\nsharded fit is bitwise identical to the single-process fit");
}
