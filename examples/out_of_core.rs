//! Out-of-core fitting: the same tensor fitted twice — once with room to
//! spare, once under a memory budget far too small for the execution plan
//! (and the Cache variant's `Pres` table) — showing that the budgeted fit
//! spills to scratch files, sweeps slice-aligned windows, and still lands
//! on the *identical* trajectory.
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```

use ptucker::{BudgetPolicy, FitOptions, MemoryBudget, PTucker, Variant};
use ptucker_datagen::planted_lowrank;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let x = planted_lowrank(&[60, 50, 40], &[3, 3, 3], 12_000, 0.02, &mut rng).tensor;
    println!(
        "tensor: dims {:?}, |Ω| = {}; in-memory plan would need {} B",
        x.dims(),
        x.nnz(),
        ptucker_tensor::ModeStreams::bytes_for(&x)
    );

    let opts = |budget: MemoryBudget| {
        FitOptions::new(vec![3, 3, 3])
            .max_iters(8)
            .tol(0.0)
            .threads(2)
            .seed(7)
            .variant(Variant::Cache) // the memory-hungry variant: |Ω|×|G| table
            .budget(budget)
    };

    // 1. Unconstrained: everything resident.
    let roomy = PTucker::new(opts(MemoryBudget::unlimited()))
        .unwrap()
        .fit(&x)
        .expect("in-memory fit");

    // 2. A 64 KiB budget — far below the plan, let alone the Pres table.
    //    Under the default BudgetPolicy::Spill the fit completes out of
    //    core instead of reporting the paper's O.O.M.
    let budget = MemoryBudget::new(64 << 10);
    assert_eq!(budget.policy(), BudgetPolicy::Spill);
    let spilled = PTucker::new(opts(budget))
        .unwrap()
        .fit(&x)
        .expect("the windowed path must complete where the in-memory path could not");

    println!("\niter   in-memory error    out-of-core error");
    for (a, b) in roomy.stats.iterations.iter().zip(&spilled.stats.iterations) {
        println!(
            "{:>4}   {:<16.10} {:<16.10}",
            a.iter, a.reconstruction_error, b.reconstruction_error
        );
        assert!(
            (a.reconstruction_error - b.reconstruction_error).abs()
                <= 1e-9 * a.reconstruction_error,
            "trajectories must agree"
        );
    }
    println!(
        "\nin-memory:   peak resident {} B, spilled 0 B",
        roomy.stats.peak_intermediate_bytes
    );
    println!(
        "out-of-core: peak resident {} B, spilled {} B to scratch files",
        spilled.stats.peak_intermediate_bytes, spilled.stats.peak_spilled_bytes
    );

    // 3. The paper's hard O.O.M. boundary is still available when an
    //    experiment needs it: BudgetPolicy::Strict.
    let strict = MemoryBudget::with_policy(64 << 10, BudgetPolicy::Strict);
    let err = PTucker::new(opts(strict)).unwrap().fit(&x).unwrap_err();
    println!("\nstrict policy at the same budget: {err}");
}
