//! Out-of-core fitting: the same tensor fitted three times — once with
//! room to spare, once under a budget that fits the execution plan but
//! not the Cache variant's `Pres` table (**hybrid spilling**: only the
//! table goes to disk), and once under a budget far too small for either
//! (full spill, with double-buffered window prefetch) — showing that all
//! three land on the *identical* trajectory while spilling strictly less
//! the more memory they are given.
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```

use ptucker::{BudgetPolicy, FitOptions, MemoryBudget, PTucker, Variant};
use ptucker_datagen::planted_lowrank;
use ptucker_tensor::ModeStreams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let x = planted_lowrank(&[60, 50, 40], &[3, 3, 3], 12_000, 0.02, &mut rng).tensor;
    let plan_bytes = ModeStreams::bytes_for(&x);
    let table_bytes = x.nnz() * 27 * 8; // |Ω| × |G| doubles
    println!(
        "tensor: dims {:?}, |Ω| = {}; resident plan {} B, Pres table {} B",
        x.dims(),
        x.nnz(),
        plan_bytes,
        table_bytes
    );

    let opts = |budget: MemoryBudget| {
        FitOptions::new(vec![3, 3, 3])
            .max_iters(8)
            .tol(0.0)
            .threads(2)
            .seed(7)
            .variant(Variant::Cache) // the memory-hungry variant: |Ω|×|G| table
            .budget(budget)
    };

    // 1. Unconstrained: everything resident.
    let roomy = PTucker::new(opts(MemoryBudget::unlimited()))
        .unwrap()
        .fit(&x)
        .expect("in-memory fit");

    // 2. Hybrid spill: a budget holding the plan (plus slack for tile
    //    buffers) but not the |Ω|×|G| table. The plan stays resident; only
    //    the table streams to a scratch file, tile by tile.
    let hybrid_budget = plan_bytes + plan_bytes / 2;
    assert!(hybrid_budget < plan_bytes + table_bytes);
    let hybrid = PTucker::new(opts(MemoryBudget::new(hybrid_budget)))
        .unwrap()
        .fit(&x)
        .expect("hybrid fit");

    // 3. A 64 KiB budget — far below the plan, let alone the Pres table.
    //    Under the default BudgetPolicy::Spill the fit completes out of
    //    core instead of reporting the paper's O.O.M.
    let tiny = MemoryBudget::new(64 << 10);
    assert_eq!(tiny.policy(), BudgetPolicy::Spill);
    let spilled = PTucker::new(opts(tiny))
        .unwrap()
        .fit(&x)
        .expect("the windowed path must complete where the in-memory path could not");

    println!("\niter   in-memory error    hybrid error       out-of-core error");
    for ((a, h), b) in roomy
        .stats
        .iterations
        .iter()
        .zip(&hybrid.stats.iterations)
        .zip(&spilled.stats.iterations)
    {
        println!(
            "{:>4}   {:<16.10} {:<16.10} {:<16.10}",
            a.iter, a.reconstruction_error, h.reconstruction_error, b.reconstruction_error
        );
        assert_eq!(
            a.reconstruction_error.to_bits(),
            h.reconstruction_error.to_bits(),
            "hybrid trajectory must agree bitwise"
        );
        assert_eq!(
            a.reconstruction_error.to_bits(),
            b.reconstruction_error.to_bits(),
            "spilled trajectory must agree bitwise"
        );
    }
    println!(
        "\nin-memory:   peak resident {} B, spilled 0 B",
        roomy.stats.peak_intermediate_bytes
    );
    println!(
        "hybrid:      peak resident {} B, spilled {} B (table only — plan stayed in RAM)",
        hybrid.stats.peak_intermediate_bytes, hybrid.stats.peak_spilled_bytes
    );
    println!(
        "out-of-core: peak resident {} B, spilled {} B to scratch files",
        spilled.stats.peak_intermediate_bytes, spilled.stats.peak_spilled_bytes
    );
    assert!(hybrid.stats.peak_spilled_bytes < spilled.stats.peak_spilled_bytes);

    // 4. The paper's hard O.O.M. boundary is still available when an
    //    experiment needs it: BudgetPolicy::Strict.
    let strict = MemoryBudget::with_policy(64 << 10, BudgetPolicy::Strict);
    let err = PTucker::new(opts(strict)).unwrap().fit(&x).unwrap_err();
    println!("\nstrict policy at the same budget: {err}");
}
