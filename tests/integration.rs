//! Cross-crate integration tests: generated data → fits → metrics →
//! discovery, exercising the same pipelines the paper's experiments use.

use ptucker::{BudgetPolicy, FitOptions, MemoryBudget, PTucker, PtuckerError, Schedule, Variant};
use ptucker_baselines::{s_hot, tucker_csf, tucker_wopt, BaselineOptions};
use ptucker_datagen::{planted_lowrank, realworld, uniform_sparse};
use ptucker_discovery::{cluster_purity, discover_concepts, discover_relations};
use ptucker_tensor::{read_tsv, write_tsv, SparseTensor, TrainTestSplit};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn planted_3way(seed: u64) -> SparseTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    planted_lowrank(&[20, 16, 12], &[3, 3, 3], 1_500, 0.02, &mut rng).tensor
}

#[test]
fn end_to_end_all_methods_rank_correctly_on_held_out_data() {
    // The Fig. 11 ordering: observed-only methods (P-Tucker, wOpt) beat
    // zero-imputing methods (CSF, S-HOT) on held-out RMSE.
    let x = planted_3way(1);
    let mut rng = StdRng::seed_from_u64(2);
    let split = TrainTestSplit::new(&x, 0.1, &mut rng).unwrap();

    let pt = PTucker::new(
        FitOptions::new(vec![3, 3, 3])
            .max_iters(12)
            .seed(3)
            .threads(2),
    )
    .unwrap()
    .fit(&split.train)
    .unwrap();
    let base = BaselineOptions::new(vec![3, 3, 3])
        .max_iters(12)
        .seed(3)
        .threads(2);
    let wopt = tucker_wopt(&split.train, &base).unwrap();
    let csf = tucker_csf(&split.train, &base).unwrap();
    let shot = s_hot(&split.train, &base).unwrap();

    let rmse = |r: &ptucker::FitResult| r.decomposition.test_rmse(&split.test, 2, Schedule::Static);
    let (r_pt, r_wopt, r_csf, r_shot) = (rmse(&pt), rmse(&wopt), rmse(&csf), rmse(&shot));
    assert!(
        r_pt < r_csf && r_pt < r_shot,
        "P-Tucker ({r_pt}) must beat zero-imputing CSF ({r_csf}) / S-HOT ({r_shot})"
    );
    assert!(
        r_wopt < r_csf && r_wopt < r_shot,
        "wOpt ({r_wopt}) must beat zero-imputing CSF ({r_csf}) / S-HOT ({r_shot})"
    );
}

#[test]
fn io_roundtrip_preserves_fit_results() {
    let x = planted_3way(4);
    let dir = std::env::temp_dir().join("ptucker-suite-it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.tsv");
    write_tsv(&path, &x).unwrap();
    let x2 = read_tsv(&path).unwrap();
    assert_eq!(x2.nnz(), x.nnz());

    let opts = FitOptions::new(vec![3, 3, 3]).max_iters(3).tol(0.0).seed(9);
    let a = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
    let b = PTucker::new(opts).unwrap().fit(&x2).unwrap();
    // Entry order may differ (values written in entry order then re-read in
    // the same order), but the tensors are identical here — errors match.
    assert!(
        (a.stats.final_error - b.stats.final_error).abs() < 1e-9 * a.stats.final_error.max(1.0)
    );
}

#[test]
fn variants_all_converge_on_the_same_data() {
    let x = planted_3way(5);
    for variant in [
        Variant::Default,
        Variant::Cache,
        Variant::Approx {
            truncation_rate: 0.2,
        },
    ] {
        let r = PTucker::new(
            FitOptions::new(vec![3, 3, 3])
                .max_iters(10)
                .seed(6)
                .threads(2)
                .variant(variant),
        )
        .unwrap()
        .fit(&x)
        .unwrap();
        let rel = r.stats.final_error / x.frobenius_norm();
        assert!(rel < 0.35, "{variant:?} rel error {rel}");
    }
}

#[test]
fn discovery_pipeline_recovers_planted_genres() {
    let mut rng = StdRng::seed_from_u64(7);
    let sim = realworld::movielens(0.002, &mut rng);
    let fit = PTucker::new(
        FitOptions::new(vec![8, 8, 4, 4])
            .max_iters(6)
            .seed(1)
            .threads(2),
    )
    .unwrap()
    .fit(&sim.tensor)
    .unwrap();
    let concepts = discover_concepts(&fit.decomposition.factors[1], realworld::NUM_GENRES, 0);
    let purity = cluster_purity(&concepts.clustering.assignments, &sim.movie_genre);
    assert!(purity > 0.8, "genre purity {purity}");
    // Relations must be well-formed and sorted by magnitude.
    let rels = discover_relations(&fit.decomposition.core, 10);
    assert!(!rels.is_empty());
    for w in rels.windows(2) {
        assert!(w[0].strength.abs() >= w[1].strength.abs());
    }
}

#[test]
fn oom_boundaries_by_method() {
    // One workload, three budgets: the ordering of memory appetites is
    // wOpt (dense) > Cache (|Ω|·|G|) > CSF (I·J^{N-1}) > P-Tucker (T·J²).
    // The cross-method boundary matrix runs under BudgetPolicy::Strict —
    // the paper's regime, where overflow is O.O.M. for everyone. (Under
    // the default Spill policy P-Tucker never O.O.M.s; see
    // `spill_semantics_replace_oom_for_ptucker` below.)
    let mut rng = StdRng::seed_from_u64(8);
    let x = uniform_sparse(&[40, 40, 40], 2_000, &mut rng);
    let ranks = vec![4, 4, 4];

    let fit_with = |budget: MemoryBudget| -> [bool; 4] {
        let popts = FitOptions::new(ranks.clone())
            .max_iters(1)
            .seed(1)
            .threads(2)
            .budget(budget.clone());
        let bopts = BaselineOptions::new(ranks.clone())
            .max_iters(1)
            .seed(1)
            .threads(2)
            .budget(budget.clone());
        [
            PTucker::new(popts.clone()).unwrap().fit(&x).is_ok(),
            PTucker::new(popts.variant(Variant::Cache))
                .unwrap()
                .fit(&x)
                .is_ok(),
            tucker_csf(&x, &bopts).is_ok(),
            tucker_wopt(&x, &bopts).is_ok(),
        ]
    };
    let strict = |bytes: usize| MemoryBudget::with_policy(bytes, BudgetPolicy::Strict);

    // Plenty for everyone.
    assert_eq!(fit_with(strict(64 << 20)), [true; 4]);
    // 300 KB: kills wOpt (needs ~1 MB dense) and Cache (2000*64*8 = 1 MB),
    // CSF needs 40*16*8 = 5 KB → lives; P-Tucker needs ~KBs → lives.
    assert_eq!(fit_with(strict(300 << 10)), [true, false, true, false]);
    // P-Tucker's metered footprint is its mode-major plan (O(N·|Ω|)
    // words, ~120 KB here) plus Theorem 4's T·(2J²+2J) doubles of scratch
    // (~640 B): it must fit with the plan plus a little headroom…
    let plan_bytes = ptucker_suite::tensor::ModeStreams::bytes_for(&x);
    let fits = fit_with(strict(plan_bytes + (4 << 10)));
    assert!(
        fits[0],
        "P-Tucker should fit in plan ({plan_bytes} B) + 4 KiB of scratch"
    );
    // …and report the paper's O.O.M. below the plan size, like everyone
    // whose data plane exceeds the machine.
    let tiny = fit_with(strict(1 << 10));
    assert_eq!(tiny, [false, false, false, false]);
}

#[test]
fn spill_semantics_replace_oom_for_ptucker() {
    // Under the default BudgetPolicy::Spill, budgets that used to O.O.M.
    // P-Tucker now complete out of core: the plan (and the Cache table)
    // move to scratch files, sweeps run over slice-aligned windows, and
    // the fit reports its disk footprint. The baselines have no spilled
    // mode, so the same budget still kills them — the paper's headline
    // separation, now *survived* instead of merely reproduced.
    let mut rng = StdRng::seed_from_u64(8);
    let x = uniform_sparse(&[40, 40, 40], 2_000, &mut rng);
    let ranks = vec![4, 4, 4];
    let tiny = MemoryBudget::new(1 << 10);
    assert_eq!(tiny.policy(), BudgetPolicy::Spill);

    let popts = FitOptions::new(ranks.clone())
        .max_iters(2)
        .seed(1)
        .threads(2)
        .budget(tiny.clone());
    let direct = PTucker::new(popts.clone()).unwrap().fit(&x).unwrap();
    assert!(direct.stats.peak_spilled_bytes > 0);
    let cached = PTucker::new(popts.clone().variant(Variant::Cache))
        .unwrap()
        .fit(&x)
        .unwrap();
    assert!(cached.stats.peak_spilled_bytes > direct.stats.peak_spilled_bytes);
    // Same seed, same trajectory as an unconstrained in-memory fit.
    let roomy = PTucker::new(popts.budget(MemoryBudget::unlimited()))
        .unwrap()
        .fit(&x)
        .unwrap();
    for (a, b) in roomy.stats.iterations.iter().zip(&direct.stats.iterations) {
        let rel = (a.reconstruction_error - b.reconstruction_error).abs()
            / a.reconstruction_error.max(1e-12);
        assert!(rel < 1e-9, "iter {}: rel {rel}", a.iter);
    }
    // Zero-imputing baselines still die at this budget.
    let bopts = BaselineOptions::new(ranks)
        .max_iters(1)
        .seed(1)
        .threads(2)
        .budget(tiny);
    assert!(tucker_csf(&x, &bopts).is_err());
    assert!(tucker_wopt(&x, &bopts).is_err());
}

#[test]
fn error_metrics_consistent_across_crates() {
    // ptucker's internal error equals the decomposition's public metric.
    let x = planted_3way(10);
    let r = PTucker::new(FitOptions::new(vec![3, 3, 3]).max_iters(4).seed(2))
        .unwrap()
        .fit(&x)
        .unwrap();
    let public = r
        .decomposition
        .reconstruction_error(&x, 2, Schedule::dynamic());
    assert!(
        (public - r.stats.final_error).abs() < 1e-9 * public.max(1.0),
        "public {public} vs stats {}",
        r.stats.final_error
    );
}

#[test]
fn sampling_extension_trades_accuracy_for_speed() {
    let x = planted_3way(11);
    let base = FitOptions::new(vec![3, 3, 3]).max_iters(6).tol(0.0).seed(3);
    let full = PTucker::new(base.clone()).unwrap().fit(&x).unwrap();
    let sampled = PTucker::new(base.sample_stride(4))
        .unwrap()
        .fit(&x)
        .unwrap();
    // Sampled fit sees 1/4 of the entries per row update: it must still
    // produce a usable model (bounded error inflation).
    assert!(sampled.stats.final_error < 4.0 * full.stats.final_error + 1.0);
}

#[test]
fn four_way_pipeline_smoke() {
    let mut rng = StdRng::seed_from_u64(12);
    let x = planted_lowrank(&[10, 9, 8, 7], &[2, 2, 2, 2], 900, 0.01, &mut rng).tensor;
    let r = PTucker::new(
        FitOptions::new(vec![2, 2, 2, 2])
            .max_iters(8)
            .seed(5)
            .threads(2),
    )
    .unwrap()
    .fit(&x)
    .unwrap();
    let rel = r.stats.final_error / x.frobenius_norm();
    assert!(rel < 0.3, "4-way fit rel error {rel}");
    // Baselines handle 4-way too.
    let b = BaselineOptions::new(vec![2, 2, 2, 2]).max_iters(3).seed(5);
    assert!(tucker_csf(&x, &b).is_ok());
    assert!(s_hot(&x, &b).is_ok());
}

#[test]
fn invalid_configs_rejected_uniformly() {
    let x = planted_3way(13);
    // Wrong order.
    assert!(matches!(
        PTucker::new(FitOptions::new(vec![3, 3])).unwrap().fit(&x),
        Err(PtuckerError::InvalidConfig(_))
    ));
    let b = BaselineOptions::new(vec![3, 3]);
    assert!(tucker_csf(&x, &b).is_err());
    assert!(s_hot(&x, &b).is_err());
    assert!(tucker_wopt(&x, &b).is_err());
    // Rank exceeding dimensionality.
    let b2 = BaselineOptions::new(vec![100, 3, 3]);
    assert!(tucker_csf(&x, &b2).is_err());
}
