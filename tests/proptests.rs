//! Property-based tests (proptest) over the workspace's core invariants:
//! linear-algebra identities, tensor index algebra, scheduler equivalence,
//! and the P-Tucker/baseline mathematical properties the paper proves.

use proptest::prelude::*;
use ptucker::{FitOptions, PTucker, Schedule, Variant};
use ptucker_linalg::{leading_left_singular_vectors, sym_eigen, Matrix};
use ptucker_sched::{parallel_reduce, static_block};
use ptucker_tensor::{delinearize, linearize, row_major_strides, DenseTensor, SparseTensor};

// ---------- generators ----------------------------------------------------

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

fn spd_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-3.0..3.0f64, n * n).prop_map(move |data| {
            let a = Matrix::from_vec(n, n, data).unwrap();
            let mut g = a.gram();
            g.add_diagonal_mut(0.5 + n as f64 * 0.1);
            g
        })
    })
}

fn sparse_tensor() -> impl Strategy<Value = SparseTensor> {
    (2..=3usize).prop_flat_map(|order| {
        proptest::collection::vec(3..8usize, order).prop_flat_map(|dims| {
            let cells: usize = dims.iter().product();
            let max_nnz = cells.min(40);
            proptest::collection::vec(
                (
                    proptest::collection::vec(0..100usize, dims.len()),
                    -5.0..5.0f64,
                ),
                2..=max_nnz,
            )
            .prop_map(move |raw| {
                let entries: Vec<(Vec<usize>, f64)> = raw
                    .into_iter()
                    .map(|(idx, v)| (idx.iter().zip(&dims).map(|(i, d)| i % d).collect(), v))
                    .collect();
                // Deduplicate cells (keep the last value) so the tensor is
                // a function of its index set.
                let mut map = std::collections::HashMap::new();
                for (idx, v) in entries {
                    map.insert(idx, v);
                }
                SparseTensor::new(dims.clone(), map.into_iter().collect()).unwrap()
            })
        })
    })
}

// ---------- linalg invariants ---------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_solve_residual_is_small(a in spd_matrix(6), seed in 0u64..1000) {
        let n = a.rows();
        let mut rng_vals = Vec::with_capacity(n);
        let mut s = seed;
        for _ in 0..n {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng_vals.push(((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0);
        }
        let ch = a.cholesky().unwrap();
        let x = ch.solve(&rng_vals);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&rng_vals) {
            prop_assert!((ri - bi).abs() < 1e-7 * (1.0 + bi.abs()));
        }
    }

    #[test]
    fn lu_and_cholesky_agree_on_spd(a in spd_matrix(5)) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let x1 = a.cholesky().unwrap().solve(&b);
        let x2 = a.lu().unwrap().solve(&b);
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-7 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn qr_reconstructs_and_q_orthonormal(m in small_matrix(6)) {
        prop_assume!(m.rows() >= m.cols());
        let qr = m.qr().unwrap();
        let rec = qr.q().matmul(qr.r()).unwrap();
        for (a, b) in rec.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()));
        }
        let g = qr.q().gram();
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((g[(i, j)] - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn eigen_reconstructs_symmetric(a in spd_matrix(5)) {
        let e = sym_eigen(&a).unwrap();
        let n = a.rows();
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
            prop_assert!(e.values[i] > 0.0); // SPD ⇒ positive spectrum
        }
        let rec = e.vectors.matmul(&lam).unwrap().matmul(&e.vectors.transpose()).unwrap();
        for (x, y) in rec.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-7 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn svd_projection_never_increases_energy(m in small_matrix(5)) {
        let k = m.cols().min(m.rows());
        prop_assume!(k >= 1);
        let svd = leading_left_singular_vectors(&m, k).unwrap();
        // Singular values descending and non-negative.
        for w in svd.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        prop_assert!(svd.singular_values.iter().all(|&s| s >= 0.0));
    }
}

// ---------- tensor index algebra -------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linearize_roundtrip(dims in proptest::collection::vec(1..6usize, 1..4), pick in 0usize..10_000) {
        let total: usize = dims.iter().product();
        let lin = pick % total;
        let strides = row_major_strides(&dims);
        let mut idx = vec![0; dims.len()];
        delinearize(lin, &dims, &mut idx);
        prop_assert_eq!(linearize(&idx, &strides), lin);
        for (i, d) in idx.iter().zip(&dims) {
            prop_assert!(i < d);
        }
    }

    #[test]
    fn matricization_preserves_frobenius(dims in proptest::collection::vec(2..5usize, 2..4)) {
        let t = DenseTensor::from_fn(dims.clone(), |i| {
            i.iter().enumerate().map(|(k, &v)| (k + 1) as f64 * v as f64).sum::<f64>() - 1.0
        }).unwrap();
        for n in 0..dims.len() {
            let m = t.matricize(n);
            prop_assert!((m.frobenius_norm() - t.frobenius_norm()).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_slices_partition_entries(x in sparse_tensor()) {
        for n in 0..x.order() {
            let mut seen = vec![false; x.nnz()];
            for i in 0..x.dims()[n] {
                for &e in x.slice(n, i) {
                    prop_assert!(!seen[e]);
                    seen[e] = true;
                    prop_assert_eq!(x.index(e)[n], i);
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn mode_product_linearity(dims in proptest::collection::vec(2..4usize, 2..3)) {
        // (X ×n (A+B)) == (X ×n A) + (X ×n B)
        let t = DenseTensor::from_fn(dims.clone(), |i| (i[0] + 2 * i[1]) as f64 * 0.5).unwrap();
        let n = 0usize;
        let rows = 2usize;
        let a = Matrix::from_vec(rows, dims[0], (0..rows * dims[0]).map(|k| k as f64 * 0.3).collect()).unwrap();
        let b = Matrix::from_vec(rows, dims[0], (0..rows * dims[0]).map(|k| 1.0 - k as f64 * 0.1).collect()).unwrap();
        let ab = a.add(&b).unwrap();
        let lhs = t.mode_product(n, &ab).unwrap();
        let ra = t.mode_product(n, &a).unwrap();
        let rb = t.mode_product(n, &b).unwrap();
        for ((l, x), y) in lhs.as_slice().iter().zip(ra.as_slice()).zip(rb.as_slice()) {
            prop_assert!((l - (x + y)).abs() < 1e-9);
        }
    }
}

// ---------- scheduler invariants -------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn static_blocks_partition(n in 0usize..500, t in 1usize..9) {
        let mut prev_end = 0;
        let mut covered = 0;
        for b in 0..t {
            let (lo, hi) = static_block(n, t, b);
            prop_assert_eq!(lo, prev_end);
            prop_assert!(hi >= lo);
            covered += hi - lo;
            prev_end = hi;
        }
        prop_assert_eq!(prev_end, n);
        prop_assert_eq!(covered, n);
    }

    #[test]
    fn reduce_agrees_across_threads_and_schedules(n in 1usize..2000, threads in 1usize..6, chunk in 1usize..32) {
        let want: u64 = (0..n as u64).map(|i| i * 3 + 1).sum();
        for sched in [Schedule::Static, Schedule::Dynamic { chunk }] {
            let got = parallel_reduce(n, threads, sched, || 0u64, |acc, i| acc + (i as u64) * 3 + 1, |a, b| a + b);
            prop_assert_eq!(got, want);
        }
    }
}

// ---------- P-Tucker algorithmic invariants --------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ptucker_error_monotone_on_random_tensors(x in sparse_tensor(), seed in 0u64..64) {
        prop_assume!(x.nnz() >= 4);
        let ranks: Vec<usize> = x.dims().iter().map(|&d| d.min(2)).collect();
        let r = PTucker::new(
            FitOptions::new(ranks)
                .max_iters(5)
                .tol(0.0)
                .lambda(1e-6)
                .threads(2)
                .seed(seed),
        )
        .unwrap()
        .fit(&x)
        .unwrap();
        let errs: Vec<f64> = r.stats.iterations.iter().map(|s| s.reconstruction_error).collect();
        for w in errs.windows(2) {
            // Theorem 2 guarantees the *loss* (error² + λΣ‖A‖²) never
            // increases; the error component alone may wiggle by
            // O(λ·‖A‖²) once the fit is essentially exact (errors ~1e-5
            // on O(1)-normed tensors), hence the λ-scale absolute slack —
            // still far below any genuine monotonicity violation.
            prop_assert!(w[1] <= w[0] * (1.0 + 1e-7) + 1e-3, "errors: {errs:?}");
        }
        // QR post-processing preserves the reconstruction (Eq. 7/8).
        let last = errs.last().copied().unwrap();
        prop_assert!((r.stats.final_error - last).abs() <= 1e-6 * last.max(1.0));
        // Factors orthonormal on exit.
        prop_assert!(r.decomposition.orthogonality_defect() < 1e-8);
    }

    #[test]
    fn cache_and_default_agree_on_random_tensors(x in sparse_tensor(), seed in 0u64..32) {
        prop_assume!(x.nnz() >= 4);
        let ranks: Vec<usize> = x.dims().iter().map(|&d| d.min(2)).collect();
        let base = FitOptions::new(ranks).max_iters(3).tol(0.0).threads(2).seed(seed);
        let d = PTucker::new(base.clone()).unwrap().fit(&x).unwrap();
        let c = PTucker::new(base.variant(Variant::Cache)).unwrap().fit(&x).unwrap();
        for (a, b) in d.stats.iterations.iter().zip(&c.stats.iterations) {
            let denom = a.reconstruction_error.max(1e-9);
            prop_assert!(
                (a.reconstruction_error - b.reconstruction_error).abs() / denom < 1e-5,
                "iter {} differs: {} vs {}",
                a.iter, a.reconstruction_error, b.reconstruction_error
            );
        }
    }
}
