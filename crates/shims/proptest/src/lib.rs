//! Offline stand-in for the `proptest` crate.
//!
//! Reimplements the API subset the workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range
//! and tuple strategies, [`collection::vec`], [`any`], the
//! [`test_runner::ProptestConfig`] case count, and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]
//! macros.
//!
//! Semantics: each `#[test]` runs `cases` seeded random instances (the seed
//! is a deterministic hash of the test name, so failures reproduce).
//! Rejections via `prop_assume!` retry with fresh inputs up to a bounded
//! attempt budget. Unlike upstream proptest there is **no shrinking** — a
//! failing case reports the case number and message only. That trade-off
//! keeps the shim dependency-free for an offline build environment.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Feeds generated values into a strategy-producing `f` and draws
        /// from the produced strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample from empty range");
                    if hi < <$t>::MAX {
                        rng.gen_range(lo..hi + 1)
                    } else if lo > <$t>::MIN {
                        // `hi + 1` would overflow; sample the shifted range.
                        rng.gen_range(lo - 1..hi) + 1
                    } else {
                        // Full type range: raw bits are uniform already.
                        rng.gen::<u64>() as $t
                    }
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, i64, i32);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            self.start + rng.gen::<f64>() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// Strategy for a boolean coin flip (backs `any::<bool>()`).
    #[derive(Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// `Arbitrary`/`any` support for the handful of types the tests request.
pub mod arbitrary {
    use crate::strategy::{AnyBool, Strategy};

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy value.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

/// The canonical strategy for `T` (`any::<bool>()` et al.).
pub fn any<T: arbitrary::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element`-generated values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the macros.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; retry with fresh ones.
        Reject,
        /// `prop_assert!`-style failure with a rendered message.
        Fail(String),
    }

    /// A seeded generator derived from the test name (FNV-1a), so each test
    /// gets a stable, independent stream.
    pub fn deterministic_rng(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, …)`
/// body runs for the configured number of seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr) $( #[test] fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::deterministic_rng(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => continue,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "property '{}' failed at case #{}: {}",
                                stringify!($name),
                                accepted + 1,
                                msg
                            )
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?} == {:?}`",
            lhs,
            rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// Rejects the current inputs (retried with fresh ones, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1..10usize).prop_flat_map(|a| (1..=a).prop_map(move |b| (a, b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..17usize, y in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in crate::collection::vec(0..5usize, 2..=6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_dependency_holds((a, b) in pair()) {
            prop_assert!(b <= a, "b {} exceeded a {}", b, a);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0..100usize) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn any_bool_produces_both(bits in crate::collection::vec(any::<bool>(), 64)) {
            prop_assume!(bits.len() == 64);
            // 64 fair flips all equal has probability 2^-63.
            prop_assert!(bits.iter().any(|&b| b) || bits.iter().all(|&b| !b));
        }
    }

    #[test]
    fn inclusive_ranges_at_type_extremes_do_not_overflow() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::deterministic_rng("extremes");
        for _ in 0..100 {
            let v = ((usize::MAX - 2)..=usize::MAX).generate(&mut rng);
            assert!(v >= usize::MAX - 2);
            let w = (i32::MIN..=i32::MAX).generate(&mut rng);
            let _ = w; // any i32 is in range; just must not panic
            let u = (5..=5u64).generate(&mut rng);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::deterministic_rng("x");
        let mut b = crate::test_runner::deterministic_rng("x");
        for _ in 0..10 {
            assert_eq!(
                (0..100usize).generate(&mut a),
                (0..100usize).generate(&mut b)
            );
        }
    }
}
