//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros — as a plain wall-clock harness: each benchmark is auto-calibrated
//! to a target measurement time and reported as `median ns/iter` on stdout.
//! No statistics machinery, no plots; the point is a stable before/after
//! number that future PRs can regress against, produced without network
//! access to the real crates.io criterion.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Harness entry point; collects and runs benchmark definitions.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement: self.measurement,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, self.measurement, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, self.measurement, &mut f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, self.measurement, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group (upstream criterion finalizes reports here).
    pub fn finish(self) {}
}

/// Identifier for a (possibly parameterized) benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` (the routine under measurement).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, samples: usize, target: Duration, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: find an iteration count whose run time is measurable.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters *= 4;
    };
    // Split the measurement budget into samples.
    let budget_per_sample = target.as_secs_f64() / samples as f64;
    let iters = ((budget_per_sample / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    let best = times[0];
    println!(
        "bench {label:<48} median {:>12.1} ns/iter (best {:>12.1})",
        median * 1e9,
        best * 1e9
    );
}

/// Bundles benchmark functions into a runnable group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; a wall-clock
            // shim has no use for them.
            let _ = std::env::args();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            sample_size: 2,
            measurement: Duration::from_millis(10),
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1))
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            sample_size: 30,
            measurement: Duration::from_millis(10),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("x", 3), &3usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
