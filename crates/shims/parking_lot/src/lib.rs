//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides the `Mutex` subset this workspace uses — `new`, `lock` (no
//! poisoning: a guard, not a `Result`), and `into_inner` — backed by
//! [`std::sync::Mutex`]. Poison errors are swallowed exactly like
//! parking_lot does by design: a panicked critical section leaves the data
//! in its last state rather than poisoning the lock.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::sync::MutexGuard as StdGuard;

/// A poison-free mutual exclusion primitive (parking_lot calling
/// convention over the std mutex).
#[derive(Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T> {
    inner: StdGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available. Never poisons: if a
    /// previous holder panicked, the data is handed over as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_mutate_unlock() {
        let m = Mutex::new(vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(m.lock().len(), 4);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn contended_increments_all_land() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 8000);
    }
}
