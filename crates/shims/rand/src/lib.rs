//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, dependency-free reimplementation of exactly the `rand 0.8` API
//! surface it uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] sampling methods (`gen`, `gen_range`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a high-quality,
//! deterministic PRNG. Streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`, which is fine for this workspace: every test and experiment
//! derives its expectations from the seeded stream itself, never from golden
//! values of a specific generator.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use core::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (`f64`: uniform on `[0, 1)`; integers: uniform over the full range;
    /// `bool`: fair coin).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open integer range. Panics if the
    /// range is empty.
    #[inline]
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(range, self)
    }

    /// Samples a fair boolean with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution (see [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Sized {
    /// Draws uniformly from `range`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

/// Uniform `u64` in `[0, span)` via Lemire's widening-multiply reduction
/// with rejection — exactly uniform for every span.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let x = rng.next_u64();
        let wide = (x as u128) * (span as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(range: Range<$t>, rng: &mut R) -> $t {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start.wrapping_add(uniform_below(span, rng) as $t)
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, i64, i32);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the full 256-bit state,
            // as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices (the only `SliceRandom` method this workspace
    /// uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(0..7usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(10..11usize);
            assert_eq!(v, 10);
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And actually permutes (astronomically unlikely to be identity).
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn unsized_rng_callable_through_reference() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(2);
        let _ = takes_generic(&mut rng);
    }
}
