//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::scope` + `Scope::spawn`; since Rust
//! 1.63 the standard library's [`std::thread::scope`] provides the same
//! borrow-friendly scoped threads, so this shim is a thin adapter with the
//! `crossbeam 0.8` calling convention (`scope` returns a `Result`, spawn
//! closures receive a `&Scope` argument).
//!
//! Panic semantics differ slightly: upstream crossbeam collects worker
//! panics into the returned `Err`, while `std::thread::scope` resumes the
//! panic on join. Both end in the same place for this workspace — every
//! caller immediately `expect`s the result — so a worker panic still aborts
//! the parallel section with the panic payload.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::any::Any;

/// A scope handle for spawning borrowed worker threads.
///
/// Mirrors `crossbeam::thread::Scope`: `spawn` takes a closure that receives
/// the scope again (so workers could spawn siblings, though this workspace
/// never does).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker thread bound to the scope. The closure receives a
    /// `&Scope`, matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope)
        });
    }
}

/// Creates a scope for spawning threads that may borrow from the caller's
/// stack. All spawned threads are joined before `scope` returns.
///
/// # Errors
/// Upstream crossbeam reports worker panics as `Err`; with the std backend a
/// worker panic propagates directly instead, so the returned value is always
/// `Ok` — kept as a `Result` for drop-in compatibility.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| {
        let wrapper = Scope { inner: s };
        f(&wrapper)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_run_and_join() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..8 {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn workers_can_borrow_mutably_via_split() {
        let mut data = [0usize; 16];
        scope(|s| {
            for (i, chunk) in data.chunks_mut(4).enumerate() {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i + 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(data[..4].iter().all(|&v| v == 1));
        assert!(data[12..].iter().all(|&v| v == 4));
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            let counter = &counter;
            s.spawn(move |s2| {
                s2.spawn(move |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
