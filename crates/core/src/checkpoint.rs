//! Bitwise checkpoint–resume for ALS fits.
//!
//! A [`FitCheckpoint`] snapshots everything the fit driver needs to
//! continue an interrupted fit **bitwise identically**: the factor
//! matrices, the core tensor, the convergence bookkeeping (`prev_err`,
//! the per-iteration stats so far, the next iteration index) and the
//! kernel's auxiliary state (`kernel_aux` — the Cache variant's `Pres`
//! table, whose incrementally rescaled values are *not* reproducible by
//! recomputation; see [`crate::engine::RowUpdateKernel::save_aux`]).
//!
//! # On-disk format
//!
//! A single little-endian binary blob:
//!
//! | field          | encoding                                         |
//! |----------------|--------------------------------------------------|
//! | magic          | 8 bytes `"PTKCKPT1"`                             |
//! | format version | `u32` (currently 1)                              |
//! | fingerprint    | `u64` FNV-1a over tensor + fit configuration     |
//! | next_iter      | `u64` — first iteration the resumed fit runs     |
//! | prev_err       | `f64` — convergence reference of `next_iter`     |
//! | iterations     | `u64` count, then per entry `iter: u64`, `reconstruction_error: f64`, `seconds: f64`, `core_nnz: u64` |
//! | factors        | `u64` count, then per factor `rows: u64`, `cols: u64`, row-major `f64` data |
//! | core           | `u64` order, dims as `u64`s, `u64` nnz, flat indices as `u64`s, values as `f64`s |
//! | kernel_aux     | `u64` byte length, then the kernel's opaque bytes |
//! | checksum       | `u64` FNV-1a over every preceding byte           |
//!
//! The trailing checksum catches torn or bit-flipped files; the
//! fingerprint catches resuming against the wrong tensor or options
//! (different dims, ranks, seed, variant, precision, λ or data). Both
//! fail with a named [`crate::PtuckerError::Checkpoint`], never a panic.
//!
//! # Atomicity
//!
//! [`FitCheckpoint::store`] writes to a sibling temp file, `fsync`s it,
//! and `rename`s it over the destination — a crash mid-write leaves the
//! previous checkpoint intact, never a truncated one. The containing
//! directory is fsynced best-effort after the rename.

use crate::{FitOptions, IterStats, PtuckerError, Result, StoragePrecision, Variant};
use ptucker_linalg::Matrix;
use ptucker_tensor::{CooScratch, CoreTensor, SparseTensor};
use std::io::Write;
use std::path::Path;

/// Leading magic of every checkpoint file.
const MAGIC: [u8; 8] = *b"PTKCKPT1";

/// Current serialization format version.
const FORMAT_VERSION: u32 = 1;

/// 64-bit FNV-1a — local copy (the shard crate has its own for frame
/// checksums; the core crate cannot depend on it).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental FNV-1a, for fingerprinting without materializing the
/// hashed bytes.
pub(crate) struct Fnv(pub(crate) u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.update(&v.to_bits().to_le_bytes());
    }
}

/// A complete, self-validating snapshot of an ALS fit between two
/// iterations. See the [module docs](self) for the file format and
/// `FitOptions::{checkpoint_path, resume_from}` for the driver-level
/// cadence and resume switches.
#[derive(Debug, Clone)]
pub struct FitCheckpoint {
    /// FNV-1a over the tensor and fit configuration (see
    /// [`FitCheckpoint::fingerprint`]); a resume against a different
    /// tensor or options is rejected by this value.
    pub fingerprint: u64,
    /// The first iteration the resumed fit will run.
    pub next_iter: usize,
    /// The reconstruction error of iteration `next_iter - 1` — the
    /// convergence reference the resumed fit compares against.
    pub prev_err: f64,
    /// Stats of every completed iteration, so a resumed fit's final
    /// [`crate::FitStats::iterations`] equals the uninterrupted fit's.
    pub iterations: Vec<IterStats>,
    /// The factor matrices as of the end of iteration `next_iter - 1`.
    pub factors: Vec<Matrix>,
    /// The core tensor as of the end of iteration `next_iter - 1`.
    pub core: CoreTensor,
    /// The kernel's opaque auxiliary state (empty for kernels without
    /// any): the Cache variant's incrementally rescaled `Pres` table,
    /// which a rebuild cannot reproduce bitwise.
    pub kernel_aux: Vec<u8>,
}

impl FitCheckpoint {
    /// The configuration fingerprint stored in (and checked against)
    /// every checkpoint: FNV-1a over the tensor's dims, nnz, entries and
    /// values, plus the fit's ranks, seed, variant, precision and λ —
    /// everything that must match for a resumed trajectory to be the
    /// same fit.
    pub fn fingerprint(x: &SparseTensor, opts: &FitOptions) -> u64 {
        let mut h = Fnv::new();
        Self::fingerprint_config(&mut h, x.dims(), opts);
        h.u64(x.nnz() as u64);
        for e in 0..x.nnz() {
            for &i in x.index(e) {
                h.u64(i as u64);
            }
            h.f64(x.value(e));
        }
        h.0
    }

    /// [`FitCheckpoint::fingerprint`] for a disk-resident COO source:
    /// hashes the identical byte sequence (configuration header, nnz,
    /// then each entry's indices and value in entry order), streamed
    /// through one bounded segment buffer — so a fit resumed from a
    /// scratch file accepts checkpoints written by the equivalent
    /// resident fit and vice versa.
    pub fn fingerprint_scratch(src: &CooScratch, opts: &FitOptions) -> Result<u64> {
        let mut h = Fnv::new();
        Self::fingerprint_config(&mut h, src.dims(), opts);
        h.u64(src.nnz() as u64);
        let mut cur = src.segments(8 << 10);
        while let Some(seg) = cur.next_segment().map_err(PtuckerError::Tensor)? {
            for e in 0..seg.len() {
                for &i in seg.index(e) {
                    h.u64(i as u64);
                }
                h.f64(seg.value(e));
            }
        }
        Ok(h.0)
    }

    /// The configuration prefix both fingerprint flavors share: dims,
    /// ranks, seed, variant, precision, λ and the sampling stride, in a
    /// fixed order.
    fn fingerprint_config(h: &mut Fnv, dims: &[usize], opts: &FitOptions) {
        h.u64(dims.len() as u64);
        for &d in dims {
            h.u64(d as u64);
        }
        for &r in &opts.ranks {
            h.u64(r as u64);
        }
        h.u64(opts.seed);
        match opts.variant {
            Variant::Default => h.u64(0),
            Variant::Cache => h.u64(1),
            Variant::Approx { truncation_rate } => {
                h.u64(2);
                h.f64(truncation_rate);
            }
        }
        match opts.precision {
            StoragePrecision::F64 => h.u64(0),
            StoragePrecision::F32 => h.u64(1),
        }
        h.f64(opts.lambda);
        h.u64(opts.sample_stride.max(1) as u64);
    }

    /// Serializes the checkpoint to its on-disk byte format (including
    /// the trailing checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        put_u64(&mut out, self.fingerprint);
        put_u64(&mut out, self.next_iter as u64);
        put_f64(&mut out, self.prev_err);
        put_u64(&mut out, self.iterations.len() as u64);
        for s in &self.iterations {
            put_u64(&mut out, s.iter as u64);
            put_f64(&mut out, s.reconstruction_error);
            put_f64(&mut out, s.seconds);
            put_u64(&mut out, s.core_nnz as u64);
        }
        put_u64(&mut out, self.factors.len() as u64);
        for m in &self.factors {
            put_u64(&mut out, m.rows() as u64);
            put_u64(&mut out, m.cols() as u64);
            for &v in m.as_slice() {
                put_f64(&mut out, v);
            }
        }
        put_u64(&mut out, self.core.order() as u64);
        for &d in self.core.dims() {
            put_u64(&mut out, d as u64);
        }
        put_u64(&mut out, self.core.nnz() as u64);
        for &i in self.core.flat_indices() {
            put_u64(&mut out, i as u64);
        }
        for &v in self.core.values() {
            put_f64(&mut out, v);
        }
        put_u64(&mut out, self.kernel_aux.len() as u64);
        out.extend_from_slice(&self.kernel_aux);
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Parses and validates a checkpoint blob: magic, format version and
    /// trailing checksum are all checked before any field is trusted.
    ///
    /// # Errors
    /// [`crate::PtuckerError::Checkpoint`] naming the specific defect —
    /// bad magic, unsupported version, checksum mismatch, truncation, or
    /// an inconsistent field.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(ck(format!(
                "file too short to be a checkpoint ({} bytes)",
                bytes.len()
            )));
        }
        if bytes[..8] != MAGIC {
            return Err(ck("bad magic — not a P-Tucker checkpoint file".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(ck(format!(
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x}) — file corrupt or truncated"
            )));
        }
        let mut d = Cur {
            bytes: body,
            pos: 8,
        };
        let version = d.u32()?;
        if version != FORMAT_VERSION {
            return Err(ck(format!(
                "unsupported checkpoint format version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let fingerprint = d.u64()?;
        let next_iter = d.usize()?;
        let prev_err = d.f64()?;
        let n_iters = d.len("iteration stats")?;
        let mut iterations = Vec::with_capacity(n_iters);
        for _ in 0..n_iters {
            iterations.push(IterStats {
                iter: d.usize()?,
                reconstruction_error: d.f64()?,
                seconds: d.f64()?,
                core_nnz: d.usize()?,
            });
        }
        let n_factors = d.len("factors")?;
        let mut factors = Vec::with_capacity(n_factors);
        for _ in 0..n_factors {
            let rows = d.usize()?;
            let cols = d.usize()?;
            let cells = rows
                .checked_mul(cols)
                .ok_or_else(|| ck("factor shape overflows".into()))?;
            let mut data = Vec::with_capacity(cells.min(d.remaining() / 8));
            for _ in 0..cells {
                data.push(d.f64()?);
            }
            factors.push(
                Matrix::from_vec(rows, cols, data)
                    .map_err(|e| ck(format!("factor matrix malformed: {e}")))?,
            );
        }
        let order = d.usize()?;
        let mut dims = Vec::with_capacity(order.min(d.remaining() / 8));
        for _ in 0..order {
            dims.push(d.usize()?);
        }
        let nnz = d.usize()?;
        let idx_count = nnz
            .checked_mul(order)
            .ok_or_else(|| ck("core shape overflows".into()))?;
        let mut flat = Vec::with_capacity(idx_count.min(d.remaining() / 8));
        for _ in 0..idx_count {
            flat.push(d.usize()?);
        }
        let mut entries = Vec::with_capacity(nnz);
        for e in 0..nnz {
            entries.push((flat[e * order..(e + 1) * order].to_vec(), 0.0));
        }
        for entry in entries.iter_mut() {
            entry.1 = d.f64()?;
        }
        let core = CoreTensor::from_entries(dims, entries)
            .map_err(|e| ck(format!("core tensor malformed: {e}")))?;
        let aux_len = d.len("kernel aux")?;
        let kernel_aux = d.take(aux_len)?.to_vec();
        if d.pos != body.len() {
            return Err(ck(format!(
                "{} trailing bytes after the kernel aux section",
                body.len() - d.pos
            )));
        }
        Ok(FitCheckpoint {
            fingerprint,
            next_iter,
            prev_err,
            iterations,
            factors,
            core,
            kernel_aux,
        })
    }

    /// Atomically writes the checkpoint to `path`: encode → sibling temp
    /// file → `fsync` → `rename` → best-effort directory fsync. A crash
    /// at any point leaves either the old checkpoint or the new one,
    /// never a torn file.
    ///
    /// # Errors
    /// [`crate::PtuckerError::Checkpoint`] wrapping the failed I/O step.
    pub fn store(&self, path: &Path) -> Result<()> {
        let bytes = self.encode();
        let tmp = {
            let mut name = path.file_name().unwrap_or_default().to_os_string();
            name.push(".tmp");
            path.with_file_name(name)
        };
        let io = |step: &'static str| {
            let p = tmp.display().to_string();
            move |e: std::io::Error| ck(format!("{step} {p}: {e}"))
        };
        let mut f = std::fs::File::create(&tmp).map_err(io("create"))?;
        f.write_all(&bytes).map_err(io("write"))?;
        f.sync_all().map_err(io("fsync"))?;
        drop(f);
        std::fs::rename(&tmp, path)
            .map_err(|e| ck(format!("rename into {}: {e}", path.display())))?;
        // Make the rename itself durable where the platform allows
        // fsyncing a directory handle; failure here cannot tear the file.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads and validates a checkpoint from `path`.
    ///
    /// # Errors
    /// [`crate::PtuckerError::Checkpoint`] on I/O failure or any decode
    /// defect (see [`FitCheckpoint::decode`]).
    pub fn load(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| ck(format!("read {}: {e}", path.display())))?;
        FitCheckpoint::decode(&bytes)
    }
}

fn ck(msg: String) -> PtuckerError {
    PtuckerError::Checkpoint(msg)
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A bounds-checked little-endian cursor; every read past the end is a
/// named [`crate::PtuckerError::Checkpoint`], never a panic.
pub(crate) struct Cur<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| ck("checkpoint truncated mid-field".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| ck(format!("value {v} overflows usize")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A count field, sanity-bounded by the bytes actually left (every
    /// counted element is at least one byte), so a corrupt length cannot
    /// drive a huge allocation.
    pub(crate) fn len(&mut self, what: &str) -> Result<usize> {
        let n = self.usize()?;
        if n > self.remaining().max(8) * 8 {
            return Err(ck(format!(
                "{what} count {n} exceeds what the file could hold"
            )));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FitCheckpoint {
        FitCheckpoint {
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            next_iter: 3,
            prev_err: 0.125,
            iterations: vec![
                IterStats {
                    iter: 0,
                    reconstruction_error: 1.5,
                    seconds: 0.01,
                    core_nnz: 8,
                },
                IterStats {
                    iter: 1,
                    reconstruction_error: 0.5,
                    seconds: 0.02,
                    core_nnz: 8,
                },
            ],
            factors: vec![
                Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.5, 0.0]).unwrap(),
                Matrix::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]).unwrap(),
            ],
            core: CoreTensor::from_entries(
                vec![2, 2],
                vec![(vec![0, 0], 1.0), (vec![0, 1], -0.5), (vec![1, 1], 2.0)],
            )
            .unwrap(),
            kernel_aux: vec![7, 7, 7, 1, 2, 3],
        }
    }

    fn assert_same(a: &FitCheckpoint, b: &FitCheckpoint) {
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.next_iter, b.next_iter);
        assert_eq!(a.prev_err.to_bits(), b.prev_err.to_bits());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.factors.len(), b.factors.len());
        for (x, y) in a.factors.iter().zip(&b.factors) {
            assert_eq!(x.rows(), y.rows());
            assert_eq!(x.cols(), y.cols());
            for (p, q) in x.as_slice().iter().zip(y.as_slice()) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
        assert_eq!(a.core.dims(), b.core.dims());
        assert_eq!(a.core.flat_indices(), b.core.flat_indices());
        for (p, q) in a.core.values().iter().zip(b.core.values()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        assert_eq!(a.kernel_aux, b.kernel_aux);
    }

    #[test]
    fn encode_decode_round_trips_bitwise() {
        let c = sample();
        let bytes = c.encode();
        let back = FitCheckpoint::decode(&bytes).unwrap();
        assert_same(&c, &back);
    }

    #[test]
    fn store_load_round_trips_and_is_atomic_on_rewrite() {
        let dir = std::env::temp_dir().join(format!("ptk-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fit.ckpt");
        let c = sample();
        c.store(&path).unwrap();
        let back = FitCheckpoint::load(&path).unwrap();
        assert_same(&c, &back);
        // Overwrite with a new snapshot: temp file is cleaned up, load
        // sees the new contents.
        let mut c2 = c.clone();
        c2.next_iter = 9;
        c2.store(&path).unwrap();
        assert_eq!(FitCheckpoint::load(&path).unwrap().next_iter, 9);
        assert!(!path.with_file_name("fit.ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_named_not_panicked() {
        let c = sample();
        let good = c.encode();

        // Truncation.
        let err = FitCheckpoint::decode(&good[..good.len() - 3]).unwrap_err();
        assert!(matches!(err, PtuckerError::Checkpoint(_)), "{err}");

        // Bit flip in the middle (checksum catches it).
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let err = FitCheckpoint::decode(&flipped).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        // Bad magic.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        let err = FitCheckpoint::decode(&bad_magic).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // Unsupported version (checksum re-stamped so the version check
        // itself is what fires).
        let mut v2 = good.clone();
        v2[8..12].copy_from_slice(&2u32.to_le_bytes());
        let body_len = v2.len() - 8;
        let sum = fnv1a(&v2[..body_len]);
        let tail = v2.len() - 8;
        v2[tail..].copy_from_slice(&sum.to_le_bytes());
        let err = FitCheckpoint::decode(&v2).unwrap_err();
        assert!(err.to_string().contains("version 2"), "{err}");

        // Empty file.
        let err = FitCheckpoint::decode(&[]).unwrap_err();
        assert!(matches!(err, PtuckerError::Checkpoint(_)), "{err}");
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        use ptucker_tensor::SparseTensor;
        let x = SparseTensor::new(vec![2, 2], vec![(vec![0, 0], 1.0), (vec![1, 1], 2.0)]).unwrap();
        let opts = FitOptions::new(vec![2, 2]).seed(7);
        let base = FitCheckpoint::fingerprint(&x, &opts);
        assert_eq!(base, FitCheckpoint::fingerprint(&x, &opts.clone()));
        assert_ne!(base, FitCheckpoint::fingerprint(&x, &opts.clone().seed(8)));
        assert_ne!(
            base,
            FitCheckpoint::fingerprint(&x, &opts.clone().lambda(0.5))
        );
        let y = SparseTensor::new(vec![2, 2], vec![(vec![0, 0], 1.0), (vec![1, 1], 2.5)]).unwrap();
        assert_ne!(base, FitCheckpoint::fingerprint(&y, &opts));
    }

    #[test]
    fn scratch_fingerprint_matches_resident() {
        use ptucker_memtrack::MemoryBudget;
        use ptucker_tensor::SparseTensor;
        let x = SparseTensor::new(
            vec![4, 3, 2],
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![1, 2, 1], -0.5),
                (vec![3, 1, 0], 2.25),
            ],
        )
        .unwrap();
        let opts = FitOptions::new(vec![2, 2, 2]).seed(9);
        let budget = MemoryBudget::new(usize::MAX);
        let src = CooScratch::from_tensor(&x, &budget).unwrap();
        assert_eq!(
            FitCheckpoint::fingerprint(&x, &opts),
            FitCheckpoint::fingerprint_scratch(&src, &opts).unwrap()
        );
        assert_ne!(
            FitCheckpoint::fingerprint(&x, &opts),
            FitCheckpoint::fingerprint_scratch(&src, &opts.clone().seed(10)).unwrap()
        );
    }
}
