use ptucker_linalg::Matrix;
use ptucker_sched::{parallel_reduce, Schedule};
use ptucker_tensor::{CoreTensor, SparseTensor};

/// A fitted Tucker model: factor matrices `A⁽ⁿ⁾ ∈ R^{Iₙ×Jₙ}` and core
/// tensor `G ∈ R^{J₁×…×J_N}`.
#[derive(Debug, Clone)]
pub struct TuckerDecomposition {
    /// One factor matrix per mode.
    pub factors: Vec<Matrix>,
    /// The core tensor (possibly truncated under P-Tucker-Approx).
    pub core: CoreTensor,
}

impl TuckerDecomposition {
    /// Tensor dimensionalities implied by the factors.
    pub fn dims(&self) -> Vec<usize> {
        self.factors.iter().map(|a| a.rows()).collect()
    }

    /// Tucker ranks `J₁ … J_N`.
    pub fn ranks(&self) -> Vec<usize> {
        self.core.dims().to_vec()
    }

    /// Predicts the value at one cell via the element-wise Tucker model
    /// (Eq. 4): `x̂ = Σ_β G_β Πₙ a⁽ⁿ⁾(iₙ, jₙ)`. This is how P-Tucker
    /// estimates *missing* entries — never as zero.
    ///
    /// # Panics
    /// Panics (in debug builds) if `index` has the wrong arity; out-of-range
    /// indices panic on factor access.
    pub fn predict(&self, index: &[usize]) -> f64 {
        debug_assert_eq!(index.len(), self.factors.len());
        let order = self.factors.len();
        let mut acc = 0.0;
        for e in 0..self.core.nnz() {
            let beta = self.core.index(e);
            let mut term = self.core.value(e);
            for n in 0..order {
                term *= self.factors[n][(index[n], beta[n])];
                if term == 0.0 {
                    break;
                }
            }
            acc += term;
        }
        acc
    }

    /// Reconstruction error over the observed entries (Eq. 5):
    /// `sqrt(Σ_{α∈Ω} (X_α − x̂_α)²)`, computed in parallel.
    pub fn reconstruction_error(
        &self,
        x: &SparseTensor,
        threads: usize,
        schedule: Schedule,
    ) -> f64 {
        self.sum_squared_error(x, threads, schedule).sqrt()
    }

    /// Test RMSE over held-out entries: `sqrt(Σ (X−x̂)² / |Ω_test|)`
    /// (Section IV-E's metric). Returns 0 for an empty test set.
    pub fn test_rmse(&self, test: &SparseTensor, threads: usize, schedule: Schedule) -> f64 {
        if test.nnz() == 0 {
            return 0.0;
        }
        (self.sum_squared_error(test, threads, schedule) / test.nnz() as f64).sqrt()
    }

    /// Sum of squared residuals over a tensor's observed entries.
    pub fn sum_squared_error(&self, x: &SparseTensor, threads: usize, schedule: Schedule) -> f64 {
        parallel_reduce(
            x.nnz(),
            threads,
            schedule,
            || 0.0f64,
            |acc, e| {
                let d = x.value(e) - self.predict(x.index(e));
                acc + d * d
            },
            |a, b| a + b,
        )
    }

    /// Maximum deviation of `A⁽ⁿ⁾ᵀA⁽ⁿ⁾` from the identity across all modes —
    /// 0 for perfectly orthonormal factors (what the post-fit QR step
    /// guarantees).
    pub fn orthogonality_defect(&self) -> f64 {
        let mut worst = 0.0f64;
        for a in &self.factors {
            let g = a.gram();
            for i in 0..g.rows() {
                for j in 0..g.cols() {
                    let want = if i == j { 1.0 } else { 0.0 };
                    worst = worst.max((g[(i, j)] - want).abs());
                }
            }
        }
        worst
    }

    /// Densely reconstructs the full tensor (all cells, not only observed
    /// ones). Intended for tests and small tensors; cost is `Π Iₙ · |G|`.
    ///
    /// # Errors
    /// Propagates dense-tensor construction errors.
    pub fn reconstruct_dense(&self) -> ptucker_tensor::Result<ptucker_tensor::DenseTensor> {
        let dims = self.dims();
        ptucker_tensor::DenseTensor::from_fn(dims, |idx| self.predict(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TuckerDecomposition {
        // 2x2 identity-ish factors, core = diag-ish.
        let a0 = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let a1 = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        let core = CoreTensor::from_entries(vec![2, 2], vec![(vec![0, 0], 1.0), (vec![1, 1], 0.5)])
            .unwrap();
        TuckerDecomposition {
            factors: vec![a0, a1],
            core,
        }
    }

    #[test]
    fn predict_matches_manual_sum() {
        let d = tiny();
        // x̂(i0,i1) = 1*a0[i0,0]*a1[i1,0] + 0.5*a0[i0,1]*a1[i1,1]
        assert_eq!(d.predict(&[0, 0]), 2.0); // 1*1*2
        assert_eq!(d.predict(&[1, 1]), 1.5); // 0.5*1*3
        assert_eq!(d.predict(&[2, 0]), 2.0);
        assert_eq!(d.predict(&[2, 1]), 1.5);
        assert_eq!(d.predict(&[0, 1]), 0.0);
    }

    #[test]
    fn reconstruction_error_exact_cases() {
        let d = tiny();
        // Observed entries equal to predictions → zero error.
        let x = SparseTensor::new(vec![3, 2], vec![(vec![0, 0], 2.0), (vec![1, 1], 1.5)]).unwrap();
        assert_eq!(d.reconstruction_error(&x, 2, Schedule::Static), 0.0);
        // One entry off by 3 → error 3.
        let y = SparseTensor::new(vec![3, 2], vec![(vec![0, 0], 5.0)]).unwrap();
        assert!((d.reconstruction_error(&y, 2, Schedule::Static) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_normalizes_by_count() {
        let d = tiny();
        let y = SparseTensor::new(vec![3, 2], vec![(vec![0, 0], 5.0), (vec![1, 1], 1.5)]).unwrap();
        // Residuals: 3 and 0 → RMSE = sqrt(9/2).
        let want = (9.0f64 / 2.0).sqrt();
        assert!((d.test_rmse(&y, 1, Schedule::Static) - want).abs() < 1e-12);
    }

    #[test]
    fn empty_test_set_rmse_is_zero() {
        let d = tiny();
        let empty = SparseTensor::new(vec![3, 2], vec![]).unwrap();
        assert_eq!(d.test_rmse(&empty, 4, Schedule::Static), 0.0);
    }

    #[test]
    fn orthogonality_defect_detects_nonorthogonal() {
        let d = tiny();
        assert!(d.orthogonality_defect() > 0.5);
        let ortho = TuckerDecomposition {
            factors: vec![Matrix::identity(2), Matrix::identity(2)],
            core: d.core.clone(),
        };
        assert!(ortho.orthogonality_defect() < 1e-12);
    }

    #[test]
    fn dense_reconstruction_agrees_with_predict() {
        let d = tiny();
        let full = d.reconstruct_dense().unwrap();
        for (idx, v) in full.iter() {
            assert!((v - d.predict(&idx)).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_error_matches_serial() {
        let d = tiny();
        let x = SparseTensor::new(
            vec![3, 2],
            vec![
                (vec![0, 0], 1.0),
                (vec![0, 1], 2.0),
                (vec![1, 0], 3.0),
                (vec![2, 1], 4.0),
            ],
        )
        .unwrap();
        let serial = d.reconstruction_error(&x, 1, Schedule::Static);
        let par = d.reconstruction_error(&x, 4, Schedule::dynamic());
        assert!((serial - par).abs() < 1e-12);
    }
}
