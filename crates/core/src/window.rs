//! Out-of-core fitting: windowed sweeps over a spilled execution plan.
//!
//! The in-memory fit driver ([`crate::als`]) requires the whole
//! `O(N·|Ω|)`-word [`ModeStreams`] plan — and, for the Cache variant, the
//! `|Ω|×|G|` `Pres` table — to fit the [`MemoryBudget`]. That is exactly
//! where the paper's competitors die (Figs. 6, 7, 11), and this module is
//! how P-Tucker keeps going: when [`spill_required`] finds the in-memory
//! working set over budget (and the budget's policy is
//! [`BudgetPolicy::Spill`]), the fit runs here instead:
//!
//! * The plan is built **spilled** ([`ModeStreams::build_spilled`]): bulk
//!   arrays stream to an unlinked scratch file; RAM keeps per-mode slice
//!   offsets and inverse entry maps.
//! * Each mode's row sweep walks [`SliceWindows`]: slice-aligned,
//!   budget-sized windows loaded one at a time into a pinned buffer and
//!   presented as an ordinary `ModeStream` view, so the per-row kernel
//!   code — [`crate::engine::run_row`], the run-blocked δ micro-kernels,
//!   the in-arena solves — is the **same code** the in-memory path runs.
//!   Rows are only updated from their own slice, windows are slice-
//!   aligned, and each row's arithmetic is self-contained, so a windowed
//!   fit reproduces the in-memory fit **bitwise** per row update.
//! * The Cache variant's `Pres` table spills alongside
//!   ([`crate::cache::SpilledPresTable`]): its rows follow the sweep
//!   order, so each window touches one contiguous table range (one tile
//!   read per window), and the per-mode rescale + permutation into the
//!   next mode's order runs tile-at-a-time into a second file region.
//!
//! Memory accounting: the spilled path's irreducible floor — plan
//! metadata, scratch arenas, the pinned window buffer (+ Pres tile) — is
//! booked with [`MemoryBudget::reserve_unchecked`], so
//! `peak_intermediate_bytes` stays honest even when it exceeds the
//! configured budget (a budget below the floor cannot be *met*, only
//! approached at slice granularity); file bytes are tracked separately
//! and reported as `peak_spilled_bytes`.

use crate::als::{finish_fit, init_factors, sum_squared_error_raw};
use crate::cache::{cached_delta_for_entry, SpilledPresTable};
use crate::delta::core_runs;
use crate::engine::{run_row, DirectKernel, ModeContext, RowUpdateKernel, Scratch};
use crate::{approx, FitOptions, FitResult, IterStats, PtuckerError, Result, Variant};
use ptucker_linalg::Matrix;
use ptucker_memtrack::BudgetPolicy;
use ptucker_sched::{parallel_rows_mut_scheduled, Schedule};
use ptucker_tensor::{CoreTensor, ModeStreams, SliceWindows, SparseTensor, Window};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Bytes the **in-memory** fit path will reserve up front for `x` under
/// `opts`: the resident plan, the per-thread scratch arenas, and the
/// variant's auxiliary state (the Cache table; Approx's `R(β)` buffers).
pub(crate) fn in_memory_bytes(x: &SparseTensor, opts: &FitOptions) -> usize {
    let g: usize = opts.ranks.iter().product();
    let j_max = opts.ranks.iter().copied().max().unwrap_or(1);
    let scratch = opts.threads * Scratch::doubles(j_max) * 8;
    let aux = match opts.variant {
        Variant::Cache => x.nnz().saturating_mul(g) * 8,
        Variant::Approx { truncation_rate } if truncation_rate > 0.0 => opts.threads * 2 * g * 8,
        _ => 0,
    };
    ModeStreams::bytes_for(x)
        .saturating_add(scratch)
        .saturating_add(aux)
}

/// Whether `PTucker::fit` must take the out-of-core path: the budget's
/// policy allows spilling and the in-memory working set would not fit.
pub(crate) fn spill_required(x: &SparseTensor, opts: &FitOptions) -> bool {
    opts.budget.policy() == BudgetPolicy::Spill && !opts.budget.would_fit(in_memory_bytes(x, opts))
}

/// Resident bytes one window position costs: its stream entry (value +
/// packed other-mode indices + entry id) plus, for the Cache variant, its
/// `|G|`-double `Pres` tile row.
pub(crate) fn bytes_per_position(order: usize, tile_doubles: usize) -> usize {
    8 + 4 * (order - 1) + 4 + 8 * tile_doubles
}

/// Window capacity in stream positions for the remaining budget: the
/// remaining bytes divided over the per-position cost, at least 1 (windows
/// are slice-aligned, so a huge slice is taken whole regardless — the
/// slice-granularity floor).
pub(crate) fn window_capacity(available: usize, order: usize, tile_doubles: usize) -> usize {
    (available / bytes_per_position(order, tile_doubles)).max(1)
}

/// A P-Tucker variant's behavior under windowed execution. The mirror of
/// [`RowUpdateKernel`] for the out-of-core driver, with one extra hook:
/// [`WindowKernel::load_window`] runs between windows (sequentially) so
/// kernels with spilled per-entry state can page in the matching tile.
pub(crate) trait WindowKernel: Sync {
    /// Doubles of per-position state this kernel keeps resident during a
    /// sweep — Cache: the `|G|` tile row, its `|G|` staging-buffer twin
    /// for the coalesced reorder scatter, and one double's worth of
    /// `(dest, src)` permutation pair. Sizes the window capacity.
    fn tile_doubles(&self, _core: &CoreTensor) -> usize {
        0
    }

    /// One-time setup after the spilled plan exists (Cache: stream the
    /// `Pres` table to its scratch file, through the fit's shared
    /// sweeper).
    #[allow(clippy::too_many_arguments)]
    fn prepare_fit(
        &mut self,
        _x: &SparseTensor,
        _plan: &ModeStreams,
        _factors: &[Matrix],
        _core: &CoreTensor,
        _opts: &FitOptions,
        _windows: &mut SliceWindows<'_>,
    ) -> Result<()> {
        Ok(())
    }

    /// Called before each mode's row sweep with the pre-update factors.
    fn prepare_mode(&mut self, _factors: &[Matrix], _mode: usize) -> Result<()> {
        Ok(())
    }

    /// Called for each window before its (parallel) row updates.
    fn load_window(&mut self, _w: &Window<'_>) -> Result<()> {
        Ok(())
    }

    /// Updates one factor row; `local_i` and the context's stream are
    /// window-local. Same contract as [`RowUpdateKernel::update_row`].
    fn update_row(
        &self,
        ctx: &ModeContext<'_>,
        scratch: &mut Scratch,
        local_i: usize,
        row: &mut [f64],
    ) -> bool;

    /// Called after `factors[mode]` has been replaced (Cache: rescale the
    /// spilled table tile-at-a-time and carry it into the next mode's
    /// stream order). `windows` is the fit's shared sweeper, rewound by
    /// the kernel as needed.
    #[allow(clippy::too_many_arguments)]
    fn post_mode(
        &mut self,
        _x: &SparseTensor,
        _plan: &ModeStreams,
        _factors: &[Matrix],
        _mode: usize,
        _core: &CoreTensor,
        _opts: &FitOptions,
        _windows: &mut SliceWindows<'_>,
    ) -> Result<()> {
        Ok(())
    }

    /// Called once per outer iteration after the error measurement.
    fn post_iter(
        &mut self,
        _x: &SparseTensor,
        _factors: &[Matrix],
        _core: &mut CoreTensor,
        _opts: &FitOptions,
    ) {
    }
}

/// Windowed Direct: δ recomputed from the factors — stateless, so the
/// in-memory [`DirectKernel`] row routine runs verbatim on window views.
#[derive(Debug, Default)]
pub(crate) struct WinDirect;

impl WindowKernel for WinDirect {
    fn update_row(
        &self,
        ctx: &ModeContext<'_>,
        scratch: &mut Scratch,
        local_i: usize,
        row: &mut [f64],
    ) -> bool {
        DirectKernel.update_row(ctx, scratch, local_i, row)
    }
}

/// Windowed Approx: Direct row updates plus the per-iteration core
/// truncation (which reads COO + factors only — nothing windowed).
#[derive(Debug)]
pub(crate) struct WinApprox {
    truncation_rate: f64,
    /// Floor booking for the per-thread `R(β)`/contribution buffers (the
    /// in-memory kernel reserves the same bytes, but checked).
    _scratch: Option<ptucker_memtrack::Reservation>,
}

impl WinApprox {
    pub fn new(truncation_rate: f64) -> Self {
        WinApprox {
            truncation_rate,
            _scratch: None,
        }
    }
}

impl WindowKernel for WinApprox {
    fn prepare_fit(
        &mut self,
        _x: &SparseTensor,
        _plan: &ModeStreams,
        _factors: &[Matrix],
        core: &CoreTensor,
        opts: &FitOptions,
        _windows: &mut SliceWindows<'_>,
    ) -> Result<()> {
        if self.truncation_rate > 0.0 {
            self._scratch = Some(
                opts.budget
                    .reserve_unchecked(opts.threads * 2 * core.nnz() * 8),
            );
        }
        Ok(())
    }

    fn update_row(
        &self,
        ctx: &ModeContext<'_>,
        scratch: &mut Scratch,
        local_i: usize,
        row: &mut [f64],
    ) -> bool {
        DirectKernel.update_row(ctx, scratch, local_i, row)
    }

    fn post_iter(
        &mut self,
        x: &SparseTensor,
        factors: &[Matrix],
        core: &mut CoreTensor,
        opts: &FitOptions,
    ) {
        if self.truncation_rate > 0.0 {
            let r = approx::partial_errors(x, factors, core, opts.threads, opts.schedule);
            approx::truncate_noisy(core, &r, self.truncation_rate);
        }
    }
}

/// Windowed Cache: the `Pres` table spilled to its own scratch file, one
/// tile resident at a time, rescaled/permuted window-at-a-time between
/// modes. Per-row arithmetic is shared with the in-memory table
/// ([`cached_delta_for_entry`]), so the fits agree bitwise.
#[derive(Debug, Default)]
pub(crate) struct WinCached {
    table: Option<SpilledPresTable>,
    old_factor: Option<Matrix>,
}

impl WinCached {
    pub fn new() -> Self {
        WinCached::default()
    }
}

impl WindowKernel for WinCached {
    fn tile_doubles(&self, core: &CoreTensor) -> usize {
        2 * core.nnz() + 1
    }

    fn prepare_fit(
        &mut self,
        x: &SparseTensor,
        _plan: &ModeStreams,
        factors: &[Matrix],
        core: &CoreTensor,
        opts: &FitOptions,
        windows: &mut SliceWindows<'_>,
    ) -> Result<()> {
        self.table = Some(SpilledPresTable::compute(
            x,
            factors,
            core,
            opts.threads,
            &opts.budget,
            windows,
        )?);
        Ok(())
    }

    fn prepare_mode(&mut self, factors: &[Matrix], mode: usize) -> Result<()> {
        self.old_factor = Some(factors[mode].clone());
        debug_assert_eq!(
            self.table.as_ref().map(|t| t.order_mode()),
            Some(mode),
            "driver sweeps cyclically, so the spilled table is pre-aligned"
        );
        Ok(())
    }

    fn load_window(&mut self, w: &Window<'_>) -> Result<()> {
        let table = self.table.as_mut().expect("prepare_fit runs first");
        table.load_tile(w.base, w.stream.values().len())
    }

    fn update_row(
        &self,
        ctx: &ModeContext<'_>,
        scratch: &mut Scratch,
        local_i: usize,
        row: &mut [f64],
    ) -> bool {
        let table = self.table.as_ref().expect("prepare_fit runs first");
        run_row(ctx, scratch, local_i, row, |delta, pos, others, old_row| {
            cached_delta_for_entry(
                delta,
                table.tile_row(pos),
                others,
                ctx.mode,
                old_row,
                ctx.core_idx,
                ctx.core_vals,
                &ctx.runs,
                ctx.factors,
            )
        })
    }

    fn post_mode(
        &mut self,
        x: &SparseTensor,
        plan: &ModeStreams,
        factors: &[Matrix],
        mode: usize,
        core: &CoreTensor,
        opts: &FitOptions,
        windows: &mut SliceWindows<'_>,
    ) -> Result<()> {
        let old = self
            .old_factor
            .take()
            .expect("prepare_mode runs before post_mode");
        let table = self.table.as_mut().expect("prepare_fit runs first");
        let next = (mode + 1) % plan.order();
        table.rescale_and_reorder(
            x,
            plan,
            factors,
            &old,
            mode,
            next,
            core,
            opts.threads,
            windows,
        )
    }
}

/// The out-of-core fit driver: Algorithm 2 on a spilled plan, every mode
/// sweep windowed. Mirrors [`crate::als::run_fit`] step for step — same
/// RNG sequence, same per-row arithmetic, same convergence test — so its
/// trajectory matches the in-memory fit bitwise.
pub(crate) fn run_fit_windowed<K: WindowKernel>(
    x: &SparseTensor,
    opts: &FitOptions,
    mut kernel: K,
) -> Result<FitResult> {
    let t_start = Instant::now();
    let order = x.order();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Step 1: identical initialization to the in-memory driver.
    let mut factors = init_factors(x.dims(), &opts.ranks, &mut rng);
    let mut core = CoreTensor::random_dense(opts.ranks.clone(), &mut rng)?;

    // The spilled plan: bulk arrays stream to the scratch file; the
    // resident floor (offsets + inverse maps) books itself unchecked.
    opts.budget.reset_peak();
    let plan = ModeStreams::build_spilled(x, &opts.budget)?;

    // Per-thread scratch arenas: part of the irreducible floor.
    let j_max = opts.ranks.iter().copied().max().unwrap_or(1);
    let _row_scratch = opts
        .budget
        .reserve_unchecked(opts.threads * Scratch::doubles(j_max) * 8);
    let mut scratch_pool: Vec<Scratch> = (0..opts.threads.max(1))
        .map(|_| Scratch::new(j_max))
        .collect();

    // Window capacity from what is left of the budget; the pinned window
    // buffer (+ Pres tile for Cache) is the rest of the floor. A slice
    // larger than the capacity is still taken whole — windows are
    // slice-aligned — so the buffer is sized for the larger of the two.
    let tile_doubles = kernel.tile_doubles(&core);
    let cap = window_capacity(opts.budget.available(), order, tile_doubles);
    let max_slice = (0..order)
        .map(|n| plan.spilled_mode(n).max_slice_len())
        .max()
        .unwrap_or(1);
    let _window_buffers = opts
        .budget
        .reserve_unchecked(cap.max(max_slice) * bytes_per_position(order, tile_doubles));
    // The fit's one sweeper: its pinned buffer is allocated here, sized
    // for any mode, and rewound for every sweep of every iteration.
    let mut sweeper = plan.windows(0, cap);

    // Kernel setup: the Cache variant streams its |Ω|×|G| table to disk
    // here, tile by tile.
    kernel.prepare_fit(x, &plan, &factors, &core, opts, &mut sweeper)?;

    let mut iterations: Vec<IterStats> = Vec::with_capacity(opts.max_iters);
    let mut prev_err = f64::INFINITY;
    let mut converged = false;

    for iter in 0..opts.max_iters {
        let t_iter = Instant::now();

        for n in 0..order {
            kernel.prepare_mode(&factors, n)?;
            update_factor_windowed(
                x,
                &mut factors,
                n,
                &core,
                opts,
                &mut kernel,
                &mut scratch_pool,
                &mut sweeper,
            )?;
            kernel.post_mode(x, &plan, &factors, n, &core, opts, &mut sweeper)?;
        }

        // Error + convergence: COO-based, byte-identical to the in-memory
        // driver.
        let err = sum_squared_error_raw(x, &factors, &core, opts.threads, Schedule::Static).sqrt();
        kernel.post_iter(x, &factors, &mut core, opts);

        iterations.push(IterStats {
            iter,
            reconstruction_error: err,
            seconds: t_iter.elapsed().as_secs_f64(),
            core_nnz: core.nnz(),
        });

        if err.is_finite()
            && prev_err.is_finite()
            && (prev_err - err).abs() <= opts.tol * prev_err.max(f64::EPSILON)
        {
            converged = true;
            break;
        }
        prev_err = err;
    }
    // Release the kernel's spilled table and the arenas before
    // post-processing, like the in-memory driver.
    drop(kernel);
    drop(scratch_pool);
    drop(sweeper);

    // Post-processing (QR + refit + final error + stats) is the *same
    // function* the in-memory driver runs — it cannot drift.
    finish_fit(x, factors, core, opts, iterations, converged, t_start)
}

/// One mode's windowed row sweep: windows load sequentially (the fit's
/// shared pinned buffer, plus the kernel's tile), rows within a window
/// update in parallel with the same scheduling policies as the in-memory
/// sweep.
#[allow(clippy::too_many_arguments)]
fn update_factor_windowed<K: WindowKernel>(
    x: &SparseTensor,
    factors: &mut [Matrix],
    mode: usize,
    core: &CoreTensor,
    opts: &FitOptions,
    kernel: &mut K,
    scratch_pool: &mut [Scratch],
    windows: &mut SliceWindows<'_>,
) -> Result<()> {
    let i_n = x.dims()[mode];
    let j_n = opts.ranks[mode];
    let a_n = std::mem::replace(&mut factors[mode], Matrix::zeros(0, 0));
    let mut data = a_n.into_vec();
    let solve_failed = AtomicBool::new(false);
    {
        // Run structure once per mode sweep; every window's context
        // shares it (a clone is one small memcpy, not a core rescan).
        let runs = core_runs(core.flat_indices(), core.order());
        windows.rewind(mode);
        while let Some(w) = windows.next_window()? {
            kernel.load_window(&w)?;
            let k: &K = kernel;
            let ctx = ModeContext::with_runs(w.stream, factors, core, mode, opts, runs.clone());
            let lo = w.slices.start;
            let rows = &mut data[lo * j_n..w.slices.end * j_n];
            parallel_rows_mut_scheduled(
                rows,
                j_n,
                opts.threads,
                opts.schedule,
                |r| ctx.stream.slice_len(r),
                scratch_pool,
                |scratch, r, row| {
                    if !k.update_row(&ctx, scratch, r, row) {
                        solve_failed.store(true, Ordering::Relaxed);
                    }
                },
            );
        }
    }
    factors[mode] = Matrix::from_vec(i_n, j_n, data)?;
    if solve_failed.load(Ordering::Relaxed) {
        return Err(PtuckerError::Linalg(
            ptucker_linalg::LinalgError::Singular { pivot: 0 },
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryBudget, PTucker};
    use ptucker_datagen::planted_lowrank;
    use rand::SeedableRng;

    fn planted() -> SparseTensor {
        let mut rng = StdRng::seed_from_u64(71);
        planted_lowrank(&[14, 12, 10], &[2, 2, 2], 700, 0.01, &mut rng).tensor
    }

    fn base_opts() -> FitOptions {
        FitOptions::new(vec![2, 2, 2])
            .max_iters(5)
            .tol(0.0)
            .threads(2)
            .seed(33)
    }

    /// A 1-byte budget: the resident floor books itself unchecked, the
    /// remaining budget is 0, so the window capacity collapses to the
    /// minimum of one position — every nonempty slice becomes (at least)
    /// its own window, guaranteeing many windows per mode.
    fn spill_budget() -> MemoryBudget {
        MemoryBudget::new(1)
    }

    /// Tentpole acceptance: for all three kernels, a fit whose plan (+
    /// Pres table for Cached) exceeds the budget completes via spilled
    /// windowed sweeps and reproduces the in-memory trajectory within
    /// 1e-9 — under a budget forcing ≥ 3 windows per mode.
    #[test]
    fn windowed_fit_reproduces_in_memory_fit_for_all_kernels() {
        let x = planted();
        // The 1-byte budget yields capacity 1; check it forces ≥ 3
        // windows on every mode before asserting trajectories.
        let probe = ModeStreams::build_spilled(&x, &MemoryBudget::unlimited()).unwrap();
        for n in 0..x.order() {
            let windows = probe.spilled_mode(n).window_count(1);
            assert!(windows >= 3, "mode {n}: only {windows} windows");
        }
        for variant in [
            Variant::Default,
            Variant::Cache,
            Variant::Approx {
                truncation_rate: 0.2,
            },
        ] {
            let in_mem = PTucker::new(base_opts().variant(variant))
                .unwrap()
                .fit(&x)
                .unwrap();
            assert_eq!(in_mem.stats.peak_spilled_bytes, 0, "{variant:?} spilled");
            let windowed = PTucker::new(base_opts().variant(variant).budget(spill_budget()))
                .unwrap()
                .fit(&x)
                .unwrap();
            assert!(
                windowed.stats.peak_spilled_bytes >= ModeStreams::spilled_bytes_for(&x),
                "{variant:?} did not spill its plan"
            );
            assert_eq!(
                in_mem.stats.iterations.len(),
                windowed.stats.iterations.len(),
                "{variant:?}"
            );
            for (a, b) in in_mem
                .stats
                .iterations
                .iter()
                .zip(&windowed.stats.iterations)
            {
                let rel = (a.reconstruction_error - b.reconstruction_error).abs()
                    / a.reconstruction_error.max(1e-12);
                assert!(rel < 1e-9, "{variant:?} iter {}: rel {rel}", a.iter);
                assert_eq!(a.core_nnz, b.core_nnz, "{variant:?} iter {}", a.iter);
            }
            let rel = (in_mem.stats.final_error - windowed.stats.final_error).abs()
                / in_mem.stats.final_error.max(1e-12);
            assert!(rel < 1e-9, "{variant:?} final: rel {rel}");
            // And the factors agree bitwise: same rows, same arithmetic.
            for (fa, fb) in in_mem
                .decomposition
                .factors
                .iter()
                .zip(&windowed.decomposition.factors)
            {
                for (a, b) in fa.as_slice().iter().zip(fb.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{variant:?} factor drift");
                }
            }
        }
    }

    /// Multi-slice windows (a moderate budget between the floor and the
    /// full plan) must agree with the in-memory fit too — this exercises
    /// window extents greater than one slice.
    #[test]
    fn windowed_fit_with_multi_slice_windows_matches() {
        let x = planted();
        let opts = base_opts().max_iters(3);
        let in_mem = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
        // Roughly half the in-memory requirement: forces spilling while
        // leaving room for windows spanning several slices.
        let budget = MemoryBudget::new(in_memory_bytes(&x, &opts) / 2);
        let windowed = PTucker::new(opts.budget(budget)).unwrap().fit(&x).unwrap();
        for (a, b) in in_mem
            .stats
            .iterations
            .iter()
            .zip(&windowed.stats.iterations)
        {
            assert_eq!(
                a.reconstruction_error.to_bits(),
                b.reconstruction_error.to_bits(),
                "iter {}",
                a.iter
            );
        }
    }

    /// Strict policy preserves the paper's hard O.O.M. boundary.
    #[test]
    fn strict_budget_still_fails_hard() {
        let x = planted();
        let opts = base_opts().budget(ptucker_memtrack::MemoryBudget::with_policy(
            1024,
            BudgetPolicy::Strict,
        ));
        let err = PTucker::new(opts).unwrap().fit(&x).unwrap_err();
        assert!(matches!(err, PtuckerError::OutOfMemory(_)));
    }

    /// The spill decision is exact: a budget of precisely the in-memory
    /// requirement stays in memory; one byte less spills.
    #[test]
    fn spill_threshold_is_the_in_memory_working_set() {
        let x = planted();
        let opts = base_opts().max_iters(1);
        let need = in_memory_bytes(&x, &opts);
        let stay = PTucker::new(opts.clone().budget(MemoryBudget::new(need)))
            .unwrap()
            .fit(&x)
            .unwrap();
        assert_eq!(stay.stats.peak_spilled_bytes, 0);
        let spill = PTucker::new(opts.budget(MemoryBudget::new(need - 1)))
            .unwrap()
            .fit(&x)
            .unwrap();
        assert!(spill.stats.peak_spilled_bytes > 0);
    }

    /// The spilled Cache fit reports its double-buffered table on disk.
    #[test]
    fn spilled_cache_reports_table_bytes() {
        let x = planted();
        let g = 8; // 2·2·2
        let fit = PTucker::new(
            base_opts()
                .max_iters(2)
                .variant(Variant::Cache)
                .budget(spill_budget()),
        )
        .unwrap()
        .fit(&x)
        .unwrap();
        let table_bytes = 2 * x.nnz() * g * 8;
        assert!(
            fit.stats.peak_spilled_bytes >= ModeStreams::spilled_bytes_for(&x) + table_bytes,
            "peak_spilled {} missing the table ({table_bytes})",
            fit.stats.peak_spilled_bytes
        );
    }
}
