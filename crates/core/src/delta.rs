//! The δ kernel (Eq. 12 of the paper).
//!
//! For an observed entry `α = (i₁, …, i_N)` and a mode `n`, the vector
//! `δ⁽ⁿ⁾_α ∈ R^{Jₙ}` has entries
//! `δ(j) = Σ_{β ∈ G, βₙ = j} G_β Π_{k≠n} a⁽ᵏ⁾(iₖ, βₖ)`.
//! The row update accumulates `B += δδᵀ` and `c += X_α δ` over all entries
//! in the row's slice `Ω⁽ⁿ⁾ᵢₙ`, which is the whole of Theorem 1.
//!
//! Two implementations of the same definition live here:
//!
//! * [`accumulate_delta`] — the reference *gather* kernel: full `N−1`
//!   product per `(entry, core-entry)` pair from the entry's COO
//!   multi-index. Test-gated: it survives as the equivalence baseline the
//!   streamed kernels must reproduce (the bench crate hand-rolls the same
//!   walk through public APIs for its gather-vs-stream comparison).
//! * [`accumulate_delta_lex`] — the *prefix-reused* kernel the mode-major
//!   plan runs on. Core entries are stored in lexicographic multi-index
//!   order (dense construction, truncation and re-sparsification all
//!   preserve it), so adjacent core entries share a multi-index prefix —
//!   for a dense core the first `N−1` coordinates change only every `J_N`
//!   entries. The kernel maintains a stack of prefix products
//!   `prefix[d] = Π_{k<d, k≠n} a⁽ᵏ⁾(iₖ, βₖ)` and recomputes only the
//!   suffix that changed, cutting the amortized multiplies per pair from
//!   `N−1` toward ~1 *without* the Cache variant's `|Ω|×|G|` table.

use ptucker_linalg::Matrix;

/// Deepest core order served by the stack-allocated prefix buffers of
/// [`accumulate_delta_lex`]; higher orders take a (correct, allocation-free)
/// per-entry recompute path. The paper's experiments top out at `N = 10`.
const MAX_PREFIX_ORDER: usize = 16;

/// Accumulates δ for one observed entry into `delta` (cleared first) by
/// the original gather rule: one full `Π_{k≠n}` product per core entry
/// from the entry's COO multi-index.
#[cfg(test)]
#[inline]
pub(crate) fn accumulate_delta(
    delta: &mut [f64],
    entry_idx: &[usize],
    mode: usize,
    core_idx: &[usize],
    core_vals: &[f64],
    factors: &[Matrix],
) {
    delta.fill(0.0);
    let order = entry_idx.len();
    for (b, &g) in core_vals.iter().enumerate() {
        let beta = &core_idx[b * order..(b + 1) * order];
        let mut w = g;
        for (k, factor) in factors.iter().enumerate() {
            if k == mode {
                continue;
            }
            w *= factor[(entry_idx[k], beta[k])];
            if w == 0.0 {
                break;
            }
        }
        if w != 0.0 {
            delta[beta[mode]] += w;
        }
    }
}

/// Accumulates δ for one streamed entry into `delta` (cleared first),
/// reusing prefix products across lexicographically adjacent core entries.
///
/// `others` holds the entry's packed other-mode indices (ascending mode
/// order, `mode` skipped) as produced by `ptucker_tensor::ModeStream`.
/// The kernel is correct for *any* core-entry order (the shared prefix is
/// measured against the immediately preceding entry, whatever it is);
/// lexicographic order — which every `CoreTensor` constructor and
/// truncation path preserves — is what makes the reuse effective, because
/// adjacent entries then share all but their trailing coordinates.
///
/// `factors[mode]` is never read (it is the row data being updated and may
/// be an empty placeholder during the sweep).
#[inline]
pub(crate) fn accumulate_delta_lex(
    delta: &mut [f64],
    others: &[u32],
    mode: usize,
    core_idx: &[usize],
    core_vals: &[f64],
    factors: &[Matrix],
) {
    delta.fill(0.0);
    let order = factors.len();
    debug_assert_eq!(others.len(), order - 1);
    if order > MAX_PREFIX_ORDER {
        // Degenerate-depth fallback: plain per-entry products (still
        // allocation-free, just without prefix reuse).
        for (b, &g) in core_vals.iter().enumerate() {
            let beta = &core_idx[b * order..(b + 1) * order];
            let mut w = g;
            let mut slot = 0;
            for (k, factor) in factors.iter().enumerate() {
                if k == mode {
                    continue;
                }
                w *= factor[(others[slot] as usize, beta[k])];
                slot += 1;
                if w == 0.0 {
                    break;
                }
            }
            if w != 0.0 {
                delta[beta[mode]] += w;
            }
        }
        return;
    }
    // Pin the entry's factor rows once: a⁽ᵏ⁾(iₖ, ·) for every k ≠ n. The
    // inner loop then reads `rows[d][βd]` — one in-row load instead of a
    // strided matrix index.
    let mut rows: [&[f64]; MAX_PREFIX_ORDER] = [&[]; MAX_PREFIX_ORDER];
    let mut slot = 0;
    for (k, factor) in factors.iter().enumerate() {
        if k == mode {
            continue;
        }
        rows[k] = factor.row(others[slot] as usize);
        slot += 1;
    }
    // prefix[d] = Π_{k<d, k≠mode} a⁽ᵏ⁾(iₖ, βₖ) for the *current* core
    // entry; entries below the shared-prefix depth stay valid from the
    // previous core entry, so only the changed suffix is recomputed.
    let mut prefix = [1.0f64; MAX_PREFIX_ORDER + 1];
    let mut prev: &[usize] = &[];
    for (b, &g) in core_vals.iter().enumerate() {
        let beta = &core_idx[b * order..(b + 1) * order];
        let mut p = 0;
        while p < prev.len() && prev[p] == beta[p] {
            p += 1;
        }
        for d in p..order {
            let a = if d == mode { 1.0 } else { rows[d][beta[d]] };
            prefix[d + 1] = prefix[d] * a;
        }
        delta[beta[mode]] += g * prefix[order];
        prev = beta;
    }
}

/// Rank-1 accumulation of the normal equations for one observed entry:
/// `B += δδᵀ` (upper triangle only) and `c += x·δ`.
#[inline]
pub(crate) fn accumulate_normal_eq(b_upper: &mut [f64], c: &mut [f64], delta: &[f64], x: f64) {
    let j_n = delta.len();
    for j1 in 0..j_n {
        let d1 = delta[j1];
        c[j1] += x * d1;
        if d1 == 0.0 {
            continue;
        }
        let row = j1 * j_n;
        for j2 in j1..j_n {
            b_upper[row + j2] += d1 * delta[j2];
        }
    }
}

/// Solves `(B + λI) x = c` for an upper-triangle-packed system, allocating
/// its own workspace. This is the **non-hot-path** helper (core refit, unit
/// tests); the per-row update solves through the reusable arena in
/// [`crate::engine::Scratch`] instead, with the identical numerical
/// definition (both sit on `ptucker_linalg::solve`).
///
/// Cholesky is used first (the system is SPD for λ > 0, Theorem 1); LU with
/// partial pivoting is the fallback for λ = 0 with a rank-deficient `B`.
/// Returns `None` only if both factorizations fail (exactly singular
/// system).
pub(crate) fn solve_row(b_upper: &[f64], c: &[f64], lambda: f64) -> Option<Vec<f64>> {
    let j_n = c.len();
    let mut scratch = crate::engine::Scratch::new(j_n);
    let (_, sc_c, sc_b) = scratch.accumulators(j_n);
    sc_c.copy_from_slice(c);
    sc_b.copy_from_slice(b_upper);
    let mut out = vec![0.0; j_n];
    scratch.solve(j_n, lambda, &mut out).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptucker_tensor::CoreTensor;

    #[test]
    fn delta_matches_bruteforce() {
        // 2 modes, ranks (2, 3), dense core.
        let core = CoreTensor::dense_from_fn(vec![2, 3], |i| (i[0] * 3 + i[1] + 1) as f64).unwrap();
        let a0 = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.25]]);
        let a1 = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.5, 1.5, -0.5]]);
        let factors = vec![a0.clone(), a1.clone()];
        let entry = [1usize, 0usize];

        // Mode 0: δ(j0) = Σ_{j1} G(j0,j1) * a1[i1, j1].
        let mut delta = vec![0.0; 2];
        accumulate_delta(
            &mut delta,
            &entry,
            0,
            core.flat_indices(),
            core.values(),
            &factors,
        );
        for j0 in 0..2 {
            let mut want = 0.0;
            for j1 in 0..3 {
                want += core.value(j0 * 3 + j1) * a1[(0, j1)];
            }
            assert!((delta[j0] - want).abs() < 1e-12, "j0={j0}");
        }

        // Mode 1: δ(j1) = Σ_{j0} G(j0,j1) * a0[i0, j0].
        let mut delta = vec![0.0; 3];
        accumulate_delta(
            &mut delta,
            &entry,
            1,
            core.flat_indices(),
            core.values(),
            &factors,
        );
        for j1 in 0..3 {
            let mut want = 0.0;
            for j0 in 0..2 {
                want += core.value(j0 * 3 + j1) * a0[(1, j0)];
            }
            assert!((delta[j1] - want).abs() < 1e-12, "j1={j1}");
        }
    }

    /// Packs the other-mode indices of `entry` the way a `ModeStream` does.
    fn pack_others(entry: &[usize], mode: usize) -> Vec<u32> {
        entry
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != mode)
            .map(|(_, &i)| i as u32)
            .collect()
    }

    #[test]
    fn lex_delta_matches_gather_delta() {
        // Random-ish 3-mode setup, dense core, checked mode by mode.
        let core = CoreTensor::dense_from_fn(vec![2, 3, 2], |i| {
            (i[0] * 6 + i[1] * 2 + i[2]) as f64 * 0.3 - 1.0
        })
        .unwrap();
        let factors = vec![
            Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.25], &[1.5, 0.5]]),
            Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.5, 1.5, -0.5]]),
            Matrix::from_rows(&[&[0.25, 1.25], &[-0.75, 0.5]]),
        ];
        for entry in [[1usize, 0, 1], [2, 1, 0], [0, 0, 0]] {
            for mode in 0..3 {
                let j = core.dims()[mode];
                let mut gather = vec![0.0; j];
                accumulate_delta(
                    &mut gather,
                    &entry,
                    mode,
                    core.flat_indices(),
                    core.values(),
                    &factors,
                );
                let mut lex = vec![0.0; j];
                accumulate_delta_lex(
                    &mut lex,
                    &pack_others(&entry, mode),
                    mode,
                    core.flat_indices(),
                    core.values(),
                    &factors,
                );
                for (a, b) in lex.iter().zip(&gather) {
                    assert!((a - b).abs() < 1e-12, "entry {entry:?} mode {mode}");
                }
            }
        }
    }

    #[test]
    fn lex_delta_matches_gather_on_truncated_core() {
        // Truncation keeps lexicographic order but breaks the dense
        // odometer pattern — prefix sharing must stay correct on gaps.
        let mut core =
            CoreTensor::dense_from_fn(vec![3, 2, 2], |i| (i[0] + i[1] + i[2]) as f64 + 0.5)
                .unwrap();
        core.retain_by_id(|e| e % 3 != 1);
        let factors = vec![
            Matrix::from_rows(&[&[0.5, -1.0, 0.0], &[2.0, 0.25, 1.0]]),
            Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 1.5], &[0.75, -0.25]]),
            Matrix::from_rows(&[&[0.25, 1.25], &[-0.75, 0.5]]),
        ];
        let entry = [1usize, 2, 0];
        for mode in 0..3 {
            let j = core.dims()[mode];
            let mut gather = vec![0.0; j];
            accumulate_delta(
                &mut gather,
                &entry,
                mode,
                core.flat_indices(),
                core.values(),
                &factors,
            );
            let mut lex = vec![0.0; j];
            accumulate_delta_lex(
                &mut lex,
                &pack_others(&entry, mode),
                mode,
                core.flat_indices(),
                core.values(),
                &factors,
            );
            for (a, b) in lex.iter().zip(&gather) {
                assert!((a - b).abs() < 1e-12, "mode {mode}");
            }
        }
    }

    #[test]
    fn lex_delta_ignores_swept_mode_factor() {
        // During a sweep factors[mode] is an empty placeholder; the lex
        // kernel must never touch it.
        let core = CoreTensor::dense_from_fn(vec![2, 2], |i| (i[0] + 2 * i[1]) as f64).unwrap();
        let factors = vec![
            Matrix::zeros(0, 0),
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]),
        ];
        let mut delta = vec![0.0; 2];
        accumulate_delta_lex(
            &mut delta,
            &[1u32],
            0,
            core.flat_indices(),
            core.values(),
            &factors,
        );
        // δ(j0) = Σ_{j1} G(j0,j1)·a1[1, j1]: [0·3+2·4, 1·3+3·4].
        assert_eq!(delta, vec![8.0, 15.0]);
    }

    #[test]
    fn normal_eq_accumulation() {
        let delta = [1.0, 2.0];
        let mut b = vec![0.0; 4];
        let mut c = vec![0.0; 2];
        accumulate_normal_eq(&mut b, &mut c, &delta, 3.0);
        accumulate_normal_eq(&mut b, &mut c, &delta, 1.0);
        // B = 2 * δδᵀ (upper), c = 4 * δ.
        assert_eq!(b[0], 2.0); // (0,0)
        assert_eq!(b[1], 4.0); // (0,1)
        assert_eq!(b[3], 8.0); // (1,1)
        assert_eq!(c, vec![4.0, 8.0]);
    }

    #[test]
    fn solve_row_recovers_known_solution() {
        // B = [[2,1],[1,2]] (upper stored), λ=0, c = B * [1, -1]ᵀ = [1, -1].
        let b_upper = vec![2.0, 1.0, 0.0, 2.0];
        let c = vec![1.0, -1.0];
        let row = solve_row(&b_upper, &c, 0.0).unwrap();
        assert!((row[0] - 1.0).abs() < 1e-12);
        assert!((row[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_row_regularization_shrinks() {
        // With huge λ the solution tends to c/λ ≈ 0.
        let b_upper = vec![1.0, 0.0, 0.0, 1.0];
        let c = vec![1.0, 1.0];
        let row = solve_row(&b_upper, &c, 1e9).unwrap();
        assert!(row[0].abs() < 1e-8 && row[1].abs() < 1e-8);
    }

    #[test]
    fn solve_row_singular_unregularized_falls_back_or_none() {
        // B = 0 and λ = 0: exactly singular — must not panic.
        let b_upper = vec![0.0; 4];
        let c = vec![1.0, 1.0];
        assert!(solve_row(&b_upper, &c, 0.0).is_none());
        // With regularization it solves fine.
        let row = solve_row(&b_upper, &c, 0.5).unwrap();
        assert!((row[0] - 2.0).abs() < 1e-12);
    }
}
