//! The δ kernel (Eq. 12 of the paper).
//!
//! For an observed entry `α = (i₁, …, i_N)` and a mode `n`, the vector
//! `δ⁽ⁿ⁾_α ∈ R^{Jₙ}` has entries
//! `δ(j) = Σ_{β ∈ G, βₙ = j} G_β Π_{k≠n} a⁽ᵏ⁾(iₖ, βₖ)`.
//! The row update accumulates `B += δδᵀ` and `c += X_α δ` over all entries
//! in the row's slice `Ω⁽ⁿ⁾ᵢₙ`, which is the whole of Theorem 1.
//!
//! Three implementations of the same definition live here:
//!
//! * [`accumulate_delta`] — the reference *gather* kernel: full `N−1`
//!   product per `(entry, core-entry)` pair from the entry's COO
//!   multi-index. Test-gated: it survives as the equivalence baseline the
//!   streamed kernels must reproduce (the bench crate hand-rolls the same
//!   walk through public APIs for its gather-vs-stream comparison).
//! * [`accumulate_delta_lex`] — the *prefix-reused scalar* kernel of the
//!   first mode-major plan: a stack of prefix products
//!   `prefix[d] = Π_{k<d, k≠n} a⁽ᵏ⁾(iₖ, βₖ)` recomputing only the suffix
//!   that changed between lexicographically adjacent core entries.
//!   Test-gated: it is the scalar baseline the blocked kernel must
//!   reproduce (and the bench crate hand-rolls it for its
//!   scalar-vs-blocked comparison).
//! * [`accumulate_delta_blocked`] — the **run-blocked micro-kernel** the
//!   engine runs on. `CoreTensor`'s lexicographic invariant means the core
//!   entry list decomposes into maximal *runs* sharing their first `N−1`
//!   coordinates (for a dense core: runs of length `J_N`, one per
//!   `(β₁…β_{N−1})` prefix). [`core_runs`] finds the run boundaries once
//!   per mode sweep; the kernel then computes **one shared prefix product
//!   per run** (still prefix-reused across run heads) and processes the
//!   run's tail as a single contiguous pass over the packed `core_vals`
//!   slice:
//!
//!   * update mode = tail coordinate: `δ[β_N..] += w · g[β_N..]` — an
//!     [`axpy`](ptucker_linalg::kernels::axpy) into the δ vector;
//!   * otherwise: `δ[β_n] += w · Σ_{β_N} g[β_N]·a⁽ᴺ⁾(i_N, β_N)` — a
//!     [`dot`](ptucker_linalg::kernels::dot) of the run's values against
//!     the pinned tail factor row.
//!
//!   Both primitives are the chunked/SIMD micro-kernels from
//!   `ptucker_linalg::kernels`, so the inner loop saturates the FMA units
//!   instead of chasing a per-entry prefix stack. Runs whose tail
//!   coordinates are non-contiguous (truncated cores) take an indexed
//!   variant of the same loop.

use ptucker_linalg::kernels::{axpy, dot, syr_in_place};
use ptucker_linalg::Matrix;

/// Deepest core order served by the stack-allocated prefix buffers of
/// [`accumulate_delta_blocked`] (and the test-gated
/// [`accumulate_delta_lex`]); higher orders take a (correct,
/// allocation-free) per-entry recompute path. The paper's experiments top
/// out at `N = 10`.
pub(crate) const MAX_PREFIX_ORDER: usize = 16;

/// Finds the maximal runs of consecutive core entries sharing their first
/// `N−1` coordinates — the blocking structure of
/// [`accumulate_delta_blocked`]. Returns run boundaries in offset form:
/// run `r` spans entries `runs[r]..runs[r+1]`.
///
/// The run structure depends only on the core (not on the mode being
/// updated or the observed entry), so it is computed once per mode sweep
/// by `engine::ModeContext::new` and shared by every row update — `O(N·|G|)`
/// comparisons amortized over the whole sweep, nothing in the row loop.
///
/// For a dense lexicographic core the runs have length `J_N` exactly; for
/// an order-1 core (no prefix coordinates) the whole entry list is one run.
pub(crate) fn core_runs(core_idx: &[usize], order: usize) -> Vec<u32> {
    let g = core_idx.len() / order.max(1);
    let mut runs = Vec::with_capacity(g / 2 + 2);
    runs.push(0u32);
    if g == 0 {
        return runs;
    }
    let head_len = order - 1;
    let mut prev = &core_idx[..head_len];
    for b in 1..g {
        let head = &core_idx[b * order..b * order + head_len];
        if head != prev {
            runs.push(b as u32);
            prev = head;
        }
    }
    runs.push(g as u32);
    runs
}

/// Accumulates δ for one observed entry into `delta` (cleared first) by
/// the original gather rule: one full `Π_{k≠n}` product per core entry
/// from the entry's COO multi-index.
#[cfg(test)]
#[inline]
pub(crate) fn accumulate_delta(
    delta: &mut [f64],
    entry_idx: &[usize],
    mode: usize,
    core_idx: &[usize],
    core_vals: &[f64],
    factors: &[Matrix],
) {
    delta.fill(0.0);
    let order = entry_idx.len();
    for (b, &g) in core_vals.iter().enumerate() {
        let beta = &core_idx[b * order..(b + 1) * order];
        let mut w = g;
        for (k, factor) in factors.iter().enumerate() {
            if k == mode {
                continue;
            }
            w *= factor[(entry_idx[k], beta[k])];
            if w == 0.0 {
                break;
            }
        }
        if w != 0.0 {
            delta[beta[mode]] += w;
        }
    }
}

/// Degenerate-depth fallback shared by the streamed kernels for orders
/// beyond [`MAX_PREFIX_ORDER`]: plain per-entry products (still
/// allocation-free, just without prefix reuse or run blocking).
fn accumulate_delta_deep(
    delta: &mut [f64],
    others: &[u32],
    mode: usize,
    core_idx: &[usize],
    core_vals: &[f64],
    factors: &[Matrix],
) {
    let order = factors.len();
    for (b, &g) in core_vals.iter().enumerate() {
        let beta = &core_idx[b * order..(b + 1) * order];
        let mut w = g;
        let mut slot = 0;
        for (k, factor) in factors.iter().enumerate() {
            if k == mode {
                continue;
            }
            w *= factor[(others[slot] as usize, beta[k])];
            slot += 1;
            if w == 0.0 {
                break;
            }
        }
        if w != 0.0 {
            delta[beta[mode]] += w;
        }
    }
}

/// Accumulates δ for one streamed entry into `delta` (cleared first),
/// reusing prefix products across lexicographically adjacent core entries
/// — the scalar kernel the run-blocked micro-kernel replaced. Test-gated:
/// it is the equivalence baseline for [`accumulate_delta_blocked`].
///
/// `others` holds the entry's packed other-mode indices (ascending mode
/// order, `mode` skipped) as produced by `ptucker_tensor::ModeStream`.
/// The kernel is correct for *any* core-entry order (the shared prefix is
/// measured against the immediately preceding entry, whatever it is);
/// lexicographic order — which every `CoreTensor` constructor and
/// truncation path preserves — is what makes the reuse effective, because
/// adjacent entries then share all but their trailing coordinates.
///
/// `factors[mode]` is never read (it is the row data being updated and may
/// be an empty placeholder during the sweep).
#[cfg(test)]
#[inline]
pub(crate) fn accumulate_delta_lex(
    delta: &mut [f64],
    others: &[u32],
    mode: usize,
    core_idx: &[usize],
    core_vals: &[f64],
    factors: &[Matrix],
) {
    delta.fill(0.0);
    let order = factors.len();
    debug_assert_eq!(others.len(), order - 1);
    if order > MAX_PREFIX_ORDER {
        accumulate_delta_deep(delta, others, mode, core_idx, core_vals, factors);
        return;
    }
    // Pin the entry's factor rows once: a⁽ᵏ⁾(iₖ, ·) for every k ≠ n. The
    // inner loop then reads `rows[d][βd]` — one in-row load instead of a
    // strided matrix index.
    let mut rows: [&[f64]; MAX_PREFIX_ORDER] = [&[]; MAX_PREFIX_ORDER];
    let mut slot = 0;
    for (k, factor) in factors.iter().enumerate() {
        if k == mode {
            continue;
        }
        rows[k] = factor.row(others[slot] as usize);
        slot += 1;
    }
    // prefix[d] = Π_{k<d, k≠mode} a⁽ᵏ⁾(iₖ, βₖ) for the *current* core
    // entry; entries below the shared-prefix depth stay valid from the
    // previous core entry, so only the changed suffix is recomputed.
    let mut prefix = [1.0f64; MAX_PREFIX_ORDER + 1];
    let mut prev: &[usize] = &[];
    for (b, &g) in core_vals.iter().enumerate() {
        let beta = &core_idx[b * order..(b + 1) * order];
        let mut p = 0;
        while p < prev.len() && prev[p] == beta[p] {
            p += 1;
        }
        for d in p..order {
            let a = if d == mode { 1.0 } else { rows[d][beta[d]] };
            prefix[d + 1] = prefix[d] * a;
        }
        delta[beta[mode]] += g * prefix[order];
        prev = beta;
    }
}

/// Accumulates δ for one streamed entry into `delta` (cleared first) with
/// the **run-blocked micro-kernel**: one shared prefix product per run of
/// core entries (runs precomputed by [`core_runs`]), the run tail processed
/// as a contiguous `dot`/`axpy` over the packed `core_vals` slice. See the
/// module docs for the blocking argument.
///
/// `others` holds the entry's packed other-mode indices (ascending mode
/// order, `mode` skipped) as produced by `ptucker_tensor::ModeStream`;
/// `runs` must be `core_runs(core_idx, factors.len())` for the same core.
/// `factors[mode]` is never read (it is the row data being updated and may
/// be an empty placeholder during the sweep).
#[inline]
pub(crate) fn accumulate_delta_blocked(
    delta: &mut [f64],
    others: &[u32],
    mode: usize,
    core_idx: &[usize],
    core_vals: &[f64],
    runs: &[u32],
    factors: &[Matrix],
) {
    delta.fill(0.0);
    let order = factors.len();
    debug_assert_eq!(others.len(), order - 1);
    if order > MAX_PREFIX_ORDER {
        accumulate_delta_deep(delta, others, mode, core_idx, core_vals, factors);
        return;
    }
    let last = order - 1;
    // Pin the entry's factor rows once: a⁽ᵏ⁾(iₖ, ·) for every k ≠ n.
    let mut rows: [&[f64]; MAX_PREFIX_ORDER] = [&[]; MAX_PREFIX_ORDER];
    let mut slot = 0;
    for (k, factor) in factors.iter().enumerate() {
        if k == mode {
            continue;
        }
        rows[k] = factor.row(others[slot] as usize);
        slot += 1;
    }
    // The tail factor row a⁽ᴺ⁾(i_N, ·); empty (and unread) when the update
    // mode *is* the tail coordinate.
    let tail_row: &[f64] = if mode == last { &[] } else { rows[last] };
    // prefix[d] = Π_{k<d, k≠mode} a⁽ᵏ⁾(iₖ, βₖ) over the run head's first
    // `N−1` coordinates, reused across runs sharing a head prefix.
    let mut prefix = [1.0f64; MAX_PREFIX_ORDER + 1];
    let mut prev: &[usize] = &[];
    for r in 0..runs.len() - 1 {
        let base = runs[r] as usize;
        let end = runs[r + 1] as usize;
        let head = &core_idx[base * order..base * order + order];
        let mut p = 0;
        while p < prev.len() && prev[p] == head[p] {
            p += 1;
        }
        for d in p..last {
            let a = if d == mode { 1.0 } else { rows[d][head[d]] };
            prefix[d + 1] = prefix[d] * a;
        }
        prev = &head[..last];
        let w = prefix[last];
        if w == 0.0 {
            continue;
        }
        let vals = &core_vals[base..end];
        let len = end - base;
        // Strictly ascending tail coordinates are contiguous iff the
        // endpoints span exactly `len` values (dense cores always do).
        let t0 = core_idx[base * order + last];
        let contiguous = core_idx[(end - 1) * order + last] - t0 + 1 == len;
        if mode == last {
            // δ[β_N] += w · g[β_N]: axpy into the δ vector.
            if contiguous {
                axpy(w, vals, &mut delta[t0..t0 + len]);
            } else {
                for (t, &g) in vals.iter().enumerate() {
                    delta[core_idx[(base + t) * order + last]] += w * g;
                }
            }
        } else {
            // δ[βₙ] += w · Σ_{β_N} g[β_N]·a⁽ᴺ⁾(i_N, β_N): dot of the run's
            // values against the pinned tail row.
            let acc = if contiguous {
                dot(vals, &tail_row[t0..t0 + len])
            } else {
                let mut acc = 0.0;
                for (t, &g) in vals.iter().enumerate() {
                    acc += g * tail_row[core_idx[(base + t) * order + last]];
                }
                acc
            };
            delta[head[mode]] += w * acc;
        }
    }
}

/// Reconstructs one observed entry, `x̂_α = Σ_β G_β Πₖ a⁽ᵏ⁾(iₖ, βₖ)`, with
/// the **run-blocked micro-kernel**: one shared prefix product per run of
/// core entries (all `N` factor rows pinned once — no mode is skipped
/// here), the run tail a single contiguous [`dot`] of the packed core
/// values against the tail factor row. This is the reconstruction inner
/// loop of the residual `Σ (X_α − x̂_α)²` — structurally the same blocking
/// as [`accumulate_delta_blocked`], accumulated into one scalar instead of
/// a δ vector.
///
/// `runs` must be [`core_runs`] of the same core. Reads only the entry's
/// COO multi-index and the factors, so the residual pass needs neither the
/// execution plan nor any window — spilled fits compute it without
/// touching their scratch files.
#[inline]
pub(crate) fn reconstruct_entry_blocked(
    entry_idx: &[usize],
    core_idx: &[usize],
    core_vals: &[f64],
    runs: &[u32],
    factors: &[Matrix],
) -> f64 {
    let order = factors.len();
    if order > MAX_PREFIX_ORDER {
        return reconstruct_entry_scalar(entry_idx, core_idx, core_vals, factors);
    }
    let last = order - 1;
    // Pin every factor row once: a⁽ᵏ⁾(iₖ, ·) for all k.
    let mut rows: [&[f64]; MAX_PREFIX_ORDER] = [&[]; MAX_PREFIX_ORDER];
    for (k, factor) in factors.iter().enumerate() {
        rows[k] = factor.row(entry_idx[k]);
    }
    let tail_row = rows[last];
    let mut prefix = [1.0f64; MAX_PREFIX_ORDER + 1];
    let mut prev: &[usize] = &[];
    let mut rec = 0.0;
    for r in 0..runs.len() - 1 {
        let base = runs[r] as usize;
        let end = runs[r + 1] as usize;
        let head = &core_idx[base * order..base * order + order];
        let mut p = 0;
        while p < prev.len() && prev[p] == head[p] {
            p += 1;
        }
        for d in p..last {
            prefix[d + 1] = prefix[d] * rows[d][head[d]];
        }
        prev = &head[..last];
        let w = prefix[last];
        if w == 0.0 {
            continue;
        }
        let vals = &core_vals[base..end];
        let len = end - base;
        let t0 = core_idx[base * order + last];
        let contiguous = core_idx[(end - 1) * order + last] - t0 + 1 == len;
        let acc = if contiguous {
            dot(vals, &tail_row[t0..t0 + len])
        } else {
            let mut acc = 0.0;
            for (t, &g) in vals.iter().enumerate() {
                acc += g * tail_row[core_idx[(base + t) * order + last]];
            }
            acc
        };
        rec += w * acc;
    }
    rec
}

/// Scalar per-core-entry reconstruction: the deep-order (> 16) fallback of
/// [`reconstruct_entry_blocked`] and its equivalence baseline in tests.
fn reconstruct_entry_scalar(
    entry_idx: &[usize],
    core_idx: &[usize],
    core_vals: &[f64],
    factors: &[Matrix],
) -> f64 {
    let order = entry_idx.len();
    let mut rec = 0.0;
    for (b, &g) in core_vals.iter().enumerate() {
        let beta = &core_idx[b * order..(b + 1) * order];
        let mut w = g;
        for (k, factor) in factors.iter().enumerate() {
            w *= factor[(entry_idx[k], beta[k])];
            if w == 0.0 {
                break;
            }
        }
        rec += w;
    }
    rec
}

/// Like [`reconstruct_entry_blocked`], but also records each core entry's
/// individual contribution `c_{αβ}` into `contrib` (size `|G|`) and
/// returns their sum `x̂_α` — the quantities P-Tucker-Approx's partial
/// reconstruction error `R(β)` (Eq. 13) needs per observed entry. One
/// shared prefix per run; the run tail is a single fused
/// multiply-and-accumulate pass over the packed core values and the tail
/// factor row.
#[inline]
pub(crate) fn entry_contributions_blocked(
    entry_idx: &[usize],
    core_idx: &[usize],
    core_vals: &[f64],
    runs: &[u32],
    factors: &[Matrix],
    contrib: &mut [f64],
) -> f64 {
    let order = factors.len();
    if order > MAX_PREFIX_ORDER {
        let mut full = 0.0;
        for (b, slot) in contrib.iter_mut().enumerate() {
            let beta = &core_idx[b * order..(b + 1) * order];
            let mut w = core_vals[b];
            for (k, factor) in factors.iter().enumerate() {
                w *= factor[(entry_idx[k], beta[k])];
                if w == 0.0 {
                    break;
                }
            }
            *slot = w;
            full += w;
        }
        return full;
    }
    let last = order - 1;
    let mut rows: [&[f64]; MAX_PREFIX_ORDER] = [&[]; MAX_PREFIX_ORDER];
    for (k, factor) in factors.iter().enumerate() {
        rows[k] = factor.row(entry_idx[k]);
    }
    let tail_row = rows[last];
    let mut prefix = [1.0f64; MAX_PREFIX_ORDER + 1];
    let mut prev: &[usize] = &[];
    let mut full = 0.0;
    for r in 0..runs.len() - 1 {
        let base = runs[r] as usize;
        let end = runs[r + 1] as usize;
        let head = &core_idx[base * order..base * order + order];
        let mut p = 0;
        while p < prev.len() && prev[p] == head[p] {
            p += 1;
        }
        for d in p..last {
            prefix[d + 1] = prefix[d] * rows[d][head[d]];
        }
        prev = &head[..last];
        let w = prefix[last];
        if w == 0.0 {
            contrib[base..end].fill(0.0);
            continue;
        }
        let vals = &core_vals[base..end];
        let len = end - base;
        let t0 = core_idx[base * order + last];
        let contiguous = core_idx[(end - 1) * order + last] - t0 + 1 == len;
        if contiguous {
            for ((slot, &g), &a) in contrib[base..end]
                .iter_mut()
                .zip(vals)
                .zip(&tail_row[t0..t0 + len])
            {
                let c = w * (g * a);
                *slot = c;
                full += c;
            }
        } else {
            for (t, &g) in vals.iter().enumerate() {
                let c = w * (g * tail_row[core_idx[(base + t) * order + last]]);
                contrib[base + t] = c;
                full += c;
            }
        }
    }
    full
}

/// Rank-1 accumulation of the normal equations for one observed entry:
/// `B += δδᵀ` (upper triangle only) and `c += x·δ` — expressed as the
/// `axpy`/`syr` micro-kernel primitives so the accumulation rides the same
/// blocked (and optionally SIMD) path as the δ production.
#[inline]
pub(crate) fn accumulate_normal_eq(b_upper: &mut [f64], c: &mut [f64], delta: &[f64], x: f64) {
    axpy(x, delta, c);
    syr_in_place(b_upper, delta.len(), delta);
}

/// Solves `(B + λI) x = c` for an upper-triangle-packed system, allocating
/// its own workspace. This is the **non-hot-path** helper (core refit, unit
/// tests); the per-row update solves through the reusable arena in
/// [`crate::engine::Scratch`] instead, with the identical numerical
/// definition (both sit on `ptucker_linalg::solve`).
///
/// Cholesky is used first (the system is SPD for λ > 0, Theorem 1); LU with
/// partial pivoting is the fallback for λ = 0 with a rank-deficient `B`.
/// Returns `None` only if both factorizations fail (exactly singular
/// system).
pub(crate) fn solve_row(b_upper: &[f64], c: &[f64], lambda: f64) -> Option<Vec<f64>> {
    let j_n = c.len();
    let mut scratch = crate::engine::Scratch::new(j_n);
    let (_, sc_c, sc_b) = scratch.accumulators(j_n);
    sc_c.copy_from_slice(c);
    sc_b.copy_from_slice(b_upper);
    let mut out = vec![0.0; j_n];
    scratch.solve(j_n, lambda, &mut out).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ptucker_tensor::CoreTensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn delta_matches_bruteforce() {
        // 2 modes, ranks (2, 3), dense core.
        let core = CoreTensor::dense_from_fn(vec![2, 3], |i| (i[0] * 3 + i[1] + 1) as f64).unwrap();
        let a0 = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.25]]);
        let a1 = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.5, 1.5, -0.5]]);
        let factors = vec![a0.clone(), a1.clone()];
        let entry = [1usize, 0usize];

        // Mode 0: δ(j0) = Σ_{j1} G(j0,j1) * a1[i1, j1].
        let mut delta = vec![0.0; 2];
        accumulate_delta(
            &mut delta,
            &entry,
            0,
            core.flat_indices(),
            core.values(),
            &factors,
        );
        for j0 in 0..2 {
            let mut want = 0.0;
            for j1 in 0..3 {
                want += core.value(j0 * 3 + j1) * a1[(0, j1)];
            }
            assert!((delta[j0] - want).abs() < 1e-12, "j0={j0}");
        }

        // Mode 1: δ(j1) = Σ_{j0} G(j0,j1) * a0[i0, j0].
        let mut delta = vec![0.0; 3];
        accumulate_delta(
            &mut delta,
            &entry,
            1,
            core.flat_indices(),
            core.values(),
            &factors,
        );
        for j1 in 0..3 {
            let mut want = 0.0;
            for j0 in 0..2 {
                want += core.value(j0 * 3 + j1) * a0[(1, j0)];
            }
            assert!((delta[j1] - want).abs() < 1e-12, "j1={j1}");
        }
    }

    /// Packs the other-mode indices of `entry` the way a `ModeStream` does.
    fn pack_others(entry: &[usize], mode: usize) -> Vec<u32> {
        entry
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != mode)
            .map(|(_, &i)| i as u32)
            .collect()
    }

    /// Runs all three kernels on one setup and checks they agree at 1e-12.
    fn assert_kernels_agree(core: &CoreTensor, factors: &[Matrix], entry: &[usize]) {
        let runs = core_runs(core.flat_indices(), core.order());
        for mode in 0..core.order() {
            let j = core.dims()[mode];
            let mut gather = vec![0.0; j];
            accumulate_delta(
                &mut gather,
                entry,
                mode,
                core.flat_indices(),
                core.values(),
                factors,
            );
            let mut lex = vec![0.0; j];
            accumulate_delta_lex(
                &mut lex,
                &pack_others(entry, mode),
                mode,
                core.flat_indices(),
                core.values(),
                factors,
            );
            let mut blocked = vec![0.0; j];
            accumulate_delta_blocked(
                &mut blocked,
                &pack_others(entry, mode),
                mode,
                core.flat_indices(),
                core.values(),
                &runs,
                factors,
            );
            for ((l, b), g) in lex.iter().zip(&blocked).zip(&gather) {
                assert!((l - g).abs() < 1e-12, "lex: entry {entry:?} mode {mode}");
                assert!(
                    (b - g).abs() < 1e-12,
                    "blocked: entry {entry:?} mode {mode}"
                );
            }
        }
    }

    #[test]
    fn streamed_deltas_match_gather_delta() {
        // Random-ish 3-mode setup, dense core, checked mode by mode
        // (including mode == N−1, where the tail coordinate is the update
        // mode and the blocked kernel takes its axpy path).
        let core = CoreTensor::dense_from_fn(vec![2, 3, 2], |i| {
            (i[0] * 6 + i[1] * 2 + i[2]) as f64 * 0.3 - 1.0
        })
        .unwrap();
        let factors = vec![
            Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.25], &[1.5, 0.5]]),
            Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.5, 1.5, -0.5]]),
            Matrix::from_rows(&[&[0.25, 1.25], &[-0.75, 0.5]]),
        ];
        for entry in [[1usize, 0, 1], [2, 1, 0], [0, 0, 0]] {
            assert_kernels_agree(&core, &factors, &entry);
        }
    }

    #[test]
    fn streamed_deltas_match_gather_on_truncated_core() {
        // Truncation keeps lexicographic order but breaks the dense
        // odometer pattern — prefix sharing must stay correct on gaps, and
        // the blocked kernel must fall back to its indexed tail loop.
        let mut core =
            CoreTensor::dense_from_fn(vec![3, 2, 2], |i| (i[0] + i[1] + i[2]) as f64 + 0.5)
                .unwrap();
        core.retain_by_id(|e| e % 3 != 1);
        let factors = vec![
            Matrix::from_rows(&[&[0.5, -1.0, 0.0], &[2.0, 0.25, 1.0]]),
            Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 1.5], &[0.75, -0.25]]),
            Matrix::from_rows(&[&[0.25, 1.25], &[-0.75, 0.5]]),
        ];
        assert_kernels_agree(&core, &factors, &[1usize, 2, 0]);
    }

    #[test]
    fn blocked_delta_ignores_swept_mode_factor() {
        // During a sweep factors[mode] is an empty placeholder; the kernel
        // must never touch it.
        let core = CoreTensor::dense_from_fn(vec![2, 2], |i| (i[0] + 2 * i[1]) as f64).unwrap();
        let runs = core_runs(core.flat_indices(), 2);
        let factors = vec![
            Matrix::zeros(0, 0),
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]),
        ];
        let mut delta = vec![0.0; 2];
        accumulate_delta_blocked(
            &mut delta,
            &[1u32],
            0,
            core.flat_indices(),
            core.values(),
            &runs,
            &factors,
        );
        // δ(j0) = Σ_{j1} G(j0,j1)·a1[1, j1]: [0·3+2·4, 1·3+3·4].
        assert_eq!(delta, vec![8.0, 15.0]);
    }

    #[test]
    fn core_runs_blocks_dense_cores_by_tail_rank() {
        let core = CoreTensor::dense_from_fn(vec![2, 3, 4], |_| 1.0).unwrap();
        let runs = core_runs(core.flat_indices(), 3);
        // 2·3 = 6 runs of length J_N = 4 each.
        assert_eq!(runs.len(), 7);
        for w in runs.windows(2) {
            assert_eq!(w[1] - w[0], 4);
        }
    }

    #[test]
    fn core_runs_order_one_is_single_run() {
        let core = CoreTensor::dense_from_fn(vec![5], |_| 1.0).unwrap();
        assert_eq!(core_runs(core.flat_indices(), 1), vec![0, 5]);
    }

    #[test]
    fn core_runs_empty_core() {
        assert_eq!(core_runs(&[], 3), vec![0]);
    }

    #[test]
    fn core_runs_respects_truncation_gaps() {
        let mut core = CoreTensor::dense_from_fn(vec![2, 3], |_| 1.0).unwrap();
        core.retain_by_id(|e| e != 1); // kill (0,1): run (0,·) shrinks to 2
        let runs = core_runs(core.flat_indices(), 2);
        assert_eq!(runs, vec![0, 2, 5]);
    }

    #[test]
    fn order_one_core_blocked_delta() {
        // order == 1: no prefix coordinates; the whole core is one run and
        // the axpy path scatters straight into δ.
        let core = CoreTensor::from_entries(
            vec![4],
            vec![(vec![0], 2.0), (vec![2], -1.0), (vec![3], 0.5)],
        )
        .unwrap();
        let runs = core_runs(core.flat_indices(), 1);
        let factors = vec![Matrix::zeros(0, 0)];
        let mut delta = vec![0.0; 4];
        accumulate_delta_blocked(
            &mut delta,
            &[],
            0,
            core.flat_indices(),
            core.values(),
            &runs,
            &factors,
        );
        assert_eq!(delta, vec![2.0, 0.0, -1.0, 0.5]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // Satellite property: the blocked (and, under `--features simd`,
        // vectorized) δ equals the gather reference within 1e-12 for
        // random sparse cores at every order up to MAX_PREFIX_ORDER and
        // every mode — including `mode == N−1`, the axpy edge case.
        #[test]
        fn blocked_delta_matches_gather_reference(
            order in 1..=MAX_PREFIX_ORDER,
            seed in 0..u64::MAX,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            // Small per-mode ranks so deep orders stay affordable; the
            // core is sparse (sampled cells), so runs have ragged lengths
            // and gaps.
            let dims: Vec<usize> = (0..order).map(|_| rng.gen_range(1..4usize)).collect();
            let nnz = rng.gen_range(1..40usize);
            let mut cells = std::collections::BTreeSet::new();
            for _ in 0..nnz {
                let idx: Vec<usize> = dims.iter().map(|&d| rng.gen_range(0..d)).collect();
                cells.insert(idx);
            }
            let entries: Vec<(Vec<usize>, f64)> = cells
                .into_iter()
                .map(|idx| (idx, rng.gen::<f64>() * 2.0 - 1.0))
                .collect();
            let core = CoreTensor::from_entries(dims.clone(), entries).unwrap();
            prop_assert!(core.is_lexicographic());
            let i_dims: Vec<usize> = (0..order).map(|_| rng.gen_range(1..4usize)).collect();
            let factors: Vec<Matrix> = i_dims
                .iter()
                .zip(&dims)
                .map(|(&i_n, &j_n)| {
                    Matrix::from_vec(
                        i_n,
                        j_n,
                        (0..i_n * j_n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect(),
                    )
                    .unwrap()
                })
                .collect();
            let entry: Vec<usize> = i_dims.iter().map(|&d| rng.gen_range(0..d)).collect();
            let runs = core_runs(core.flat_indices(), order);
            // The run-blocked reconstruction and per-entry contributions
            // (the error / R(β) micro-kernels) must match the scalar walk.
            {
                let scalar = reconstruct_entry_scalar(
                    &entry,
                    core.flat_indices(),
                    core.values(),
                    &factors,
                );
                let blocked = reconstruct_entry_blocked(
                    &entry,
                    core.flat_indices(),
                    core.values(),
                    &runs,
                    &factors,
                );
                prop_assert!(
                    (blocked - scalar).abs() < 1e-12 * (1.0 + scalar.abs()),
                    "reconstruct: {} vs {}",
                    blocked,
                    scalar
                );
                let mut contrib = vec![0.0; core.nnz()];
                let full = entry_contributions_blocked(
                    &entry,
                    core.flat_indices(),
                    core.values(),
                    &runs,
                    &factors,
                    &mut contrib,
                );
                let mut sum = 0.0;
                for (b, &c) in contrib.iter().enumerate() {
                    let beta = core.index(b);
                    let mut w = core.value(b);
                    for (k, factor) in factors.iter().enumerate() {
                        w *= factor[(entry[k], beta[k])];
                    }
                    prop_assert!(
                        (c - w).abs() < 1e-12 * (1.0 + w.abs()),
                        "contrib[{}]: {} vs {}",
                        b,
                        c,
                        w
                    );
                    sum += c;
                }
                prop_assert!((full - sum).abs() < 1e-9 * (1.0 + sum.abs()));
            }
            for mode in 0..order {
                let j = core.dims()[mode];
                let mut gather = vec![0.0; j];
                accumulate_delta(
                    &mut gather,
                    &entry,
                    mode,
                    core.flat_indices(),
                    core.values(),
                    &factors,
                );
                let mut blocked = vec![0.0; j];
                accumulate_delta_blocked(
                    &mut blocked,
                    &pack_others(&entry, mode),
                    mode,
                    core.flat_indices(),
                    core.values(),
                    &runs,
                    &factors,
                );
                for (b, g) in blocked.iter().zip(&gather) {
                    prop_assert!(
                        (b - g).abs() < 1e-12,
                        "order {} mode {}: {} vs {}",
                        order,
                        mode,
                        b,
                        g
                    );
                }
            }
        }
    }

    #[test]
    fn normal_eq_accumulation() {
        let delta = [1.0, 2.0];
        let mut b = vec![0.0; 4];
        let mut c = vec![0.0; 2];
        accumulate_normal_eq(&mut b, &mut c, &delta, 3.0);
        accumulate_normal_eq(&mut b, &mut c, &delta, 1.0);
        // B = 2 * δδᵀ (upper), c = 4 * δ.
        assert_eq!(b[0], 2.0); // (0,0)
        assert_eq!(b[1], 4.0); // (0,1)
        assert_eq!(b[3], 8.0); // (1,1)
        assert_eq!(c, vec![4.0, 8.0]);
    }

    #[test]
    fn solve_row_recovers_known_solution() {
        // B = [[2,1],[1,2]] (upper stored), λ=0, c = B * [1, -1]ᵀ = [1, -1].
        let b_upper = vec![2.0, 1.0, 0.0, 2.0];
        let c = vec![1.0, -1.0];
        let row = solve_row(&b_upper, &c, 0.0).unwrap();
        assert!((row[0] - 1.0).abs() < 1e-12);
        assert!((row[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_row_regularization_shrinks() {
        // With huge λ the solution tends to c/λ ≈ 0.
        let b_upper = vec![1.0, 0.0, 0.0, 1.0];
        let c = vec![1.0, 1.0];
        let row = solve_row(&b_upper, &c, 1e9).unwrap();
        assert!(row[0].abs() < 1e-8 && row[1].abs() < 1e-8);
    }

    #[test]
    fn solve_row_singular_unregularized_falls_back_or_none() {
        // B = 0 and λ = 0: exactly singular — must not panic.
        let b_upper = vec![0.0; 4];
        let c = vec![1.0, 1.0];
        assert!(solve_row(&b_upper, &c, 0.0).is_none());
        // With regularization it solves fine.
        let row = solve_row(&b_upper, &c, 0.5).unwrap();
        assert!((row[0] - 2.0).abs() < 1e-12);
    }
}
