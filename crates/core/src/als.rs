//! The P-Tucker fit driver (Algorithms 2 and 3 of the paper).

use crate::cache::PresTable;
use crate::delta::{accumulate_delta, accumulate_normal_eq, solve_row};
use crate::{
    approx, FitOptions, FitResult, FitStats, IterStats, PtuckerError, Result, TuckerDecomposition,
    Variant,
};
use ptucker_linalg::Matrix;
use ptucker_sched::{parallel_reduce, parallel_rows_mut, Schedule};
use ptucker_tensor::{CoreTensor, SparseTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// The P-Tucker solver: scalable Tucker factorization for sparse tensors.
///
/// Construct with validated [`FitOptions`], then call [`PTucker::fit`] on a
/// [`SparseTensor`]. See the crate docs for a complete example.
#[derive(Debug, Clone)]
pub struct PTucker {
    opts: FitOptions,
}

impl PTucker {
    /// Creates a solver after validating the options.
    ///
    /// # Errors
    /// [`PtuckerError::InvalidConfig`] for inconsistent options.
    pub fn new(opts: FitOptions) -> Result<Self> {
        opts.validate()?;
        Ok(PTucker { opts })
    }

    /// The solver's configuration.
    pub fn options(&self) -> &FitOptions {
        &self.opts
    }

    /// Runs Algorithm 2: random initialization, iterated fully-parallel
    /// row-wise factor updates until the reconstruction error converges
    /// (or `max_iters`), then QR orthogonalization with the matching core
    /// update.
    ///
    /// # Errors
    /// * [`PtuckerError::InvalidConfig`] if the options do not match `x`'s
    ///   shape.
    /// * [`PtuckerError::OutOfMemory`] if intermediate data exceed the
    ///   budget (notably the Cache variant's `|Ω|×|G|` table).
    /// * [`PtuckerError::Linalg`] on numerically fatal systems (only
    ///   possible with `lambda == 0`).
    pub fn fit(&self, x: &SparseTensor) -> Result<FitResult> {
        let opts = &self.opts;
        opts.validate_for(x.dims())?;
        let t_start = Instant::now();
        let order = x.order();
        let mut rng = StdRng::seed_from_u64(opts.seed);

        // Step 1: random initialization in [0, 1) (Algorithm 2 line 1).
        let mut factors = init_factors(x.dims(), &opts.ranks, &mut rng);
        let mut core = CoreTensor::random_dense(opts.ranks.clone(), &mut rng)?;

        // Meter the per-thread intermediates of Theorem 4: δ, c (J) and
        // B, scratch solve matrix (J²) per thread, held for the fit's
        // duration.
        opts.budget.reset_peak();
        let j_max = opts.ranks.iter().copied().max().unwrap_or(1);
        let _row_scratch = opts
            .budget
            .reserve_f64(opts.threads * (2 * j_max * j_max + 2 * j_max))?;
        // Approx additionally folds per-thread R(β)/contribution buffers.
        let _approx_scratch = match opts.variant {
            Variant::Approx { .. } => Some(opts.budget.reserve_f64(opts.threads * 2 * core.nnz())?),
            _ => None,
        };
        // Cache precomputes the |Ω|×|G| table (Algorithm 3 lines 1–4).
        let mut pres = match opts.variant {
            Variant::Cache => Some(PresTable::compute(
                x,
                &factors,
                &core,
                opts.threads,
                &opts.budget,
            )?),
            _ => None,
        };

        let mut iterations: Vec<IterStats> = Vec::with_capacity(opts.max_iters);
        let mut prev_err = f64::INFINITY;
        let mut converged = false;

        for iter in 0..opts.max_iters {
            let t_iter = Instant::now();

            // Step 2-3: update factor matrices (Algorithm 2 line 3 /
            // Algorithm 3).
            for n in 0..order {
                match pres.as_mut() {
                    Some(table) => {
                        let old = factors[n].clone();
                        update_factor(x, &mut factors, n, &core, opts, Some(table))?;
                        table.update_mode(x, &factors, &old, n, &core, opts.threads);
                    }
                    None => update_factor(x, &mut factors, n, &core, opts, None)?,
                }
            }

            // Step 4: reconstruction error (Algorithm 2 line 4), parallel
            // with static scheduling (Section III-D, section 3).
            let err =
                sum_squared_error_raw(x, &factors, &core, opts.threads, Schedule::Static).sqrt();

            // Step 5: Approx truncation (Algorithm 2 lines 5–6).
            if let Variant::Approx { truncation_rate } = opts.variant {
                let r = approx::partial_errors(x, &factors, &core, opts.threads, opts.schedule);
                approx::truncate_noisy(&mut core, &r, truncation_rate);
            }

            iterations.push(IterStats {
                iter,
                reconstruction_error: err,
                seconds: t_iter.elapsed().as_secs_f64(),
                core_nnz: core.nnz(),
            });

            // Convergence on relative error change (Algorithm 2 line 7).
            if err.is_finite()
                && prev_err.is_finite()
                && (prev_err - err).abs() <= opts.tol * prev_err.max(f64::EPSILON)
            {
                converged = true;
                break;
            }
            prev_err = err;
        }
        drop(pres);

        // Step 6: orthogonalize via QR and push R into the core
        // (Algorithm 2 lines 8–11): A⁽ⁿ⁾ = Q⁽ⁿ⁾R⁽ⁿ⁾, A⁽ⁿ⁾ ← Q⁽ⁿ⁾,
        // G ← G ×ₙ R⁽ⁿ⁾ — reconstruction preserved exactly.
        for (n, factor) in factors.iter_mut().enumerate() {
            let qr = factor.qr()?;
            let (q, r) = qr.into_parts();
            *factor = q;
            core.mode_product_in_place(n, &r, 0.0)?;
        }

        // Extension: refit the core over observed entries (off by default).
        if opts.refit_core {
            refit_core_observed(x, &factors, &mut core, opts.threads, opts.schedule);
        }

        let final_error =
            sum_squared_error_raw(x, &factors, &core, opts.threads, Schedule::Static).sqrt();
        let stats = FitStats {
            iterations,
            converged,
            total_seconds: t_start.elapsed().as_secs_f64(),
            peak_intermediate_bytes: opts.budget.peak(),
            final_error,
        };
        Ok(FitResult {
            decomposition: TuckerDecomposition { factors, core },
            stats,
        })
    }
}

/// Random factor matrices with entries in `[0, 1)` (Algorithm 2 line 1).
fn init_factors(dims: &[usize], ranks: &[usize], rng: &mut StdRng) -> Vec<Matrix> {
    dims.iter()
        .zip(ranks)
        .map(|(&i_n, &j_n)| {
            let data: Vec<f64> = (0..i_n * j_n).map(|_| rng.gen::<f64>()).collect();
            Matrix::from_vec(i_n, j_n, data).expect("length matches by construction")
        })
        .collect()
}

/// Updates one factor matrix with the row-wise rule (Algorithm 3 lines
/// 5–15), fully parallel over rows.
fn update_factor(
    x: &SparseTensor,
    factors: &mut [Matrix],
    mode: usize,
    core: &CoreTensor,
    opts: &FitOptions,
    pres: Option<&PresTable>,
) -> Result<()> {
    let i_n = x.dims()[mode];
    let j_n = opts.ranks[mode];
    // Take the mode's data out so the other factors can be shared immutably
    // with the worker threads; factors[mode] is not read during its own
    // update (the δ product skips k == mode; the cached path reads the old
    // row values, which live in `data`).
    let a_n = std::mem::replace(&mut factors[mode], Matrix::zeros(0, 0));
    let mut data = a_n.into_vec();
    let solve_failed = AtomicBool::new(false);
    {
        let factors_ro: &[Matrix] = factors;
        let core_idx = core.flat_indices();
        let core_vals = core.values();
        let stride = opts.sample_stride.max(1);
        parallel_rows_mut(&mut data, j_n, opts.threads, opts.schedule, |i, row| {
            let slice = x.slice(mode, i);
            if slice.is_empty() {
                // No observations for this row: the regularized minimizer
                // is the zero vector (c = 0 in Eq. 9).
                row.fill(0.0);
                return;
            }
            let mut delta = vec![0.0f64; j_n];
            let mut b_upper = vec![0.0f64; j_n * j_n];
            let mut c = vec![0.0f64; j_n];
            for &e in slice.iter().step_by(stride) {
                let idx = x.index(e);
                match pres {
                    Some(table) => table.accumulate_delta_cached(
                        &mut delta, e, idx, mode, row, core_idx, core_vals, factors_ro,
                    ),
                    None => {
                        accumulate_delta(&mut delta, idx, mode, core_idx, core_vals, factors_ro)
                    }
                }
                accumulate_normal_eq(&mut b_upper, &mut c, &delta, x.value(e));
            }
            match solve_row(&b_upper, &c, opts.lambda) {
                Some(new_row) => row.copy_from_slice(&new_row),
                None => {
                    solve_failed.store(true, Ordering::Relaxed);
                }
            }
        });
    }
    factors[mode] = Matrix::from_vec(i_n, j_n, data)?;
    if solve_failed.load(Ordering::Relaxed) {
        return Err(PtuckerError::Linalg(
            ptucker_linalg::LinalgError::Singular { pivot: 0 },
        ));
    }
    Ok(())
}

/// Sum of squared residuals `Σ_{α∈Ω} (X_α − x̂_α)²` without materializing a
/// decomposition (borrowed factors/core; used inside the fit loop).
pub(crate) fn sum_squared_error_raw(
    x: &SparseTensor,
    factors: &[Matrix],
    core: &CoreTensor,
    threads: usize,
    schedule: Schedule,
) -> f64 {
    let order = x.order();
    let core_idx = core.flat_indices();
    let core_vals = core.values();
    parallel_reduce(
        x.nnz(),
        threads,
        schedule,
        || 0.0f64,
        |acc, e| {
            let idx = x.index(e);
            let mut rec = 0.0;
            for (b, &g) in core_vals.iter().enumerate() {
                let beta = &core_idx[b * order..(b + 1) * order];
                let mut w = g;
                for (k, factor) in factors.iter().enumerate() {
                    w *= factor[(idx[k], beta[k])];
                    if w == 0.0 {
                        break;
                    }
                }
                rec += w;
            }
            let d = x.value(e) - rec;
            acc + d * d
        },
        |a, b| a + b,
    )
}

/// Extension: re-estimates the core weights as the exact observed-entry
/// least-squares solution given the (fixed, orthonormalized) factors:
///
/// `min_G Σ_{α∈Ω} (X_α − Σ_β G_β p_{αβ})²`, `p_{αβ} = Πₙ q⁽ⁿ⁾(iₙ, βₙ)`,
///
/// solved via the `|G|×|G|` normal equations `(PᵀP + εI) g = Pᵀx` with a
/// tiny ridge for numerical safety. Because the previous core is a feasible
/// point of this problem, the refit can only lower the reconstruction
/// error. Cost is `O(|Ω|·|G|²)` — affordable for the small/truncated cores
/// this extension targets, and the reason it is off by default.
fn refit_core_observed(
    x: &SparseTensor,
    factors: &[Matrix],
    core: &mut CoreTensor,
    threads: usize,
    schedule: Schedule,
) {
    let g = core.nnz();
    if g == 0 {
        return;
    }
    let order = x.order();
    let core_idx = core.flat_indices().to_vec();
    // Accumulate (PᵀP upper triangle, Pᵀx) in one parallel pass; each worker
    // carries a contribution buffer for the current entry's p_{α·} row.
    let (ptp, ptx, _buf) = parallel_reduce(
        x.nnz(),
        threads,
        schedule,
        || (vec![0.0f64; g * g], vec![0.0f64; g], vec![0.0f64; g]),
        |(mut ptp, mut ptx, mut p), e| {
            let idx = x.index(e);
            let xv = x.value(e);
            for (b, slot) in p.iter_mut().enumerate() {
                let beta = &core_idx[b * order..(b + 1) * order];
                let mut w = 1.0;
                for (k, factor) in factors.iter().enumerate() {
                    w *= factor[(idx[k], beta[k])];
                    if w == 0.0 {
                        break;
                    }
                }
                *slot = w;
            }
            for b1 in 0..g {
                let p1 = p[b1];
                ptx[b1] += xv * p1;
                if p1 == 0.0 {
                    continue;
                }
                let row = b1 * g;
                for b2 in b1..g {
                    ptp[row + b2] += p1 * p[b2];
                }
            }
            (ptp, ptx, p)
        },
        |(mut a1, mut a2, buf), (b1, b2, _)| {
            for (x, y) in a1.iter_mut().zip(&b1) {
                *x += y;
            }
            for (x, y) in a2.iter_mut().zip(&b2) {
                *x += y;
            }
            (a1, a2, buf)
        },
    );
    // Ridge scaled to the problem: keeps the system SPD even when some core
    // entry is unidentifiable from Ω (its optimal weight then shrinks to 0).
    let max_diag = (0..g).fold(0.0f64, |m, b| m.max(ptp[b * g + b]));
    let ridge = (1e-10 * max_diag).max(1e-12);
    if let Some(new_vals) = solve_row(&ptp, &ptx, ridge) {
        core.values_mut().copy_from_slice(&new_vals);
    }
    // On the (singular, λ≈0) failure path the core is left unchanged.
}
