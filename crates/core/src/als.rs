//! The P-Tucker fit driver (Algorithms 2 and 3 of the paper).

use crate::delta::solve_row;
use crate::engine::{
    ApproxKernel, CachedKernel, DirectKernel, ModeContext, RowUpdateKernel, Scratch,
};
use crate::{
    FitOptions, FitResult, FitStats, IterStats, PtuckerError, Result, TuckerDecomposition, Variant,
};
use ptucker_linalg::Matrix;
use ptucker_sched::{parallel_reduce, parallel_rows_mut_scheduled, Schedule};
use ptucker_tensor::{CoreTensor, ModeStreams, SparseTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// The P-Tucker solver: scalable Tucker factorization for sparse tensors.
///
/// Construct with validated [`FitOptions`], then call [`PTucker::fit`] on a
/// [`SparseTensor`]. See the crate docs for a complete example.
#[derive(Debug, Clone)]
pub struct PTucker {
    opts: FitOptions,
}

impl PTucker {
    /// Creates a solver after validating the options.
    ///
    /// # Errors
    /// [`PtuckerError::InvalidConfig`] for inconsistent options.
    pub fn new(opts: FitOptions) -> Result<Self> {
        opts.validate()?;
        Ok(PTucker { opts })
    }

    /// The solver's configuration.
    pub fn options(&self) -> &FitOptions {
        &self.opts
    }

    /// Runs Algorithm 2: random initialization, iterated fully-parallel
    /// row-wise factor updates until the reconstruction error converges
    /// (or `max_iters`), then QR orthogonalization with the matching core
    /// update.
    ///
    /// When the in-memory working set — the execution plan, the scratch
    /// arenas and the variant's auxiliary state (notably the Cache
    /// variant's `|Ω|×|G|` table) — exceeds the [`crate::MemoryBudget`]
    /// and the budget's policy is `BudgetPolicy::Spill` (the default),
    /// the fit transparently runs **out of core**: the plan (and table)
    /// spill to scratch files and every mode sweep proceeds over
    /// slice-aligned windows, reproducing the in-memory fit's trajectory
    /// exactly. `FitStats::peak_spilled_bytes` reports the disk
    /// footprint. Under `BudgetPolicy::Strict` overflow stays fatal, as
    /// the paper's O.O.M. experiments require.
    ///
    /// # Errors
    /// * [`PtuckerError::InvalidConfig`] if the options do not match `x`'s
    ///   shape.
    /// * [`PtuckerError::OutOfMemory`] if intermediate data exceed the
    ///   budget under `BudgetPolicy::Strict`.
    /// * [`PtuckerError::Tensor`] if scratch-file I/O fails on the
    ///   spilled path.
    /// * [`PtuckerError::Linalg`] on numerically fatal systems (only
    ///   possible with `lambda == 0`).
    pub fn fit(&self, x: &SparseTensor) -> Result<FitResult> {
        let opts = &self.opts;
        opts.validate_for(x.dims())?;
        if crate::window::spill_required(x, opts) {
            return match opts.variant {
                Variant::Default => {
                    crate::window::run_fit_windowed(x, opts, crate::window::WinDirect)
                }
                Variant::Cache => {
                    crate::window::run_fit_windowed(x, opts, crate::window::WinCached::new())
                }
                Variant::Approx { truncation_rate } => crate::window::run_fit_windowed(
                    x,
                    opts,
                    crate::window::WinApprox::new(truncation_rate),
                ),
            };
        }
        // The only variant dispatch in the solver: pick the kernel once and
        // monomorphize the whole fit loop over it.
        match opts.variant {
            Variant::Default => run_fit(x, opts, DirectKernel),
            Variant::Cache => run_fit(x, opts, CachedKernel::new()),
            Variant::Approx { truncation_rate } => {
                run_fit(x, opts, ApproxKernel::new(truncation_rate))
            }
        }
    }
}

/// The kernel-generic fit driver (Algorithm 2, with the variant behavior
/// factored into `K`'s hooks).
fn run_fit<K: RowUpdateKernel>(
    x: &SparseTensor,
    opts: &FitOptions,
    mut kernel: K,
) -> Result<FitResult> {
    let t_start = Instant::now();
    let order = x.order();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Step 1: random initialization in [0, 1) (Algorithm 2 line 1).
    let mut factors = init_factors(x.dims(), &opts.ranks, &mut rng);
    let mut core = CoreTensor::random_dense(opts.ranks.clone(), &mut rng)?;

    // The mode-major execution plan: one streamed slice layout per mode,
    // derived from COO once per fit so every row sweep walks contiguous
    // values/indices instead of gathering through entry ids. Metered
    // before building — `O(N·|Ω|)` words. Classification note: Definition 7
    // excludes the tensor itself from intermediate-data accounting, and the
    // baselines apply that reading to their own tensor re-layouts (CSF's
    // compressed tree, S-HOT's streams) so the cross-method O.O.M.
    // boundaries keep Table III's meaning. The engine deliberately takes
    // the *stricter* reading for its own plan: it is per-fit derived data
    // the budget must be able to refuse, so P-Tucker's reported peak (and
    // OOM boundary) includes it.
    opts.budget.reset_peak();
    let _plan_reservation = opts.budget.reserve(ModeStreams::bytes_for(x))?;
    let plan = ModeStreams::build(x)?;

    // Allocate one scratch arena per worker thread, once for the whole fit;
    // every row of every mode of every iteration reuses them. Metered as
    // Theorem 4's per-thread intermediates: δ, c (J) and B, solve
    // workspace (J²) per thread.
    let j_max = opts.ranks.iter().copied().max().unwrap_or(1);
    let _row_scratch = opts
        .budget
        .reserve_f64(opts.threads * Scratch::doubles(j_max))?;
    let mut scratch_pool: Vec<Scratch> = (0..opts.threads.max(1))
        .map(|_| Scratch::new(j_max))
        .collect();

    // Kernel-specific setup: the Cache variant precomputes its |Ω|×|G|
    // table here (Algorithm 3 lines 1–4, in mode 0's stream order) and may
    // exceed the budget; the Approx variant reserves its per-thread R(β)
    // buffers.
    kernel.prepare_fit(x, &plan, &factors, &core, opts)?;

    let mut iterations: Vec<IterStats> = Vec::with_capacity(opts.max_iters);
    let mut prev_err = f64::INFINITY;
    let mut converged = false;

    for iter in 0..opts.max_iters {
        let t_iter = Instant::now();

        // Step 2-3: update factor matrices (Algorithm 2 line 3 /
        // Algorithm 3).
        for n in 0..order {
            kernel.prepare_mode(x, &plan, &factors, n, &core, opts)?;
            update_factor(
                x,
                &plan,
                &mut factors,
                n,
                &core,
                opts,
                &kernel,
                &mut scratch_pool,
            )?;
            kernel.post_mode(x, &plan, &factors, n, &core, opts);
        }

        // Step 4: reconstruction error (Algorithm 2 line 4), parallel
        // with static scheduling (Section III-D, section 3).
        let err = sum_squared_error_raw(x, &factors, &core, opts.threads, Schedule::Static).sqrt();

        // Step 5: per-iteration kernel hook — Approx truncation
        // (Algorithm 2 lines 5–6).
        kernel.post_iter(x, &factors, &mut core, opts);

        iterations.push(IterStats {
            iter,
            reconstruction_error: err,
            seconds: t_iter.elapsed().as_secs_f64(),
            core_nnz: core.nnz(),
        });

        // Convergence on relative error change (Algorithm 2 line 7).
        if err.is_finite()
            && prev_err.is_finite()
            && (prev_err - err).abs() <= opts.tol * prev_err.max(f64::EPSILON)
        {
            converged = true;
            break;
        }
        prev_err = err;
    }
    // Release kernel state (notably the Cache table's budget reservation)
    // before the post-processing phase, like the paper's Algorithm 3 which
    // frees Pres after the iterations.
    drop(kernel);
    drop(scratch_pool);

    finish_fit(x, factors, core, opts, iterations, converged, t_start)
}

/// The post-iteration phase shared **verbatim** by the in-memory and the
/// windowed fit drivers (their bitwise-equivalence guarantee depends on
/// it being one function): QR orthogonalization with the matching core
/// update (Algorithm 2 lines 8–11: A⁽ⁿ⁾ = Q⁽ⁿ⁾R⁽ⁿ⁾, A⁽ⁿ⁾ ← Q⁽ⁿ⁾,
/// G ← G ×ₙ R⁽ⁿ⁾ — reconstruction preserved exactly), the optional
/// observed-entry core refit extension, the final error measurement, and
/// the stats assembly.
pub(crate) fn finish_fit(
    x: &SparseTensor,
    mut factors: Vec<Matrix>,
    mut core: CoreTensor,
    opts: &FitOptions,
    iterations: Vec<IterStats>,
    converged: bool,
    t_start: Instant,
) -> Result<FitResult> {
    for (n, factor) in factors.iter_mut().enumerate() {
        let qr = factor.qr()?;
        let (q, r) = qr.into_parts();
        *factor = q;
        core.mode_product_in_place(n, &r, 0.0)?;
    }

    if opts.refit_core {
        refit_core_observed(x, &factors, &mut core, opts.threads, opts.schedule);
    }

    let final_error =
        sum_squared_error_raw(x, &factors, &core, opts.threads, Schedule::Static).sqrt();
    let stats = FitStats {
        iterations,
        converged,
        total_seconds: t_start.elapsed().as_secs_f64(),
        peak_intermediate_bytes: opts.budget.peak(),
        peak_spilled_bytes: opts.budget.peak_spilled(),
        final_error,
    };
    Ok(FitResult {
        decomposition: TuckerDecomposition { factors, core },
        stats,
    })
}

/// Random factor matrices with entries in `[0, 1)` (Algorithm 2 line 1).
/// Shared with the windowed driver so both paths draw the identical
/// initialization from a seed.
pub(crate) fn init_factors(dims: &[usize], ranks: &[usize], rng: &mut StdRng) -> Vec<Matrix> {
    dims.iter()
        .zip(ranks)
        .map(|(&i_n, &j_n)| {
            let data: Vec<f64> = (0..i_n * j_n).map(|_| rng.gen::<f64>()).collect();
            Matrix::from_vec(i_n, j_n, data).expect("length matches by construction")
        })
        .collect()
}

/// Updates one factor matrix with the row-wise rule (Algorithm 3 lines
/// 5–15), fully parallel over rows of the mode's streamed layout. Each
/// worker thread receives one [`Scratch`] arena from `scratch_pool` and
/// hands it to the kernel for every row it processes — the loop performs no
/// heap allocation.
///
/// Scheduling: [`Schedule::Dynamic`] pulls row chunks from a shared queue
/// (the paper's Section III-D answer to slice-size skew);
/// [`Schedule::Static`] now partitions rows into contiguous blocks balanced
/// by `|Ω⁽ⁿ⁾ᵢ|` — the same imbalance fix without queue contention. Rows
/// are independent, so both schedules produce identical factors.
#[allow(clippy::too_many_arguments)]
fn update_factor<K: RowUpdateKernel>(
    x: &SparseTensor,
    plan: &ModeStreams,
    factors: &mut [Matrix],
    mode: usize,
    core: &CoreTensor,
    opts: &FitOptions,
    kernel: &K,
    scratch_pool: &mut [Scratch],
) -> Result<()> {
    let i_n = x.dims()[mode];
    let j_n = opts.ranks[mode];
    // Take the mode's data out so the other factors can be shared immutably
    // with the worker threads; factors[mode] is not read during its own
    // update (the δ product skips k == mode; the cached path reads the old
    // row values, which live in `data`).
    let a_n = std::mem::replace(&mut factors[mode], Matrix::zeros(0, 0));
    let mut data = a_n.into_vec();
    let solve_failed = AtomicBool::new(false);
    {
        let ctx = ModeContext::new(plan, factors, core, mode, opts);
        parallel_rows_mut_scheduled(
            &mut data,
            j_n,
            opts.threads,
            opts.schedule,
            |i| ctx.stream.slice_len(i),
            scratch_pool,
            |scratch, i, row| {
                if !kernel.update_row(&ctx, scratch, i, row) {
                    solve_failed.store(true, Ordering::Relaxed);
                }
            },
        );
    }
    factors[mode] = Matrix::from_vec(i_n, j_n, data)?;
    if solve_failed.load(Ordering::Relaxed) {
        return Err(PtuckerError::Linalg(
            ptucker_linalg::LinalgError::Singular { pivot: 0 },
        ));
    }
    Ok(())
}

/// Sum of squared residuals `Σ_{α∈Ω} (X_α − x̂_α)²` without materializing a
/// decomposition (borrowed factors/core; used inside the fit loop).
pub(crate) fn sum_squared_error_raw(
    x: &SparseTensor,
    factors: &[Matrix],
    core: &CoreTensor,
    threads: usize,
    schedule: Schedule,
) -> f64 {
    let order = x.order();
    let core_idx = core.flat_indices();
    let core_vals = core.values();
    parallel_reduce(
        x.nnz(),
        threads,
        schedule,
        || 0.0f64,
        |acc, e| {
            let idx = x.index(e);
            let mut rec = 0.0;
            for (b, &g) in core_vals.iter().enumerate() {
                let beta = &core_idx[b * order..(b + 1) * order];
                let mut w = g;
                for (k, factor) in factors.iter().enumerate() {
                    w *= factor[(idx[k], beta[k])];
                    if w == 0.0 {
                        break;
                    }
                }
                rec += w;
            }
            let d = x.value(e) - rec;
            acc + d * d
        },
        |a, b| a + b,
    )
}

/// Extension: re-estimates the core weights as the exact observed-entry
/// least-squares solution given the (fixed, orthonormalized) factors:
///
/// `min_G Σ_{α∈Ω} (X_α − Σ_β G_β p_{αβ})²`, `p_{αβ} = Πₙ q⁽ⁿ⁾(iₙ, βₙ)`,
///
/// solved via the `|G|×|G|` normal equations `(PᵀP + εI) g = Pᵀx` with a
/// tiny ridge for numerical safety. Because the previous core is a feasible
/// point of this problem, the refit can only lower the reconstruction
/// error. Cost is `O(|Ω|·|G|²)` — affordable for the small/truncated cores
/// this extension targets, and the reason it is off by default.
pub(crate) fn refit_core_observed(
    x: &SparseTensor,
    factors: &[Matrix],
    core: &mut CoreTensor,
    threads: usize,
    schedule: Schedule,
) {
    let g = core.nnz();
    if g == 0 {
        return;
    }
    let order = x.order();
    let core_idx = core.flat_indices().to_vec();
    // Accumulate (PᵀP upper triangle, Pᵀx) in one parallel pass; each worker
    // carries a contribution buffer for the current entry's p_{α·} row.
    let (ptp, ptx, _buf) = parallel_reduce(
        x.nnz(),
        threads,
        schedule,
        || (vec![0.0f64; g * g], vec![0.0f64; g], vec![0.0f64; g]),
        |(mut ptp, mut ptx, mut p), e| {
            let idx = x.index(e);
            let xv = x.value(e);
            for (b, slot) in p.iter_mut().enumerate() {
                let beta = &core_idx[b * order..(b + 1) * order];
                let mut w = 1.0;
                for (k, factor) in factors.iter().enumerate() {
                    w *= factor[(idx[k], beta[k])];
                    if w == 0.0 {
                        break;
                    }
                }
                *slot = w;
            }
            for b1 in 0..g {
                let p1 = p[b1];
                ptx[b1] += xv * p1;
                if p1 == 0.0 {
                    continue;
                }
                let row = b1 * g;
                for b2 in b1..g {
                    ptp[row + b2] += p1 * p[b2];
                }
            }
            (ptp, ptx, p)
        },
        |(mut a1, mut a2, buf), (b1, b2, _)| {
            for (x, y) in a1.iter_mut().zip(&b1) {
                *x += y;
            }
            for (x, y) in a2.iter_mut().zip(&b2) {
                *x += y;
            }
            (a1, a2, buf)
        },
    );
    // Ridge scaled to the problem: keeps the system SPD even when some core
    // entry is unidentifiable from Ω (its optimal weight then shrinks to 0).
    let max_diag = (0..g).fold(0.0f64, |m, b| m.max(ptp[b * g + b]));
    let ridge = (1e-10 * max_diag).max(1e-12);
    if let Some(new_vals) = solve_row(&ptp, &ptx, ridge) {
        core.values_mut().copy_from_slice(&new_vals);
    }
    // On the (singular, λ≈0) failure path the core is left unchanged.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ApproxKernel, CachedKernel, DirectKernel, GatherReferenceKernel};
    use ptucker_datagen::planted_lowrank;

    /// Acceptance bar for the mode-major plan: every kernel on the streamed
    /// layout must reproduce the COO gather path's fit — per-iteration
    /// reconstruction-error trajectory within 1e-9 (relative) from the same
    /// seed. Direct and Approx(0) differ from the gather reference only in
    /// multiplication order inside δ; Cache differs additionally through
    /// its divide-by-old-row algebra, and must still land within the bar on
    /// this scale of problem.
    #[test]
    fn streamed_kernels_reproduce_gather_fit_trajectory() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let x = planted_lowrank(&[14, 12, 10], &[2, 2, 2], 700, 0.01, &mut rng).tensor;
        let opts = FitOptions::new(vec![2, 2, 2])
            .max_iters(5)
            .tol(0.0)
            .threads(2)
            .seed(33);
        let reference = run_fit(&x, &opts, GatherReferenceKernel::default()).unwrap();
        let direct = run_fit(&x, &opts, DirectKernel).unwrap();
        let cached = run_fit(&x, &opts, CachedKernel::new()).unwrap();
        let approx0 = run_fit(&x, &opts, ApproxKernel::new(0.0)).unwrap();
        assert_eq!(reference.stats.iterations.len(), 5);
        for (name, got) in [
            ("direct", &direct),
            ("cached", &cached),
            ("approx0", &approx0),
        ] {
            for (a, b) in reference.stats.iterations.iter().zip(&got.stats.iterations) {
                let rel = (a.reconstruction_error - b.reconstruction_error).abs()
                    / a.reconstruction_error.max(1e-12);
                assert!(rel < 1e-9, "{name} iter {}: rel {rel}", a.iter);
            }
            let rel = (reference.stats.final_error - got.stats.final_error).abs()
                / reference.stats.final_error.max(1e-12);
            assert!(rel < 1e-9, "{name} final: rel {rel}");
        }
    }

    /// The plan itself is intermediate data: its reservation must show up
    /// in the reported peak, and a budget too small for the streams must
    /// fail with the paper's O.O.M. outcome before any iteration runs.
    #[test]
    fn plan_memory_is_metered() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let x = planted_lowrank(&[10, 9, 8], &[2, 2, 2], 300, 0.01, &mut rng).tensor;
        let plan_bytes = ptucker_tensor::ModeStreams::bytes_for(&x);
        let opts = FitOptions::new(vec![2, 2, 2]).max_iters(1).seed(1);
        let fit = run_fit(&x, &opts, DirectKernel).unwrap();
        assert!(
            fit.stats.peak_intermediate_bytes >= plan_bytes,
            "peak {} must include the {plan_bytes} B plan",
            fit.stats.peak_intermediate_bytes
        );
        let tiny = FitOptions::new(vec![2, 2, 2])
            .max_iters(1)
            .seed(1)
            .budget(crate::MemoryBudget::new(plan_bytes - 1));
        let err = run_fit(&x, &tiny, DirectKernel).unwrap_err();
        assert!(matches!(err, PtuckerError::OutOfMemory(_)));
    }
}
