//! The P-Tucker fit driver (Algorithms 2 and 3 of the paper) — **one**
//! driver for every placement.
//!
//! There is a single `run_fit`: every mode sweep iterates the
//! slice-aligned windows of a [`ptucker_tensor::SweepSource`]. Where the
//! working set lives is decided once, up front, by the [`placement`] gate:
//!
//! * **All resident** — the plan, scratch arenas and the variant's
//!   auxiliary state fit the [`crate::MemoryBudget`]: the sweep source
//!   yields one zero-copy full-stream window per mode, which *is* the
//!   classic in-memory fit.
//! * **Hybrid spill** (Cache variant) — the plan fits but the `|Ω|×|G|`
//!   `Pres` table alone does not: the plan stays resident and only the
//!   table spills; sweeps are windowed at the table's tile granularity
//!   over zero-copy views of the resident plan.
//! * **Full spill** — the plan itself does not fit: it is built spilled
//!   ([`ModeStreams::build_spilled`]) and windows refill pinned buffers
//!   from the scratch file — through an **N-deep prefetch ring**
//!   ([`crate::FitOptions::prefetch_depth`]) when the windows are large
//!   enough to amortize it, overlapping upcoming reads with the current
//!   window's row updates.
//! * **Disk to disk** ([`PTucker::fit_scratch`]) — the observed entries
//!   themselves never become resident: the plan is built from a
//!   [`CooScratch`] file by external sort
//!   ([`ModeStreams::build_external`]), and every whole-tensor pass (the
//!   residual, the Approx `R(β)` ranking, the checkpoint fingerprint)
//!   streams bounded COO segments instead of indexing an entry array.
//!
//! The per-row kernel code, the RNG sequence, the error measurement and
//! the convergence test are byte-identical across placements, so spilled
//! and hybrid fits reproduce the fully resident fit **bitwise**. Under
//! [`BudgetPolicy::Strict`] the gate is bypassed, every reservation is
//! checked, and overflow surfaces as the paper's O.O.M. outcome.
//!
//! The reconstruction-error pass ([`sum_squared_error_raw`], or its
//! streamed twin [`sum_squared_error_scratch`]) reads only COO and the
//! model — never the plan or a window — so spilled fits compute the
//! residual without materializing anything; its inner loop is the
//! run-blocked [`crate::delta::reconstruct_entry_blocked`] micro-kernel.

use crate::checkpoint::FitCheckpoint;
use crate::delta::{core_runs, reconstruct_entry_blocked, solve_row};
use crate::engine::{
    ApproxKernel, CachedKernel, DirectKernel, ModeContext, RowUpdateKernel, Scratch,
};
use crate::input::scratch_fold_blocks;
use crate::sync::{FitSync, LocalSync};
use crate::{
    FitInput, FitOptions, FitResult, FitStats, IterStats, PtuckerError, Result,
    TuckerDecomposition, Variant,
};
use ptucker_linalg::Matrix;
use ptucker_memtrack::BudgetPolicy;
use ptucker_sched::{parallel_reduce, parallel_rows_mut_scheduled, Schedule};
use ptucker_tensor::{CooScratch, CoreTensor, ModeStreams, SparseTensor, SweepSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Below this many bytes per window read, the background prefetch worker
/// costs more than the read it hides: windows smaller than this are read
/// synchronously even when `FitOptions::prefetch` is on. The dominant
/// small-window cost is not the hand-off latency but the *doubled window
/// count* — halving the capacity for the second buffer doubles every
/// per-window fixed cost (scoped sweep-thread spawns, window splicing)
/// while a page-cached refill is nearly free. Measured on the
/// `windowed_fit_prefetch` fixture, ~60 KiB double-buffered windows
/// still lost 6% to the single buffer; 128 KiB is past that crossover
/// with margin.
const PREFETCH_MIN_WINDOW_BYTES: usize = 128 << 10;

/// The prefetch ring can only pay when the background refill rides a CPU
/// the sweep is not using: with a single hardware thread the refill
/// merely timeshares and every prefetched window is pure overhead, so
/// prefetch auto-disables. (Purely a scheduling choice — window contents
/// are bitwise identical either way.)
fn prefetch_has_spare_cpu() -> bool {
    std::thread::available_parallelism().map_or(1, |n| n.get()) >= 2
}

/// The P-Tucker solver: scalable Tucker factorization for sparse tensors.
///
/// Construct with validated [`FitOptions`], then call [`PTucker::fit`] on a
/// [`SparseTensor`]. See the crate docs for a complete example.
#[derive(Debug, Clone)]
pub struct PTucker {
    opts: FitOptions,
}

impl PTucker {
    /// Creates a solver after validating the options.
    ///
    /// # Errors
    /// [`PtuckerError::InvalidConfig`] for inconsistent options.
    pub fn new(opts: FitOptions) -> Result<Self> {
        opts.validate()?;
        Ok(PTucker { opts })
    }

    /// The solver's configuration.
    pub fn options(&self) -> &FitOptions {
        &self.opts
    }

    /// Runs Algorithm 2: random initialization, iterated fully-parallel
    /// row-wise factor updates until the reconstruction error converges
    /// (or `max_iters`), then QR orthogonalization with the matching core
    /// update.
    ///
    /// When the in-memory working set — the execution plan, the scratch
    /// arenas and the variant's auxiliary state (notably the Cache
    /// variant's `|Ω|×|G|` table) — exceeds the [`crate::MemoryBudget`]
    /// and the budget's policy is `BudgetPolicy::Spill` (the default),
    /// the fit transparently runs **out of core**: as much state as
    /// overflows — just the Cache table (hybrid spilling), or the plan
    /// and table both — moves to scratch files and every mode sweep
    /// proceeds over slice-aligned windows, reproducing the fully
    /// resident fit's trajectory exactly.
    /// `FitStats::peak_spilled_bytes` reports the disk footprint. Under
    /// `BudgetPolicy::Strict` overflow stays fatal, as the paper's
    /// O.O.M. experiments require.
    ///
    /// # Errors
    /// * [`PtuckerError::InvalidConfig`] if the options do not match `x`'s
    ///   shape.
    /// * [`PtuckerError::OutOfMemory`] if intermediate data exceed the
    ///   budget under `BudgetPolicy::Strict`.
    /// * [`PtuckerError::Tensor`] if scratch-file I/O fails on a spilled
    ///   path.
    /// * [`PtuckerError::Linalg`] on numerically fatal systems (only
    ///   possible with `lambda == 0`).
    pub fn fit(&self, x: &SparseTensor) -> Result<FitResult> {
        self.fit_with_sync(x, &mut LocalSync)
    }

    /// Like [`PTucker::fit`], but with [`FitSync`] hooks at the fit's
    /// coordination points — how the `ptucker-shard` **worker** runs its
    /// shard of a distributed fit (the variant's real kernel, a
    /// restricted row range per mode, factors all-reduced through the
    /// hooks). With [`LocalSync`] this *is* `fit`.
    ///
    /// # Errors
    /// Everything [`PTucker::fit`] returns, plus whatever the hooks
    /// surface (typically [`PtuckerError::Sync`]).
    pub fn fit_with_sync<S: FitSync>(&self, x: &SparseTensor, sync: &mut S) -> Result<FitResult> {
        self.fit_with_sync_resume(x, sync, None)
    }

    /// Like [`PTucker::fit_with_sync`], but continuing from an in-memory
    /// [`FitCheckpoint`] instead of (or in addition to)
    /// `FitOptions::resume_from` — how a fault-tolerant coordinator seeds
    /// a respawned `ptucker-shard` worker from checkpoint *bytes* it
    /// serialized itself, with no file round trip. When `resume` is
    /// `Some` it takes precedence over `resume_from`.
    ///
    /// # Errors
    /// Everything [`PTucker::fit_with_sync`] returns, plus
    /// [`PtuckerError::Checkpoint`] if the checkpoint does not belong to
    /// this exact fit (fingerprint or shape mismatch).
    pub fn fit_with_sync_resume<S: FitSync>(
        &self,
        x: &SparseTensor,
        sync: &mut S,
        resume: Option<FitCheckpoint>,
    ) -> Result<FitResult> {
        self.opts.validate_for(x.dims())?;
        self.dispatch_fit(&FitInput::Resident(x), sync, resume)
    }

    /// Runs the fit **disk-to-disk**: the observed entries stay in `src`'s
    /// scratch file, the execution plan is built from it by external sort
    /// ([`ModeStreams::build_external`] — sorted runs + K-way merge, all
    /// within the [`crate::MemoryBudget`]), and every whole-tensor pass
    /// (the residual, the Approx `R(β)` ranking, the checkpoint
    /// fingerprint) streams bounded COO segments. Resident memory is
    /// bounded by the budget regardless of `|Ω|`; the trajectory is
    /// **bitwise identical** to [`PTucker::fit`] on the same entries
    /// (with [`Schedule::Static`] for the Approx variant's `R(β)` pass
    /// and the optional core refit, whose streamed twins use static
    /// blocking).
    ///
    /// # Errors
    /// Everything [`PTucker::fit`] returns, plus
    /// [`PtuckerError::InvalidConfig`] under `BudgetPolicy::Strict` — the
    /// Strict regime declares everything resident, which a scratch-file
    /// input can never be.
    pub fn fit_scratch(&self, src: &CooScratch) -> Result<FitResult> {
        self.fit_scratch_with_sync(src, &mut LocalSync)
    }

    /// [`PTucker::fit_scratch`] with [`FitSync`] hooks at the fit's
    /// coordination points (see [`PTucker::fit_with_sync`]).
    ///
    /// # Errors
    /// Everything [`PTucker::fit_scratch`] returns, plus whatever the
    /// hooks surface.
    pub fn fit_scratch_with_sync<S: FitSync>(
        &self,
        src: &CooScratch,
        sync: &mut S,
    ) -> Result<FitResult> {
        self.fit_scratch_with_sync_resume(src, sync, None)
    }

    /// [`PTucker::fit_scratch_with_sync`] continuing from an in-memory
    /// [`FitCheckpoint`] (see [`PTucker::fit_with_sync_resume`]). The
    /// fingerprint is streamed from the scratch file and matches the
    /// resident flavor byte for byte, so checkpoints written by a
    /// resident fit of the same entries resume a disk-to-disk fit and
    /// vice versa.
    ///
    /// # Errors
    /// Everything [`PTucker::fit_scratch_with_sync`] returns, plus
    /// [`PtuckerError::Checkpoint`] on fingerprint/shape mismatch.
    pub fn fit_scratch_with_sync_resume<S: FitSync>(
        &self,
        src: &CooScratch,
        sync: &mut S,
        resume: Option<FitCheckpoint>,
    ) -> Result<FitResult> {
        self.opts.validate_for(src.dims())?;
        self.dispatch_fit(&FitInput::Scratch(src), sync, resume)
    }

    /// The only variant dispatch in the solver: pick the kernel once and
    /// monomorphize the whole fit loop over it.
    fn dispatch_fit<S: FitSync>(
        &self,
        input: &FitInput<'_>,
        sync: &mut S,
        resume: Option<FitCheckpoint>,
    ) -> Result<FitResult> {
        let opts = &self.opts;
        match opts.variant {
            Variant::Default => run_fit(input, opts, DirectKernel, sync, resume),
            Variant::Cache => run_fit(input, opts, CachedKernel::new(), sync, resume),
            Variant::Approx { truncation_rate } => run_fit(
                input,
                opts,
                ApproxKernel::new(truncation_rate),
                sync,
                resume,
            ),
        }
    }

    /// Like [`PTucker::fit_with_sync`], but with an explicit
    /// [`RowUpdateKernel`] instead of the variant dispatch — how the
    /// `ptucker-shard` **coordinator** joins the lockstep replica run
    /// without paying for per-row state it never sweeps (its row ranges
    /// are empty, so it runs [`DirectKernel`] even under
    /// [`Variant::Cache`], skipping the `|Ω|×|G|` table entirely; under
    /// [`Variant::Approx`] it must pass [`ApproxKernel`] so the
    /// replicated truncation decisions stay identical).
    ///
    /// # Errors
    /// Everything [`PTucker::fit_with_sync`] returns.
    pub fn fit_with_kernel<K: RowUpdateKernel, S: FitSync>(
        &self,
        x: &SparseTensor,
        kernel: K,
        sync: &mut S,
    ) -> Result<FitResult> {
        self.fit_with_kernel_resume(x, kernel, sync, None)
    }

    /// [`PTucker::fit_with_kernel`] continuing from an in-memory
    /// [`FitCheckpoint`] (see [`PTucker::fit_with_sync_resume`]). The
    /// checkpoint's `kernel_aux` must match `kernel` — a coordinator
    /// substituting [`DirectKernel`] under [`Variant::Cache`] clears the
    /// aux section before resuming, since it never owns the table the
    /// aux bytes describe.
    ///
    /// # Errors
    /// Everything [`PTucker::fit_with_kernel`] returns, plus
    /// [`PtuckerError::Checkpoint`] on fingerprint/shape/aux mismatch.
    pub fn fit_with_kernel_resume<K: RowUpdateKernel, S: FitSync>(
        &self,
        x: &SparseTensor,
        kernel: K,
        sync: &mut S,
        resume: Option<FitCheckpoint>,
    ) -> Result<FitResult> {
        let opts = &self.opts;
        opts.validate_for(x.dims())?;
        run_fit(&FitInput::Resident(x), opts, kernel, sync, resume)
    }
}

/// Where a fit's data plane lives, decided once before anything is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Placement {
    /// The execution plan goes to a scratch file (full spill).
    spill_plan: bool,
    /// The kernel's spillable auxiliary state — the Cache variant's
    /// `Pres` table — goes to a scratch file. Implied by `spill_plan`;
    /// on its own this is **hybrid spilling** (plan resident, table not).
    spill_table: bool,
}

impl Placement {
    fn resident() -> Self {
        Placement {
            spill_plan: false,
            spill_table: false,
        }
    }

    fn windowed(&self) -> bool {
        self.spill_plan || self.spill_table
    }
}

/// Bytes the fit keeps resident regardless of the spill decision: the
/// mode-major plan, the per-thread scratch arenas (Theorem 4), and the
/// Approx variant's per-thread `R(β)` buffers (tiny; not worth a spilled
/// representation).
fn resident_floor_bytes(dims: &[usize], nnz: usize, opts: &FitOptions) -> usize {
    let g: usize = opts.ranks.iter().product();
    let j_max = opts.ranks.iter().copied().max().unwrap_or(1);
    let scratch = opts.threads * Scratch::doubles(j_max) * 8;
    let aux = match opts.variant {
        Variant::Approx { truncation_rate } if truncation_rate > 0.0 => opts.threads * 2 * g * 8,
        _ => 0,
    };
    ModeStreams::bytes_for_dims(dims, nnz, opts.precision)
        .saturating_add(scratch)
        .saturating_add(aux)
}

/// Bytes of the Cache variant's `|Ω|×|G|` table — the one piece of
/// auxiliary state with its own spilled representation (0 for the other
/// variants). Scales with the fit's storage precision: an f32 table is
/// half the footprint, which is exactly how `StoragePrecision::F32`
/// doubles the budget's reach before the gate starts spilling.
fn table_bytes(nnz: usize, opts: &FitOptions) -> usize {
    match opts.variant {
        Variant::Cache => {
            let g: usize = opts.ranks.iter().product();
            nnz.saturating_mul(g) * opts.precision.value_bytes()
        }
        _ => 0,
    }
}

/// Bytes the fully resident fit will reserve up front for `x` under
/// `opts` — the placement gate's all-resident threshold, and the exact
/// boundary below which a Spill-policy budget starts spilling.
pub(crate) fn in_memory_bytes(dims: &[usize], nnz: usize, opts: &FitOptions) -> usize {
    resident_floor_bytes(dims, nnz, opts).saturating_add(table_bytes(nnz, opts))
}

/// The placement gate: all-resident when everything fits; hybrid (table
/// only) when the floor fits but the Cache table does not; full spill
/// otherwise. A disk-resident input always takes the full spill — its
/// entries are not resident, so the plan can only be built by external
/// sort (spilled by construction), carrying any Cache table with it.
/// Under [`BudgetPolicy::Strict`] everything is declared resident and
/// the checked reservations downstream produce the paper's O.O.M.
/// outcome.
fn placement(input: &FitInput<'_>, opts: &FitOptions) -> Placement {
    if opts.budget.policy() != BudgetPolicy::Spill {
        return Placement::resident();
    }
    let (dims, nnz) = (input.dims(), input.nnz());
    let table = table_bytes(nnz, opts);
    if matches!(input, FitInput::Scratch(_)) {
        return Placement {
            spill_plan: true,
            spill_table: table > 0,
        };
    }
    let floor = resident_floor_bytes(dims, nnz, opts);
    if opts.budget.would_fit(in_memory_bytes(dims, nnz, opts)) {
        Placement::resident()
    } else if opts.budget.would_fit(floor) {
        Placement {
            spill_plan: false,
            spill_table: table > 0,
        }
    } else {
        Placement {
            spill_plan: true,
            spill_table: table > 0,
        }
    }
}

/// The kernel-generic fit driver (Algorithm 2, with the variant behavior
/// factored into `K`'s hooks) — the **only** fit driver: mode sweeps
/// iterate a [`SweepSource`], so resident, hybrid-spilled and fully
/// spilled fits run the same loop (a resident fit's sweep is one
/// full-stream window per mode).
fn run_fit<K: RowUpdateKernel, S: FitSync>(
    input: &FitInput<'_>,
    opts: &FitOptions,
    mut kernel: K,
    sync: &mut S,
    resume: Option<FitCheckpoint>,
) -> Result<FitResult> {
    if matches!(input, FitInput::Scratch(_)) && opts.budget.policy() != BudgetPolicy::Spill {
        return Err(PtuckerError::InvalidConfig(
            "a disk-resident COO source requires BudgetPolicy::Spill — the Strict policy \
             declares everything resident, which a scratch-file input can never be"
                .into(),
        ));
    }
    let t_start = Instant::now();
    let dims = input.dims();
    let order = input.order();
    let nnz = input.nnz();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Step 1: random initialization in [0, 1) (Algorithm 2 line 1).
    let mut factors = init_factors(dims, &opts.ranks, &mut rng);
    let mut core = CoreTensor::random_dense(opts.ranks.clone(), &mut rng)?;

    opts.budget.reset_peak();
    let io_read0 = opts.budget.io_read_bytes();
    let io_write0 = opts.budget.io_write_bytes();
    let place = placement(input, opts);

    // The mode-major execution plan: one streamed slice layout per mode,
    // derived from COO once per fit so every row sweep walks contiguous
    // values/indices instead of gathering through entry ids. Metered
    // before building — `O(N·|Ω|)` words. Classification note: Definition 7
    // excludes the tensor itself from intermediate-data accounting, and the
    // baselines apply that reading to their own tensor re-layouts (CSF's
    // compressed tree, S-HOT's streams) so the cross-method O.O.M.
    // boundaries keep Table III's meaning. The engine deliberately takes
    // the *stricter* reading for its own plan: it is per-fit derived data
    // the budget must be able to refuse, so P-Tucker's reported peak (and
    // OOM boundary) includes it. A spilled plan books its resident floor
    // (offsets + inverse entry maps) unchecked and its file bytes on the
    // spill meter.
    let mut plan_reservation = None;
    let plan = match input {
        // Disk-resident entries: the plan can only come from the external
        // sort — sorted runs off bounded chunks of the scratch file,
        // K-way merged straight into the spilled stream layout.
        FitInput::Scratch(src) => {
            ModeStreams::build_external_at(src, &opts.budget, opts.precision)?
        }
        FitInput::Resident(x) if place.spill_plan => {
            ModeStreams::build_spilled_at(x, &opts.budget, opts.precision)?
        }
        FitInput::Resident(x) => {
            plan_reservation = Some(
                opts.budget
                    .reserve(ModeStreams::bytes_for_at(x, opts.precision))?,
            );
            ModeStreams::build_at(x, opts.precision)?
        }
    };
    let _plan_reservation = plan_reservation;

    // Allocate one scratch arena per worker thread, once for the whole fit;
    // every row of every mode of every iteration reuses them. Metered as
    // Theorem 4's per-thread intermediates: δ, c (J) and B, solve
    // workspace (J²) per thread — checked while anything is resident,
    // an unchecked part of the irreducible floor once the plan spilled.
    let j_max = opts.ranks.iter().copied().max().unwrap_or(1);
    let scratch_doubles = opts.threads * Scratch::doubles(j_max);
    let _row_scratch = if place.spill_plan {
        opts.budget.reserve_unchecked(scratch_doubles * 8)
    } else {
        opts.budget.reserve_f64(scratch_doubles)?
    };
    let mut scratch_pool: Vec<Scratch> = (0..opts.threads.max(1))
        .map(|_| Scratch::new(j_max))
        .collect();

    // Window capacity from what is left of the budget. Each windowed
    // stream position costs its plan bytes (value + packed indices +
    // entry id — only if the plan is spilled) plus its Pres tile doubles
    // (only if the table is: the tile row, its staging twin for the
    // coalesced reorder scatter, and one double's worth of (dest, src)
    // permutation pair). A slice larger than the capacity is still taken
    // whole — windows are slice-aligned — so pinned buffers are sized for
    // the larger of the two. With prefetch the plan buffer exists
    // **twice**, so the per-position cost doubles its stream part and the
    // capacity halves accordingly — the two buffers together fit the
    // remaining budget, they don't overshoot it; prefetch only engages if
    // the halved windows still clear the amortization threshold.
    let g = core.nnz();
    let vb = opts.precision.value_bytes();
    // Per-position tile cost: the Pres row and its staging twin at the
    // storage precision, plus the 8-byte (dest, src) permutation pair.
    let tile_pos_bytes = if place.spill_table { 2 * g * vb + 8 } else { 0 };
    let stream_pos_bytes = if place.spill_plan {
        vb + 4 * (order - 1) + 4
    } else {
        0
    };
    let cap_for = |buffer_copies: usize| {
        (opts.budget.available() / (buffer_copies * stream_pos_bytes + tile_pos_bytes).max(1))
            .max(1)
    };
    // Ring depth: the deepest depth in `2..=prefetch_depth` whose windows
    // (at `1/depth` of the single-buffer capacity) still clear the
    // amortization threshold, else 1 (no prefetch). Self-clamping — a
    // depth the budget can't afford windows for simply isn't chosen — so
    // raising `prefetch_depth` can widen the read-ahead but never shrink
    // windows below the profitable floor.
    let depth = if place.spill_plan && opts.prefetch && prefetch_has_spare_cpu() {
        (2..=opts.prefetch_depth.max(1))
            .rev()
            .find(|&d| cap_for(d).saturating_mul(stream_pos_bytes) >= PREFETCH_MIN_WINDOW_BYTES)
            .unwrap_or(1)
    } else {
        1
    };
    let (cap, prefetch) = if !place.windowed() {
        (usize::MAX, false)
    } else {
        (cap_for(depth), depth >= 2)
    };
    let mut _window_buffers: Vec<ptucker_memtrack::Reservation> = Vec::new();
    if place.windowed() {
        let buf_positions = cap.max(plan.max_slice_len()).min(nnz.max(1));
        if place.spill_plan {
            _window_buffers.push(
                opts.budget
                    .reserve_unchecked(depth * buf_positions * stream_pos_bytes),
            );
        }
        if place.spill_table {
            _window_buffers.push(
                opts.budget
                    .reserve_unchecked(buf_positions * tile_pos_bytes),
            );
        }
    }
    // The fit's one sweep source: pinned ring buffers (if any) are
    // allocated here, sized for any mode, and rewound for every sweep of
    // every iteration.
    let mut sweep = plan.sweep_source_deep(0, cap, depth);

    // Kernel-specific setup: the Cache variant computes its |Ω|×|G|
    // table here (Algorithm 3 lines 1–4, in mode 0's stream order) —
    // resident when it fits, streamed to its own scratch file when the
    // gate said to spill it; the Approx variant reserves its per-thread
    // R(β) buffers.
    kernel.prepare_fit(
        input,
        &plan,
        &factors,
        &core,
        opts,
        &mut sweep,
        place.spill_table,
    )?;

    let mut iterations: Vec<IterStats> = Vec::with_capacity(opts.max_iters);
    let mut prev_err = f64::INFINITY;
    let mut converged = false;
    let mut start_iter = 0usize;

    // The configuration fingerprint ties a checkpoint to this exact fit.
    // It hashes every observed entry, so it is computed at most once:
    // eagerly when the options say checkpoints are in play, lazily if
    // only the sync layer asks for a snapshot (`FitSync::end_iter`).
    let mut fingerprint: Option<u64> =
        if resume.is_some() || opts.checkpoint_path.is_some() || opts.resume_from.is_some() {
            Some(fingerprint_input(input, opts)?)
        } else {
            None
        };

    // Resume: the fit ran its full initialization above — same RNG
    // sequence, same placement, same kernel layout — and now overwrites
    // the model state with the checkpoint's. `load_aux` runs after
    // `prepare_fit` so the kernel's structures are already sized; at an
    // iteration boundary the Cache table is in mode 0's stream order,
    // matching the freshly built one, and the import replaces its exact
    // (incrementally rescaled) element values — which a rebuild from the
    // checkpointed factors could *not* reproduce bitwise.
    let resume = match resume {
        Some(ckpt) => Some(ckpt),
        None => match &opts.resume_from {
            Some(path) => Some(FitCheckpoint::load(path)?),
            None => None,
        },
    };
    if let Some(ckpt) = resume {
        let want = fingerprint.expect("computed above whenever a resume is present");
        if ckpt.fingerprint != want {
            return Err(PtuckerError::Checkpoint(format!(
                "checkpoint was written by a different fit (its fingerprint {:#018x}, this \
                 fit's {:#018x}) — tensor, ranks, seed, variant, precision, λ or stride \
                 disagree",
                ckpt.fingerprint, want
            )));
        }
        if ckpt.factors.len() != order
            || ckpt
                .factors
                .iter()
                .zip(dims.iter().zip(&opts.ranks))
                .any(|(m, (&d, &r))| m.rows() != d || m.cols() != r)
        {
            return Err(PtuckerError::Checkpoint(
                "checkpointed factor shapes do not match this fit".into(),
            ));
        }
        factors = ckpt.factors;
        core = ckpt.core;
        kernel.load_aux(&ckpt.kernel_aux)?;
        prev_err = ckpt.prev_err;
        iterations = ckpt.iterations;
        start_iter = ckpt.next_iter;
    }

    for iter in start_iter..opts.max_iters {
        let t_iter = Instant::now();

        // Step 2-3: update factor matrices (Algorithm 2 line 3 /
        // Algorithm 3).
        for n in 0..order {
            sync.begin_mode(iter, n)?;
            kernel.prepare_mode(input, &plan, &factors, n, &core, opts)?;
            update_factor(
                dims[n],
                &mut factors,
                n,
                &core,
                opts,
                &mut kernel,
                &mut scratch_pool,
                &mut sweep,
                sync,
            )?;
            kernel.post_mode(input, &plan, &factors, n, &core, opts, &mut sweep)?;
        }

        // Step 4: reconstruction error (Algorithm 2 line 4), parallel
        // with static scheduling (Section III-D, section 3). COO-based on
        // every placement — the bitwise spilled ≡ resident guarantee
        // depends on the error being window-independent. A disk-resident
        // input streams the same arithmetic over bounded COO segments.
        let err = match input {
            FitInput::Resident(x) => {
                sum_squared_error_raw(x, &factors, &core, opts.threads, Schedule::Static)
            }
            FitInput::Scratch(src) => {
                sum_squared_error_scratch(src, &factors, &core, opts.threads)?
            }
        }
        .sqrt();

        // Step 5: per-iteration kernel hook — Approx truncation
        // (Algorithm 2 lines 5–6).
        kernel.post_iter(input, &factors, &mut core, opts)?;

        iterations.push(IterStats {
            iter,
            reconstruction_error: err,
            seconds: t_iter.elapsed().as_secs_f64(),
            core_nnz: core.nnz(),
        });

        // Convergence on relative error change (Algorithm 2 line 7).
        if err.is_finite()
            && prev_err.is_finite()
            && (prev_err - err).abs() <= opts.tol * prev_err.max(f64::EPSILON)
        {
            converged = true;
            break;
        }
        prev_err = err;

        // Iteration-boundary fault tolerance: persist a checkpoint at the
        // configured cadence, then give the sync layer an on-demand
        // serializer (a fault-tolerant coordinator seeds respawned
        // workers with it). A converged iteration breaks above and never
        // checkpoints — resuming re-runs the converging iteration
        // deterministically and stops at the same place.
        if let Some(path) = &opts.checkpoint_path {
            if (iter + 1) % opts.checkpoint_every.max(1) == 0 {
                let fp = ensure_fingerprint(&mut fingerprint, input, opts)?;
                snapshot_checkpoint(
                    &kernel,
                    fp,
                    iter + 1,
                    prev_err,
                    &iterations,
                    &factors,
                    &core,
                )?
                .store(path)?;
            }
        }
        let mut make_checkpoint = || {
            let fp = ensure_fingerprint(&mut fingerprint, input, opts)?;
            snapshot_checkpoint(
                &kernel,
                fp,
                iter + 1,
                prev_err,
                &iterations,
                &factors,
                &core,
            )
            .map(|c| c.encode())
        };
        sync.end_iter(iter, &mut make_checkpoint)?;
    }
    // Release kernel state (notably the Cache table's budget reservation
    // or scratch file), the arenas and the sweep buffers before the
    // post-processing phase, like the paper's Algorithm 3 which frees
    // Pres after the iterations.
    drop(kernel);
    drop(scratch_pool);
    drop(sweep);

    finish_fit(
        input, factors, core, opts, iterations, converged, prefetch, io_read0, io_write0, t_start,
        sync,
    )
}

/// The post-iteration phase: QR orthogonalization with the matching core
/// update (Algorithm 2 lines 8–11: A⁽ⁿ⁾ = Q⁽ⁿ⁾R⁽ⁿ⁾, A⁽ⁿ⁾ ← Q⁽ⁿ⁾,
/// G ← G ×ₙ R⁽ⁿ⁾ — reconstruction preserved exactly), the optional
/// observed-entry core refit extension, the final error measurement, and
/// the stats assembly.
#[allow(clippy::too_many_arguments)]
fn finish_fit<S: FitSync>(
    input: &FitInput<'_>,
    mut factors: Vec<Matrix>,
    mut core: CoreTensor,
    opts: &FitOptions,
    iterations: Vec<IterStats>,
    converged: bool,
    prefetch_engaged: bool,
    io_read0: u64,
    io_write0: u64,
    t_start: Instant,
    sync: &mut S,
) -> Result<FitResult> {
    for (n, factor) in factors.iter_mut().enumerate() {
        let qr = factor.qr()?;
        let (q, r) = qr.into_parts();
        *factor = q;
        core.mode_product_in_place(n, &r, 0.0)?;
    }

    if opts.refit_core {
        match input {
            FitInput::Resident(x) => {
                refit_core_observed(x, &factors, &mut core, opts.threads, opts.schedule);
            }
            FitInput::Scratch(src) => {
                refit_core_observed_scratch(src, &factors, &mut core, opts.threads)?;
            }
        }
    }

    let final_error = match input {
        FitInput::Resident(x) => {
            sum_squared_error_raw(x, &factors, &core, opts.threads, Schedule::Static)
        }
        FitInput::Scratch(src) => sum_squared_error_scratch(src, &factors, &core, opts.threads)?,
    }
    .sqrt();
    let mut stats = FitStats {
        iterations,
        converged,
        total_seconds: t_start.elapsed().as_secs_f64(),
        peak_intermediate_bytes: opts.budget.peak(),
        peak_spilled_bytes: opts.budget.peak_spilled(),
        final_error,
        bytes_sent: 0,
        bytes_received: 0,
        io_read_bytes: opts.budget.io_read_bytes().saturating_sub(io_read0),
        io_write_bytes: opts.budget.io_write_bytes().saturating_sub(io_write0),
        prefetch_engaged,
    };
    sync.finish(&mut stats)?;
    Ok(FitResult {
        decomposition: TuckerDecomposition { factors, core },
        stats,
    })
}

/// Serializes the fit's full current state at an iteration boundary —
/// the model, the convergence bookkeeping, and the kernel's auxiliary
/// state (the Cache variant's incrementally rescaled `Pres` table, which
/// no rebuild can reproduce bitwise).
fn snapshot_checkpoint<K: RowUpdateKernel>(
    kernel: &K,
    fingerprint: u64,
    next_iter: usize,
    prev_err: f64,
    iterations: &[IterStats],
    factors: &[Matrix],
    core: &CoreTensor,
) -> Result<FitCheckpoint> {
    let mut kernel_aux = Vec::new();
    kernel.save_aux(&mut kernel_aux)?;
    Ok(FitCheckpoint {
        fingerprint,
        next_iter,
        prev_err,
        iterations: iterations.to_vec(),
        factors: factors.to_vec(),
        core: core.clone(),
        kernel_aux,
    })
}

/// Random factor matrices with entries in `[0, 1)` (Algorithm 2 line 1).
fn init_factors(dims: &[usize], ranks: &[usize], rng: &mut StdRng) -> Vec<Matrix> {
    dims.iter()
        .zip(ranks)
        .map(|(&i_n, &j_n)| {
            let data: Vec<f64> = (0..i_n * j_n).map(|_| rng.gen::<f64>()).collect();
            Matrix::from_vec(i_n, j_n, data).expect("length matches by construction")
        })
        .collect()
}

/// Updates one factor matrix with the row-wise rule (Algorithm 3 lines
/// 5–15), sweeping the mode's [`SweepSource`] window by window — one
/// zero-copy full-stream window on a resident plan, budget-sized
/// pinned-buffer refills on a spilled one. Windows load sequentially
/// (interleaved with the kernel's `begin_window` tile pages and, with
/// prefetch, overlapped with the next window's read); rows **within** a
/// window update fully in parallel, each worker thread reusing one
/// [`Scratch`] arena from `scratch_pool` — the loop performs no heap
/// allocation.
///
/// Scheduling: [`Schedule::Dynamic`] pulls row chunks from a shared queue
/// (the paper's Section III-D answer to slice-size skew);
/// [`Schedule::Static`] partitions rows into contiguous blocks balanced
/// by `|Ω⁽ⁿ⁾ᵢ|` — the same imbalance fix without queue contention. Rows
/// are independent and each row's arithmetic is self-contained, so every
/// schedule and every window partition produces identical factors.
/// One restricted row sweep of `mode`: window-by-window kernel row
/// updates for `rows`, written into the full factor buffer `data`
/// (`i_n × j_n`, row-major — window slice ranges are global row
/// indices). Factored out of [`update_factor`] so the *same* engine —
/// same kernel, schedule, scratch arenas and window mechanics — serves
/// both the main owned-range sweep and the `resweep` callback handed to
/// [`FitSync::sync_factor`] (a fault-tolerant coordinator re-covering a
/// dead peer's rows bitwise). Returns whether every solve succeeded.
#[allow(clippy::too_many_arguments)]
fn sweep_rows<K: RowUpdateKernel>(
    factors: &[Matrix],
    mode: usize,
    core: &CoreTensor,
    opts: &FitOptions,
    kernel: &mut K,
    scratch_pool: &mut [Scratch],
    sweep: &mut SweepSource<'_>,
    runs: &[u32],
    rows: Range<usize>,
    j_n: usize,
    data: &mut [f64],
) -> Result<bool> {
    let solve_failed = AtomicBool::new(false);
    sweep.rewind_range(mode, rows);
    while let Some(w) = sweep.next_window()? {
        kernel.begin_window(&w)?;
        let k: &K = kernel;
        let ctx =
            ModeContext::with_runs(w.stream, w.base, factors, core, mode, opts, runs.to_vec());
        let window_rows = &mut data[w.slices.start * j_n..w.slices.end * j_n];
        parallel_rows_mut_scheduled(
            window_rows,
            j_n,
            opts.threads,
            opts.schedule,
            |r| ctx.stream.slice_len(r),
            scratch_pool,
            |scratch, r, row| {
                if !k.update_row(&ctx, scratch, r, row) {
                    solve_failed.store(true, Ordering::Relaxed);
                }
            },
        );
    }
    Ok(!solve_failed.load(Ordering::Relaxed))
}

#[allow(clippy::too_many_arguments)]
fn update_factor<K: RowUpdateKernel, S: FitSync>(
    i_n: usize,
    factors: &mut [Matrix],
    mode: usize,
    core: &CoreTensor,
    opts: &FitOptions,
    kernel: &mut K,
    scratch_pool: &mut [Scratch],
    sweep: &mut SweepSource<'_>,
    sync: &mut S,
) -> Result<()> {
    let j_n = opts.ranks[mode];
    // The rows this process owns: everything on a single-process fit, a
    // shard's contiguous block on a distributed one. Slices of mode `n`
    // are its rows, so the owned range is exactly a sweep restriction.
    let owned = sync.row_range(mode, i_n);
    debug_assert!(owned.start <= owned.end && owned.end <= i_n);
    // Take the mode's data out so the other factors can be shared immutably
    // with the worker threads; factors[mode] is not read during its own
    // update (the δ product skips k == mode; the cached path reads the old
    // row values, which live in `data`).
    let a_n = std::mem::replace(&mut factors[mode], Matrix::zeros(0, 0));
    let mut data = a_n.into_vec();
    // Run structure once per mode sweep; every window's context shares it
    // (a clone is one small memcpy, not a core rescan).
    let runs = core_runs(core.flat_indices(), core.order());
    let local_ok = sweep_rows(
        factors,
        mode,
        core,
        opts,
        kernel,
        scratch_pool,
        sweep,
        &runs,
        owned,
        j_n,
        &mut data,
    )?;
    // All-reduce point: trade the owned rows for the merged factor before
    // it is installed for the next mode's δ products. No-op (and
    // `local_ok` always observed true → still an error below) on a
    // single-process fit; the distributed hook overwrites `data` and
    // surfaces any *peer's* failed solve as its own error, so every
    // process abandons the fit together. The `resweep` callback hands the
    // sync layer this same sweep engine, restricted to arbitrary row
    // ranges — a fault-tolerant coordinator covers a dead peer's rows
    // with it, bitwise identically to the peer's own sweep.
    {
        let shared: &[Matrix] = factors;
        let mut resweep = |rows: Range<usize>, buf: &mut [f64]| {
            sweep_rows(
                shared,
                mode,
                core,
                opts,
                kernel,
                scratch_pool,
                sweep,
                &runs,
                rows,
                j_n,
                buf,
            )
        };
        sync.sync_factor(mode, j_n, &mut data, local_ok, &mut resweep)?;
    }
    factors[mode] = Matrix::from_vec(i_n, j_n, data)?;
    if !local_ok {
        return Err(PtuckerError::Linalg(
            ptucker_linalg::LinalgError::Singular { pivot: 0 },
        ));
    }
    Ok(())
}

/// Sum of squared residuals `Σ_{α∈Ω} (X_α − x̂_α)²` without materializing a
/// decomposition (borrowed factors/core; used inside the fit loop).
///
/// The reconstruction inner loop is the run-blocked micro-kernel
/// ([`reconstruct_entry_blocked`]): one shared prefix product per run of
/// lexicographic core entries, the run tail one contiguous
/// [`ptucker_linalg::kernels::dot`] — the run structure is computed once
/// per call and shared by every entry. Reads only COO and the model, so
/// the residual costs the same on every plan placement: spilled fits
/// never touch their scratch files here.
pub(crate) fn sum_squared_error_raw(
    x: &SparseTensor,
    factors: &[Matrix],
    core: &CoreTensor,
    threads: usize,
    schedule: Schedule,
) -> f64 {
    let core_idx = core.flat_indices();
    let core_vals = core.values();
    let runs = core_runs(core_idx, core.order());
    parallel_reduce(
        x.nnz(),
        threads,
        schedule,
        || 0.0f64,
        |acc, e| {
            let rec = reconstruct_entry_blocked(x.index(e), core_idx, core_vals, &runs, factors);
            let d = x.value(e) - rec;
            acc + d * d
        },
        |a, b| a + b,
    )
}

/// [`sum_squared_error_raw`] over a disk-resident COO source: the same
/// run-blocked reconstruction streamed through bounded COO segments. Uses
/// the static block schedule (see [`scratch_fold_blocks`]) — deterministic
/// at every thread count, bitwise-equal to the resident pass under
/// `Schedule::Static` at `threads ≤ 2` (the driver always measures the
/// residual statically, so resident and disk-to-disk trajectories match).
pub(crate) fn sum_squared_error_scratch(
    src: &CooScratch,
    factors: &[Matrix],
    core: &CoreTensor,
    threads: usize,
) -> Result<f64> {
    let core_idx = core.flat_indices();
    let core_vals = core.values();
    let runs = core_runs(core_idx, core.order());
    let order = src.order();
    let (sse, _idx) = scratch_fold_blocks(
        src,
        threads,
        || (0.0f64, vec![0usize; order]),
        |(acc, idx), ints, xv| {
            for (slot, &i) in idx.iter_mut().zip(ints) {
                *slot = i as usize;
            }
            let rec = reconstruct_entry_blocked(idx, core_idx, core_vals, &runs, factors);
            let d = xv - rec;
            *acc += d * d;
        },
        |(a, idx), (b, _)| (a + b, idx),
    )?;
    Ok(sse)
}

/// The checkpoint fingerprint for either input flavor — identical hash
/// bytes, so resident and disk-to-disk fits of the same entries share
/// checkpoints.
fn fingerprint_input(input: &FitInput<'_>, opts: &FitOptions) -> Result<u64> {
    match input {
        FitInput::Resident(x) => Ok(FitCheckpoint::fingerprint(x, opts)),
        FitInput::Scratch(src) => FitCheckpoint::fingerprint_scratch(src, opts),
    }
}

/// Lazily computes (and caches) the fit fingerprint — the streamed flavor
/// is fallible, so this replaces `Option::get_or_insert_with`.
fn ensure_fingerprint(
    fingerprint: &mut Option<u64>,
    input: &FitInput<'_>,
    opts: &FitOptions,
) -> Result<u64> {
    if let Some(fp) = *fingerprint {
        return Ok(fp);
    }
    let fp = fingerprint_input(input, opts)?;
    *fingerprint = Some(fp);
    Ok(fp)
}

/// Extension: re-estimates the core weights as the exact observed-entry
/// least-squares solution given the (fixed, orthonormalized) factors:
///
/// `min_G Σ_{α∈Ω} (X_α − Σ_β G_β p_{αβ})²`, `p_{αβ} = Πₙ q⁽ⁿ⁾(iₙ, βₙ)`,
///
/// solved via the `|G|×|G|` normal equations `(PᵀP + εI) g = Pᵀx` with a
/// tiny ridge for numerical safety. Because the previous core is a feasible
/// point of this problem, the refit can only lower the reconstruction
/// error. Cost is `O(|Ω|·|G|²)` — affordable for the small/truncated cores
/// this extension targets, and the reason it is off by default.
pub(crate) fn refit_core_observed(
    x: &SparseTensor,
    factors: &[Matrix],
    core: &mut CoreTensor,
    threads: usize,
    schedule: Schedule,
) {
    let g = core.nnz();
    if g == 0 {
        return;
    }
    let order = x.order();
    let core_idx = core.flat_indices().to_vec();
    // Accumulate (PᵀP upper triangle, Pᵀx) in one parallel pass; each worker
    // carries a contribution buffer for the current entry's p_{α·} row.
    let (ptp, ptx, _buf) = parallel_reduce(
        x.nnz(),
        threads,
        schedule,
        || (vec![0.0f64; g * g], vec![0.0f64; g], vec![0.0f64; g]),
        |(mut ptp, mut ptx, mut p), e| {
            let idx = x.index(e);
            let xv = x.value(e);
            for (b, slot) in p.iter_mut().enumerate() {
                let beta = &core_idx[b * order..(b + 1) * order];
                let mut w = 1.0;
                for (k, factor) in factors.iter().enumerate() {
                    w *= factor[(idx[k], beta[k])];
                    if w == 0.0 {
                        break;
                    }
                }
                *slot = w;
            }
            for b1 in 0..g {
                let p1 = p[b1];
                ptx[b1] += xv * p1;
                if p1 == 0.0 {
                    continue;
                }
                let row = b1 * g;
                for b2 in b1..g {
                    ptp[row + b2] += p1 * p[b2];
                }
            }
            (ptp, ptx, p)
        },
        |(mut a1, mut a2, buf), (b1, b2, _)| {
            for (x, y) in a1.iter_mut().zip(&b1) {
                *x += y;
            }
            for (x, y) in a2.iter_mut().zip(&b2) {
                *x += y;
            }
            (a1, a2, buf)
        },
    );
    apply_core_refit(core, g, &ptp, &ptx);
}

/// [`refit_core_observed`] over a disk-resident COO source: the identical
/// normal-equation accumulation streamed through bounded COO segments
/// ([`scratch_fold_blocks`] — static blocking, so bitwise-equal to the
/// resident refit under `Schedule::Static` at `threads ≤ 2`).
pub(crate) fn refit_core_observed_scratch(
    src: &CooScratch,
    factors: &[Matrix],
    core: &mut CoreTensor,
    threads: usize,
) -> Result<()> {
    let g = core.nnz();
    if g == 0 {
        return Ok(());
    }
    let order = src.order();
    let core_idx = core.flat_indices().to_vec();
    let (ptp, ptx, _bufs) = scratch_fold_blocks(
        src,
        threads,
        || {
            (
                vec![0.0f64; g * g],
                vec![0.0f64; g],
                (vec![0.0f64; g], vec![0usize; order]),
            )
        },
        |(ptp, ptx, (p, idx)), ints, xv| {
            for (slot, &i) in idx.iter_mut().zip(ints) {
                *slot = i as usize;
            }
            for (b, slot) in p.iter_mut().enumerate() {
                let beta = &core_idx[b * order..(b + 1) * order];
                let mut w = 1.0;
                for (k, factor) in factors.iter().enumerate() {
                    w *= factor[(idx[k], beta[k])];
                    if w == 0.0 {
                        break;
                    }
                }
                *slot = w;
            }
            for b1 in 0..g {
                let p1 = p[b1];
                ptx[b1] += xv * p1;
                if p1 == 0.0 {
                    continue;
                }
                let row = b1 * g;
                for b2 in b1..g {
                    ptp[row + b2] += p1 * p[b2];
                }
            }
        },
        |(mut a1, mut a2, bufs), (b1, b2, _)| {
            for (x, y) in a1.iter_mut().zip(&b1) {
                *x += y;
            }
            for (x, y) in a2.iter_mut().zip(&b2) {
                *x += y;
            }
            (a1, a2, bufs)
        },
    )?;
    apply_core_refit(core, g, &ptp, &ptx);
    Ok(())
}

/// The refit's solve step, shared by both input flavors: ridge the normal
/// equations and install the solution.
fn apply_core_refit(core: &mut CoreTensor, g: usize, ptp: &[f64], ptx: &[f64]) {
    // Ridge scaled to the problem: keeps the system SPD even when some core
    // entry is unidentifiable from Ω (its optimal weight then shrinks to 0).
    let max_diag = (0..g).fold(0.0f64, |m, b| m.max(ptp[b * g + b]));
    let ridge = (1e-10 * max_diag).max(1e-12);
    if let Some(new_vals) = solve_row(ptp, ptx, ridge) {
        core.values_mut().copy_from_slice(&new_vals);
    }
    // On the (singular, λ≈0) failure path the core is left unchanged.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ApproxKernel, CachedKernel, DirectKernel, GatherReferenceKernel};
    use crate::{MemoryBudget, StoragePrecision};
    use proptest::prelude::*;
    use ptucker_datagen::planted_lowrank;

    fn planted() -> SparseTensor {
        let mut rng = StdRng::seed_from_u64(71);
        planted_lowrank(&[14, 12, 10], &[2, 2, 2], 700, 0.01, &mut rng).tensor
    }

    fn base_opts() -> FitOptions {
        FitOptions::new(vec![2, 2, 2])
            .max_iters(5)
            .tol(0.0)
            .threads(2)
            .seed(33)
    }

    /// A 1-byte budget: the resident floor books itself unchecked, the
    /// remaining budget is 0, so the window capacity collapses to the
    /// minimum of one position — every nonempty slice becomes (at least)
    /// its own window, guaranteeing many windows per mode.
    fn spill_budget() -> MemoryBudget {
        MemoryBudget::new(1)
    }

    fn assert_bitwise_equal(a: &FitResult, b: &FitResult, tag: &str) {
        assert_eq!(a.stats.iterations.len(), b.stats.iterations.len(), "{tag}");
        for (ia, ib) in a.stats.iterations.iter().zip(&b.stats.iterations) {
            assert_eq!(
                ia.reconstruction_error.to_bits(),
                ib.reconstruction_error.to_bits(),
                "{tag} iter {}",
                ia.iter
            );
            assert_eq!(ia.core_nnz, ib.core_nnz, "{tag} iter {}", ia.iter);
        }
        assert_eq!(
            a.stats.final_error.to_bits(),
            b.stats.final_error.to_bits(),
            "{tag} final"
        );
        for (fa, fb) in a.decomposition.factors.iter().zip(&b.decomposition.factors) {
            for (va, vb) in fa.as_slice().iter().zip(fb.as_slice()) {
                assert_eq!(va.to_bits(), vb.to_bits(), "{tag} factor drift");
            }
        }
    }

    /// Acceptance bar for the mode-major plan: every kernel on the streamed
    /// layout must reproduce the COO gather path's fit — per-iteration
    /// reconstruction-error trajectory within 1e-9 (relative) from the same
    /// seed. Direct and Approx(0) differ from the gather reference only in
    /// multiplication order inside δ; Cache differs additionally through
    /// its divide-by-old-row algebra, and must still land within the bar on
    /// this scale of problem.
    #[test]
    fn streamed_kernels_reproduce_gather_fit_trajectory() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let x = planted_lowrank(&[14, 12, 10], &[2, 2, 2], 700, 0.01, &mut rng).tensor;
        let opts = FitOptions::new(vec![2, 2, 2])
            .max_iters(5)
            .tol(0.0)
            .threads(2)
            .seed(33);
        let input = FitInput::Resident(&x);
        let reference = run_fit(
            &input,
            &opts,
            GatherReferenceKernel::default(),
            &mut LocalSync,
            None,
        )
        .unwrap();
        let direct = run_fit(&input, &opts, DirectKernel, &mut LocalSync, None).unwrap();
        let cached = run_fit(&input, &opts, CachedKernel::new(), &mut LocalSync, None).unwrap();
        let approx0 = run_fit(&input, &opts, ApproxKernel::new(0.0), &mut LocalSync, None).unwrap();
        assert_eq!(reference.stats.iterations.len(), 5);
        for (name, got) in [
            ("direct", &direct),
            ("cached", &cached),
            ("approx0", &approx0),
        ] {
            for (a, b) in reference.stats.iterations.iter().zip(&got.stats.iterations) {
                let rel = (a.reconstruction_error - b.reconstruction_error).abs()
                    / a.reconstruction_error.max(1e-12);
                assert!(rel < 1e-9, "{name} iter {}: rel {rel}", a.iter);
            }
            let rel = (reference.stats.final_error - got.stats.final_error).abs()
                / reference.stats.final_error.max(1e-12);
            assert!(rel < 1e-9, "{name} final: rel {rel}");
        }
    }

    /// The plan itself is intermediate data: its reservation must show up
    /// in the reported peak, and — under the paper's Strict regime — a
    /// budget too small for the streams must fail with the O.O.M. outcome
    /// before any iteration runs.
    #[test]
    fn plan_memory_is_metered() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let x = planted_lowrank(&[10, 9, 8], &[2, 2, 2], 300, 0.01, &mut rng).tensor;
        let plan_bytes = ptucker_tensor::ModeStreams::bytes_for(&x);
        let opts = FitOptions::new(vec![2, 2, 2]).max_iters(1).seed(1);
        let fit = run_fit(
            &FitInput::Resident(&x),
            &opts,
            DirectKernel,
            &mut LocalSync,
            None,
        )
        .unwrap();
        assert!(
            fit.stats.peak_intermediate_bytes >= plan_bytes,
            "peak {} must include the {plan_bytes} B plan",
            fit.stats.peak_intermediate_bytes
        );
        let tiny =
            FitOptions::new(vec![2, 2, 2])
                .max_iters(1)
                .seed(1)
                .budget(MemoryBudget::with_policy(
                    plan_bytes - 1,
                    BudgetPolicy::Strict,
                ));
        let err = run_fit(
            &FitInput::Resident(&x),
            &tiny,
            DirectKernel,
            &mut LocalSync,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, PtuckerError::OutOfMemory(_)));
    }

    /// Tentpole acceptance: for all three kernels, a fit whose plan (+
    /// Pres table for Cached) exceeds the budget completes via spilled
    /// windowed sweeps and reproduces the in-memory fit **bitwise** —
    /// under a budget forcing ≥ 3 windows per mode.
    #[test]
    fn windowed_fit_reproduces_in_memory_fit_for_all_kernels() {
        let x = planted();
        // The 1-byte budget yields capacity 1; check it forces ≥ 3
        // windows on every mode before asserting trajectories.
        let probe = ModeStreams::build_spilled(&x, &MemoryBudget::unlimited()).unwrap();
        for n in 0..x.order() {
            let windows = probe.spilled_mode(n).window_count(1);
            assert!(windows >= 3, "mode {n}: only {windows} windows");
        }
        for variant in [
            Variant::Default,
            Variant::Cache,
            Variant::Approx {
                truncation_rate: 0.2,
            },
        ] {
            let in_mem = PTucker::new(base_opts().variant(variant))
                .unwrap()
                .fit(&x)
                .unwrap();
            assert_eq!(in_mem.stats.peak_spilled_bytes, 0, "{variant:?} spilled");
            let windowed = PTucker::new(base_opts().variant(variant).budget(spill_budget()))
                .unwrap()
                .fit(&x)
                .unwrap();
            assert!(
                windowed.stats.peak_spilled_bytes >= ModeStreams::spilled_bytes_for(&x),
                "{variant:?} did not spill its plan"
            );
            assert_bitwise_equal(&in_mem, &windowed, &format!("{variant:?}"));
        }
    }

    /// Multi-slice windows (a moderate budget between the floor and the
    /// full plan) must agree with the in-memory fit too — this exercises
    /// window extents greater than one slice.
    #[test]
    fn windowed_fit_with_multi_slice_windows_matches() {
        let x = planted();
        let opts = base_opts().max_iters(3);
        let in_mem = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
        // Roughly half the in-memory requirement: forces spilling while
        // leaving room for windows spanning several slices.
        let budget = MemoryBudget::new(in_memory_bytes(x.dims(), x.nnz(), &opts) / 2);
        let windowed = PTucker::new(opts.budget(budget)).unwrap().fit(&x).unwrap();
        assert_bitwise_equal(&in_mem, &windowed, "multi-slice");
    }

    /// Hybrid-spill acceptance: a Cached fit whose plan fits the budget
    /// but whose |Ω|×|G| Pres table does not keeps the plan resident and
    /// spills **only the table** — bitwise identical to the fully
    /// resident fit, and with a strictly smaller disk footprint than the
    /// all-or-nothing full spill.
    #[test]
    fn hybrid_spill_keeps_plan_resident_and_matches_bitwise() {
        let x = planted();
        let opts = base_opts().max_iters(3).variant(Variant::Cache);
        let floor = resident_floor_bytes(x.dims(), x.nnz(), &opts);
        let table = table_bytes(x.nnz(), &opts);
        assert!(table > 0);
        // Fits the floor with slack for window/tile buffers, but not the
        // table.
        let budget_bytes = floor + table / 2;
        assert!(budget_bytes < in_memory_bytes(x.dims(), x.nnz(), &opts));

        let resident = PTucker::new(opts.clone().budget(MemoryBudget::unlimited()))
            .unwrap()
            .fit(&x)
            .unwrap();
        assert_eq!(resident.stats.peak_spilled_bytes, 0);

        let hybrid = PTucker::new(opts.clone().budget(MemoryBudget::new(budget_bytes)))
            .unwrap()
            .fit(&x)
            .unwrap();
        // The table spilled (double-buffered regions on disk) …
        assert!(
            hybrid.stats.peak_spilled_bytes >= 2 * table,
            "hybrid fit did not spill the table: {} < {}",
            hybrid.stats.peak_spilled_bytes,
            2 * table
        );
        // … but the plan did not.
        assert!(
            hybrid.stats.peak_spilled_bytes < 2 * table + ModeStreams::spilled_bytes_for(&x),
            "hybrid fit spilled the plan too"
        );

        let full = PTucker::new(opts.budget(spill_budget()))
            .unwrap()
            .fit(&x)
            .unwrap();
        assert!(
            hybrid.stats.peak_spilled_bytes < full.stats.peak_spilled_bytes,
            "hybrid spill ({} B) must beat the full spill ({} B)",
            hybrid.stats.peak_spilled_bytes,
            full.stats.peak_spilled_bytes
        );

        assert_bitwise_equal(&resident, &hybrid, "hybrid");
        assert_bitwise_equal(&resident, &full, "full-spill");
    }

    /// Strict policy preserves the paper's hard O.O.M. boundary.
    #[test]
    fn strict_budget_still_fails_hard() {
        let x = planted();
        let opts = base_opts().budget(ptucker_memtrack::MemoryBudget::with_policy(
            1024,
            BudgetPolicy::Strict,
        ));
        let err = PTucker::new(opts).unwrap().fit(&x).unwrap_err();
        assert!(matches!(err, PtuckerError::OutOfMemory(_)));
    }

    /// The spill decision is exact: a budget of precisely the in-memory
    /// requirement stays in memory; one byte less spills.
    #[test]
    fn spill_threshold_is_the_in_memory_working_set() {
        let x = planted();
        let opts = base_opts().max_iters(1);
        let need = in_memory_bytes(x.dims(), x.nnz(), &opts);
        let stay = PTucker::new(opts.clone().budget(MemoryBudget::new(need)))
            .unwrap()
            .fit(&x)
            .unwrap();
        assert_eq!(stay.stats.peak_spilled_bytes, 0);
        let spill = PTucker::new(opts.budget(MemoryBudget::new(need - 1)))
            .unwrap()
            .fit(&x)
            .unwrap();
        assert!(spill.stats.peak_spilled_bytes > 0);
    }

    /// The spilled Cache fit reports its double-buffered table on disk.
    #[test]
    fn spilled_cache_reports_table_bytes() {
        let x = planted();
        let g = 8; // 2·2·2
        let fit = PTucker::new(
            base_opts()
                .max_iters(2)
                .variant(Variant::Cache)
                .budget(spill_budget()),
        )
        .unwrap()
        .fit(&x)
        .unwrap();
        let table_bytes = 2 * x.nnz() * g * 8;
        assert!(
            fit.stats.peak_spilled_bytes >= ModeStreams::spilled_bytes_for(&x) + table_bytes,
            "peak_spilled {} missing the table ({table_bytes})",
            fit.stats.peak_spilled_bytes
        );
    }

    /// Double-buffered prefetch changes when scratch-file bytes are read,
    /// never their values: a spilled fit big enough to clear the prefetch
    /// threshold must agree bitwise with the same fit with prefetch off —
    /// and with the fully resident fit.
    #[test]
    fn prefetched_spilled_fit_is_bitwise_identical() {
        let mut rng = StdRng::seed_from_u64(99);
        let x = planted_lowrank(&[100, 80, 60], &[2, 2, 2], 34_000, 0.01, &mut rng).tensor;
        let opts = |prefetch: bool, budget: MemoryBudget| {
            FitOptions::new(vec![2, 2, 2])
                .max_iters(2)
                .tol(0.0)
                .threads(2)
                .seed(3)
                .prefetch(prefetch)
                .budget(budget)
        };
        // Half the plan: after the spilled plan's resident floor
        // (~N·|Ω|·4 B of inverse maps) the leftover budget still yields
        // double-buffered windows of ~400 KiB — comfortably past
        // PREFETCH_MIN_WINDOW_BYTES even at the halved prefetch capacity.
        // (On a single-CPU host prefetch auto-disables regardless; the
        // bitwise claims below hold either way.)
        let budget_bytes = ModeStreams::bytes_for(&x) / 2;
        let floor = ModeStreams::resident_bytes_for(&x);
        assert!(
            (budget_bytes - floor) / 2 >= 2 * PREFETCH_MIN_WINDOW_BYTES,
            "fixture too small to engage prefetch"
        );
        let resident = PTucker::new(opts(true, MemoryBudget::unlimited()))
            .unwrap()
            .fit(&x)
            .unwrap();
        let prefetched = PTucker::new(opts(true, MemoryBudget::new(budget_bytes)))
            .unwrap()
            .fit(&x)
            .unwrap();
        let plain = PTucker::new(opts(false, MemoryBudget::new(budget_bytes)))
            .unwrap()
            .fit(&x)
            .unwrap();
        assert!(prefetched.stats.peak_spilled_bytes > 0);
        assert_bitwise_equal(&resident, &prefetched, "prefetch-vs-resident");
        assert_bitwise_equal(&prefetched, &plain, "prefetch-vs-plain");
        // The stats must report the gate's decision truthfully: never on
        // when prefetch was not requested or nothing spilled; on the
        // requested spilled fit (windows sized past the threshold above)
        // it reduces to exactly the spare-CPU check.
        assert!(!resident.stats.prefetch_engaged);
        assert!(!plain.stats.prefetch_engaged);
        assert_eq!(
            prefetched.stats.prefetch_engaged,
            std::thread::available_parallelism().map_or(1, |n| n.get()) >= 2
        );
    }

    /// Mixed-precision acceptance: with f32 *storage* but f64
    /// *accumulation*, the fit trajectory must track the full-f64 run to
    /// roughly f32 machine precision — the quantization error of the
    /// inputs, not a compounding iteration-by-iteration drift. Also pins
    /// the accounting side: the placement gate sees half-size plan and
    /// table footprints under `StoragePrecision::F32`.
    #[test]
    fn f32_storage_tracks_f64_fit_within_quantization_noise() {
        let x = planted();
        for variant in [Variant::Default, Variant::Cache] {
            let opts64 = base_opts().variant(variant);
            let opts32 = base_opts()
                .variant(variant)
                .precision(StoragePrecision::F32);
            let f64_fit = PTucker::new(opts64).unwrap().fit(&x).unwrap();
            let f32_fit = PTucker::new(opts32).unwrap().fit(&x).unwrap();
            assert_eq!(
                f64_fit.stats.iterations.len(),
                f32_fit.stats.iterations.len(),
                "{variant:?}: precision changed iteration count at tol=0"
            );
            for (a, b) in f64_fit
                .stats
                .iterations
                .iter()
                .zip(&f32_fit.stats.iterations)
            {
                let rel = (a.reconstruction_error - b.reconstruction_error).abs()
                    / a.reconstruction_error.max(1e-12);
                assert!(
                    rel < 1e-4,
                    "{variant:?} iter {}: f32-vs-f64 rel drift {rel}",
                    a.iter
                );
            }
        }
        // Accounting: f32 halves exactly the value payload of the plan and
        // the Cache table — the gate must see those smaller numbers.
        let o64 = base_opts().variant(Variant::Cache);
        let o32 = o64.clone().precision(StoragePrecision::F32);
        assert_eq!(
            table_bytes(x.nnz(), &o64) - table_bytes(x.nnz(), &o32),
            x.nnz() * 8 * 4,
            "f32 table should drop 4 bytes per cell"
        );
        assert!(
            resident_floor_bytes(x.dims(), x.nnz(), &o32)
                < resident_floor_bytes(x.dims(), x.nnz(), &o64)
        );
    }

    /// Tentpole acceptance: the **disk-to-disk** fit — observed entries in
    /// a COO scratch file, plan built by external sort, residual / `R(β)` /
    /// fingerprint passes streamed — reproduces the resident fit
    /// **bitwise** for all three kernels, under a budget forcing windowed
    /// sweeps. The Approx leg pins `Schedule::Static`: its resident `R(β)`
    /// and refit passes honor `opts.schedule`, while the streamed twins
    /// always use static blocking.
    #[test]
    fn disk_to_disk_fit_matches_resident_bitwise_for_all_kernels() {
        let x = planted();
        for variant in [
            Variant::Default,
            Variant::Cache,
            Variant::Approx {
                truncation_rate: 0.2,
            },
        ] {
            let opts = base_opts()
                .variant(variant)
                .schedule(Schedule::Static)
                .refit_core(true);
            let resident = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
            let budget = spill_budget();
            let src = ptucker_tensor::CooScratch::from_tensor(&x, &budget).unwrap();
            let disk = PTucker::new(opts.budget(budget.clone()))
                .unwrap()
                .fit_scratch(&src)
                .unwrap();
            assert!(
                disk.stats.peak_spilled_bytes
                    >= ModeStreams::spilled_bytes_for(&x) + src.bytes() as usize,
                "{variant:?}: the disk fit must hold both the COO source and the plan spilled"
            );
            assert!(
                disk.stats.io_read_bytes > 0 && disk.stats.io_write_bytes > 0,
                "{variant:?}: scratch traffic must surface in the stats"
            );
            assert_bitwise_equal(&resident, &disk, &format!("disk {variant:?}"));
        }
    }

    /// Disk-to-disk resume interoperates with resident checkpoints: the
    /// fingerprint streams to the same hash, so a checkpoint taken from a
    /// resident fit resumes a scratch fit bitwise onto the uninterrupted
    /// trajectory.
    #[test]
    fn disk_to_disk_resumes_resident_checkpoint_bitwise() {
        let x = planted();
        let opts = base_opts().schedule(Schedule::Static);
        let full = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
        // Snapshot iteration boundary 2 from a resident fit…
        let dir = std::env::temp_dir().join(format!("ptk-d2d-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resident.ckpt");
        let _ = PTucker::new(
            opts.clone()
                .max_iters(2)
                .checkpoint_every(2)
                .checkpoint_path(&path),
        )
        .unwrap()
        .fit(&x)
        .unwrap();
        let ckpt = FitCheckpoint::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        // …and resume it disk-to-disk.
        let budget = spill_budget();
        let src = ptucker_tensor::CooScratch::from_tensor(&x, &budget).unwrap();
        let resumed = PTucker::new(opts.budget(budget))
            .unwrap()
            .fit_scratch_with_sync_resume(&src, &mut LocalSync, Some(ckpt))
            .unwrap();
        assert_bitwise_equal(&full, &resumed, "resident ckpt → disk fit");
    }

    /// A disk-resident source under the paper's Strict regime is a
    /// configuration error, not a placement: Strict declares everything
    /// resident, which a scratch-file input can never be.
    #[test]
    fn disk_to_disk_requires_spill_policy() {
        let x = planted();
        let budget = MemoryBudget::new(usize::MAX);
        let src = ptucker_tensor::CooScratch::from_tensor(&x, &budget).unwrap();
        let strict = base_opts().budget(MemoryBudget::with_policy(1 << 30, BudgetPolicy::Strict));
        let err = PTucker::new(strict).unwrap().fit_scratch(&src).unwrap_err();
        assert!(matches!(err, PtuckerError::InvalidConfig(_)));
    }

    /// Tentpole acceptance: fitting from a COO scratch file **larger than
    /// the memory budget** completes with peak tracked resident bytes
    /// within the budget — the whole pipeline (external sort included)
    /// really is bounded.
    #[test]
    fn disk_to_disk_peak_resident_bytes_stay_within_budget() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(97);
        let x = planted_lowrank(&[60, 50, 40], &[2, 2, 2], 60_000, 0.01, &mut rng).tensor;
        let limit = 1_100_000usize;
        let budget = MemoryBudget::new(limit);
        let src = ptucker_tensor::CooScratch::from_tensor(&x, &budget).unwrap();
        assert!(
            src.bytes() as usize > limit,
            "source ({} B) must exceed the budget ({limit} B)",
            src.bytes()
        );
        let opts = base_opts().max_iters(2).budget(budget.clone());
        let fit = PTucker::new(opts).unwrap().fit_scratch(&src).unwrap();
        assert!(fit.stats.converged || fit.stats.iterations.len() == 2);
        assert!(
            fit.stats.peak_intermediate_bytes <= limit,
            "peak resident {} B exceeded the {limit} B budget",
            fit.stats.peak_intermediate_bytes
        );
    }

    /// The prefetch ring is a scheduling choice, never a numeric one:
    /// every configured depth — no ring, the double-buffer default, and a
    /// 4-deep ring — produces the bitwise-identical fit.
    #[test]
    fn prefetch_depth_never_changes_the_fit() {
        let x = planted();
        let fit_at = |depth: usize| {
            PTucker::new(
                base_opts()
                    .max_iters(3)
                    .budget(spill_budget())
                    .prefetch(depth >= 2)
                    .prefetch_depth(depth.max(2)),
            )
            .unwrap()
            .fit(&x)
            .unwrap()
        };
        let base = fit_at(1);
        for depth in [2, 4] {
            assert_bitwise_equal(&base, &fit_at(depth), &format!("depth {depth}"));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        // Tentpole property: storage precision is orthogonal to placement.
        // An f32-storage fit quantizes each value exactly once at plan
        // build; after that, resident and spilled windows widen the same
        // stored bits through the same f64 kernels — so the in-memory path
        // and the 1-byte-budget many-window path must agree bitwise,
        // exactly as the f64 invariant below.
        #[test]
        fn f32_storage_fit_is_window_partition_invariant(seed in 0..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let x = planted_lowrank(&[11, 9, 8], &[2, 2, 2], 350, 0.02, &mut rng).tensor;
            for variant in [Variant::Default, Variant::Cache] {
                let opts = FitOptions::new(vec![2, 2, 2])
                    .max_iters(3)
                    .tol(0.0)
                    .threads(2)
                    .seed(seed ^ 0xf32)
                    .variant(variant)
                    .precision(StoragePrecision::F32);
                let in_mem = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
                let windowed = PTucker::new(opts.budget(MemoryBudget::new(1)))
                    .unwrap()
                    .fit(&x)
                    .unwrap();
                prop_assert!(windowed.stats.peak_spilled_bytes > 0);
                assert_bitwise_equal(&in_mem, &windowed, "f32 windowed-vs-resident");
            }
        }

        // Satellite property: the unified driver's single-full-window
        // (in-memory) path and its many-window spilled path walk the same
        // trajectory bitwise for every kernel, across random tensors and
        // seeds — windowing is an execution detail, never a semantic.
        #[test]
        fn unified_driver_is_window_partition_invariant(seed in 0..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let x = planted_lowrank(&[11, 9, 8], &[2, 2, 2], 350, 0.02, &mut rng).tensor;
            for variant in [
                Variant::Default,
                Variant::Cache,
                Variant::Approx { truncation_rate: 0.25 },
            ] {
                let opts = FitOptions::new(vec![2, 2, 2])
                    .max_iters(3)
                    .tol(0.0)
                    .threads(2)
                    .seed(seed ^ 0x5eed)
                    .variant(variant);
                let in_mem = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
                let windowed = PTucker::new(opts.budget(MemoryBudget::new(1)))
                    .unwrap()
                    .fit(&x)
                    .unwrap();
                prop_assert!(windowed.stats.peak_spilled_bytes > 0);
                for (a, b) in in_mem.stats.iterations.iter().zip(&windowed.stats.iterations) {
                    prop_assert_eq!(
                        a.reconstruction_error.to_bits(),
                        b.reconstruction_error.to_bits(),
                        "{:?} iter {}",
                        variant,
                        a.iter
                    );
                }
                for (fa, fb) in in_mem
                    .decomposition
                    .factors
                    .iter()
                    .zip(&windowed.decomposition.factors)
                {
                    for (va, vb) in fa.as_slice().iter().zip(fb.as_slice()) {
                        prop_assert_eq!(va.to_bits(), vb.to_bits(), "{:?} factors", variant);
                    }
                }
            }
        }

        // Satellite property: a fit interrupted at an arbitrary iteration
        // and resumed from its checkpoint walks bitwise the same
        // trajectory as the uninterrupted fit — for every kernel variant
        // and for resident and spilled placement alike. This is the
        // contract that makes worker respawn and `resume_from` safe: a
        // checkpoint is the *complete* replica state (factors, core, RNG
        // already consumed at init, kernel aux tables, error history).
        #[test]
        fn checkpoint_resume_is_bitwise(seed in 0..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let x = planted_lowrank(&[11, 9, 8], &[2, 2, 2], 350, 0.02, &mut rng).tensor;
            let total = 4usize;
            let cut = 1 + (seed % (total as u64 - 1)) as usize; // 1..total
            let variant = [
                Variant::Default,
                Variant::Cache,
                Variant::Approx { truncation_rate: 0.25 },
            ][(seed % 3) as usize];
            let budget = if seed & 1 == 0 {
                MemoryBudget::unlimited()
            } else {
                MemoryBudget::new(1)
            };
            let dir = std::env::temp_dir().join(format!("ptk-resume-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join(format!("ckpt-{seed:016x}.bin"));
            let opts = FitOptions::new(vec![2, 2, 2])
                .tol(0.0)
                .threads(2)
                .seed(seed ^ 0xc4e)
                .variant(variant)
                .budget(budget);
            let solo = PTucker::new(opts.clone().max_iters(total))
                .unwrap()
                .fit(&x)
                .unwrap();
            let interrupted = PTucker::new(
                opts.clone()
                    .max_iters(cut)
                    .checkpoint_every(1)
                    .checkpoint_path(&path),
            )
            .unwrap()
            .fit(&x)
            .unwrap();
            prop_assert_eq!(interrupted.stats.iterations.len(), cut);
            let resumed = PTucker::new(opts.max_iters(total).resume_from(&path))
                .unwrap()
                .fit(&x)
                .unwrap();
            let _ = std::fs::remove_file(&path);
            assert_bitwise_equal(&solo, &resumed, "resumed-vs-uninterrupted");
        }
    }
}
