//! Coordination hooks for distributed (multi-process) fits.
//!
//! The row-wise update rule makes ALS embarrassingly parallel across
//! rows: a row's closed-form solve reads only that row's observed
//! entries, the other factors and the core. A distributed fit therefore
//! needs exactly two things beyond the single-process driver: each
//! process must sweep **only the rows it owns** per mode, and the
//! updated rows must be **all-reduced** (gathered from their owners and
//! re-broadcast merged) before the next mode reads them through the δ
//! product. [`FitSync`] is that seam: `run_fit` calls its hooks at the
//! row-range and factor-sync points, and everything else — placement,
//! windows, kernels, the error pass — is shard-oblivious.
//!
//! Every hook has a no-op default, and [`LocalSync`] (the implementation
//! behind [`crate::PTucker::fit`]) overrides nothing, so a
//! single-process fit pays only an inlined empty call. The multi-process
//! coordinator and worker drivers live in the `ptucker-shard` crate; the
//! bitwise coordinator/worker ≡ single-process guarantee rests on all
//! replicas starting from the same seeded RNG, sweeping disjoint
//! covering row ranges, and merging by deterministic concatenation.

use crate::{FitStats, Result};
use std::ops::Range;

/// The driver's local row-update engine, handed back to the sync layer
/// by [`FitSync::sync_factor`]: `resweep(rows, data)` re-runs the
/// mode's row updates for `rows` in place on `data`, returning whether
/// every solve succeeded.
pub type Resweep<'a> = dyn FnMut(Range<usize>, &mut [f64]) -> Result<bool> + 'a;

/// Hooks the fit driver calls at each coordination point of a
/// (potentially distributed) fit. See the [module docs](self) for the
/// protocol; all methods default to the single-process no-op.
pub trait FitSync {
    /// Called once per `(iteration, mode)` pair, before the mode's rows
    /// are updated — the lockstep barrier of a distributed fit.
    ///
    /// # Errors
    /// Implementations fail here when a peer is out of step or gone.
    fn begin_mode(&mut self, iter: usize, mode: usize) -> Result<()> {
        let _ = (iter, mode);
        Ok(())
    }

    /// The contiguous subrange of `mode`'s `rows` rows this process owns
    /// and will update. The default owns everything; a shard returns its
    /// block; a pure coordinator returns an empty range (it only merges).
    fn row_range(&mut self, mode: usize, rows: usize) -> Range<usize> {
        let _ = mode;
        0..rows
    }

    /// The all-reduce point: called after this process updated its row
    /// range of `mode`'s factor (row-major in `data`, `j_n` columns) and
    /// before the merged factor is installed for the next mode's δ
    /// products. Implementations exchange owned rows with their peers
    /// and overwrite `data` with the merged factor. `local_ok` is
    /// whether every local row solve succeeded; implementations must
    /// propagate a peer's failure as an error so all processes abandon
    /// the fit together.
    ///
    /// `resweep` is the driver's local row-update engine handed back to
    /// the sync layer: `resweep(rows, data)` re-runs the mode's row
    /// updates for `rows` in place on `data` with the *same* kernel,
    /// schedule and window mechanics as the main sweep, returning whether
    /// every solve succeeded. A fault-tolerant coordinator uses it to
    /// cover a dead peer's rows bitwise; single-process sync never calls
    /// it.
    ///
    /// # Errors
    /// Transport failures, or a peer reporting a failed solve.
    fn sync_factor(
        &mut self,
        mode: usize,
        j_n: usize,
        data: &mut [f64],
        local_ok: bool,
        resweep: &mut Resweep<'_>,
    ) -> Result<()> {
        let _ = (mode, j_n, data, local_ok, resweep);
        Ok(())
    }

    /// Called once at the end of every completed (non-breaking) ALS
    /// iteration, after the convergence bookkeeping. `make_checkpoint`
    /// serializes the fit's full current state (see
    /// [`crate::checkpoint::FitCheckpoint`]) on demand — a distributed
    /// coordinator calls it to seed a respawned worker; the local driver
    /// itself persists checkpoints before invoking this hook.
    ///
    /// # Errors
    /// Transport or serialization failures.
    fn end_iter(
        &mut self,
        iter: usize,
        make_checkpoint: &mut dyn FnMut() -> Result<Vec<u8>>,
    ) -> Result<()> {
        let _ = (iter, make_checkpoint);
        Ok(())
    }

    /// Called once after the fit completes, with the assembled stats —
    /// where a distributed driver exchanges final stats and fills
    /// [`FitStats::bytes_sent`] / [`FitStats::bytes_received`].
    ///
    /// # Errors
    /// Transport failures during the final exchange.
    fn finish(&mut self, stats: &mut FitStats) -> Result<()> {
        let _ = stats;
        Ok(())
    }
}

/// The single-process [`FitSync`]: every hook keeps its no-op default.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalSync;

impl FitSync for LocalSync {}
