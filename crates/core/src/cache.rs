//! P-Tucker-Cache: the `Pres` memoization table (Algorithm 3, lines 1–4 and
//! 16–19 of the paper), stored in **stream order**.
//!
//! `Pres[α][β] = G_β Π_{k=1..N} a⁽ᵏ⁾(iₖ, βₖ)` caches the full N-way product
//! for every (observed entry, core entry) pair. During a mode-`n` row update
//! the δ kernel then needs only one division instead of `N−1`
//! multiplications per pair:
//! `δ⁽ⁿ⁾_α(βₙ) += Pres[α][β] / a⁽ⁿ⁾(iₙ, βₙ)`, falling back to the direct
//! product when `a⁽ⁿ⁾(iₙ, βₙ) = 0` (the paper's explicit caveat). After
//! `A⁽ⁿ⁾` changes, every cached product is rescaled by `a_new/a_old`
//! (recomputed outright where `a_old = 0`).
//!
//! # Stream-ordered storage
//!
//! The table's rows are laid out in the [`ModeStream`] order of the mode
//! currently being swept, not in COO entry order: position `p` of the
//! sweep owns row `p` of the table, so a mode's whole row sweep reads the
//! `|Ω|·|G|` elements **strictly sequentially** — no entry-id indirection,
//! no scattered row fetches. Between modes the table is carried into the
//! next mode's order by [`PresTable::rescale_and_reorder`]: the per-mode
//! rescale (the arithmetic pass) stays parallel, followed by an in-place
//! cycle-chase permutation (one `|G|` carry row plus a transient
//! `|Ω|`-byte visited map — **no** second table-sized buffer, so
//! Theorem 6's memory bound is preserved; the permutation is pure memory
//! movement, so its single thread rides bandwidth, not ALUs). The driver sweeps modes cyclically,
//! so each sweep starts with the table already in the right order;
//! [`PresTable::ensure_order`] re-aligns it for direct API users with
//! other call patterns.
//!
//! The δ accumulation itself is run-blocked like the Direct kernel's (see
//! [`crate::delta`]): within a run of core entries sharing their first
//! `N−1` coordinates, a non-tail update mode has a constant divisor, so
//! the run collapses to one contiguous sum over the cached products and a
//! single division.
//!
//! The table is `|Ω|·|G|` elements of the fit's [`StoragePrecision`] —
//! the dominant memory cost (Theorem 6), halved outright by f32 storage —
//! and is metered against the fit's [`MemoryBudget`] at the per-precision
//! element size, which is exactly how the Fig. 8(b) memory gap (≈29.5× at
//! N = 10) is reproduced.

use crate::Result;
use ptucker_linalg::kernels::{div_add_nonzero, div_add_nonzero_f32, sum_widened};
use ptucker_linalg::Matrix;
use ptucker_memtrack::{MemoryBudget, Reservation, ScratchFile, SpillReservation};
use ptucker_sched::{parallel_rows_mut, Schedule};
use ptucker_tensor::{
    CoreTensor, ModeStreams, SparseTensor, StoragePrecision, SweepSource, Window,
};

/// The element type of a `Pres` table: the storage half of the fit's
/// [`StoragePrecision`] axis applied to the cache. Products are computed
/// in `f64`, stored at the element's width ([`PresElem::from_f64`] rounds
/// once for `f32`), and widened back to `f64` at every use — so the two
/// implementations share the identical run-blocked arithmetic and differ
/// only in stored bits and bytes moved.
pub(crate) trait PresElem: Copy + Send + Sync + Default + std::fmt::Debug + 'static {
    /// The precision this element realizes (sizing, placement gates).
    const PRECISION: StoragePrecision;

    /// Rounds a computed `f64` product onto this element's storage grid.
    fn from_f64(v: f64) -> Self;

    /// Widens a stored element back to `f64` (exact).
    fn to_f64(self) -> f64;

    /// `δ[t] += pres[t] / den[t]` over the nonzero divisors of `den`,
    /// leaving zero-divisor slots untouched; returns whether any divisor
    /// was zero. One rounded `f64` quotient per element on every SIMD
    /// tier — bitwise identical across placements.
    fn div_add(delta: &mut [f64], pres: &[Self], den: &[f64]) -> bool;

    /// The `f64` sum of a run of cached products (the constant-divisor
    /// collapse of non-tail modes).
    fn sum(pres: &[Self]) -> f64;

    /// Reads `out.len()` elements from a scratch file at `off`.
    fn read(file: &ScratchFile, off: u64, out: &mut [Self]) -> std::io::Result<()>;

    /// Writes `data` to a scratch file at `off`.
    fn write(file: &ScratchFile, off: u64, data: &[Self]) -> std::io::Result<()>;
}

impl PresElem for f64 {
    const PRECISION: StoragePrecision = StoragePrecision::F64;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn div_add(delta: &mut [f64], pres: &[Self], den: &[f64]) -> bool {
        div_add_nonzero(delta, pres, den)
    }

    #[inline]
    fn sum(pres: &[Self]) -> f64 {
        // Sequential: the classic f64 table's summation order, kept
        // bit-for-bit (regression anchor for the pre-precision engine).
        let mut acc = 0.0;
        for &c in pres {
            acc += c;
        }
        acc
    }

    fn read(file: &ScratchFile, off: u64, out: &mut [Self]) -> std::io::Result<()> {
        file.read_f64s(off, out)
    }

    fn write(file: &ScratchFile, off: u64, data: &[Self]) -> std::io::Result<()> {
        file.write_f64s(off, data)
    }
}

impl PresElem for f32 {
    const PRECISION: StoragePrecision = StoragePrecision::F32;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn div_add(delta: &mut [f64], pres: &[Self], den: &[f64]) -> bool {
        div_add_nonzero_f32(delta, pres, den)
    }

    #[inline]
    fn sum(pres: &[Self]) -> f64 {
        sum_widened(pres)
    }

    fn read(file: &ScratchFile, off: u64, out: &mut [Self]) -> std::io::Result<()> {
        file.read_f32s(off, out)
    }

    fn write(file: &ScratchFile, off: u64, data: &[Self]) -> std::io::Result<()> {
        file.write_f32s(off, data)
    }
}

/// Elements moved per syscall when streaming a whole spilled table
/// (checkpoint export/import): bounded resident memory, few syscalls.
const STREAM_CHUNK_ELEMS: usize = 1 << 16;

/// The memoization table of P-Tucker-Cache, stored at element type `E`
/// (the fit's [`StoragePrecision`]).
#[derive(Debug)]
pub(crate) struct PresTable<E: PresElem> {
    /// Row-major `|Ω| × |G|` products, rows in `order_mode`'s stream order.
    data: Vec<E>,
    /// Row stride = `|G|` (fixed: Cache and Approx are mutually exclusive).
    g: usize,
    /// The mode whose stream order the rows currently follow.
    order_mode: usize,
    /// Keeps the budget reservation alive for the table's lifetime.
    _reservation: Reservation,
}

impl<E: PresElem> PresTable<E> {
    /// Precomputes the full table in parallel (Algorithm 3 lines 1–4; the
    /// paper uses static scheduling here — uniform work per row), laid out
    /// in **mode 0's stream order** (the first mode the driver sweeps).
    /// Each product is computed in `f64` and rounded once onto `E`'s
    /// storage grid.
    ///
    /// # Errors
    /// [`crate::PtuckerError::OutOfMemory`] if `|Ω|·|G|` elements exceed
    /// the intermediate-data budget.
    pub fn compute(
        x: &SparseTensor,
        plan: &ModeStreams,
        factors: &[Matrix],
        core: &CoreTensor,
        threads: usize,
        budget: &MemoryBudget,
    ) -> Result<Self> {
        let g = core.nnz();
        let cells = x.nnz().saturating_mul(g);
        let reservation = budget.reserve(cells.saturating_mul(E::PRECISION.value_bytes()))?;
        let mut data = vec![E::default(); cells];
        let order = x.order();
        let core_idx = core.flat_indices();
        let core_vals = core.values();
        let stream = plan.mode(0);
        parallel_rows_mut(&mut data, g.max(1), threads, Schedule::Static, |p, row| {
            let idx = x.index(stream.entry_id(p));
            for (b, slot) in row.iter_mut().enumerate() {
                *slot = E::from_f64(product(
                    core_vals[b],
                    &core_idx[b * order..(b + 1) * order],
                    idx,
                    factors,
                ));
            }
        });
        Ok(PresTable {
            data,
            g,
            order_mode: 0,
            _reservation: reservation,
        })
    }

    /// The mode whose stream order the rows currently follow.
    pub fn order_mode(&self) -> usize {
        self.order_mode
    }

    /// Appends every table element, widened to `f64` little-endian bits,
    /// to `out` — the checkpoint representation (see
    /// [`crate::engine::RowUpdateKernel::save_aux`]). Widening is exact
    /// for both precisions, so export → import is lossless.
    pub fn export_state(&self, out: &mut Vec<u8>) {
        out.reserve(self.data.len() * 8);
        for e in &self.data {
            out.extend_from_slice(&e.to_f64().to_bits().to_le_bytes());
        }
    }

    /// Overwrites the table's elements from an [`PresTable::export_state`]
    /// byte stream; the table must already have its final shape (built by
    /// `compute` on the resumed fit's identical inputs).
    ///
    /// # Errors
    /// [`crate::PtuckerError::Checkpoint`] if the byte count disagrees
    /// with the table's `|Ω|·|G|` elements.
    pub fn import_state(&mut self, bytes: &[u8]) -> Result<()> {
        if bytes.len() != self.data.len() * 8 {
            return Err(crate::PtuckerError::Checkpoint(format!(
                "checkpointed Pres table holds {} bytes, this fit's table needs {}",
                bytes.len(),
                self.data.len() * 8
            )));
        }
        for (slot, chunk) in self.data.iter_mut().zip(bytes.chunks_exact(8)) {
            let bits = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
            *slot = E::from_f64(f64::from_bits(bits));
        }
        Ok(())
    }

    /// The cached products behind stream position `p` of the current
    /// order mode's stream.
    #[inline]
    pub fn row_at(&self, p: usize) -> &[E] {
        &self.data[p * self.g..(p + 1) * self.g]
    }

    /// Accumulates δ for the entry at stream position `pos` using the
    /// cache (Algorithm 3 line 12), run-blocked: for a non-tail update
    /// mode the divisor `a⁽ⁿ⁾(iₙ, βₙ)` is constant over a run, so the run
    /// collapses to one contiguous sum of cached products and a single
    /// division. The direct-product fallback covers zero divisors (the
    /// paper's caveat).
    ///
    /// `others` holds the entry's packed other-mode indices in stream
    /// layout (ascending mode order, `mode` skipped); `a_row_old` is the
    /// *current* (pre-update) row `a⁽ⁿ⁾(iₙ, ·)`; `runs` is the core's run
    /// structure from `crate::delta::core_runs`.
    ///
    /// The table must currently be in `mode`'s stream order.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn accumulate_delta_cached(
        &self,
        delta: &mut [f64],
        pos: usize,
        others: &[u32],
        mode: usize,
        a_row_old: &[f64],
        core_idx: &[usize],
        core_vals: &[f64],
        runs: &[u32],
        factors: &[Matrix],
    ) {
        debug_assert_eq!(self.order_mode, mode, "table must be in sweep order");
        cached_delta_for_entry(
            delta,
            self.row_at(pos),
            others,
            mode,
            a_row_old,
            core_idx,
            core_vals,
            runs,
            factors,
        );
    }

    /// Rescales the table after `A⁽ᵐᵒᵈᵉ⁾` was updated (Algorithm 3 lines
    /// 16–19): `Pres[α][β] *= a_new/a_old`, recomputing outright where
    /// `a_old = 0` — then permutes the rows from `mode`'s stream order
    /// into `next_mode`'s, so the next sweep reads the table sequentially
    /// again.
    ///
    /// The rescale — the `O(|Ω|·|G|)` *arithmetic* pass — runs in parallel
    /// across `threads`, exactly like the original algorithm. The reorder
    /// is a separate, purely memory-bound cycle-chase permutation (each
    /// row moved once through a `|G|` carry buffer; a transient `|Ω|`-byte
    /// visited map is the only bookkeeping, negligible next to the
    /// `8·|Ω|·|G|`-byte table it permutes — **no** second table-sized
    /// buffer, so Theorem 6's memory bound is preserved).
    #[allow(clippy::too_many_arguments)]
    pub fn rescale_and_reorder(
        &mut self,
        x: &SparseTensor,
        plan: &ModeStreams,
        factors: &[Matrix],
        old_a: &Matrix,
        mode: usize,
        next_mode: usize,
        core: &CoreTensor,
        threads: usize,
    ) {
        debug_assert_eq!(self.order_mode, mode, "table must be in sweep order");
        let g = self.g.max(1);
        let core_idx = core.flat_indices();
        let core_vals = core.values();
        let new_a = &factors[mode];
        let cur = plan.mode(mode);
        parallel_rows_mut(&mut self.data, g, threads, Schedule::Static, |p, row| {
            let idx = x.index(cur.entry_id(p));
            rescale_entry_row(row, idx, mode, old_a, new_a, core_idx, core_vals, factors);
        });
        self.ensure_order(x, plan, next_mode);
    }

    /// Re-aligns the table to `mode`'s stream order (no rescaling): a
    /// no-op when already there, otherwise an in-place cycle-chase
    /// permutation — every row is read and written exactly once, through
    /// one `|G|` carry buffer.
    pub fn ensure_order(&mut self, x: &SparseTensor, plan: &ModeStreams, mode: usize) {
        if self.order_mode == mode {
            return;
        }
        let cur = plan.mode(self.order_mode);
        let next = plan.mode(mode);
        let nnz = x.nnz();
        // σ(p) = destination of the row at current position p.
        let sigma = |p: usize| next.position_of(cur.entry_id(p));
        let mut visited = vec![false; nnz];
        let mut carry = vec![E::default(); self.g.max(1)];
        for start in 0..nnz {
            if visited[start] {
                continue;
            }
            // Lift the cycle's first row out; then walk the cycle,
            // swapping each destination's old row into the carry.
            carry[..self.g].copy_from_slice(self.row_at(start));
            visited[start] = true;
            let mut p = sigma(start);
            while p != start {
                let row = &mut self.data[p * self.g..(p + 1) * self.g];
                for (c, slot) in carry[..self.g].iter_mut().zip(row) {
                    std::mem::swap(c, slot);
                }
                visited[p] = true;
                p = sigma(p);
            }
            self.data[start * self.g..(start + 1) * self.g].copy_from_slice(&carry[..self.g]);
        }
        self.order_mode = mode;
    }
}

/// The out-of-core `Pres` table: the same `|Ω|×|G|` memoization, spilled
/// to its own scratch file and touched one slice-aligned **tile** at a
/// time.
///
/// Rows follow the swept mode's stream order exactly like [`PresTable`],
/// so a windowed sweep over a [`SweepSource`] reads one
/// contiguous byte range of the file per window ([`SpilledPresTable::
/// load_tile`] into a pinned tile buffer). The per-mode rescale +
/// reorder runs window-at-a-time too: each source tile is rescaled in
/// parallel with the **identical** per-row arithmetic as the in-memory
/// table ([`rescale_entry_row`]) and its rows scatter-written into a
/// second file region in the next mode's stream order — sorted by
/// destination and coalesced, so consecutive destination rows share one
/// write. The two regions ping-pong across modes — on disk, where
/// capacity is not what Definition 7 meters; resident memory stays one
/// tile plus its same-sized staging buffer and the `(dest, src)`
/// permutation pairs (all counted in the window-capacity formula).
#[derive(Debug)]
pub(crate) struct SpilledPresTable<E: PresElem> {
    file: ScratchFile,
    /// Row stride = `|G|`.
    g: usize,
    /// Total rows (`|Ω|`) per region — the bound for whole-table streams
    /// (checkpoint export/import).
    rows: usize,
    /// Byte offsets of the two ping-pong regions (each `|Ω|·|G|` elements).
    regions: [u64; 2],
    /// Which region currently holds the table.
    active: usize,
    /// The mode whose stream order the rows currently follow.
    order_mode: usize,
    /// The pinned tile: the active window's rows, resident.
    tile: Vec<E>,
    /// Reusable `(destination, source)` position pairs for the batched
    /// reorder scatter.
    perm: Vec<(u32, u32)>,
    /// Staging buffer assembling runs of consecutive destination rows so
    /// each run costs one write instead of one per entry.
    staging: Vec<E>,
    _spill: SpillReservation,
}

impl<E: PresElem> SpilledPresTable<E> {
    fn row_off(&self, region: usize, p: usize) -> u64 {
        self.regions[region] + p as u64 * self.g as u64 * E::PRECISION.value_bytes() as u64
    }

    /// Precomputes the full table window-at-a-time into the scratch file,
    /// in **mode 0's stream order** (the first mode the driver sweeps).
    /// `windows` is the fit's shared sweep source: its capacity bounds
    /// each tile to the same window extents the row sweeps will use. The
    /// source may be resident (hybrid spilling: plan in RAM, table on
    /// disk) or itself spilled — each position's multi-index is
    /// reconstructed from the window itself (slice coordinate + packed
    /// `others`), so the COO tensor is never consulted and the table
    /// builds identically for disk-resident fits.
    ///
    /// # Errors
    /// [`crate::PtuckerError::Tensor`] (I/O) if scratch-file access fails.
    pub fn compute(
        nnz: usize,
        factors: &[Matrix],
        core: &CoreTensor,
        threads: usize,
        budget: &MemoryBudget,
        windows: &mut SweepSource<'_>,
    ) -> Result<Self> {
        let g = core.nnz();
        let bytes = nnz as u64 * g as u64 * E::PRECISION.value_bytes() as u64;
        let file =
            ScratchFile::create_tracked(budget).map_err(ptucker_tensor::TensorError::from)?;
        let regions = [
            file.reserve_region(bytes)
                .map_err(ptucker_tensor::TensorError::from)?,
            file.reserve_region(bytes)
                .map_err(ptucker_tensor::TensorError::from)?,
        ];
        let spill = budget.record_spill(2 * bytes as usize);
        // Buffers sized for the largest possible window (capacity or one
        // oversized slice), so no window reallocates them mid-sweep.
        let max_pos = windows.max_window_positions();
        let mut table = SpilledPresTable {
            file,
            g,
            rows: nnz,
            regions,
            active: 0,
            order_mode: 0,
            tile: Vec::with_capacity(max_pos.saturating_mul(g)),
            perm: Vec::with_capacity(max_pos),
            staging: Vec::with_capacity(max_pos.saturating_mul(g)),
            _spill: spill,
        };
        let order = factors.len();
        let core_idx = core.flat_indices();
        let core_vals = core.values();
        let mut idx_buf = Vec::new();
        windows.rewind(0);
        while let Some(w) = windows.next_window()? {
            let len = w.stream.len();
            window_indices(&w, order, &mut idx_buf);
            table.tile.resize(len * g, E::default());
            parallel_rows_mut(
                &mut table.tile,
                g.max(1),
                threads,
                Schedule::Static,
                |p, row| {
                    let idx = &idx_buf[p * order..(p + 1) * order];
                    for (b, slot) in row.iter_mut().enumerate() {
                        *slot = E::from_f64(product(
                            core_vals[b],
                            &core_idx[b * order..(b + 1) * order],
                            idx,
                            factors,
                        ));
                    }
                },
            );
            let off = table.row_off(0, w.base);
            E::write(&table.file, off, &table.tile).map_err(ptucker_tensor::TensorError::from)?;
        }
        Ok(table)
    }

    /// The mode whose stream order the rows currently follow.
    pub fn order_mode(&self) -> usize {
        self.order_mode
    }

    /// Loads the tile for the window starting at global stream position
    /// `base` with `len` positions. Resident memory stays this one tile
    /// (the buffer's capacity is pinned after the first window).
    ///
    /// # Errors
    /// [`crate::PtuckerError::Tensor`] (I/O) if the read fails.
    pub fn load_tile(&mut self, base: usize, len: usize) -> Result<()> {
        self.tile.resize(len * self.g, E::default());
        let off = self.row_off(self.active, base);
        E::read(&self.file, off, &mut self.tile).map_err(ptucker_tensor::TensorError::from)?;
        Ok(())
    }

    /// The cached products of the loaded tile's window-local position `p`.
    #[inline]
    pub fn tile_row(&self, p: usize) -> &[E] {
        &self.tile[p * self.g..(p + 1) * self.g]
    }

    /// Streams the active region's elements, widened to `f64`
    /// little-endian bits, into `out` — the spilled analogue of
    /// [`PresTable::export_state`], chunked so resident memory stays one
    /// bounded buffer regardless of table size.
    ///
    /// # Errors
    /// [`crate::PtuckerError::Checkpoint`] on scratch-file I/O failure.
    pub fn export_state(&self, out: &mut Vec<u8>) -> Result<()> {
        let total = self.rows * self.g;
        out.reserve(total * 8);
        let mut buf = vec![E::default(); STREAM_CHUNK_ELEMS.min(total.max(1))];
        let mut p = 0usize;
        while p < total {
            let n = (total - p).min(buf.len());
            let off = self.regions[self.active] + p as u64 * E::PRECISION.value_bytes() as u64;
            E::read(&self.file, off, &mut buf[..n]).map_err(|e| {
                crate::PtuckerError::Checkpoint(format!("read spilled Pres table: {e}"))
            })?;
            for e in &buf[..n] {
                out.extend_from_slice(&e.to_f64().to_bits().to_le_bytes());
            }
            p += n;
        }
        Ok(())
    }

    /// Overwrites the active region's elements from an
    /// [`SpilledPresTable::export_state`] byte stream (same chunked
    /// streaming; the table must already have its final shape).
    ///
    /// # Errors
    /// [`crate::PtuckerError::Checkpoint`] on a byte-count mismatch or
    /// scratch-file I/O failure.
    pub fn import_state(&mut self, bytes: &[u8]) -> Result<()> {
        let total = self.rows * self.g;
        if bytes.len() != total * 8 {
            return Err(crate::PtuckerError::Checkpoint(format!(
                "checkpointed Pres table holds {} bytes, this fit's table needs {}",
                bytes.len(),
                total * 8
            )));
        }
        let mut buf: Vec<E> = Vec::with_capacity(STREAM_CHUNK_ELEMS.min(total.max(1)));
        let mut p = 0usize;
        let mut chunks = bytes.chunks_exact(8);
        while p < total {
            let n = (total - p).min(STREAM_CHUNK_ELEMS);
            buf.clear();
            for _ in 0..n {
                let chunk = chunks.next().expect("length validated above");
                let bits = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
                buf.push(E::from_f64(f64::from_bits(bits)));
            }
            let off = self.regions[self.active] + p as u64 * E::PRECISION.value_bytes() as u64;
            E::write(&self.file, off, &buf).map_err(|e| {
                crate::PtuckerError::Checkpoint(format!("write spilled Pres table: {e}"))
            })?;
            p += n;
        }
        Ok(())
    }

    /// The windowed analogue of [`PresTable::rescale_and_reorder`]: every
    /// source-order tile is rescaled in parallel (identical per-row
    /// arithmetic) and scatter-written into the inactive region in
    /// `next_mode`'s stream order; the regions then swap. `windows` is
    /// the fit's shared sweep source, rewound to `mode` here; the
    /// destination permutation comes from the plan's resident inverse
    /// entry maps, so the sweep works over resident and spilled plans
    /// alike.
    ///
    /// # Errors
    /// [`crate::PtuckerError::Tensor`] (I/O) if scratch-file access fails.
    #[allow(clippy::too_many_arguments)]
    pub fn rescale_and_reorder(
        &mut self,
        plan: &ModeStreams,
        factors: &[Matrix],
        old_a: &Matrix,
        mode: usize,
        next_mode: usize,
        core: &CoreTensor,
        threads: usize,
        windows: &mut SweepSource<'_>,
    ) -> Result<()> {
        debug_assert_eq!(self.order_mode, mode, "table must be in sweep order");
        let g = self.g;
        let order = factors.len();
        let core_idx = core.flat_indices();
        let core_vals = core.values();
        let new_a = &factors[mode];
        let src = self.active;
        let dst = 1 - src;
        let mut idx_buf = Vec::new();
        windows.rewind(mode);
        while let Some(w) = windows.next_window()? {
            let len = w.stream.len();
            window_indices(&w, order, &mut idx_buf);
            self.tile.resize(len * g, E::default());
            let src_off = self.row_off(src, w.base);
            E::read(&self.file, src_off, &mut self.tile)
                .map_err(ptucker_tensor::TensorError::from)?;
            parallel_rows_mut(
                &mut self.tile,
                g.max(1),
                threads,
                Schedule::Static,
                |p, row| {
                    let idx = &idx_buf[p * order..(p + 1) * order];
                    rescale_entry_row(row, idx, mode, old_a, new_a, core_idx, core_vals, factors);
                },
            );
            // Scatter the rescaled rows into the destination region in
            // `next_mode`'s order — batched: destinations are sorted and
            // every run of consecutive positions is staged contiguously
            // and written with one syscall, so a window costs O(runs)
            // writes rather than one per entry.
            self.perm.clear();
            self.perm.extend((0..len).map(|p| {
                let q = plan.position_of(next_mode, w.stream.entry_id(p));
                (q as u32, p as u32)
            }));
            self.perm.sort_unstable();
            let mut i = 0;
            while i < len {
                let q0 = self.perm[i].0 as usize;
                let mut run = 1;
                while i + run < len && self.perm[i + run].0 as usize == q0 + run {
                    run += 1;
                }
                self.staging.clear();
                for &(_, p) in &self.perm[i..i + run] {
                    let p = p as usize;
                    self.staging
                        .extend_from_slice(&self.tile[p * g..(p + 1) * g]);
                }
                let dst_off = self.row_off(dst, q0);
                E::write(&self.file, dst_off, &self.staging)
                    .map_err(ptucker_tensor::TensorError::from)?;
                i += run;
            }
        }
        self.active = dst;
        self.order_mode = next_mode;
        Ok(())
    }
}

/// The run-blocked cached-δ arithmetic for one entry, operating on the
/// entry's cached-product row wherever it lives — the in-memory
/// Reconstructs every position's full multi-index from one window of the
/// swept mode's stream into `out` (flat, `len·order`): the swept
/// coordinate is the position's global slice (`w.slices.start` plus its
/// window-local slice), the other coordinates come from the packed
/// ascending `others` section. Integer-exact, so spilled-table passes
/// need no resident COO tensor — the basis of the disk-to-disk Cache
/// variant.
pub(crate) fn window_indices(w: &Window<'_>, order: usize, out: &mut Vec<usize>) {
    let view = &w.stream;
    let mode = view.mode();
    out.clear();
    out.resize(view.len() * order, 0);
    for s in 0..view.num_slices() {
        let coord = w.slices.start + s;
        for p in view.slice_range(s) {
            let row = &mut out[p * order..(p + 1) * order];
            row[mode] = coord;
            let mut slot = 0;
            let others = view.others(p);
            for (k, r) in row.iter_mut().enumerate() {
                if k != mode {
                    *r = others[slot] as usize;
                    slot += 1;
                }
            }
        }
    }
}

/// [`PresTable`] and the windowed tile of a [`SpilledPresTable`] both call
/// this, so the two execution paths are **bitwise identical** per row.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn cached_delta_for_entry<E: PresElem>(
    delta: &mut [f64],
    pres: &[E],
    others: &[u32],
    mode: usize,
    a_row_old: &[f64],
    core_idx: &[usize],
    core_vals: &[f64],
    runs: &[u32],
    factors: &[Matrix],
) {
    delta.fill(0.0);
    let order = factors.len();
    let last = order - 1;
    for r in 0..runs.len() - 1 {
        let base = runs[r] as usize;
        let end = runs[r + 1] as usize;
        if mode == last {
            // The divisor varies with the tail coordinate. For a
            // contiguous tail (dense cores always), the run is one
            // vectorizable `δ[t] += pres[t] / a_old[t]` pass — the `simd`
            // feature's `_mm256_div_pd` path with the zero-divisor lanes
            // blended out — and only runs that actually hit a zero divisor
            // rescan for the direct-product fallback (the paper's caveat).
            let len = end - base;
            let t0 = core_idx[base * order + last];
            let contiguous = core_idx[(end - 1) * order + last] - t0 + 1 == len;
            if contiguous {
                if E::div_add(
                    &mut delta[t0..t0 + len],
                    &pres[base..end],
                    &a_row_old[t0..t0 + len],
                ) {
                    for b in base..end {
                        let j_n = core_idx[b * order + last];
                        if a_row_old[j_n] == 0.0 {
                            delta[j_n] += fallback_product(
                                core_vals[b],
                                &core_idx[b * order..(b + 1) * order],
                                others,
                                mode,
                                factors,
                            );
                        }
                    }
                }
            } else {
                // Truncation gaps: per-entry divisions, still a linear
                // pass over the cached slice.
                for b in base..end {
                    let j_n = core_idx[b * order + last];
                    let a = a_row_old[j_n];
                    if a != 0.0 {
                        delta[j_n] += pres[b].to_f64() / a;
                    } else {
                        delta[j_n] += fallback_product(
                            core_vals[b],
                            &core_idx[b * order..(b + 1) * order],
                            others,
                            mode,
                            factors,
                        );
                    }
                }
            }
        } else {
            // Constant divisor over the run: one contiguous sum, one
            // division.
            let j_n = core_idx[base * order + mode];
            let a = a_row_old[j_n];
            if a != 0.0 {
                delta[j_n] += E::sum(&pres[base..end]) / a;
            } else {
                for b in base..end {
                    delta[j_n] += fallback_product(
                        core_vals[b],
                        &core_idx[b * order..(b + 1) * order],
                        others,
                        mode,
                        factors,
                    );
                }
            }
        }
    }
}

/// The Algorithm-3 lines 16–19 rescale for one entry's cached-product row:
/// `Pres[α][β] *= a_new/a_old`, recomputed outright where `a_old = 0`.
/// Shared by the in-memory and the spilled tables (bitwise-identical
/// arithmetic on both paths).
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn rescale_entry_row<E: PresElem>(
    row: &mut [E],
    idx: &[usize],
    mode: usize,
    old_a: &Matrix,
    new_a: &Matrix,
    core_idx: &[usize],
    core_vals: &[f64],
    factors: &[Matrix],
) {
    let order = idx.len();
    let i_n = idx[mode];
    for (b, slot) in row.iter_mut().enumerate() {
        let beta = &core_idx[b * order..(b + 1) * order];
        let j_n = beta[mode];
        let old = old_a[(i_n, j_n)];
        if old != 0.0 {
            // Widen, scale in f64, round back once — for f64 exactly the
            // classic `*slot *= new/old`.
            *slot = E::from_f64(slot.to_f64() * (new_a[(i_n, j_n)] / old));
        } else {
            *slot = E::from_f64(product(core_vals[b], beta, idx, factors));
        }
    }
}

/// `G_β Π_{k=1..N} a⁽ᵏ⁾(iₖ, βₖ)` — the cached quantity.
#[inline]
pub(crate) fn product(g: f64, beta: &[usize], idx: &[usize], factors: &[Matrix]) -> f64 {
    let mut w = g;
    for (k, factor) in factors.iter().enumerate() {
        w *= factor[(idx[k], beta[k])];
        if w == 0.0 {
            break;
        }
    }
    w
}

/// The zero-divisor fallback: the direct `Π_{k≠n}` product from the
/// entry's packed other-mode indices (paper: "when a is 0, P-TUCKER-CACHE
/// conducts the multiplications as P-TUCKER does").
#[inline]
fn fallback_product(
    g: f64,
    beta: &[usize],
    others: &[u32],
    mode: usize,
    factors: &[Matrix],
) -> f64 {
    let mut w = g;
    let mut slot = 0;
    for (k, factor) in factors.iter().enumerate() {
        if k == mode {
            continue;
        }
        w *= factor[(others[slot] as usize, beta[k])];
        slot += 1;
        if w == 0.0 {
            break;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{accumulate_delta, core_runs};
    use proptest::prelude::*;
    use ptucker_memtrack::MemoryBudget;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SparseTensor, Vec<Matrix>, CoreTensor, ModeStreams) {
        let mut rng = StdRng::seed_from_u64(21);
        let x = ptucker_tensor::SparseTensor::new(
            vec![3, 4],
            vec![
                (vec![0, 0], 1.0),
                (vec![1, 2], 0.5),
                (vec![2, 3], 2.0),
                (vec![0, 1], -1.0),
            ],
        )
        .unwrap();
        let factors = vec![random_matrix(3, 2, &mut rng), random_matrix(4, 2, &mut rng)];
        let core = CoreTensor::random_dense(vec![2, 2], &mut rng).unwrap();
        let plan = ModeStreams::build(&x).unwrap();
        (x, factors, core, plan)
    }

    fn random_matrix(r: usize, c: usize, rng: &mut StdRng) -> Matrix {
        use rand::Rng;
        Matrix::from_vec(r, c, (0..r * c).map(|_| rng.gen::<f64>()).collect()).unwrap()
    }

    /// Packs other-mode indices the way a `ModeStream` does.
    fn pack_others(idx: &[usize], mode: usize) -> Vec<u32> {
        idx.iter()
            .enumerate()
            .filter(|&(k, _)| k != mode)
            .map(|(_, &i)| i as u32)
            .collect()
    }

    #[test]
    fn precompute_is_stream_ordered_and_matches_direct_products() {
        // The tentpole contract: `Pres` in stream order equals `Pres` in
        // COO order looked up through the stream's entry-id map.
        let (x, factors, core, plan) = setup();
        let pres =
            PresTable::<f64>::compute(&x, &plan, &factors, &core, 2, &MemoryBudget::unlimited())
                .unwrap();
        assert_eq!(pres.order_mode(), 0);
        let stream = plan.mode(0);
        for p in 0..x.nnz() {
            let idx = x.index(stream.entry_id(p));
            for b in 0..core.nnz() {
                let want = product(core.value(b), core.index(b), idx, &factors);
                assert!((pres.row_at(p)[b] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cached_delta_matches_direct_delta() {
        let (x, factors, core, plan) = setup();
        let mut pres =
            PresTable::<f64>::compute(&x, &plan, &factors, &core, 1, &MemoryBudget::unlimited())
                .unwrap();
        let runs = core_runs(core.flat_indices(), core.order());
        for mode in 0..2 {
            pres.ensure_order(&x, &plan, mode);
            let stream = plan.mode(mode);
            for pos in 0..x.nnz() {
                let idx = x.index(stream.entry_id(pos));
                let j_n = core.dims()[mode];
                let mut direct = vec![0.0; j_n];
                accumulate_delta(
                    &mut direct,
                    idx,
                    mode,
                    core.flat_indices(),
                    core.values(),
                    &factors,
                );
                let a_row: Vec<f64> = factors[mode].row(idx[mode]).to_vec();
                let mut cached = vec![0.0; j_n];
                pres.accumulate_delta_cached(
                    &mut cached,
                    pos,
                    &pack_others(idx, mode),
                    mode,
                    &a_row,
                    core.flat_indices(),
                    core.values(),
                    &runs,
                    &factors,
                );
                for (c, d) in cached.iter().zip(&direct) {
                    assert!((c - d).abs() < 1e-10, "mode={mode} pos={pos}");
                }
            }
        }
    }

    #[test]
    fn cached_delta_zero_divisor_fallback() {
        let (x, mut factors, core, plan) = setup();
        // Zero out one factor value so the division path is impossible.
        factors[0][(0, 1)] = 0.0;
        let pres =
            PresTable::<f64>::compute(&x, &plan, &factors, &core, 1, &MemoryBudget::unlimited())
                .unwrap();
        let runs = core_runs(core.flat_indices(), core.order());
        let stream = plan.mode(0);
        // Find the stream position of COO entry 0 — entry (0,0).
        let pos = stream.position_of(0);
        let idx = x.index(0);
        let mut direct = vec![0.0; 2];
        accumulate_delta(
            &mut direct,
            idx,
            0,
            core.flat_indices(),
            core.values(),
            &factors,
        );
        let a_row: Vec<f64> = factors[0].row(idx[0]).to_vec();
        let mut cached = vec![0.0; 2];
        pres.accumulate_delta_cached(
            &mut cached,
            pos,
            &pack_others(idx, 0),
            0,
            &a_row,
            core.flat_indices(),
            core.values(),
            &runs,
            &factors,
        );
        for (c, d) in cached.iter().zip(&direct) {
            assert!((c - d).abs() < 1e-12);
        }
    }

    #[test]
    fn rescale_and_reorder_keeps_table_consistent() {
        let (x, mut factors, core, plan) = setup();
        let mut pres =
            PresTable::<f64>::compute(&x, &plan, &factors, &core, 2, &MemoryBudget::unlimited())
                .unwrap();
        // Sweep mode 0 (no factor change yet), then "update" factor 0 and
        // carry the table into mode 1's order, fused with the rescale.
        let old = factors[0].clone();
        let mut rng = StdRng::seed_from_u64(99);
        factors[0] = random_matrix(3, 2, &mut rng);
        pres.rescale_and_reorder(&x, &plan, &factors, &old, 0, 1, &core, 2);
        assert_eq!(pres.order_mode(), 1);
        let stream = plan.mode(1);
        for p in 0..x.nnz() {
            let idx = x.index(stream.entry_id(p));
            for b in 0..core.nnz() {
                let want = product(core.value(b), core.index(b), idx, &factors);
                assert!(
                    (pres.row_at(p)[b] - want).abs() < 1e-10,
                    "stale cache at p={p} b={b}"
                );
            }
        }
    }

    #[test]
    fn rescale_recomputes_after_zero_old_value() {
        let (x, mut factors, core, plan) = setup();
        factors[0][(0, 0)] = 0.0;
        let mut pres =
            PresTable::<f64>::compute(&x, &plan, &factors, &core, 1, &MemoryBudget::unlimited())
                .unwrap();
        let old = factors[0].clone();
        factors[0][(0, 0)] = 0.75; // zero → nonzero: division impossible
        pres.rescale_and_reorder(&x, &plan, &factors, &old, 0, 1, &core, 1);
        let stream = plan.mode(1);
        for p in 0..x.nnz() {
            let idx = x.index(stream.entry_id(p));
            for b in 0..core.nnz() {
                let want = product(core.value(b), core.index(b), idx, &factors);
                assert!((pres.row_at(p)[b] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ensure_order_round_trips() {
        let (x, factors, core, plan) = setup();
        let mut pres =
            PresTable::<f64>::compute(&x, &plan, &factors, &core, 1, &MemoryBudget::unlimited())
                .unwrap();
        let snapshot = pres.data.clone();
        pres.ensure_order(&x, &plan, 1);
        assert_eq!(pres.order_mode(), 1);
        pres.ensure_order(&x, &plan, 0);
        assert_eq!(pres.order_mode(), 0);
        // Pure permutations there and back: bitwise identical.
        for (a, b) in pres.data.iter().zip(&snapshot) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn budget_violation_is_oom() {
        let (x, factors, core, plan) = setup();
        let tiny = MemoryBudget::new(16); // far below |Ω|*|G|*8 bytes
        let err = PresTable::<f64>::compute(&x, &plan, &factors, &core, 1, &tiny).unwrap_err();
        assert!(matches!(err, crate::PtuckerError::OutOfMemory(_)));
    }

    /// Mixed-precision contract at the table layer: an f32 table holds
    /// exactly the f64 product narrowed once — no double rounding, no
    /// f32 arithmetic. (`product` runs in f64; the cast is the only
    /// lossy step.)
    #[test]
    fn f32_table_stores_once_narrowed_products_bitwise() {
        let (x, factors, core, plan) = setup();
        let pres =
            PresTable::<f32>::compute(&x, &plan, &factors, &core, 2, &MemoryBudget::unlimited())
                .unwrap();
        let stream = plan.mode(0);
        for p in 0..x.nnz() {
            let idx = x.index(stream.entry_id(p));
            for b in 0..core.nnz() {
                let want = product(core.value(b), core.index(b), idx, &factors) as f32;
                assert_eq!(pres.row_at(p)[b].to_bits(), want.to_bits());
            }
        }
    }

    /// The f32 resident table and the f32 spilled tiles must expose the
    /// same bits for every row — spilling is storage, not arithmetic.
    /// (Hybrid layout: plan in RAM, table on disk, 2-position windows.)
    #[test]
    fn f32_spilled_tiles_match_resident_table_bitwise() {
        let (x, factors, core, plan) = setup();
        let budget = MemoryBudget::unlimited();
        let resident = PresTable::<f32>::compute(&x, &plan, &factors, &core, 2, &budget).unwrap();
        let mut source = plan.sweep_source(0, 2, false);
        let mut spilled =
            SpilledPresTable::<f32>::compute(x.nnz(), &factors, &core, 2, &budget, &mut source)
                .unwrap();
        source.rewind(0);
        while let Some(w) = source.next_window().unwrap() {
            let (base, len) = (w.base, w.stream.len());
            spilled.load_tile(base, len).unwrap();
            for off in 0..len {
                for (a, b) in resident
                    .row_at(base + off)
                    .iter()
                    .zip(spilled.tile_row(off))
                {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // Satellite property: the stream-ordered table equals the
        // COO-ordered products through the entry-id map, for every mode
        // order it is carried into and through full rescale cycles.
        #[test]
        fn stream_ordered_table_equals_coo_ordered_products(seed in 0..u64::MAX) {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(seed);
            let dims = [4usize, 3, 3];
            let nnz = rng.gen_range(4..20usize);
            let x = ptucker_datagen::uniform_sparse(&dims, nnz, &mut rng);
            let factors: Vec<Matrix> = dims
                .iter()
                .map(|&d| random_matrix(d, 2, &mut rng))
                .collect();
            let core = CoreTensor::random_dense(vec![2, 2, 2], &mut rng).unwrap();
            let plan = ModeStreams::build(&x).unwrap();
            let mut pres = PresTable::<f64>::compute(
                &x,
                &plan,
                &factors,
                &core,
                1,
                &MemoryBudget::unlimited(),
            )
            .unwrap();
            // Walk the driver's cyclic order with identity rescales, plus
            // one arbitrary jump via ensure_order.
            for mode in 0..3usize {
                pres.ensure_order(&x, &plan, mode);
                let stream = plan.mode(mode);
                for p in 0..x.nnz() {
                    let idx = x.index(stream.entry_id(p));
                    for b in 0..core.nnz() {
                        let want = product(core.value(b), core.index(b), idx, &factors);
                        prop_assert!(
                            (pres.row_at(p)[b] - want).abs() < 1e-12,
                            "mode {} p {} b {}",
                            mode,
                            p,
                            b
                        );
                    }
                }
                let old = factors[mode].clone();
                let next = (mode + 1) % 3;
                pres.rescale_and_reorder(&x, &plan, &factors, &old, mode, next, &core, 2);
            }
        }
    }
}
