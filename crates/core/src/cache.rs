//! P-Tucker-Cache: the `Pres` memoization table (Algorithm 3, lines 1–4 and
//! 16–19 of the paper).
//!
//! `Pres[α][β] = G_β Π_{k=1..N} a⁽ᵏ⁾(iₖ, βₖ)` caches the full N-way product
//! for every (observed entry, core entry) pair. During a mode-`n` row update
//! the δ kernel then needs only one division instead of `N−1`
//! multiplications per pair:
//! `δ⁽ⁿ⁾_α(βₙ) += Pres[α][β] / a⁽ⁿ⁾(iₙ, βₙ)`, falling back to the direct
//! product when `a⁽ⁿ⁾(iₙ, βₙ) = 0` (the paper's explicit caveat). After
//! `A⁽ⁿ⁾` changes, every cached product is rescaled by `a_new/a_old`
//! (recomputed outright where `a_old = 0`).
//!
//! The table is `|Ω|·|G|` doubles — the dominant memory cost (Theorem 6) —
//! and is metered against the fit's [`MemoryBudget`], which is exactly how
//! the Fig. 8(b) memory gap (≈29.5× at N = 10) is reproduced.

use crate::Result;
use ptucker_linalg::Matrix;
use ptucker_memtrack::{MemoryBudget, Reservation};
use ptucker_sched::{parallel_rows_mut, Schedule};
use ptucker_tensor::{CoreTensor, SparseTensor};

/// The memoization table of P-Tucker-Cache.
#[derive(Debug)]
pub(crate) struct PresTable {
    /// Row-major `|Ω| × |G|` products.
    data: Vec<f64>,
    /// Row stride = `|G|` (fixed: Cache and Approx are mutually exclusive).
    g: usize,
    /// Keeps the budget reservation alive for the table's lifetime.
    _reservation: Reservation,
}

impl PresTable {
    /// Precomputes the full table in parallel (Algorithm 3 lines 1–4; the
    /// paper uses static scheduling here — uniform work per row).
    ///
    /// # Errors
    /// [`crate::PtuckerError::OutOfMemory`] if `|Ω|·|G|` doubles exceed the
    /// intermediate-data budget.
    pub fn compute(
        x: &SparseTensor,
        factors: &[Matrix],
        core: &CoreTensor,
        threads: usize,
        budget: &MemoryBudget,
    ) -> Result<Self> {
        let g = core.nnz();
        let cells = x.nnz().saturating_mul(g);
        let reservation = budget.reserve_f64(cells)?;
        let mut data = vec![0.0f64; cells];
        let order = x.order();
        let core_idx = core.flat_indices();
        let core_vals = core.values();
        parallel_rows_mut(&mut data, g.max(1), threads, Schedule::Static, |e, row| {
            let idx = x.index(e);
            for (b, slot) in row.iter_mut().enumerate() {
                *slot = product(
                    core_vals[b],
                    &core_idx[b * order..(b + 1) * order],
                    idx,
                    factors,
                );
            }
        });
        Ok(PresTable {
            data,
            g,
            _reservation: reservation,
        })
    }

    /// The cached products for observed entry `e`.
    #[inline]
    pub fn row(&self, e: usize) -> &[f64] {
        &self.data[e * self.g..(e + 1) * self.g]
    }

    /// Accumulates δ for entry `e` using the cache (Algorithm 3 line 12),
    /// with the direct-product fallback for zero divisors.
    ///
    /// `others` holds the entry's packed other-mode indices in stream
    /// layout (ascending mode order, `mode` skipped); `a_row_old` is the
    /// *current* (pre-update) row `a⁽ⁿ⁾(iₙ, ·)`.
    #[inline]
    pub fn accumulate_delta_cached(
        &self,
        delta: &mut [f64],
        e: usize,
        others: &[u32],
        mode: usize,
        a_row_old: &[f64],
        core_idx: &[usize],
        core_vals: &[f64],
        factors: &[Matrix],
    ) {
        delta.fill(0.0);
        let order = factors.len();
        let pres = self.row(e);
        for (b, &cached) in pres.iter().enumerate() {
            let beta = &core_idx[b * order..(b + 1) * order];
            let j_n = beta[mode];
            let a = a_row_old[j_n];
            if a != 0.0 {
                delta[j_n] += cached / a;
            } else {
                // Fallback: direct Π_{k≠n} product (paper: "when a is 0,
                // P-TUCKER-CACHE conducts the multiplications as P-TUCKER
                // does").
                let mut w = core_vals[b];
                let mut slot = 0;
                for (k, factor) in factors.iter().enumerate() {
                    if k == mode {
                        continue;
                    }
                    w *= factor[(others[slot] as usize, beta[k])];
                    slot += 1;
                    if w == 0.0 {
                        break;
                    }
                }
                delta[j_n] += w;
            }
        }
    }

    /// Rescales the table after `A⁽ⁿ⁾` was updated (Algorithm 3 lines
    /// 16–19): `Pres[α][β] *= a_new/a_old`, recomputing outright where
    /// `a_old = 0`. Parallel with static scheduling, like the precompute.
    pub fn update_mode(
        &mut self,
        x: &SparseTensor,
        factors: &[Matrix],
        old_a: &Matrix,
        mode: usize,
        core: &CoreTensor,
        threads: usize,
    ) {
        let g = self.g;
        let order = x.order();
        let core_idx = core.flat_indices();
        let core_vals = core.values();
        let new_a = &factors[mode];
        parallel_rows_mut(
            &mut self.data,
            g.max(1),
            threads,
            Schedule::Static,
            |e, row| {
                let idx = x.index(e);
                let i_n = idx[mode];
                for (b, slot) in row.iter_mut().enumerate() {
                    let beta = &core_idx[b * order..(b + 1) * order];
                    let j_n = beta[mode];
                    let old = old_a[(i_n, j_n)];
                    if old != 0.0 {
                        *slot *= new_a[(i_n, j_n)] / old;
                    } else {
                        *slot = product(core_vals[b], beta, idx, factors);
                    }
                }
            },
        );
    }
}

/// `G_β Π_{k=1..N} a⁽ᵏ⁾(iₖ, βₖ)` — the cached quantity.
#[inline]
fn product(g: f64, beta: &[usize], idx: &[usize], factors: &[Matrix]) -> f64 {
    let mut w = g;
    for (k, factor) in factors.iter().enumerate() {
        w *= factor[(idx[k], beta[k])];
        if w == 0.0 {
            break;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::accumulate_delta;
    use ptucker_memtrack::MemoryBudget;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SparseTensor, Vec<Matrix>, CoreTensor) {
        let mut rng = StdRng::seed_from_u64(21);
        let x = ptucker_tensor::SparseTensor::new(
            vec![3, 4],
            vec![
                (vec![0, 0], 1.0),
                (vec![1, 2], 0.5),
                (vec![2, 3], 2.0),
                (vec![0, 1], -1.0),
            ],
        )
        .unwrap();
        let factors = vec![random_matrix(3, 2, &mut rng), random_matrix(4, 2, &mut rng)];
        let core = CoreTensor::random_dense(vec![2, 2], &mut rng).unwrap();
        (x, factors, core)
    }

    fn random_matrix(r: usize, c: usize, rng: &mut StdRng) -> Matrix {
        use rand::Rng;
        Matrix::from_vec(r, c, (0..r * c).map(|_| rng.gen::<f64>()).collect()).unwrap()
    }

    /// Packs other-mode indices the way a `ModeStream` does.
    fn pack_others(idx: &[usize], mode: usize) -> Vec<u32> {
        idx.iter()
            .enumerate()
            .filter(|&(k, _)| k != mode)
            .map(|(_, &i)| i as u32)
            .collect()
    }

    #[test]
    fn precompute_matches_direct_products() {
        let (x, factors, core) = setup();
        let pres = PresTable::compute(&x, &factors, &core, 2, &MemoryBudget::unlimited()).unwrap();
        for e in 0..x.nnz() {
            let idx = x.index(e);
            for b in 0..core.nnz() {
                let want = product(core.value(b), core.index(b), idx, &factors);
                assert!((pres.row(e)[b] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cached_delta_matches_direct_delta() {
        let (x, factors, core) = setup();
        let pres = PresTable::compute(&x, &factors, &core, 1, &MemoryBudget::unlimited()).unwrap();
        for mode in 0..2 {
            for e in 0..x.nnz() {
                let idx = x.index(e);
                let j_n = core.dims()[mode];
                let mut direct = vec![0.0; j_n];
                accumulate_delta(
                    &mut direct,
                    idx,
                    mode,
                    core.flat_indices(),
                    core.values(),
                    &factors,
                );
                let a_row: Vec<f64> = factors[mode].row(idx[mode]).to_vec();
                let mut cached = vec![0.0; j_n];
                pres.accumulate_delta_cached(
                    &mut cached,
                    e,
                    &pack_others(idx, mode),
                    mode,
                    &a_row,
                    core.flat_indices(),
                    core.values(),
                    &factors,
                );
                for (c, d) in cached.iter().zip(&direct) {
                    assert!((c - d).abs() < 1e-10, "mode={mode} e={e}");
                }
            }
        }
    }

    #[test]
    fn cached_delta_zero_divisor_fallback() {
        let (x, mut factors, core) = setup();
        // Zero out one factor value so the division path is impossible.
        factors[0][(0, 1)] = 0.0;
        let pres = PresTable::compute(&x, &factors, &core, 1, &MemoryBudget::unlimited()).unwrap();
        let e = 0; // entry (0,0)
        let idx = x.index(e);
        let mut direct = vec![0.0; 2];
        accumulate_delta(
            &mut direct,
            idx,
            0,
            core.flat_indices(),
            core.values(),
            &factors,
        );
        let a_row: Vec<f64> = factors[0].row(idx[0]).to_vec();
        let mut cached = vec![0.0; 2];
        pres.accumulate_delta_cached(
            &mut cached,
            e,
            &pack_others(idx, 0),
            0,
            &a_row,
            core.flat_indices(),
            core.values(),
            &factors,
        );
        for (c, d) in cached.iter().zip(&direct) {
            assert!((c - d).abs() < 1e-12);
        }
    }

    #[test]
    fn update_mode_keeps_table_consistent() {
        let (x, mut factors, core) = setup();
        let mut pres =
            PresTable::compute(&x, &factors, &core, 2, &MemoryBudget::unlimited()).unwrap();
        // Change factor 1, including a zero→nonzero flip.
        let old = factors[1].clone();
        let mut rng = StdRng::seed_from_u64(99);
        factors[1] = random_matrix(4, 2, &mut rng);
        pres.update_mode(&x, &factors, &old, 1, &core, 2);
        for e in 0..x.nnz() {
            let idx = x.index(e);
            for b in 0..core.nnz() {
                let want = product(core.value(b), core.index(b), idx, &factors);
                assert!(
                    (pres.row(e)[b] - want).abs() < 1e-10,
                    "stale cache at e={e} b={b}"
                );
            }
        }
    }

    #[test]
    fn update_mode_recomputes_after_zero_old_value() {
        let (x, mut factors, core) = setup();
        factors[0][(0, 0)] = 0.0;
        let mut pres =
            PresTable::compute(&x, &factors, &core, 1, &MemoryBudget::unlimited()).unwrap();
        let old = factors[0].clone();
        factors[0][(0, 0)] = 0.75; // zero → nonzero: division impossible
        pres.update_mode(&x, &factors, &old, 0, &core, 1);
        for e in 0..x.nnz() {
            let idx = x.index(e);
            for b in 0..core.nnz() {
                let want = product(core.value(b), core.index(b), idx, &factors);
                assert!((pres.row(e)[b] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn budget_violation_is_oom() {
        let (x, factors, core) = setup();
        let tiny = MemoryBudget::new(16); // far below |Ω|*|G|*8 bytes
        let err = PresTable::compute(&x, &factors, &core, 1, &tiny).unwrap_err();
        assert!(matches!(err, crate::PtuckerError::OutOfMemory(_)));
    }
}
