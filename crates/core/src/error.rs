use ptucker_linalg::LinalgError;
use ptucker_memtrack::OutOfMemory;
use ptucker_tensor::TensorError;
use std::fmt;

/// Errors produced by P-Tucker fitting.
#[derive(Debug)]
pub enum PtuckerError {
    /// The fit configuration is inconsistent (bad ranks, rates, …).
    InvalidConfig(String),
    /// The intermediate-data budget was exceeded — the analogue of the
    /// paper's O.O.M. outcomes.
    OutOfMemory(OutOfMemory),
    /// A linear-algebra kernel failed (singular system, no convergence, …).
    Linalg(LinalgError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// A distributed fit-sync hook failed (transport error, protocol
    /// mismatch, or a peer process exiting early).
    Sync(String),
    /// A checkpoint could not be written, read, or applied (I/O failure,
    /// checksum mismatch, version/fingerprint disagreement).
    Checkpoint(String),
    /// A serialized model file could not be written, read, or served
    /// (I/O failure, checksum mismatch, malformed or inconsistent
    /// shapes).
    Model(String),
}

impl fmt::Display for PtuckerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtuckerError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PtuckerError::OutOfMemory(e) => write!(f, "{e}"),
            PtuckerError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            PtuckerError::Tensor(e) => write!(f, "tensor failure: {e}"),
            PtuckerError::Sync(msg) => write!(f, "fit sync failure: {msg}"),
            PtuckerError::Checkpoint(msg) => write!(f, "checkpoint failure: {msg}"),
            PtuckerError::Model(msg) => write!(f, "model failure: {msg}"),
        }
    }
}

impl std::error::Error for PtuckerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PtuckerError::OutOfMemory(e) => Some(e),
            PtuckerError::Linalg(e) => Some(e),
            PtuckerError::Tensor(e) => Some(e),
            PtuckerError::InvalidConfig(_)
            | PtuckerError::Sync(_)
            | PtuckerError::Checkpoint(_)
            | PtuckerError::Model(_) => None,
        }
    }
}

impl From<OutOfMemory> for PtuckerError {
    fn from(e: OutOfMemory) -> Self {
        PtuckerError::OutOfMemory(e)
    }
}

impl From<LinalgError> for PtuckerError {
    fn from(e: LinalgError) -> Self {
        PtuckerError::Linalg(e)
    }
}

impl From<TensorError> for PtuckerError {
    fn from(e: TensorError) -> Self {
        PtuckerError::Tensor(e)
    }
}
