//! The read-path seam between a fitted model and a query server.
//!
//! A [`Predictor`] wraps a [`TuckerDecomposition`] together with the one
//! piece of derived state the run-blocked kernels need — the core's run
//! boundaries (the delta module's `core_runs`) — and exposes the two
//! serving primitives:
//!
//! * **point reconstruction** ([`Predictor::predict`]): one entry
//!   `x̂_α = Σ_β G_β Πₙ a⁽ⁿ⁾(iₙ, βₙ)` through the same
//!   `reconstruct_entry_blocked` micro-kernel the fit's residual pass
//!   runs on, so a served prediction is **bitwise identical** to the
//!   value the trainer would compute;
//! * **mode sweep scoring** ([`Predictor::scores_into`]): given the
//!   query's other-mode indices, one δ accumulation
//!   (`accumulate_delta_blocked` — the δ is *independent of the target
//!   row*) followed by a row-per-candidate `dot` against the target
//!   mode's factor — `O(|G| + Iₙ·Jₙ)` for all `Iₙ` candidates instead of
//!   `O(Iₙ·|G|·N)` naive reconstructions. This is the top-K
//!   recommendation kernel: the caller ranks the scores.
//!
//! Both paths write into caller-owned buffers and allocate nothing, so a
//! server can pin one scratch arena per worker thread and keep its query
//! hot path allocation-free.
//!
//! The storage-precision hook mirrors the fit engine's: a predictor built
//! with [`StoragePrecision::F32`] keeps an f32 copy of each factor and
//! scores candidates through the widening
//! [`ptucker_linalg::kernels::dot_f32_f64`] kernel (f32
//! model memory, f64 accumulation — half the factor traffic on the
//! scoring sweep). Point queries always read the f64 factors: a served
//! prediction stays bitwise exact in either mode.
//!
//! # Model files
//!
//! [`TuckerDecomposition::store`]/[`load`](TuckerDecomposition::load)
//! persist a fitted model in the same defensive idiom as fit
//! checkpoints: magic `"PTKMODL1"`, a format version, little-endian
//! fields, and a trailing FNV-1a checksum, written atomically
//! (temp file → fsync → rename). Corrupt or truncated files fail with a
//! named [`PtuckerError::Model`], never a panic.

use crate::checkpoint::{fnv1a, put_f64, put_u64, Cur};
use crate::delta::{accumulate_delta_blocked, core_runs, reconstruct_entry_blocked};
use crate::{PtuckerError, Result, StoragePrecision, TuckerDecomposition};
use ptucker_linalg::kernels::{dot, dot_f32_f64};
use ptucker_linalg::Matrix;
use ptucker_tensor::CoreTensor;
use std::io::Write;
use std::path::Path;

/// Leading magic of every serialized model file.
const MAGIC: [u8; 8] = *b"PTKMODL1";

/// Current model file format version.
const FORMAT_VERSION: u32 = 1;

fn md(msg: String) -> PtuckerError {
    PtuckerError::Model(msg)
}

/// Re-labels cursor errors (which report as checkpoint failures) for the
/// model-file context.
fn as_model(e: PtuckerError) -> PtuckerError {
    match e {
        PtuckerError::Checkpoint(m) => PtuckerError::Model(m),
        other => other,
    }
}

impl TuckerDecomposition {
    /// Serializes the model to its on-disk byte format (including the
    /// trailing checksum). See the [module docs](self) for the layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        put_u64(&mut out, self.factors.len() as u64);
        for m in &self.factors {
            put_u64(&mut out, m.rows() as u64);
            put_u64(&mut out, m.cols() as u64);
            for &v in m.as_slice() {
                put_f64(&mut out, v);
            }
        }
        put_u64(&mut out, self.core.order() as u64);
        for &d in self.core.dims() {
            put_u64(&mut out, d as u64);
        }
        put_u64(&mut out, self.core.nnz() as u64);
        for &i in self.core.flat_indices() {
            put_u64(&mut out, i as u64);
        }
        for &v in self.core.values() {
            put_f64(&mut out, v);
        }
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Parses and validates a model blob: magic, format version and
    /// trailing checksum are all checked before any field is trusted.
    /// The round trip is bitwise (`f64` values travel as raw bits).
    ///
    /// # Errors
    /// [`PtuckerError::Model`] naming the specific defect — bad magic,
    /// unsupported version, checksum mismatch, truncation, or an
    /// inconsistent field.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(md(format!(
                "file too short to be a model ({} bytes)",
                bytes.len()
            )));
        }
        if bytes[..8] != MAGIC {
            return Err(md("bad magic — not a P-Tucker model file".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(md(format!(
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x}) — file corrupt or truncated"
            )));
        }
        let mut d = Cur {
            bytes: body,
            pos: 8,
        };
        let version = d.u32().map_err(as_model)?;
        if version != FORMAT_VERSION {
            return Err(md(format!(
                "unsupported model format version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let n_factors = d.len("factors").map_err(as_model)?;
        let mut factors = Vec::with_capacity(n_factors);
        for _ in 0..n_factors {
            let rows = d.usize().map_err(as_model)?;
            let cols = d.usize().map_err(as_model)?;
            let cells = rows
                .checked_mul(cols)
                .ok_or_else(|| md("factor shape overflows".into()))?;
            let mut data = Vec::with_capacity(cells.min(d.remaining() / 8));
            for _ in 0..cells {
                data.push(d.f64().map_err(as_model)?);
            }
            factors.push(
                Matrix::from_vec(rows, cols, data)
                    .map_err(|e| md(format!("factor matrix malformed: {e}")))?,
            );
        }
        let order = d.usize().map_err(as_model)?;
        let mut dims = Vec::with_capacity(order.min(d.remaining() / 8));
        for _ in 0..order {
            dims.push(d.usize().map_err(as_model)?);
        }
        let nnz = d.usize().map_err(as_model)?;
        let idx_count = nnz
            .checked_mul(order)
            .ok_or_else(|| md("core shape overflows".into()))?;
        let mut flat = Vec::with_capacity(idx_count.min(d.remaining() / 8));
        for _ in 0..idx_count {
            flat.push(d.usize().map_err(as_model)?);
        }
        let mut entries = Vec::with_capacity(nnz);
        for e in 0..nnz {
            entries.push((flat[e * order..(e + 1) * order].to_vec(), 0.0));
        }
        for entry in entries.iter_mut() {
            entry.1 = d.f64().map_err(as_model)?;
        }
        let core = CoreTensor::from_entries(dims, entries)
            .map_err(|e| md(format!("core tensor malformed: {e}")))?;
        if d.pos != body.len() {
            return Err(md(format!(
                "{} trailing bytes after the core section",
                body.len() - d.pos
            )));
        }
        Ok(TuckerDecomposition { factors, core })
    }

    /// Atomically writes the model to `path`: encode → sibling temp file
    /// → `fsync` → `rename` → best-effort directory fsync. A crash at
    /// any point leaves either the old model or the new one, never a
    /// torn file.
    ///
    /// # Errors
    /// [`PtuckerError::Model`] wrapping the failed I/O step.
    pub fn store(&self, path: &Path) -> Result<()> {
        let bytes = self.encode();
        let tmp = {
            let mut name = path.file_name().unwrap_or_default().to_os_string();
            name.push(".tmp");
            path.with_file_name(name)
        };
        let io = |step: &'static str| {
            let p = tmp.display().to_string();
            move |e: std::io::Error| md(format!("{step} {p}: {e}"))
        };
        let mut f = std::fs::File::create(&tmp).map_err(io("create"))?;
        f.write_all(&bytes).map_err(io("write"))?;
        f.sync_all().map_err(io("fsync"))?;
        drop(f);
        std::fs::rename(&tmp, path)
            .map_err(|e| md(format!("rename into {}: {e}", path.display())))?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads and validates a model from `path`.
    ///
    /// # Errors
    /// [`PtuckerError::Model`] on I/O failure or any decode defect (see
    /// [`TuckerDecomposition::decode`]).
    pub fn load(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| md(format!("read {}: {e}", path.display())))?;
        TuckerDecomposition::decode(&bytes)
    }
}

/// A [`TuckerDecomposition`] prepared for serving: core run boundaries
/// precomputed once, optional f32 factor copies for the scoring sweep.
/// See the [module docs](self) for the two query primitives and their
/// cost model.
#[derive(Debug, Clone)]
pub struct Predictor {
    decomposition: TuckerDecomposition,
    /// `core_runs` of the decomposition's core — the blocking structure
    /// every query rides.
    runs: Vec<u32>,
    /// Row-major f32 copy of each factor under
    /// [`StoragePrecision::F32`]; empty in f64 mode.
    factors_f32: Vec<Vec<f32>>,
    precision: StoragePrecision,
}

impl Predictor {
    /// Prepares a decomposition for serving at full f64 precision.
    ///
    /// # Errors
    /// [`PtuckerError::Model`] if the factors and core disagree on order
    /// or ranks (a model that cannot answer any query).
    pub fn new(decomposition: TuckerDecomposition) -> Result<Self> {
        Self::with_precision(decomposition, StoragePrecision::F64)
    }

    /// Prepares a decomposition for serving with an explicit
    /// storage-precision mode for the scoring sweep. Point queries are
    /// f64 (bitwise) in either mode; see the [module docs](self).
    ///
    /// # Errors
    /// [`PtuckerError::Model`] if the factors and core disagree on order
    /// or ranks.
    pub fn with_precision(
        decomposition: TuckerDecomposition,
        precision: StoragePrecision,
    ) -> Result<Self> {
        let order = decomposition.factors.len();
        if order == 0 {
            return Err(md("model has no factor matrices".into()));
        }
        if decomposition.core.order() != order {
            return Err(md(format!(
                "core order {} does not match factor count {order}",
                decomposition.core.order()
            )));
        }
        for (n, a) in decomposition.factors.iter().enumerate() {
            if a.cols() != decomposition.core.dims()[n] {
                return Err(md(format!(
                    "factor {n} has {} columns but the core's rank is {}",
                    a.cols(),
                    decomposition.core.dims()[n]
                )));
            }
        }
        let runs = core_runs(decomposition.core.flat_indices(), order);
        let factors_f32 = match precision {
            StoragePrecision::F64 => Vec::new(),
            StoragePrecision::F32 => decomposition
                .factors
                .iter()
                .map(|a| a.as_slice().iter().map(|&v| v as f32).collect())
                .collect(),
        };
        Ok(Predictor {
            decomposition,
            runs,
            factors_f32,
            precision,
        })
    }

    /// The wrapped model.
    pub fn decomposition(&self) -> &TuckerDecomposition {
        &self.decomposition
    }

    /// Storage precision of the scoring sweep.
    pub fn precision(&self) -> StoragePrecision {
        self.precision
    }

    /// Tensor dimensionalities `I₁ … I_N` implied by the factors.
    pub fn dims(&self) -> Vec<usize> {
        self.decomposition.dims()
    }

    /// Tucker ranks `J₁ … J_N`.
    pub fn ranks(&self) -> Vec<usize> {
        self.decomposition.ranks()
    }

    /// Tensor order `N`.
    pub fn order(&self) -> usize {
        self.decomposition.factors.len()
    }

    /// Reconstructs one cell through the run-blocked kernel — bitwise
    /// identical to the trainer's residual-pass reconstruction of the
    /// same cell, and allocation-free.
    ///
    /// # Panics
    /// Panics (in debug builds) on wrong arity; out-of-range indices
    /// panic on factor row access — validate against [`Predictor::dims`]
    /// first when the index is untrusted.
    pub fn predict(&self, index: &[usize]) -> f64 {
        debug_assert_eq!(index.len(), self.order());
        reconstruct_entry_blocked(
            index,
            self.decomposition.core.flat_indices(),
            self.decomposition.core.values(),
            &self.runs,
            &self.decomposition.factors,
        )
    }

    /// Accumulates the query's δ vector into `delta` (cleared first):
    /// `δ(j) = Σ_{β, βₙ=j} G_β Π_{k≠n} a⁽ᵏ⁾(iₖ, βₖ)`. `others` holds the
    /// other-mode indices in ascending mode order with `mode` skipped;
    /// `delta.len()` must be the mode's rank `Jₙ`. Allocation-free.
    ///
    /// # Panics
    /// Panics (in debug builds) on wrong arity or δ length; out-of-range
    /// indices panic on factor row access.
    pub fn delta_into(&self, others: &[u32], mode: usize, delta: &mut [f64]) {
        debug_assert_eq!(others.len(), self.order() - 1);
        debug_assert_eq!(delta.len(), self.decomposition.core.dims()[mode]);
        accumulate_delta_blocked(
            delta,
            others,
            mode,
            self.decomposition.core.flat_indices(),
            self.decomposition.core.values(),
            &self.runs,
            &self.decomposition.factors,
        );
    }

    /// Scores **every** candidate row of `mode` for the context `others`
    /// (other-mode indices, ascending mode order, `mode` skipped):
    /// `scores[i] = x̂(…, i, …) = a⁽ⁿ⁾(i, ·) · δ`. One δ accumulation
    /// into `delta` (length `Jₙ`), then a `dot` per row into `scores`
    /// (length `Iₙ`). Under [`StoragePrecision::F32`] the row side of
    /// each dot reads the f32 factor copy through the widening kernel.
    /// Allocation-free; the caller ranks the scores (see
    /// `ptucker_linalg::kernels::top_k_select`).
    ///
    /// # Panics
    /// Panics (in debug builds) on wrong arity or buffer lengths;
    /// out-of-range indices panic on factor row access.
    pub fn scores_into(&self, others: &[u32], mode: usize, delta: &mut [f64], scores: &mut [f64]) {
        let a = &self.decomposition.factors[mode];
        debug_assert_eq!(scores.len(), a.rows());
        self.delta_into(others, mode, delta);
        match self.precision {
            StoragePrecision::F64 => {
                for (i, s) in scores.iter_mut().enumerate() {
                    *s = dot(a.row(i), delta);
                }
            }
            StoragePrecision::F32 => {
                let q = &self.factors_f32[mode];
                let j = a.cols();
                for (i, s) in scores.iter_mut().enumerate() {
                    *s = dot_f32_f64(&q[i * j..(i + 1) * j], delta);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_model(seed: u64, dims: &[usize], ranks: &[usize]) -> TuckerDecomposition {
        let mut rng = StdRng::seed_from_u64(seed);
        let factors = dims
            .iter()
            .zip(ranks)
            .map(|(&i_n, &j_n)| {
                Matrix::from_vec(
                    i_n,
                    j_n,
                    (0..i_n * j_n)
                        .map(|_| rng.gen::<f64>() * 2.0 - 1.0)
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        let core = CoreTensor::dense_from_fn(ranks.to_vec(), |idx| {
            let mut h = 0.7;
            for &b in idx {
                h = h * 1.37 + b as f64 * 0.11;
            }
            h.sin()
        })
        .unwrap();
        TuckerDecomposition { factors, core }
    }

    #[test]
    fn predict_is_bitwise_the_blocked_kernel() {
        let model = random_model(3, &[5, 4, 6], &[2, 3, 2]);
        let runs = core_runs(model.core.flat_indices(), 3);
        let p = Predictor::new(model.clone()).unwrap();
        for index in [[0usize, 0, 0], [4, 3, 5], [2, 1, 3]] {
            let direct = reconstruct_entry_blocked(
                &index,
                model.core.flat_indices(),
                model.core.values(),
                &runs,
                &model.factors,
            );
            assert_eq!(p.predict(&index).to_bits(), direct.to_bits());
        }
        // And an f32-mode predictor serves the identical f64 point value.
        let p32 = Predictor::with_precision(model.clone(), StoragePrecision::F32).unwrap();
        for index in [[0usize, 0, 0], [4, 3, 5]] {
            assert_eq!(p32.predict(&index).to_bits(), p.predict(&index).to_bits());
        }
    }

    #[test]
    fn scores_match_per_cell_predictions() {
        let model = random_model(11, &[6, 5, 4], &[2, 2, 3]);
        let p = Predictor::new(model).unwrap();
        for mode in 0..3 {
            let dims = p.dims();
            let mut delta = vec![0.0; p.ranks()[mode]];
            let mut scores = vec![0.0; dims[mode]];
            // Context: a fixed index in every other mode.
            let others: Vec<u32> = (0..3)
                .filter(|&k| k != mode)
                .map(|k| (dims[k] - 1) as u32)
                .collect();
            p.scores_into(&others, mode, &mut delta, &mut scores);
            for (i, &s) in scores.iter().enumerate() {
                let mut index = vec![0usize; 3];
                let mut slot = 0;
                for k in 0..3 {
                    if k == mode {
                        index[k] = i;
                    } else {
                        index[k] = others[slot] as usize;
                        slot += 1;
                    }
                }
                let want = p.predict(&index);
                assert!(
                    (s - want).abs() <= 1e-12 * (1.0 + want.abs()),
                    "mode {mode} row {i}: {s} vs {want}"
                );
            }
        }
    }

    #[test]
    fn f32_mode_scores_through_the_quantized_rows() {
        let model = random_model(29, &[7, 3], &[2, 2]);
        let p64 = Predictor::new(model.clone()).unwrap();
        let p32 = Predictor::with_precision(model.clone(), StoragePrecision::F32).unwrap();
        let mut delta = vec![0.0; 2];
        let mut s64 = vec![0.0; 7];
        let mut s32 = vec![0.0; 7];
        p64.scores_into(&[1], 0, &mut delta, &mut s64);
        p32.scores_into(&[1], 0, &mut delta, &mut s32);
        for (i, (&a, &b)) in s64.iter().zip(&s32).enumerate() {
            // The f32 path must equal a dot of the quantized row exactly
            // (same widening kernel), and approximate the f64 score.
            let q: Vec<f32> = model.factors[0].row(i).iter().map(|&v| v as f32).collect();
            let exact = dot_f32_f64(&q, &delta);
            assert_eq!(b.to_bits(), exact.to_bits(), "row {i}");
            assert!(
                (a - b).abs() <= 1e-5 * (1.0 + a.abs()),
                "row {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn model_file_round_trips_bitwise() {
        let model = random_model(5, &[4, 3, 2], &[2, 2, 2]);
        let back = TuckerDecomposition::decode(&model.encode()).unwrap();
        assert_eq!(model.factors.len(), back.factors.len());
        for (a, b) in model.factors.iter().zip(&back.factors) {
            assert_eq!(a.rows(), b.rows());
            assert_eq!(a.cols(), b.cols());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(model.core.dims(), back.core.dims());
        assert_eq!(model.core.flat_indices(), back.core.flat_indices());
        for (x, y) in model.core.values().iter().zip(back.core.values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn model_store_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("ptk-model-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ptm");
        let model = random_model(6, &[3, 3], &[2, 2]);
        model.store(&path).unwrap();
        let back = TuckerDecomposition::load(&path).unwrap();
        assert_eq!(model.encode(), back.encode());
        assert!(!path.with_file_name("model.ptm.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn model_corruption_is_named_not_panicked() {
        let good = random_model(7, &[3, 2], &[2, 2]).encode();

        let err = TuckerDecomposition::decode(&good[..good.len() - 5]).unwrap_err();
        assert!(matches!(err, PtuckerError::Model(_)), "{err}");

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        let err = TuckerDecomposition::decode(&flipped).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        let mut bad_magic = good.clone();
        bad_magic[0] = b'Z';
        let err = TuckerDecomposition::decode(&bad_magic).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // A fit checkpoint is not a model file.
        let err = TuckerDecomposition::decode(b"PTKCKPT1everything else").unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        let err = TuckerDecomposition::decode(&[]).unwrap_err();
        assert!(matches!(err, PtuckerError::Model(_)), "{err}");
    }

    #[test]
    fn predictor_rejects_inconsistent_shapes() {
        let model = random_model(8, &[3, 3], &[2, 2]);
        // Factor 1 with the wrong column count.
        let mut broken = model.clone();
        broken.factors[1] = Matrix::from_vec(3, 3, vec![0.0; 9]).unwrap();
        assert!(matches!(
            Predictor::new(broken).unwrap_err(),
            PtuckerError::Model(_)
        ));
        // No factors at all.
        let empty = TuckerDecomposition {
            factors: vec![],
            core: model.core.clone(),
        };
        assert!(Predictor::new(empty).is_err());
    }
}
