use crate::TuckerDecomposition;

/// Per-iteration measurements recorded during a fit.
#[derive(Debug, Clone, PartialEq)]
pub struct IterStats {
    /// Zero-based iteration index.
    pub iter: usize,
    /// Reconstruction error (Eq. 5) after this iteration's factor updates
    /// (measured *before* any Approx truncation, matching Algorithm 2's
    /// ordering).
    pub reconstruction_error: f64,
    /// Wall-clock seconds spent in this iteration (factor updates + error
    /// computation + truncation).
    pub seconds: f64,
    /// Number of core entries `|G|` at the *end* of the iteration (shrinks
    /// under P-Tucker-Approx).
    pub core_nnz: usize,
}

/// Aggregate statistics for a completed fit.
#[derive(Debug, Clone)]
pub struct FitStats {
    /// One record per ALS iteration, in order.
    pub iterations: Vec<IterStats>,
    /// Whether the error converged before `max_iters` was reached.
    pub converged: bool,
    /// Total wall-clock seconds including initialization and the final QR.
    pub total_seconds: f64,
    /// High-water mark of metered intermediate data in bytes (Definition 7
    /// of the paper; what Table III's memory column and Figs. 8b/10b
    /// measure).
    pub peak_intermediate_bytes: usize,
    /// High-water mark of intermediate data **spilled to disk** in bytes:
    /// 0 for an in-memory fit; for an out-of-core fit, the scratch-file
    /// footprint of the execution plan (and, for the Cache variant, its
    /// double-buffered `Pres` table).
    pub peak_spilled_bytes: usize,
    /// Reconstruction error of the returned (orthogonalized) model.
    pub final_error: f64,
    /// Bytes this process sent to fit-sync peers (factor rows, stats,
    /// control frames). Zero on single-process fits; populated by the
    /// `ptucker-shard` coordinator/worker drivers.
    pub bytes_sent: u64,
    /// Bytes this process received from fit-sync peers. Zero on
    /// single-process fits.
    pub bytes_received: u64,
    /// Bytes read back from budget-tracked scratch files during the fit
    /// (window refills, spilled `Pres` tiles, external-sort merges).
    /// Zero for a fully resident fit. The disk-traffic twin of
    /// [`FitStats::bytes_sent`]/[`FitStats::bytes_received`].
    pub io_read_bytes: u64,
    /// Bytes written to budget-tracked scratch files during the fit
    /// (plan spills, checkpoint-free scratch state). Zero for a fully
    /// resident fit.
    pub io_write_bytes: u64,
    /// Whether the background prefetch pipeline actually ran. `false`
    /// when nothing spilled, when [`crate::FitOptions::prefetch`] was
    /// off, or when the driver's self-gate declined it (windows below
    /// the amortization threshold, or no spare hardware thread for the
    /// refill to ride). Lets harnesses distinguish "prefetch measured"
    /// from "prefetch requested but identical to the single buffer".
    pub prefetch_engaged: bool,
}

impl FitStats {
    /// Average wall-clock seconds per iteration — the paper reports this
    /// rather than total time "in order to confirm the theoretical
    /// complexities, which are analyzed per iteration" (Section IV-A3).
    pub fn avg_seconds_per_iter(&self) -> f64 {
        if self.iterations.is_empty() {
            return 0.0;
        }
        self.iterations.iter().map(|s| s.seconds).sum::<f64>() / self.iterations.len() as f64
    }

    /// Error trajectory as `(cumulative seconds, error)` pairs — the series
    /// Figure 9(b) plots.
    pub fn error_trajectory(&self) -> Vec<(f64, f64)> {
        let mut t = 0.0;
        self.iterations
            .iter()
            .map(|s| {
                t += s.seconds;
                (t, s.reconstruction_error)
            })
            .collect()
    }
}

/// A completed fit: the model plus its measurements.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// The fitted (orthogonalized) Tucker model.
    pub decomposition: TuckerDecomposition,
    /// Timing/error/memory statistics.
    pub stats: FitStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(secs: &[f64], errs: &[f64]) -> FitStats {
        FitStats {
            iterations: secs
                .iter()
                .zip(errs)
                .enumerate()
                .map(|(i, (&s, &e))| IterStats {
                    iter: i,
                    reconstruction_error: e,
                    seconds: s,
                    core_nnz: 8,
                })
                .collect(),
            converged: true,
            total_seconds: secs.iter().sum(),
            peak_intermediate_bytes: 0,
            peak_spilled_bytes: 0,
            final_error: *errs.last().unwrap_or(&0.0),
            bytes_sent: 0,
            bytes_received: 0,
            io_read_bytes: 0,
            io_write_bytes: 0,
            prefetch_engaged: false,
        }
    }

    #[test]
    fn avg_seconds() {
        let s = stats(&[1.0, 2.0, 3.0], &[9.0, 8.0, 7.0]);
        assert!((s.avg_seconds_per_iter() - 2.0).abs() < 1e-12);
        let empty = FitStats {
            iterations: vec![],
            converged: false,
            total_seconds: 0.0,
            peak_intermediate_bytes: 0,
            peak_spilled_bytes: 0,
            final_error: 0.0,
            bytes_sent: 0,
            bytes_received: 0,
            io_read_bytes: 0,
            io_write_bytes: 0,
            prefetch_engaged: false,
        };
        assert_eq!(empty.avg_seconds_per_iter(), 0.0);
    }

    #[test]
    fn trajectory_accumulates_time() {
        let s = stats(&[1.0, 2.0], &[5.0, 4.0]);
        assert_eq!(s.error_trajectory(), vec![(1.0, 5.0), (3.0, 4.0)]);
    }
}
