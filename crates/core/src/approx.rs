//! P-Tucker-Approx: core-entry truncation by partial reconstruction error
//! (Section III-C, Eq. 13, Algorithm 4).
//!
//! The insight: some core entries are "noisy" — removing them *reduces* the
//! reconstruction error — and small magnitude is a poor noisiness proxy.
//! The paper instead ranks entries by the partial reconstruction error
//! `R(β)`, the exact change in the squared error (Eq. 5) attributable to
//! entry `β`:
//!
//! `R(β) = Σ_{α∈Ω} c_{αβ} · (c_{αβ} − 2X_α + 2(full_α − c_{αβ}))`
//!
//! where `c_{αβ} = G_β Πₙ a⁽ⁿ⁾(iₙ, βₙ)` is β's contribution at α and
//! `full_α` is the complete reconstruction. Entries with the highest `R(β)`
//! hurt the most and are truncated (top `p·|G|` per iteration).

use crate::delta::{core_runs, entry_contributions_blocked};
use crate::input::scratch_fold_blocks;
use crate::Result;
use ptucker_linalg::Matrix;
use ptucker_sched::{parallel_reduce, Schedule};
use ptucker_tensor::{CooScratch, CoreTensor, SparseTensor};

/// Computes `R(β)` (Eq. 13) for every retained core entry, in parallel over
/// the observed entries. Returned in core-entry order.
///
/// The per-entry contribution pass is the run-blocked micro-kernel
/// (`delta::entry_contributions_blocked`): one shared prefix
/// product per run of lexicographic core entries instead of `N−1`
/// multiplications per `(entry, core-entry)` pair, with the run structure
/// computed once per call.
///
/// Cost is `O(|Ω|·|G|)` multiplies — below one factor-update sweep's
/// constant, though the paper's note that P-Tucker-Approx "may require few
/// iterations to run faster than P-Tucker due to overheads from
/// calculating R(β)" still applies.
pub fn partial_errors(
    x: &SparseTensor,
    factors: &[Matrix],
    core: &CoreTensor,
    threads: usize,
    schedule: Schedule,
) -> Vec<f64> {
    let g = core.nnz();
    let core_idx = core.flat_indices();
    let core_vals = core.values();
    let runs = core_runs(core_idx, core.order());
    let (racc, _buf) = parallel_reduce(
        x.nnz(),
        threads,
        schedule,
        || (vec![0.0f64; g], vec![0.0f64; g]),
        |(mut racc, mut contrib), e| {
            let xv = x.value(e);
            let full = entry_contributions_blocked(
                x.index(e),
                core_idx,
                core_vals,
                &runs,
                factors,
                &mut contrib,
            );
            for (r, &c) in racc.iter_mut().zip(contrib.iter()) {
                // (X - rest - c)² - (X - rest)² with rest = full - c.
                *r += c * (c - 2.0 * xv + 2.0 * (full - c));
            }
            (racc, contrib)
        },
        |(mut a, buf), (b, _)| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            (a, buf)
        },
    );
    racc
}

/// [`partial_errors`] over a disk-resident COO source: streams bounded
/// segments of the scratch file instead of indexing a resident entry
/// array, holding one segment buffer per worker.
///
/// Uses the static block schedule regardless of the fit's configured
/// schedule — each worker folds a contiguous entry block sequentially, so
/// the pass is deterministic at every thread count and bitwise-identical
/// to the resident [`partial_errors`] under `Schedule::Static` at
/// `threads ≤ 2` (the per-entry arithmetic is the same run-blocked
/// micro-kernel; only the partial-combine order differs beyond that).
pub fn partial_errors_scratch(
    src: &CooScratch,
    factors: &[Matrix],
    core: &CoreTensor,
    threads: usize,
) -> Result<Vec<f64>> {
    let g = core.nnz();
    let core_idx = core.flat_indices();
    let core_vals = core.values();
    let runs = core_runs(core_idx, core.order());
    let order = src.order();
    let (racc, _bufs) = scratch_fold_blocks(
        src,
        threads,
        || (vec![0.0f64; g], (vec![0.0f64; g], vec![0usize; order])),
        |(racc, (contrib, idx)), ints, xv| {
            for (slot, &i) in idx.iter_mut().zip(ints) {
                *slot = i as usize;
            }
            let full =
                entry_contributions_blocked(idx, core_idx, core_vals, &runs, factors, contrib);
            for (r, &c) in racc.iter_mut().zip(contrib.iter()) {
                // (X - rest - c)² - (X - rest)² with rest = full - c.
                *r += c * (c - 2.0 * xv + 2.0 * (full - c));
            }
        },
        |(mut a, bufs), (b, _)| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            (a, bufs)
        },
    )?;
    Ok(racc)
}

/// Removes the top `p·|G|` entries by `R(β)` from the core (Algorithm 4),
/// always keeping at least one entry. Returns the number removed.
pub fn truncate_noisy(core: &mut CoreTensor, r: &[f64], truncation_rate: f64) -> usize {
    let g = core.nnz();
    assert_eq!(r.len(), g, "R(β) vector must match the core entry count");
    let mut remove = ((g as f64) * truncation_rate).floor() as usize;
    remove = remove.min(g.saturating_sub(1));
    if remove == 0 {
        return 0;
    }
    let mut ids: Vec<usize> = (0..g).collect();
    // Descending R(β); ties broken by id for determinism.
    ids.sort_by(|&a, &b| {
        r[b].partial_cmp(&r[a])
            .expect("R(β) values are finite")
            .then(a.cmp(&b))
    });
    let mut kill = vec![false; g];
    for &id in &ids[..remove] {
        kill[id] = true;
    }
    core.retain_by_id(|e| !kill[e]);
    remove
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SparseTensor, Vec<Matrix>, CoreTensor) {
        let x = SparseTensor::new(
            vec![3, 2],
            vec![
                (vec![0, 0], 1.0),
                (vec![1, 1], 0.5),
                (vec![2, 0], -0.25),
                (vec![2, 1], 2.0),
            ],
        )
        .unwrap();
        let a0 = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.5, 0.5]]);
        let a1 = Matrix::from_rows(&[&[1.0, 0.3], &[0.4, 1.1]]);
        let core =
            CoreTensor::dense_from_fn(vec![2, 2], |i| 0.5 + (i[0] + i[1]) as f64 * 0.25).unwrap();
        (x, vec![a0, a1], core)
    }

    /// Brute-force R(β): error difference with and without entry β.
    fn r_bruteforce(x: &SparseTensor, factors: &[Matrix], core: &CoreTensor, b: usize) -> f64 {
        let full_sse = |keep: &dyn Fn(usize) -> bool| -> f64 {
            let mut sse = 0.0;
            for (idx, xv) in x.iter() {
                let mut rec = 0.0;
                for e in 0..core.nnz() {
                    if !keep(e) {
                        continue;
                    }
                    let beta = core.index(e);
                    let mut w = core.value(e);
                    for (k, f) in factors.iter().enumerate() {
                        w *= f[(idx[k], beta[k])];
                    }
                    rec += w;
                }
                sse += (xv - rec) * (xv - rec);
            }
            sse
        };
        full_sse(&|_| true) - full_sse(&|e| e != b)
    }

    #[test]
    fn partial_errors_match_bruteforce() {
        let (x, factors, core) = setup();
        let r = partial_errors(&x, &factors, &core, 2, Schedule::Static);
        for b in 0..core.nnz() {
            let want = r_bruteforce(&x, &factors, &core, b);
            assert!(
                (r[b] - want).abs() < 1e-10,
                "R({b}) = {} vs brute {want}",
                r[b]
            );
        }
    }

    #[test]
    fn removing_highest_r_entry_reduces_error_most() {
        let (x, factors, core) = setup();
        let r = partial_errors(&x, &factors, &core, 1, Schedule::Static);
        // Find the entry with max R; removing it should give the smallest
        // error among all single-entry removals.
        let best_by_r = (0..core.nnz())
            .max_by(|&a, &b| r[a].partial_cmp(&r[b]).unwrap())
            .unwrap();
        let sse_without = |skip: usize| -> f64 {
            let mut sse = 0.0;
            for (idx, xv) in x.iter() {
                let mut rec = 0.0;
                for e in 0..core.nnz() {
                    if e == skip {
                        continue;
                    }
                    let beta = core.index(e);
                    let mut w = core.value(e);
                    for (k, f) in factors.iter().enumerate() {
                        w *= f[(idx[k], beta[k])];
                    }
                    rec += w;
                }
                sse += (xv - rec) * (xv - rec);
            }
            sse
        };
        let best_sse = sse_without(best_by_r);
        for e in 0..core.nnz() {
            assert!(best_sse <= sse_without(e) + 1e-12);
        }
    }

    #[test]
    fn truncation_removes_expected_count() {
        let (x, factors, mut core) = setup();
        let r = partial_errors(&x, &factors, &core, 1, Schedule::Static);
        let removed = truncate_noisy(&mut core, &r, 0.5);
        assert_eq!(removed, 2);
        assert_eq!(core.nnz(), 2);
    }

    #[test]
    fn truncation_keeps_at_least_one_entry() {
        let (x, factors, mut core) = setup();
        for _ in 0..10 {
            let r = partial_errors(&x, &factors, &core, 1, Schedule::Static);
            truncate_noisy(&mut core, &r, 0.9);
        }
        assert!(core.nnz() >= 1);
    }

    #[test]
    fn truncation_small_core_noop() {
        let (x, factors, mut core) = setup();
        let r = partial_errors(&x, &factors, &core, 1, Schedule::Static);
        // p*|G| < 1 → floor 0 → nothing removed.
        let removed = truncate_noisy(&mut core, &r, 0.1);
        assert_eq!(removed, 0);
        assert_eq!(core.nnz(), 4);
    }

    #[test]
    fn scratch_partial_errors_match_resident_bitwise() {
        let (x, factors, core) = setup();
        let budget = ptucker_memtrack::MemoryBudget::new(usize::MAX);
        let src = CooScratch::from_tensor(&x, &budget).unwrap();
        for threads in [1, 2] {
            let resident = partial_errors(&x, &factors, &core, threads, Schedule::Static);
            let streamed = partial_errors_scratch(&src, &factors, &core, threads).unwrap();
            assert_eq!(resident.len(), streamed.len());
            for (a, b) in resident.iter().zip(&streamed) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let (x, factors, core) = setup();
        let serial = partial_errors(&x, &factors, &core, 1, Schedule::Static);
        let par = partial_errors(&x, &factors, &core, 4, Schedule::dynamic());
        for (a, b) in serial.iter().zip(&par) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
