//! The zero-allocation row-update engine.
//!
//! P-Tucker's inner loop — one `(B + λI) row = c` solve per factor row per
//! mode per iteration, with `B`/`c` accumulated from the row's observed
//! slice — runs millions of times on real tensors. This module gives that
//! loop two structural properties:
//!
//! 1. **Zero heap allocations per row.** All per-row intermediates (the δ
//!    vector, the normal-equation accumulators `B`/`c`, the solver
//!    workspace and pivot buffer) live in a [`Scratch`] arena. One arena is
//!    allocated per worker thread at the start of a fit — metered against
//!    the [`ptucker_memtrack::MemoryBudget`] exactly as Theorem 4
//!    prescribes (`O(T·J²)`) — and
//!    [`ptucker_sched::parallel_rows_mut_with`] hands the same arena to
//!    every row a worker processes.
//! 2. **Monomorphized variant dispatch.** The Direct/Cache/Approx variants
//!    differ only in *how δ is produced* and in a few per-mode /
//!    per-iteration hooks. Each variant implements [`RowUpdateKernel`]; the
//!    fit driver is generic over the kernel, so the per-row code is
//!    specialized at compile time — no `match opts.variant` inside the
//!    loop, and a future backend (blocked-SIMD, GPU staging, …) is one new
//!    trait impl rather than another branch threaded through the solver.
//!
//! The kernels: [`DirectKernel`] recomputes δ from the factors (the
//! memory-optimal default), [`CachedKernel`] owns the `|Ω|×|G|` `Pres`
//! memoization table (Algorithm 3), and [`ApproxKernel`] is Direct plus
//! per-iteration truncation of the noisiest core entries (Algorithm 4).
//!
//! All three kernels run on the **mode-major execution plan**
//! ([`ptucker_tensor::ModeStreams`]): a row update walks its slice's
//! values and packed other-mode indices linearly through the mode's
//! [`ptucker_tensor::ModeStream`] instead of gathering per-entry through
//! COO entry ids, and the δ accumulation is **run-blocked** — one shared
//! prefix product per run of lexicographic core entries, the run tail a
//! contiguous `dot`/`axpy` micro-kernel over the packed core values (see
//! `crate::delta` and `ptucker_linalg::kernels`). The plan is built
//! once per fit and metered against the memory budget; the run structure
//! is computed once per mode sweep in [`ModeContext::new`].

use crate::cache::{cached_delta_for_entry, PresElem, PresTable, SpilledPresTable};
use crate::delta::{accumulate_delta_blocked, accumulate_normal_eq, core_runs};
use crate::{approx, FitInput, FitOptions, Result, StoragePrecision};
use ptucker_linalg::{cholesky_solve_in_place, lu_solve_in_place, Matrix};
use ptucker_memtrack::Reservation;
#[cfg(test)]
use ptucker_tensor::SparseTensor;
use ptucker_tensor::{CoreTensor, ModeStreams, StreamView, SweepSource, Window};

/// Per-thread scratch arena for the row update: every buffer the inner loop
/// touches, allocated once and reused for every row the owning worker
/// processes.
///
/// Sized for the largest rank of the fit (`j_max`), so one arena serves all
/// modes; per-row methods operate on `..j` prefixes.
#[derive(Debug, Clone)]
pub struct Scratch {
    /// δ⁽ⁿ⁾_α accumulator (Eq. 12), `j_max` doubles.
    delta: Vec<f64>,
    /// Right-hand side `c = Σ X_α δ`, `j_max` doubles.
    c: Vec<f64>,
    /// Upper triangle of `B = Σ δδᵀ`, `j_max²` doubles (row-major, lower
    /// triangle unused).
    b_upper: Vec<f64>,
    /// Factorization workspace: `B + λI` mirrored to full storage and
    /// destroyed in place by the solver, `j_max²` doubles.
    solve: Vec<f64>,
    /// Pivot swap buffer for the LU fallback, `j_max` entries.
    pivots: Vec<usize>,
}

impl Scratch {
    /// An arena able to solve systems up to `j_max × j_max`.
    pub fn new(j_max: usize) -> Self {
        let j = j_max.max(1);
        Scratch {
            delta: vec![0.0; j],
            c: vec![0.0; j],
            b_upper: vec![0.0; j * j],
            solve: vec![0.0; j * j],
            pivots: vec![0; j],
        }
    }

    /// An arena sized for a fit's largest rank.
    pub fn for_options(opts: &FitOptions) -> Self {
        Scratch::new(opts.ranks.iter().copied().max().unwrap_or(1))
    }

    /// `f64`s held per thread (Theorem 4's `2J² + 2J`; the pivot buffer is
    /// `usize`s and excluded, matching the paper's double-counting).
    pub fn doubles(j_max: usize) -> usize {
        let j = j_max.max(1);
        2 * j * j + 2 * j
    }

    /// Clears the `..j` accumulator prefixes for a fresh row.
    #[inline]
    fn begin_row(&mut self, j: usize) {
        self.c[..j].fill(0.0);
        self.b_upper[..j * j].fill(0.0);
    }

    /// Clears and returns the `(δ, c, B-upper)` accumulator views for a row
    /// of rank `j` — for external row-update kernels (e.g. the CP-ALS
    /// crate) that accumulate their own normal equations into the shared
    /// arena before calling [`Scratch::solve`]. All three views are zeroed
    /// (the internal kernels skip the δ clear because `accumulate_delta`
    /// clears it per entry, but an external `+=` accumulator must not see
    /// the previous row's values).
    ///
    /// # Panics
    /// Panics if `j` exceeds the arena's `j_max`.
    #[inline]
    pub fn accumulators(&mut self, j: usize) -> (&mut [f64], &mut [f64], &mut [f64]) {
        self.begin_row(j);
        self.delta[..j].fill(0.0);
        (
            &mut self.delta[..j],
            &mut self.c[..j],
            &mut self.b_upper[..j * j],
        )
    }

    /// Solves `(B + λI) out = c` from the accumulated triangle (see
    /// [`Scratch::accumulators`]), entirely in the arena: Cholesky first
    /// (SPD for λ > 0, Theorem 1), LU with partial pivoting as the λ = 0
    /// fallback. Returns `false` only for an exactly singular system.
    ///
    /// # Panics
    /// Panics if `out.len() != j` or `j` exceeds the arena's `j_max`.
    #[inline]
    pub fn solve(&mut self, j: usize, lambda: f64, out: &mut [f64]) -> bool {
        self.mirror_system(j, lambda);
        out.copy_from_slice(&self.c[..j]);
        if cholesky_solve_in_place(&mut self.solve[..j * j], j, out).is_ok() {
            return true;
        }
        // Cholesky clobbered the workspace (but not `out`); rebuild and
        // fall back to LU for rank-deficient unregularized systems.
        self.mirror_system(j, lambda);
        lu_solve_in_place(&mut self.solve[..j * j], j, &mut self.pivots[..j], out).is_ok()
    }

    /// Mirrors the accumulated upper triangle into full storage in the
    /// solver workspace and adds the ridge.
    #[inline]
    fn mirror_system(&mut self, j: usize, lambda: f64) {
        let m = &mut self.solve[..j * j];
        for j1 in 0..j {
            m[j1 * j + j1] = self.b_upper[j1 * j + j1] + lambda;
            for j2 in (j1 + 1)..j {
                let v = self.b_upper[j1 * j + j2];
                m[j1 * j + j2] = v;
                m[j2 * j + j1] = v;
            }
        }
    }
}

/// Shared, read-only context for one window of one mode's row sweep.
///
/// Built once per window (once per mode for an in-memory fit, whose sweep
/// is a single full-stream window) and borrowed by every row closure;
/// `factors[mode]` is empty during the sweep (its storage is the row data
/// being updated), which is safe because δ products skip `k == mode`.
#[derive(Debug)]
pub struct ModeContext<'a> {
    /// The window's streamed slice layout (values + packed other-mode
    /// indices, slice-major; slices and positions window-local).
    pub stream: StreamView<'a>,
    /// Global stream position of the view's local position 0. Kernels with
    /// fit-wide per-position state in stream order (the resident `Pres`
    /// table) address it at `base + local`; for a full-stream view this is
    /// 0 and local positions *are* global.
    pub base: usize,
    /// All factor matrices (`factors[mode]` emptied for the sweep).
    pub factors: &'a [Matrix],
    /// The core's flat index storage (`|G| × N`, lexicographic order).
    pub core_idx: &'a [usize],
    /// The core's values (`|G|`).
    pub core_vals: &'a [f64],
    /// Run boundaries of the core's lexicographic entry list (offsets into
    /// the entry ids; see `crate::delta`): computed once per mode sweep
    /// here so the blocked δ kernel spends nothing on run detection inside
    /// the row loop.
    pub runs: Vec<u32>,
    /// The mode being updated.
    pub mode: usize,
    /// Rank `Jₙ` of the mode being updated.
    pub j_n: usize,
    /// Observed-entry sampling stride (1 = use all entries).
    pub stride: usize,
    /// L2 regularization λ.
    pub lambda: f64,
}

impl<'a> ModeContext<'a> {
    /// Assembles the context for updating `factors[mode]` on a fully
    /// resident plan (one full-stream window; positions global).
    pub fn new(
        plan: &'a ModeStreams,
        factors: &'a [Matrix],
        core: &'a CoreTensor,
        mode: usize,
        opts: &FitOptions,
    ) -> Self {
        Self::for_view(plan.mode(mode).view(), 0, factors, core, mode, opts)
    }

    /// Assembles the context for a sweep over an arbitrary [`StreamView`]
    /// of `mode` — the whole resident stream, or one slice-aligned window
    /// of any [`SweepSource`], whose slices and positions are then
    /// window-local with global position `base + local`.
    pub fn for_view(
        stream: StreamView<'a>,
        base: usize,
        factors: &'a [Matrix],
        core: &'a CoreTensor,
        mode: usize,
        opts: &FitOptions,
    ) -> Self {
        Self::with_runs(
            stream,
            base,
            factors,
            core,
            mode,
            opts,
            core_runs(core.flat_indices(), core.order()),
        )
    }

    /// [`ModeContext::for_view`] with a precomputed run structure — for
    /// the fit driver, which sweeps many windows of the same mode and
    /// computes `core_runs` once for the whole sweep. `runs` must be
    /// `core_runs` of this `core`.
    pub(crate) fn with_runs(
        stream: StreamView<'a>,
        base: usize,
        factors: &'a [Matrix],
        core: &'a CoreTensor,
        mode: usize,
        opts: &FitOptions,
        runs: Vec<u32>,
    ) -> Self {
        debug_assert!(
            core.is_lexicographic(),
            "CoreTensor's lex invariant feeds the run-blocked kernel"
        );
        ModeContext {
            stream,
            base,
            factors,
            core_idx: core.flat_indices(),
            core_vals: core.values(),
            runs,
            mode,
            j_n: opts.ranks[mode],
            stride: opts.sample_stride.max(1),
            lambda: opts.lambda,
        }
    }
}

/// A P-Tucker variant, expressed as its row-update behavior plus lifecycle
/// hooks. The fit driver is generic over this trait, so each variant's
/// inner loop is monomorphized — adding a variant means implementing this
/// trait, not editing the solver.
///
/// There is exactly **one** fit driver: every mode sweep iterates the
/// slice-aligned windows of a [`SweepSource`] (a single full-stream window
/// for an in-memory fit). Kernels with fit-wide per-position state
/// therefore get two window-shaped hooks alongside the classic lifecycle:
/// [`RowUpdateKernel::begin_window`] (page in the matching state tile) and
/// the `sweep` handle threaded through `prepare_fit`/`post_mode` (stream
/// spilled state tile-at-a-time). Kernels without such state — Direct,
/// Approx — implement none of them; the defaults are no-ops.
pub trait RowUpdateKernel: Sync {
    /// One-time setup before the first iteration (e.g. the Cache variant's
    /// `|Ω|×|G|` table precompute — the step that can exceed the memory
    /// budget). `plan` is the fit's mode-major execution plan; kernels
    /// that keep per-entry state in stream order lay it out here. `sweep`
    /// is the fit's shared window source (rewind it as needed);
    /// `spill_aux` is the placement gate's verdict on this kernel's
    /// auxiliary state — `true` means it must go to disk (the plan is
    /// spilled, or the state alone overflows a Spill-policy budget:
    /// **hybrid spilling**).
    ///
    /// # Errors
    /// [`crate::PtuckerError::OutOfMemory`] if the kernel's resident
    /// auxiliary state exceeds the intermediate-data budget, or
    /// [`crate::PtuckerError::Tensor`] on spilled-state I/O failure.
    fn prepare_fit(
        &mut self,
        _x: &FitInput<'_>,
        _plan: &ModeStreams,
        _factors: &[Matrix],
        _core: &CoreTensor,
        _opts: &FitOptions,
        _sweep: &mut SweepSource<'_>,
        _spill_aux: bool,
    ) -> Result<()> {
        Ok(())
    }

    /// Called before each mode's row sweep, with the factors still in their
    /// pre-update state (snapshot here what `post_mode` will need; kernels
    /// with stream-ordered state re-align it to `mode`'s order here if the
    /// call sequence ever deviates from the driver's cyclic one).
    ///
    /// # Errors
    /// Kernel-specific; the default never fails.
    fn prepare_mode(
        &mut self,
        _x: &FitInput<'_>,
        _plan: &ModeStreams,
        _factors: &[Matrix],
        _mode: usize,
        _core: &CoreTensor,
        _opts: &FitOptions,
    ) -> Result<()> {
        Ok(())
    }

    /// Called for each window of a mode's sweep, before its (parallel) row
    /// updates — kernels with spilled per-position state page in the
    /// matching tile here. Windows arrive sequentially, so `&mut self` is
    /// sound; an in-memory fit calls this exactly once per mode with the
    /// full-stream window.
    ///
    /// # Errors
    /// Kernel-specific (tile I/O); the default never fails.
    fn begin_window(&mut self, _w: &Window<'_>) -> Result<()> {
        Ok(())
    }

    /// Updates one factor row in place (Algorithm 3 lines 5–15): accumulate
    /// the normal equations over the row's observed slice into `scratch`,
    /// then solve into `row`. On entry `row` holds the *old* row values
    /// (the cached kernel reads them as divisors). `i` and the context's
    /// stream are window-local. Returns `false` if the system was exactly
    /// singular (only possible with `lambda == 0`).
    ///
    /// Must not allocate: everything lives in `scratch`.
    fn update_row(
        &self,
        ctx: &ModeContext<'_>,
        scratch: &mut Scratch,
        i: usize,
        row: &mut [f64],
    ) -> bool;

    /// Called after `factors[mode]` has been replaced with its updated
    /// values (e.g. the Cache variant rescales its table here and carries
    /// it into the next mode's stream order, windowed through `sweep` when
    /// the table is spilled).
    ///
    /// # Errors
    /// Kernel-specific (spilled-state I/O); the default never fails.
    fn post_mode(
        &mut self,
        _x: &FitInput<'_>,
        _plan: &ModeStreams,
        _factors: &[Matrix],
        _mode: usize,
        _core: &CoreTensor,
        _opts: &FitOptions,
        _sweep: &mut SweepSource<'_>,
    ) -> Result<()> {
        Ok(())
    }

    /// Called once per outer iteration after the reconstruction error is
    /// measured (e.g. the Approx variant truncates the core here, streaming
    /// the `R(β)` pass from disk when the fit's input is a COO scratch
    /// file).
    ///
    /// # Errors
    /// Kernel-specific (streamed-input I/O); the default never fails.
    fn post_iter(
        &mut self,
        _x: &FitInput<'_>,
        _factors: &[Matrix],
        _core: &mut CoreTensor,
        _opts: &FitOptions,
    ) -> Result<()> {
        Ok(())
    }

    /// Serializes the kernel's auxiliary fit state into `out`, for a
    /// [`crate::checkpoint::FitCheckpoint`]'s `kernel_aux` section. Only
    /// kernels whose state is *not* reproducible by recomputation need
    /// this: the Cache variant's incrementally rescaled `Pres` table
    /// drifts bitwise from a fresh rebuild (the ratio rescale rounds
    /// differently than the outright product), so a bitwise resume must
    /// carry its exact element values. The default writes nothing.
    ///
    /// # Errors
    /// [`crate::PtuckerError::Checkpoint`] (state unavailable) or I/O
    /// failures reading spilled state.
    fn save_aux(&self, _out: &mut Vec<u8>) -> Result<()> {
        Ok(())
    }

    /// Restores the state written by [`RowUpdateKernel::save_aux`], after
    /// [`RowUpdateKernel::prepare_fit`] has sized and laid out the
    /// kernel's structures. The default accepts only an empty section —
    /// a kernel without auxiliary state refuses a checkpoint that
    /// carries some (variant mismatch), by name rather than by silently
    /// ignoring it.
    ///
    /// # Errors
    /// [`crate::PtuckerError::Checkpoint`] on any mismatch between the
    /// bytes and the kernel's prepared state.
    fn load_aux(&mut self, bytes: &[u8]) -> Result<()> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(crate::PtuckerError::Checkpoint(format!(
                "this kernel has no auxiliary state, but the checkpoint carries {} bytes of it \
                 — was the checkpoint written by a different variant?",
                bytes.len()
            )))
        }
    }
}

/// The shared row routine: a linear walk of the row's streamed slice, δ
/// production (kernel-specific), rank-1 normal-equation accumulation,
/// in-arena solve. `delta_fn` receives `(δ buffer, stream position, packed
/// other-mode indices, old row values)`. Within a slice the stream
/// preserves COO entry order, so subsampling by `stride` visits the same
/// entries the gather path visited.
#[inline]
pub(crate) fn run_row(
    ctx: &ModeContext<'_>,
    scratch: &mut Scratch,
    i: usize,
    row: &mut [f64],
    delta_fn: impl Fn(&mut [f64], usize, &[u32], &[f64]),
) -> bool {
    let range = ctx.stream.slice_range(i);
    if range.is_empty() {
        // No observations for this row: the regularized minimizer is the
        // zero vector (c = 0 in Eq. 9).
        row.fill(0.0);
        return true;
    }
    let j = ctx.j_n;
    scratch.begin_row(j);
    let values = ctx.stream.values();
    let others = ctx.stream.others_flat();
    let k = ctx.stream.other_count();
    for pos in range.step_by(ctx.stride) {
        delta_fn(
            &mut scratch.delta[..j],
            pos,
            &others[pos * k..(pos + 1) * k],
            &*row,
        );
        accumulate_normal_eq(
            &mut scratch.b_upper[..j * j],
            &mut scratch.c[..j],
            &scratch.delta[..j],
            values.at(pos),
        );
    }
    scratch.solve(j, ctx.lambda, row)
}

/// The default P-Tucker kernel: δ recomputed from the factors for every
/// entry — `O(T·J²)` intermediate memory (Theorem 4). On the mode-major
/// plan the recompute is **run-blocked**: one shared prefix product per
/// run of core entries, the run tail processed as a contiguous `dot`/`axpy`
/// micro-kernel over the packed core values (see `crate::delta`).
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectKernel;

impl RowUpdateKernel for DirectKernel {
    fn update_row(
        &self,
        ctx: &ModeContext<'_>,
        scratch: &mut Scratch,
        i: usize,
        row: &mut [f64],
    ) -> bool {
        run_row(ctx, scratch, i, row, |delta, _pos, others, _old_row| {
            accumulate_delta_blocked(
                delta,
                others,
                ctx.mode,
                ctx.core_idx,
                ctx.core_vals,
                &ctx.runs,
                ctx.factors,
            )
        })
    }
}

/// Where a [`CachedKernel`]'s `Pres` table lives — decided once per fit by
/// the placement gate. Generic over the table's element type `E`, the
/// fit's storage precision.
#[derive(Debug)]
enum TableStore<E: PresElem> {
    /// The full `|Ω|×|G|` table resident (the paper's setting).
    Resident(PresTable<E>),
    /// The table in its own scratch file, one window-sized tile resident
    /// at a time — used whenever the plan itself is spilled, **or** when
    /// the plan fits but the table alone overflows the budget (hybrid
    /// spilling).
    Spilled(SpilledPresTable<E>),
}

impl<E: PresElem> TableStore<E> {
    fn compute(
        x: &FitInput<'_>,
        plan: &ModeStreams,
        factors: &[Matrix],
        core: &CoreTensor,
        opts: &FitOptions,
        sweep: &mut SweepSource<'_>,
        spill_aux: bool,
    ) -> Result<Self> {
        Ok(if spill_aux {
            // Window-driven: the multi-indices come from the sweep itself,
            // so a disk-resident input never needs the COO tensor.
            TableStore::Spilled(SpilledPresTable::compute(
                x.nnz(),
                factors,
                core,
                opts.threads,
                &opts.budget,
                sweep,
            )?)
        } else {
            TableStore::Resident(PresTable::compute(
                x.expect_resident("the resident Pres table"),
                plan,
                factors,
                core,
                opts.threads,
                &opts.budget,
            )?)
        })
    }

    fn align(&mut self, x: &FitInput<'_>, plan: &ModeStreams, mode: usize) {
        match self {
            // No-op in the driver's cyclic sweep (post_mode already left
            // the table in this mode's order); re-aligns it for direct API
            // users that sweep modes in other patterns.
            TableStore::Resident(table) => {
                table.ensure_order(x.expect_resident("the resident Pres table"), plan, mode)
            }
            TableStore::Spilled(table) => debug_assert_eq!(
                table.order_mode(),
                mode,
                "the driver sweeps cyclically, so the spilled table is pre-aligned"
            ),
        }
    }

    fn begin_window(&mut self, w: &Window<'_>) -> Result<()> {
        if let TableStore::Spilled(table) = self {
            table.load_tile(w.base, w.stream.len())?;
        }
        Ok(())
    }

    /// The per-entry cached-δ accumulation, addressed globally for a
    /// resident table and tile-locally for a spilled one — the identical
    /// run-blocked arithmetic (`cache::cached_delta_for_entry`) either way.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn delta(
        &self,
        delta: &mut [f64],
        base: usize,
        pos: usize,
        others: &[u32],
        mode: usize,
        old_row: &[f64],
        core_idx: &[usize],
        core_vals: &[f64],
        runs: &[u32],
        factors: &[Matrix],
    ) {
        match self {
            TableStore::Resident(t) => t.accumulate_delta_cached(
                delta,
                base + pos,
                others,
                mode,
                old_row,
                core_idx,
                core_vals,
                runs,
                factors,
            ),
            TableStore::Spilled(t) => cached_delta_for_entry(
                delta,
                t.tile_row(pos),
                others,
                mode,
                old_row,
                core_idx,
                core_vals,
                runs,
                factors,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn rescale_and_reorder(
        &mut self,
        x: &FitInput<'_>,
        plan: &ModeStreams,
        factors: &[Matrix],
        old: &Matrix,
        mode: usize,
        next: usize,
        core: &CoreTensor,
        threads: usize,
        sweep: &mut SweepSource<'_>,
    ) -> Result<()> {
        match self {
            TableStore::Resident(table) => {
                let x = x.expect_resident("the resident Pres table");
                table.rescale_and_reorder(x, plan, factors, old, mode, next, core, threads);
                Ok(())
            }
            TableStore::Spilled(table) => {
                table.rescale_and_reorder(plan, factors, old, mode, next, core, threads, sweep)
            }
        }
    }

    fn order_mode(&self) -> usize {
        match self {
            TableStore::Resident(table) => table.order_mode(),
            TableStore::Spilled(table) => table.order_mode(),
        }
    }

    fn export_state(&self, out: &mut Vec<u8>) -> Result<()> {
        match self {
            TableStore::Resident(table) => {
                table.export_state(out);
                Ok(())
            }
            TableStore::Spilled(table) => table.export_state(out),
        }
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<()> {
        match self {
            TableStore::Resident(table) => table.import_state(bytes),
            TableStore::Spilled(table) => table.import_state(bytes),
        }
    }
}

/// A [`TableStore`] at either storage precision — the runtime dispatch
/// point of the precision axis. Exactly one `match` per kernel hook; the
/// per-row arithmetic below it is monomorphized per element type.
#[derive(Debug)]
enum AnyTable {
    F64(TableStore<f64>),
    F32(TableStore<f32>),
}

/// The P-Tucker-Cache kernel: owns the `Pres` table of all
/// `(entry, core-entry)` products, replacing the `N−1` multiplications per
/// pair with one division (Theorem 5) at `O(|Ω|·|G|)` memory (Theorem 6).
///
/// The table is kept **in the stream order of the mode being swept**: the
/// sweep reads it front to back with no entry-id indirection, and the
/// per-mode rescale (Algorithm 3 lines 16–19, still parallel) is followed
/// by an in-place cycle-chase permutation that carries the table into the
/// *next* mode's stream order — no second table-sized buffer, so
/// Theorem 6's memory bound is preserved (see
/// `PresTable::rescale_and_reorder`).
///
/// When the placement gate rules the table out of RAM it spills to its own
/// scratch file: [`RowUpdateKernel::begin_window`]
/// pages in each window's tile, and the rescale+reorder runs
/// tile-at-a-time into a ping-pong file region. The per-row arithmetic
/// (`cache::cached_delta_for_entry`) is shared between both placements, so
/// resident, hybrid-spilled and fully spilled fits agree **bitwise**.
#[derive(Debug, Default)]
pub struct CachedKernel {
    table: Option<AnyTable>,
    /// Pre-update snapshot of the mode's factor, for the table rescale.
    old_factor: Option<Matrix>,
}

impl CachedKernel {
    /// A kernel whose table is computed on `prepare_fit`.
    pub fn new() -> Self {
        CachedKernel::default()
    }
}

impl RowUpdateKernel for CachedKernel {
    fn prepare_fit(
        &mut self,
        x: &FitInput<'_>,
        plan: &ModeStreams,
        factors: &[Matrix],
        core: &CoreTensor,
        opts: &FitOptions,
        sweep: &mut SweepSource<'_>,
        spill_aux: bool,
    ) -> Result<()> {
        self.table = Some(match opts.precision {
            StoragePrecision::F64 => AnyTable::F64(TableStore::compute(
                x, plan, factors, core, opts, sweep, spill_aux,
            )?),
            StoragePrecision::F32 => AnyTable::F32(TableStore::compute(
                x, plan, factors, core, opts, sweep, spill_aux,
            )?),
        });
        Ok(())
    }

    fn prepare_mode(
        &mut self,
        x: &FitInput<'_>,
        plan: &ModeStreams,
        factors: &[Matrix],
        mode: usize,
        _core: &CoreTensor,
        _opts: &FitOptions,
    ) -> Result<()> {
        self.old_factor = Some(factors[mode].clone());
        match self.table.as_mut() {
            Some(AnyTable::F64(table)) => table.align(x, plan, mode),
            Some(AnyTable::F32(table)) => table.align(x, plan, mode),
            None => {}
        }
        Ok(())
    }

    fn begin_window(&mut self, w: &Window<'_>) -> Result<()> {
        match self.table.as_mut() {
            Some(AnyTable::F64(table)) => table.begin_window(w),
            Some(AnyTable::F32(table)) => table.begin_window(w),
            None => Ok(()),
        }
    }

    fn update_row(
        &self,
        ctx: &ModeContext<'_>,
        scratch: &mut Scratch,
        i: usize,
        row: &mut [f64],
    ) -> bool {
        let table = self
            .table
            .as_ref()
            .expect("CachedKernel::prepare_fit must run before update_row");
        run_row(ctx, scratch, i, row, |delta, pos, others, old_row| {
            // Stream-ordered table: position `pos` of the sweep owns row
            // `pos` of the table, so the whole sweep reads the |Ω|×|G|
            // elements strictly sequentially. A resident table is addressed
            // globally; a spilled tile is window-local like `pos` itself.
            match table {
                AnyTable::F64(t) => t.delta(
                    delta,
                    ctx.base,
                    pos,
                    others,
                    ctx.mode,
                    old_row,
                    ctx.core_idx,
                    ctx.core_vals,
                    &ctx.runs,
                    ctx.factors,
                ),
                AnyTable::F32(t) => t.delta(
                    delta,
                    ctx.base,
                    pos,
                    others,
                    ctx.mode,
                    old_row,
                    ctx.core_idx,
                    ctx.core_vals,
                    &ctx.runs,
                    ctx.factors,
                ),
            }
        })
    }

    fn post_mode(
        &mut self,
        x: &FitInput<'_>,
        plan: &ModeStreams,
        factors: &[Matrix],
        mode: usize,
        core: &CoreTensor,
        opts: &FitOptions,
        sweep: &mut SweepSource<'_>,
    ) -> Result<()> {
        let old = self
            .old_factor
            .take()
            .expect("CachedKernel::prepare_mode must run before post_mode");
        let next = (mode + 1) % plan.order();
        match self.table.as_mut() {
            Some(AnyTable::F64(table)) => {
                table.rescale_and_reorder(
                    x,
                    plan,
                    factors,
                    &old,
                    mode,
                    next,
                    core,
                    opts.threads,
                    sweep,
                )?;
            }
            Some(AnyTable::F32(table)) => {
                table.rescale_and_reorder(
                    x,
                    plan,
                    factors,
                    &old,
                    mode,
                    next,
                    core,
                    opts.threads,
                    sweep,
                )?;
            }
            None => {}
        }
        Ok(())
    }

    /// Checkpoint section: `[order_mode: u8][precision: u8]` followed by
    /// every table element widened to `f64` little-endian bits — exact
    /// for both precisions, so the round trip is lossless.
    fn save_aux(&self, out: &mut Vec<u8>) -> Result<()> {
        let table = self.table.as_ref().ok_or_else(|| {
            crate::PtuckerError::Checkpoint(
                "CachedKernel has no table to checkpoint (prepare_fit has not run)".into(),
            )
        })?;
        match table {
            AnyTable::F64(t) => {
                out.push(t.order_mode() as u8);
                out.push(0);
                t.export_state(out)
            }
            AnyTable::F32(t) => {
                out.push(t.order_mode() as u8);
                out.push(1);
                t.export_state(out)
            }
        }
    }

    fn load_aux(&mut self, bytes: &[u8]) -> Result<()> {
        let ck = crate::PtuckerError::Checkpoint;
        let table = self
            .table
            .as_mut()
            .ok_or_else(|| ck("CachedKernel::prepare_fit must run before load_aux".into()))?;
        let [order_mode, precision, elems @ ..] = bytes else {
            return Err(ck(
                "checkpoint is missing the Cache variant's Pres-table state — was it written \
                 by a different variant?"
                    .into(),
            ));
        };
        let (have_mode, want_precision) = match table {
            AnyTable::F64(t) => (t.order_mode(), 0u8),
            AnyTable::F32(t) => (t.order_mode(), 1u8),
        };
        if *precision != want_precision {
            return Err(ck(format!(
                "checkpointed Pres table has precision tag {precision}, this fit expects \
                 {want_precision}"
            )));
        }
        if *order_mode as usize != have_mode {
            return Err(ck(format!(
                "checkpointed Pres table is in mode {order_mode}'s stream order, the prepared \
                 table is in mode {have_mode}'s"
            )));
        }
        match table {
            AnyTable::F64(t) => t.import_state(elems),
            AnyTable::F32(t) => t.import_state(elems),
        }
    }
}

/// The P-Tucker-Approx kernel: Direct row updates plus per-iteration
/// truncation of the `p·|G|` core entries with the highest partial
/// reconstruction error `R(β)` (Eq. 13, Algorithm 4).
#[derive(Debug)]
pub struct ApproxKernel {
    truncation_rate: f64,
    /// Budget reservation for the per-thread `R(β)`/contribution buffers.
    _scratch: Option<Reservation>,
}

impl ApproxKernel {
    /// A kernel truncating `rate·|G|` entries per iteration (`rate ∈
    /// [0, 1)`; 0 degenerates to the Direct variant exactly).
    pub fn new(truncation_rate: f64) -> Self {
        ApproxKernel {
            truncation_rate,
            _scratch: None,
        }
    }
}

impl RowUpdateKernel for ApproxKernel {
    fn prepare_fit(
        &mut self,
        _x: &FitInput<'_>,
        _plan: &ModeStreams,
        _factors: &[Matrix],
        core: &CoreTensor,
        opts: &FitOptions,
        sweep: &mut SweepSource<'_>,
        _spill_aux: bool,
    ) -> Result<()> {
        // Approx folds per-thread R(β)/contribution buffers on top of the
        // row scratch (both |G|-sized). At rate 0 `post_iter` never
        // computes R(β), so reserving would make the degenerate variant
        // OOM (and report peak memory) differently from the bit-identical
        // Direct fit. On a spilled plan the buffers are part of the
        // out-of-core path's irreducible floor: booked, but unfailing.
        if self.truncation_rate > 0.0 {
            let doubles = opts.threads * 2 * core.nnz();
            self._scratch = Some(if sweep.is_spilled() {
                opts.budget.reserve_unchecked(doubles * 8)
            } else {
                opts.budget.reserve_f64(doubles)?
            });
        }
        Ok(())
    }

    fn update_row(
        &self,
        ctx: &ModeContext<'_>,
        scratch: &mut Scratch,
        i: usize,
        row: &mut [f64],
    ) -> bool {
        DirectKernel.update_row(ctx, scratch, i, row)
    }

    fn post_iter(
        &mut self,
        x: &FitInput<'_>,
        factors: &[Matrix],
        core: &mut CoreTensor,
        opts: &FitOptions,
    ) -> Result<()> {
        if self.truncation_rate > 0.0 {
            let r = match x {
                FitInput::Resident(x) => {
                    approx::partial_errors(x, factors, core, opts.threads, opts.schedule)
                }
                FitInput::Scratch(src) => {
                    approx::partial_errors_scratch(src, factors, core, opts.threads)?
                }
            };
            approx::truncate_noisy(core, &r, self.truncation_rate);
        }
        Ok(())
    }
}

/// Test-only reference kernel: the pre-plan COO **gather** row update —
/// entry ids through `SparseTensor::slice`, full `N−1` δ products per
/// `(entry, core-entry)` pair. The streamed kernels are required to
/// reproduce its fits (the acceptance bar for the mode-major refactor), so
/// it lives here for the equivalence tests in `als.rs`.
#[cfg(test)]
#[derive(Debug, Default)]
pub(crate) struct GatherReferenceKernel {
    x: Option<SparseTensor>,
}

#[cfg(test)]
impl RowUpdateKernel for GatherReferenceKernel {
    fn prepare_fit(
        &mut self,
        x: &FitInput<'_>,
        _plan: &ModeStreams,
        _factors: &[Matrix],
        _core: &CoreTensor,
        _opts: &FitOptions,
        _sweep: &mut SweepSource<'_>,
        _spill_aux: bool,
    ) -> Result<()> {
        self.x = Some(x.expect_resident("the gather reference kernel").clone());
        Ok(())
    }

    fn update_row(
        &self,
        ctx: &ModeContext<'_>,
        scratch: &mut Scratch,
        i: usize,
        row: &mut [f64],
    ) -> bool {
        let x = self.x.as_ref().expect("prepare_fit runs first");
        let slice = x.slice(ctx.mode, i);
        if slice.is_empty() {
            row.fill(0.0);
            return true;
        }
        let j = ctx.j_n;
        scratch.begin_row(j);
        for &e in slice.iter().step_by(ctx.stride) {
            crate::delta::accumulate_delta(
                &mut scratch.delta[..j],
                x.index(e),
                ctx.mode,
                ctx.core_idx,
                ctx.core_vals,
                ctx.factors,
            );
            accumulate_normal_eq(
                &mut scratch.b_upper[..j * j],
                &mut scratch.c[..j],
                &scratch.delta[..j],
                x.value(e),
            );
        }
        scratch.solve(j, ctx.lambda, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FitOptions, Variant};
    use ptucker_linalg::Cholesky;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (SparseTensor, Vec<Matrix>, CoreTensor, FitOptions) {
        let mut rng = StdRng::seed_from_u64(17);
        let x = SparseTensor::new(
            vec![4, 3, 2],
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![1, 1, 1], -0.5),
                (vec![2, 2, 0], 2.0),
                (vec![3, 0, 1], 0.25),
                (vec![0, 2, 1], -1.5),
                (vec![2, 0, 0], 0.75),
                (vec![2, 1, 1], 1.25),
            ],
        )
        .unwrap();
        let factors: Vec<Matrix> = [4usize, 3, 2]
            .iter()
            .map(|&d| {
                Matrix::from_vec(d, 2, (0..d * 2).map(|_| rng.gen::<f64>()).collect()).unwrap()
            })
            .collect();
        let core = CoreTensor::random_dense(vec![2, 2, 2], &mut rng).unwrap();
        let opts = FitOptions::new(vec![2, 2, 2]).lambda(0.01);
        (x, factors, core, opts)
    }

    /// Naive dense reference for one row's update: build δ per entry by
    /// brute force, form B and c densely, solve with the allocating wrapper.
    fn reference_row(
        x: &SparseTensor,
        factors: &[Matrix],
        core: &CoreTensor,
        mode: usize,
        i: usize,
        lambda: f64,
    ) -> Vec<f64> {
        let j_n = core.dims()[mode];
        let order = x.order();
        let mut b = Matrix::zeros(j_n, j_n);
        let mut c = vec![0.0; j_n];
        for &e in x.slice(mode, i) {
            let idx = x.index(e);
            let mut delta = vec![0.0; j_n];
            for b_id in 0..core.nnz() {
                let beta = core.index(b_id);
                let mut w = core.value(b_id);
                for k in 0..order {
                    if k == mode {
                        continue;
                    }
                    w *= factors[k][(idx[k], beta[k])];
                }
                delta[beta[mode]] += w;
            }
            for j1 in 0..j_n {
                c[j1] += x.value(e) * delta[j1];
                for j2 in 0..j_n {
                    b[(j1, j2)] += delta[j1] * delta[j2];
                }
            }
        }
        b.add_diagonal_mut(lambda);
        Cholesky::factor(&b).unwrap().solve(&c)
    }

    #[test]
    fn direct_kernel_matches_dense_reference() {
        let (x, factors, core, opts) = setup();
        let plan = ModeStreams::build(&x).unwrap();
        let mut scratch = Scratch::for_options(&opts);
        for mode in 0..3 {
            let ctx = ModeContext::new(&plan, &factors, &core, mode, &opts);
            for i in 0..x.dims()[mode] {
                let mut row = factors[mode].row(i).to_vec();
                assert!(DirectKernel.update_row(&ctx, &mut scratch, i, &mut row));
                if x.slice(mode, i).is_empty() {
                    assert!(row.iter().all(|&v| v == 0.0));
                    continue;
                }
                let want = reference_row(&x, &factors, &core, mode, i, opts.lambda);
                for (g, w) in row.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-10, "mode {mode} row {i}: {g} vs {w}");
                }
            }
        }
    }

    #[test]
    fn cached_kernel_matches_direct_kernel() {
        let (x, factors, core, opts) = setup();
        let plan = ModeStreams::build(&x).unwrap();
        let mut cached = CachedKernel::new();
        let mut sweep = plan.sweep_source(0, usize::MAX, false);
        let input = FitInput::Resident(&x);
        cached
            .prepare_fit(&input, &plan, &factors, &core, &opts, &mut sweep, false)
            .unwrap();
        let mut s1 = Scratch::for_options(&opts);
        let mut s2 = Scratch::for_options(&opts);
        for mode in 0..3 {
            // Re-align the stream-ordered table to this mode (the fit
            // driver's prepare_mode contract).
            cached
                .prepare_mode(&input, &plan, &factors, mode, &core, &opts)
                .unwrap();
            let ctx = ModeContext::new(&plan, &factors, &core, mode, &opts);
            for i in 0..x.dims()[mode] {
                let mut direct_row = factors[mode].row(i).to_vec();
                let mut cached_row = factors[mode].row(i).to_vec();
                assert!(DirectKernel.update_row(&ctx, &mut s1, i, &mut direct_row));
                assert!(cached.update_row(&ctx, &mut s2, i, &mut cached_row));
                for (d, c) in direct_row.iter().zip(&cached_row) {
                    assert!((d - c).abs() < 1e-9, "mode {mode} row {i}: {d} vs {c}");
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_stateless_across_rows() {
        // A reused arena must give bitwise-identical results to a fresh one.
        let (x, factors, core, opts) = setup();
        let plan = ModeStreams::build(&x).unwrap();
        let ctx = ModeContext::new(&plan, &factors, &core, 0, &opts);
        let mut reused = Scratch::for_options(&opts);
        // Dirty the arena on another row first.
        let mut sink = factors[0].row(1).to_vec();
        DirectKernel.update_row(&ctx, &mut reused, 1, &mut sink);
        for i in 0..x.dims()[0] {
            let mut fresh = Scratch::for_options(&opts);
            let mut row_fresh = factors[0].row(i).to_vec();
            let mut row_reused = factors[0].row(i).to_vec();
            DirectKernel.update_row(&ctx, &mut fresh, i, &mut row_fresh);
            DirectKernel.update_row(&ctx, &mut reused, i, &mut row_reused);
            for (a, b) in row_fresh.iter().zip(&row_reused) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
            }
        }
    }

    #[test]
    fn singular_unregularized_row_reports_failure() {
        // One observed entry, λ = 0 and rank 2 ⇒ B = δδᵀ is rank-1 singular.
        let x = SparseTensor::new(vec![2, 2], vec![(vec![0, 0], 1.0)]).unwrap();
        let plan = ModeStreams::build(&x).unwrap();
        let factors = vec![
            Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]),
            Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]),
        ];
        let core = CoreTensor::dense_from_fn(vec![2, 2], |_| 1.0).unwrap();
        let opts = FitOptions::new(vec![2, 2]).lambda(0.0);
        let ctx = ModeContext::new(&plan, &factors, &core, 0, &opts);
        let mut scratch = Scratch::for_options(&opts);
        let mut row = vec![0.5, 0.5];
        assert!(!DirectKernel.update_row(&ctx, &mut scratch, 0, &mut row));
        // With regularization the same system solves.
        let opts = FitOptions::new(vec![2, 2]).lambda(0.1);
        let ctx = ModeContext::new(&plan, &factors, &core, 0, &opts);
        let mut row = vec![0.5, 0.5];
        assert!(DirectKernel.update_row(&ctx, &mut scratch, 0, &mut row));
    }

    #[test]
    fn scratch_budget_formula_matches_buffers() {
        for j in [1usize, 3, 10] {
            let s = Scratch::new(j);
            assert_eq!(
                s.delta.len() + s.c.len() + s.b_upper.len() + s.solve.len(),
                Scratch::doubles(j)
            );
        }
    }

    #[test]
    fn approx_kernel_rate_zero_is_direct() {
        let (x, factors, core, opts) = setup();
        let mut core_for_approx = core.clone();
        let mut kernel = ApproxKernel::new(0.0);
        // post_iter with rate 0 must leave the core untouched.
        kernel
            .post_iter(
                &FitInput::Resident(&x),
                &factors,
                &mut core_for_approx,
                &opts,
            )
            .unwrap();
        assert_eq!(core_for_approx.nnz(), core.nnz());
        let _ = Variant::Approx {
            truncation_rate: 0.0,
        };
    }
}
