//! **P-Tucker**: scalable Tucker factorization for sparse tensors.
//!
//! A from-scratch Rust reproduction of *"Scalable Tucker Factorization for
//! Sparse Tensors — Algorithms and Discoveries"* (Oh, Park, Sael, Kang;
//! ICDE 2018). Given a partially observed tensor `X` with observed entries
//! `Ω`, P-Tucker finds factor matrices `A⁽ⁿ⁾` and a core tensor `G`
//! minimizing the observed-entry loss
//!
//! `L = Σ_{α∈Ω} (X_α − Σ_{β∈G} G_β Πₙ a⁽ⁿ⁾(iₙ, βₙ))² + λ Σₙ ‖A⁽ⁿ⁾‖²`
//!
//! by alternating least squares with a **row-wise update rule**: each row of
//! each factor matrix has a closed-form update `c·(B + λI)⁻¹` computed from
//! only the observed entries in its slice (Theorem 1), so rows are
//! independent and updated fully in parallel with only `O(T·J²)`
//! intermediate memory (Theorem 4). Missing entries are *never* treated as
//! zeros, which is what separates P-Tucker's accuracy from zero-imputing
//! HOOI-style methods.
//!
//! Two variants trade resources for speed ([`Variant`]):
//! * **Cache** memoizes all `(entry, core-entry)` products (`O(|Ω|·J^N)`
//!   memory, ~`N×` less multiplication work), and
//! * **Approx** truncates the "noisiest" core entries each iteration,
//!   ranked by exact partial reconstruction error `R(β)`.
//!
//! # Architecture: plan / engine / kernel / scratch layering
//!
//! The solver is layered so the hot path allocates nothing, touches memory
//! linearly, and variant dispatch costs nothing per row:
//!
//! * **Execution plan** (`ptucker_tensor::ModeStreams`): the mode-major
//!   data plane. For each mode, entry values and packed other-mode indices
//!   are physically reordered slice-by-slice, so a row update streams
//!   through contiguous memory instead of gathering per-entry through COO
//!   entry ids. The plan is derived from COO once per fit (COO stays the
//!   source of truth) and metered against the [`MemoryBudget`]; its
//!   storage is resident or spilled to a scratch file, and either
//!   placement is swept through the same `ptucker_tensor::SweepSource`
//!   abstraction.
//! * **Engine** ([`engine`]): the kernel-generic fit driver — there is
//!   exactly **one**. `PTucker::fit` matches [`Variant`] exactly once,
//!   picks a kernel, and hands it to a fit loop that is *generic over the
//!   kernel type* — the per-row code is monomorphized, with no variant
//!   branching inside the loop. Every mode sweep iterates the
//!   slice-aligned windows of a `SweepSource`; an in-memory fit's sweep
//!   is a single zero-copy full-stream window, so "in-memory" and
//!   "out-of-core" are placements of one loop, not two drivers. Row
//!   sweeps are parallelized with either the paper's dynamic schedule or
//!   nnz-balanced static blocks (`ptucker_sched::weighted_blocks`), both
//!   addressing the same `|Ω⁽ⁿ⁾ᵢ|` skew.
//! * **Kernels** ([`engine::RowUpdateKernel`]): one implementation per
//!   variant — [`engine::DirectKernel`], [`engine::CachedKernel`] (owns the
//!   `|Ω|×|G|` memoization table) and [`engine::ApproxKernel`]. A kernel
//!   supplies the per-entry δ computation plus lifecycle hooks
//!   (`prepare_fit`/`prepare_mode`/`post_mode`/`post_iter`); adding a new
//!   backend is one new trait impl.
//!
//!   The δ accumulation itself is **run-blocked** (`delta.rs`):
//!   `CoreTensor`'s lexicographic invariant decomposes the core entry list
//!   into maximal runs sharing their first `N−1` coordinates (for a dense
//!   core, runs of length `J_N`). Run boundaries are found once per mode
//!   sweep; each run then costs one shared prefix product (still
//!   prefix-reused across run heads) plus a single contiguous `dot` or
//!   `axpy` micro-kernel over the packed core values
//!   (`ptucker_linalg::kernels` — chunked scalar code that autovectorizes,
//!   or the explicit AVX2+FMA path behind the **`simd`** feature with
//!   runtime CPU detection). The downstream `B += δδᵀ` / `c += x·δ`
//!   accumulation rides the same `syr`/`axpy` primitives, as does cp-ALS.
//!
//!   The Cached kernel keeps its `Pres` table in the **stream order of the
//!   mode being swept** (`cache.rs`): a sweep reads the `|Ω|×|G|` doubles
//!   strictly sequentially with no entry-id indirection; the per-mode
//!   rescale stays parallel and a memory-bound in-place cycle-chase
//!   permutation then carries the table into the next mode's order — no
//!   second table-sized buffer, preserving Theorem 6's memory bound.
//! * **Scratch** ([`engine::Scratch`]): a per-thread arena holding every
//!   per-row intermediate (δ, `c`, the `B` triangle, the solver workspace
//!   and pivots). One arena is allocated per worker at fit start — metered
//!   against the [`MemoryBudget`] as Theorem 4's `O(T·J²)` — and
//!   `ptucker_sched::parallel_rows_mut_with` hands it to every row that
//!   worker processes, so the inner loop performs **zero heap
//!   allocations**. The solves themselves run through
//!   `ptucker_linalg`'s in-place `cholesky_solve_in_place` /
//!   `lu_solve_in_place` on those buffers.
//! * **Placement** (the gate in `als`): when the in-memory working set —
//!   plan, scratch, the Cache table — exceeds the [`MemoryBudget`] and
//!   its policy is [`BudgetPolicy::Spill`] (the default),
//!   [`PTucker::fit`] transparently moves exactly as much as overflows
//!   to unlinked scratch files: the Cache table alone when the plan
//!   still fits (**hybrid spilling** — sweeps then window zero-copy
//!   views of the resident plan at the table's tile granularity), or
//!   the plan and table both. Spilled plan windows refill pinned
//!   buffers, **double-buffered** with a background prefetch thread
//!   when the windows are large enough to amortize it. The per-row code
//!   is the same monomorphized kernel path on every placement, so
//!   spilled and hybrid fits reproduce the resident trajectory bitwise;
//!   `FitStats::peak_spilled_bytes` reports the disk footprint.
//!   [`BudgetPolicy::Strict`] restores the paper's hard O.O.M.
//!   boundary.
//!
//! # Example
//!
//! ```
//! use ptucker::{FitOptions, PTucker};
//! use ptucker_tensor::SparseTensor;
//!
//! // A tiny 3-way tensor with 6 observed entries.
//! let x = SparseTensor::new(
//!     vec![4, 4, 3],
//!     vec![
//!         (vec![0, 0, 0], 0.9),
//!         (vec![1, 1, 1], 0.8),
//!         (vec![2, 2, 2], 0.7),
//!         (vec![3, 3, 0], 0.6),
//!         (vec![0, 1, 2], 0.5),
//!         (vec![2, 0, 1], 0.4),
//!     ],
//! )
//! .unwrap();
//!
//! let solver = PTucker::new(
//!     FitOptions::new(vec![2, 2, 2]).max_iters(5).threads(2).seed(7),
//! )
//! .unwrap();
//! let result = solver.fit(&x).unwrap();
//!
//! // Factors are orthogonalized on exit and the model predicts any cell.
//! assert!(result.decomposition.orthogonality_defect() < 1e-10);
//! let _missing = result.decomposition.predict(&[3, 0, 2]);
//! ```
//!
//! # Out-of-core example
//!
//! The same fit under a [`MemoryBudget`] far too small for the execution
//! plan: the default [`BudgetPolicy::Spill`] completes it through spilled
//! windowed sweeps instead of erroring, with an identical trajectory.
//!
//! ```
//! use ptucker::{BudgetPolicy, FitOptions, MemoryBudget, PTucker};
//! use ptucker_tensor::SparseTensor;
//!
//! let x = SparseTensor::new(
//!     vec![4, 4, 3],
//!     vec![
//!         (vec![0, 0, 0], 0.9),
//!         (vec![1, 1, 1], 0.8),
//!         (vec![2, 2, 2], 0.7),
//!         (vec![3, 3, 0], 0.6),
//!         (vec![0, 1, 2], 0.5),
//!         (vec![2, 0, 1], 0.4),
//!     ],
//! )
//! .unwrap();
//!
//! let opts = |budget| {
//!     FitOptions::new(vec![2, 2, 2]).max_iters(5).tol(0.0).seed(7).budget(budget)
//! };
//! let in_memory = PTucker::new(opts(MemoryBudget::unlimited())).unwrap().fit(&x).unwrap();
//! assert_eq!(in_memory.stats.peak_spilled_bytes, 0);
//!
//! // A 64-byte budget cannot hold the plan; the fit spills and completes.
//! let budget = MemoryBudget::new(64);
//! assert_eq!(budget.policy(), BudgetPolicy::Spill);
//! let spilled = PTucker::new(opts(budget)).unwrap().fit(&x).unwrap();
//! assert!(spilled.stats.peak_spilled_bytes > 0);
//! assert_eq!(
//!     in_memory.stats.final_error.to_bits(),
//!     spilled.stats.final_error.to_bits(),
//!     "windowed sweeps reproduce the in-memory fit exactly",
//! );
//!
//! // The paper's hard O.O.M. boundary survives behind an explicit policy.
//! let strict = MemoryBudget::with_policy(64, BudgetPolicy::Strict);
//! assert!(PTucker::new(opts(strict)).unwrap().fit(&x).is_err());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::too_many_arguments)]

mod als;
pub mod approx;
mod cache;
pub mod checkpoint;
mod decomposition;
mod delta;
pub mod engine;
mod error;
mod input;
mod options;
pub mod serving;
mod stats;
pub mod sync;

pub use als::PTucker;
pub use checkpoint::FitCheckpoint;
pub use decomposition::TuckerDecomposition;
pub use error::PtuckerError;
pub use input::FitInput;
pub use options::{FitOptions, StoragePrecision, Variant};
pub use serving::Predictor;
pub use stats::{FitResult, FitStats, IterStats};
pub use sync::{FitSync, LocalSync};

// Re-exported for harness convenience: callers configuring a fit usually
// need the schedule and budget types too.
pub use ptucker_memtrack::{BudgetPolicy, MemoryBudget};
pub use ptucker_sched::Schedule;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, PtuckerError>;

#[cfg(test)]
mod tests {
    use super::*;
    use ptucker_datagen::planted_lowrank;
    use ptucker_tensor::{SparseTensor, TrainTestSplit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planted(seed: u64) -> SparseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        planted_lowrank(&[14, 12, 10], &[2, 2, 2], 700, 0.01, &mut rng).tensor
    }

    fn fit(x: &SparseTensor, opts: FitOptions) -> FitResult {
        PTucker::new(opts).unwrap().fit(x).unwrap()
    }

    #[test]
    fn error_decreases_monotonically() {
        // Theorem 2: every update minimizes the loss, so the reconstruction
        // error never increases (λ small; sampling off).
        let x = planted(1);
        let r = fit(
            &x,
            FitOptions::new(vec![2, 2, 2])
                .max_iters(8)
                .tol(0.0)
                .threads(2)
                .lambda(1e-6)
                .seed(3),
        );
        let errs: Vec<f64> = r
            .stats
            .iterations
            .iter()
            .map(|s| s.reconstruction_error)
            .collect();
        assert!(errs.len() >= 2);
        for w in errs.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-9),
                "error increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn recovers_planted_structure() {
        let x = planted(2);
        let r = fit(
            &x,
            FitOptions::new(vec![2, 2, 2])
                .max_iters(15)
                .threads(2)
                .seed(5),
        );
        // Relative reconstruction error well below the trivial baseline.
        let rel = r.stats.final_error / x.frobenius_norm();
        assert!(rel < 0.15, "relative error {rel}");
    }

    #[test]
    fn qr_preserves_reconstruction_error() {
        let x = planted(3);
        let r = fit(
            &x,
            FitOptions::new(vec![2, 2, 2]).max_iters(4).tol(0.0).seed(1),
        );
        // Last in-loop error equals the post-QR final error.
        let last = r.stats.iterations.last().unwrap().reconstruction_error;
        assert!(
            (last - r.stats.final_error).abs() <= 1e-8 * last.max(1.0),
            "QR changed the error: {last} vs {}",
            r.stats.final_error
        );
        assert!(r.decomposition.orthogonality_defect() < 1e-10);
    }

    #[test]
    fn three_kernels_identical_fits_for_fixed_seed() {
        // Satellite acceptance: DirectKernel, CachedKernel and
        // ApproxKernel(rate = 0) must produce identical fits from the same
        // seed. Approx(0) shares the Direct code path bit for bit; Cache
        // computes δ through division against the memoized products, so it
        // agrees to floating-point noise.
        let x = planted(20);
        let base = FitOptions::new(vec![2, 2, 2])
            .max_iters(5)
            .tol(0.0)
            .threads(2)
            .seed(77);
        let direct = fit(&x, base.clone());
        let cached = fit(&x, base.clone().variant(Variant::Cache));
        let approx0 = fit(
            &x,
            base.variant(Variant::Approx {
                truncation_rate: 0.0,
            }),
        );
        // Approx(0) vs Direct: bitwise-identical error trajectory.
        for (a, b) in direct
            .stats
            .iterations
            .iter()
            .zip(&approx0.stats.iterations)
        {
            assert_eq!(
                a.reconstruction_error.to_bits(),
                b.reconstruction_error.to_bits(),
                "iter {}",
                a.iter
            );
        }
        assert_eq!(
            direct.stats.final_error.to_bits(),
            approx0.stats.final_error.to_bits()
        );
        // And identical factor matrices.
        for (fa, fb) in direct
            .decomposition
            .factors
            .iter()
            .zip(&approx0.decomposition.factors)
        {
            for (a, b) in fa.as_slice().iter().zip(fb.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Cache vs Direct: same fit up to fp noise in the δ path.
        for (a, b) in direct.stats.iterations.iter().zip(&cached.stats.iterations) {
            let rel = (a.reconstruction_error - b.reconstruction_error).abs()
                / a.reconstruction_error.max(1e-12);
            assert!(rel < 1e-6, "iter {}: {rel}", a.iter);
        }
        // And the degenerate Approx reserves no R(β) buffers: identical
        // peak memory, so any budget that fits Direct fits Approx(0).
        assert_eq!(
            direct.stats.peak_intermediate_bytes,
            approx0.stats.peak_intermediate_bytes
        );
    }

    #[test]
    fn cache_variant_matches_default_exactly() {
        // Same seed ⇒ identical initialization ⇒ the cached algebra must
        // produce the same iterates up to floating-point noise.
        let x = planted(4);
        let base = FitOptions::new(vec![2, 2, 2])
            .max_iters(4)
            .tol(0.0)
            .threads(2)
            .seed(11);
        let d = fit(&x, base.clone());
        let c = fit(&x, base.variant(Variant::Cache));
        for (a, b) in d.stats.iterations.iter().zip(&c.stats.iterations) {
            let rel = (a.reconstruction_error - b.reconstruction_error).abs()
                / a.reconstruction_error.max(1e-12);
            assert!(rel < 1e-6, "iter {}: {rel}", a.iter);
        }
    }

    #[test]
    fn approx_truncates_core_each_iteration() {
        let x = planted(5);
        let r = fit(
            &x,
            FitOptions::new(vec![3, 3, 3])
                .max_iters(5)
                .tol(0.0)
                .variant(Variant::Approx {
                    truncation_rate: 0.2,
                })
                .seed(2),
        );
        let sizes: Vec<usize> = r.stats.iterations.iter().map(|s| s.core_nnz).collect();
        assert!(sizes.windows(2).all(|w| w[1] < w[0]), "sizes: {sizes:?}");
        // Note: the final QR core update (G ← G ×ₙ R⁽ⁿ⁾) introduces fill-in,
        // so the returned core may be denser than the last truncated state;
        // the iteration log records the truncated sizes.
        assert!(*sizes.last().unwrap() < 27);
    }

    #[test]
    fn approx_error_stays_close_to_default() {
        let x = planted(6);
        let base = FitOptions::new(vec![2, 2, 2]).max_iters(10).seed(9);
        let d = fit(&x, base.clone());
        let a = fit(
            &x,
            base.variant(Variant::Approx {
                truncation_rate: 0.2,
            }),
        );
        // Fig. 9(b): "almost the same accuracy" — allow 2x slack here.
        assert!(a.stats.final_error <= 2.0 * d.stats.final_error + 0.5);
    }

    #[test]
    fn thread_counts_agree() {
        let x = planted(7);
        let base = FitOptions::new(vec![2, 2, 2])
            .max_iters(3)
            .tol(0.0)
            .seed(13);
        let t1 = fit(&x, base.clone().threads(1));
        let t4 = fit(&x, base.threads(4));
        for (a, b) in t1.stats.iterations.iter().zip(&t4.stats.iterations) {
            let rel = (a.reconstruction_error - b.reconstruction_error).abs()
                / a.reconstruction_error.max(1e-12);
            assert!(rel < 1e-9, "thread count changed results: {rel}");
        }
    }

    #[test]
    fn static_and_dynamic_schedules_agree() {
        let x = planted(8);
        let base = FitOptions::new(vec![2, 2, 2])
            .max_iters(3)
            .tol(0.0)
            .seed(17);
        let s = fit(&x, base.clone().schedule(Schedule::Static).threads(3));
        let d = fit(&x, base.schedule(Schedule::dynamic()).threads(3));
        for (a, b) in s.stats.iterations.iter().zip(&d.stats.iterations) {
            let rel = (a.reconstruction_error - b.reconstruction_error).abs()
                / a.reconstruction_error.max(1e-12);
            assert!(rel < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let x = planted(9);
        let opts = FitOptions::new(vec![2, 2, 2])
            .max_iters(3)
            .seed(23)
            .threads(2);
        let a = fit(&x, opts.clone());
        let b = fit(&x, opts);
        assert_eq!(
            a.stats.iterations.last().unwrap().reconstruction_error,
            b.stats.iterations.last().unwrap().reconstruction_error
        );
    }

    #[test]
    fn cache_overflow_spills_by_default_and_fails_under_strict() {
        // Since the out-of-core path landed, a default-policy budget too
        // small for the |Ω|×|G| Pres table spills it (plus the plan) to
        // disk and completes; the paper's hard O.O.M. boundary survives
        // behind BudgetPolicy::Strict.
        let x = planted(10);
        let opts = FitOptions::new(vec![2, 2, 2])
            .max_iters(2)
            .variant(Variant::Cache)
            .budget(MemoryBudget::new(1024));
        let fit = PTucker::new(opts).unwrap().fit(&x).unwrap();
        assert!(
            fit.stats.peak_spilled_bytes > 0,
            "tiny default-policy budget must have spilled"
        );
        let strict = FitOptions::new(vec![2, 2, 2])
            .variant(Variant::Cache)
            .budget(MemoryBudget::with_policy(1024, BudgetPolicy::Strict));
        let err = PTucker::new(strict).unwrap().fit(&x).unwrap_err();
        assert!(matches!(err, PtuckerError::OutOfMemory(_)));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let x = planted(11);
        let err = PTucker::new(FitOptions::new(vec![2, 2]))
            .unwrap()
            .fit(&x)
            .unwrap_err();
        assert!(matches!(err, PtuckerError::InvalidConfig(_)));
    }

    #[test]
    fn test_rmse_beats_zero_prediction_on_planted_data() {
        let x = planted(12);
        let mut rng = StdRng::seed_from_u64(99);
        let split = TrainTestSplit::new(&x, 0.1, &mut rng).unwrap();
        let r = fit(
            &split.train,
            FitOptions::new(vec![2, 2, 2]).max_iters(15).seed(4),
        );
        let rmse = r.decomposition.test_rmse(&split.test, 2, Schedule::Static);
        // Zero-prediction RMSE (what a zero-imputing method effectively
        // gives for held-out cells).
        let zero_rmse = (split.test.values().iter().map(|v| v * v).sum::<f64>()
            / split.test.nnz() as f64)
            .sqrt();
        assert!(
            rmse < 0.5 * zero_rmse,
            "rmse {rmse} vs zero-pred {zero_rmse}"
        );
    }

    #[test]
    fn refit_core_does_not_hurt() {
        let x = planted(13);
        let base = FitOptions::new(vec![2, 2, 2]).max_iters(8).seed(6);
        let plain = fit(&x, base.clone());
        let refit = fit(&x, base.refit_core(true));
        // The refit is the exact least-squares core given the factors; the
        // plain core is a feasible point, so the error cannot increase.
        assert!(
            refit.stats.final_error <= plain.stats.final_error * (1.0 + 1e-6) + 1e-9,
            "refit {} vs plain {}",
            refit.stats.final_error,
            plain.stats.final_error
        );
    }

    #[test]
    fn sampling_stride_still_converges_roughly() {
        let x = planted(14);
        let r = fit(
            &x,
            FitOptions::new(vec![2, 2, 2])
                .max_iters(10)
                .sample_stride(2)
                .seed(8),
        );
        let rel = r.stats.final_error / x.frobenius_norm();
        assert!(rel < 0.5, "sampled fit diverged: {rel}");
    }

    #[test]
    fn empty_slices_yield_zero_predictions() {
        // A tensor where mode-0 index 3 is never observed.
        let x = SparseTensor::new(
            vec![5, 3, 3],
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![1, 1, 1], 0.5),
                (vec![2, 2, 2], 0.25),
                (vec![4, 0, 1], 0.75),
            ],
        )
        .unwrap();
        let r = fit(&x, FitOptions::new(vec![2, 2, 2]).max_iters(2).seed(1));
        let p = r.decomposition.predict(&[3, 0, 0]);
        assert!(p.abs() < 1e-8, "unobserved slice predicted {p}");
    }

    #[test]
    fn peak_intermediate_memory_reported() {
        let x = planted(15);
        let d = fit(
            &x,
            FitOptions::new(vec![2, 2, 2])
                .max_iters(2)
                .seed(1)
                .threads(2),
        );
        assert!(d.stats.peak_intermediate_bytes > 0);
        let c = fit(
            &x,
            FitOptions::new(vec![2, 2, 2])
                .max_iters(2)
                .seed(1)
                .threads(2)
                .variant(Variant::Cache),
        );
        // Both variants now carry the (identical) mode-major plan in their
        // peaks; the Cache variant must additionally carry its full
        // |Ω|·|G| `Pres` table on top of whatever the Direct fit holds.
        let table_bytes = x.nnz() * 8 * std::mem::size_of::<f64>(); // |G| = 2·2·2
        assert!(
            c.stats.peak_intermediate_bytes >= d.stats.peak_intermediate_bytes + table_bytes,
            "cache {} vs default {} + table {table_bytes}",
            c.stats.peak_intermediate_bytes,
            d.stats.peak_intermediate_bytes
        );
    }

    #[test]
    fn converges_flag_set_with_loose_tol() {
        let x = planted(16);
        let r = fit(
            &x,
            FitOptions::new(vec![2, 2, 2])
                .max_iters(20)
                .tol(0.5)
                .seed(2),
        );
        assert!(r.stats.converged);
        assert!(r.stats.iterations.len() < 20);
    }
}
