//! The fit's input source: a resident COO tensor, or a disk-resident COO
//! scratch file for fits whose observed entries never fit in memory.
//!
//! [`FitInput::Scratch`] is the entry point of the disk-to-disk pipeline:
//! the execution plan is built by external sort
//! ([`ModeStreams::build_external`](ptucker_tensor::ModeStreams::build_external)),
//! the residual and `R(β)` passes stream bounded COO segments instead of
//! indexing a resident entry array, and the only whole-tensor state the fit
//! ever holds resident is one window ring of the active mode's stream.

use crate::error::PtuckerError;
use crate::Result;
use ptucker_sched::static_block;
use ptucker_tensor::{CooScratch, SparseTensor};

/// Entries per decoded segment when streaming a COO scratch file through a
/// reduction pass. Segmentation never affects results — each worker folds
/// its entry block sequentially regardless of how it is chunked — so this
/// only balances syscall count against buffer size (~40 KiB/worker at
/// order 3).
pub(crate) const SCRATCH_SEG_ENTRIES: usize = 8 << 10;

/// Where a fit reads its observed entries from.
///
/// Every row-update kernel hook receives the fit's input through this enum.
/// [`Resident`](FitInput::Resident) is the classical path: the COO tensor
/// is in memory and kernels may index it at random.
/// [`Scratch`](FitInput::Scratch) is the disk-to-disk path: the observed
/// entries live in an unlinked scratch file, the driver forces the spilled
/// placement (plan and any kernel aux state on disk), and every pass that
/// used to walk the entry array streams bounded segments instead.
#[derive(Debug, Clone, Copy)]
pub enum FitInput<'a> {
    /// The observed entries are resident in memory.
    Resident(&'a SparseTensor),
    /// The observed entries live in a disk-backed COO scratch file.
    Scratch(&'a CooScratch),
}

impl<'a> FitInput<'a> {
    /// The tensor's dimensionality `I₁ × … × I_N`.
    pub fn dims(&self) -> &'a [usize] {
        match self {
            FitInput::Resident(x) => x.dims(),
            FitInput::Scratch(src) => src.dims(),
        }
    }

    /// Number of modes `N`.
    pub fn order(&self) -> usize {
        self.dims().len()
    }

    /// Number of observed entries `|Ω|`.
    pub fn nnz(&self) -> usize {
        match self {
            FitInput::Resident(x) => x.nnz(),
            FitInput::Scratch(src) => src.nnz(),
        }
    }

    /// The resident tensor, if this input is one.
    pub fn resident(&self) -> Option<&'a SparseTensor> {
        match self {
            FitInput::Resident(x) => Some(x),
            FitInput::Scratch(_) => None,
        }
    }

    /// The resident tensor a code path requires by construction. Only the
    /// resident placements route into such paths (the driver forces the
    /// spilled placement for scratch inputs), so a scratch input reaching
    /// one is a driver bug, not a user error.
    pub(crate) fn expect_resident(&self, what: &str) -> &'a SparseTensor {
        match self {
            FitInput::Resident(x) => x,
            FitInput::Scratch(_) => unreachable!(
                "{what} requires a resident tensor; the placement gate never routes a disk-resident input here"
            ),
        }
    }
}

impl<'a> From<&'a SparseTensor> for FitInput<'a> {
    fn from(x: &'a SparseTensor) -> Self {
        FitInput::Resident(x)
    }
}

impl<'a> From<&'a CooScratch> for FitInput<'a> {
    fn from(src: &'a CooScratch) -> Self {
        FitInput::Scratch(src)
    }
}

/// Streams a reduction over a COO scratch file with the same block
/// structure as `parallel_reduce(n, threads, Schedule::Static, …)`: worker
/// `b` folds `static_block(n, t, b)` sequentially from `init()` through its
/// own bounded segment cursor, and the partials combine in block order.
///
/// Per-worker arithmetic is therefore identical to the resident static
/// schedule; only the combine order is pinned (block-ascending) where the
/// resident reducer combines in completion order. At `threads ≤ 2` the two
/// are bitwise-equal for commutative combines (IEEE `a + b` is
/// bitwise-commutative), which is what the bitwise trajectory tests pin; at
/// higher thread counts this streamed fold is the *more* deterministic of
/// the two.
///
/// `fold` receives each entry's raw `u32` multi-index and its value; state
/// that needs `usize` indices keeps a conversion buffer inside `T`.
pub(crate) fn scratch_fold_blocks<T, I, F, C>(
    src: &CooScratch,
    threads: usize,
    init: I,
    fold: F,
    combine: C,
) -> Result<T>
where
    T: Send,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, &[u32], f64) + Sync,
    C: Fn(T, T) -> T,
{
    let n = src.nnz();
    let t = threads.max(1).min(n.max(1));
    let run_block = |lo: usize, hi: usize| -> Result<T> {
        let mut acc = init();
        let mut cur = src.segments_range(lo..hi, SCRATCH_SEG_ENTRIES);
        while let Some(seg) = cur.next_segment().map_err(PtuckerError::Tensor)? {
            for i in 0..seg.len() {
                fold(&mut acc, seg.index(i), seg.value(i));
            }
        }
        Ok(acc)
    };
    if t <= 1 {
        return run_block(0, n);
    }
    let parts: Vec<Result<T>> = std::thread::scope(|scope| {
        let rb = &run_block;
        let handles: Vec<_> = (0..t)
            .map(|b| {
                let (lo, hi) = static_block(n, t, b);
                scope.spawn(move || rb(lo, hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scratch reduction worker panicked"))
            .collect()
    });
    let mut acc = init();
    for part in parts {
        acc = combine(acc, part?);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptucker_memtrack::MemoryBudget;
    use ptucker_tensor::CooScratchWriter;

    fn scratch(nnz: usize) -> (CooScratch, f64) {
        let budget = MemoryBudget::new(usize::MAX);
        let mut w = CooScratchWriter::create(vec![32, 16, 8], &budget).unwrap();
        let mut want = 0.0f64;
        for e in 0..nnz {
            let idx = [e * 7 % 32, e * 3 % 16, e % 8];
            let v = (e as f64).sin();
            want += v;
            w.push(&idx, v).unwrap();
        }
        (w.finish().unwrap(), want)
    }

    #[test]
    fn block_fold_sums_every_entry_once() {
        let (src, want) = scratch(1000);
        for threads in [1, 2, 3, 8] {
            let (sum, count) = scratch_fold_blocks(
                &src,
                threads,
                || (0.0f64, 0usize),
                |(s, c), _idx, v| {
                    *s += v;
                    *c += 1;
                },
                |(sa, ca), (sb, cb)| (sa + sb, ca + cb),
            )
            .unwrap();
            assert_eq!(count, 1000, "threads={threads}");
            assert!((sum - want).abs() < 1e-9, "threads={threads}");
        }
    }

    #[test]
    fn block_fold_is_deterministic_across_thread_counts() {
        // Index-weighted sum is order-sensitive in general, but each block
        // folds sequentially and combines in block order — repeated runs at
        // the same thread count must agree bitwise.
        let (src, _) = scratch(777);
        for threads in [2, 4] {
            let run = || {
                scratch_fold_blocks(
                    &src,
                    threads,
                    || 0.0f64,
                    |s, idx, v| *s += v * (idx[0] as f64 + 1.0),
                    |a, b| a + b,
                )
                .unwrap()
            };
            assert_eq!(run().to_bits(), run().to_bits());
        }
    }

    #[test]
    fn input_accessors_agree_across_variants() {
        let (src, _) = scratch(40);
        let input = FitInput::from(&src);
        assert_eq!(input.dims(), &[32, 16, 8]);
        assert_eq!(input.order(), 3);
        assert_eq!(input.nnz(), 40);
        assert!(input.resident().is_none());
    }
}
