use crate::{PtuckerError, Result};
use ptucker_memtrack::MemoryBudget;
use ptucker_sched::Schedule;

/// Which P-Tucker variant to run (Section III-C of the paper).
///
/// The paper is explicit that "users ought to select a method from P-TUCKER
/// and its variations in advance" — the choice is a configuration, not an
/// automatic policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Variant {
    /// Memory-optimized default: `O(T·J²)` intermediate data (Theorem 4).
    Default,
    /// P-Tucker-Cache: memoizes the per-(entry, core-entry) products in a
    /// `|Ω|×|G|` table, trading `O(|Ω|·J^N)` memory (Theorem 6) for an
    /// `N`→`1` reduction in the δ inner loop (Theorem 5).
    Cache,
    /// P-Tucker-Approx: truncates the top `p·|G|` "noisiest" core entries
    /// (highest partial reconstruction error `R(β)`, Eq. 13) every
    /// iteration.
    Approx {
        /// Truncation rate `p ∈ [0, 1)` per iteration (paper default 0.2;
        /// `0` truncates nothing and degenerates to [`Variant::Default`]
        /// exactly — useful for kernel-equivalence testing).
        truncation_rate: f64,
    },
}

/// Storage precision for the *streamed* data of a fit: the execution
/// plan's entry values and (for [`Variant::Cache`]) the Pres table, both
/// resident and spilled. Re-exported from `ptucker-tensor`, which owns the
/// stored representations; [`StoragePrecision::F32`] halves the
/// bytes-per-entry of the bandwidth-bound sweeps and doubles how far a
/// [`MemoryBudget`] reaches before spilling, at the cost of rounding each
/// observed value once to `f32` on ingest. Arithmetic always stays `f64`,
/// and the fit's placement guarantee (resident ≡ hybrid ≡ spilled
/// bitwise) holds *within* each precision.
pub use ptucker_tensor::StoragePrecision;

/// Configuration for a P-Tucker fit. Construct with
/// [`FitOptions::new`] and chain the builder methods.
///
/// ```
/// use ptucker::{FitOptions, Variant};
///
/// let opts = FitOptions::new(vec![3, 3, 3])
///     .lambda(0.01)
///     .max_iters(10)
///     .threads(4)
///     .variant(Variant::Approx { truncation_rate: 0.2 })
///     .seed(42);
/// assert!(opts.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FitOptions {
    /// Core dimensionalities `J₁ … J_N` (the Tucker ranks).
    pub ranks: Vec<usize>,
    /// L2 regularization `λ` for the factor matrices (paper default 0.01).
    pub lambda: f64,
    /// Maximum number of ALS iterations (paper default 20).
    pub max_iters: usize,
    /// Relative-change convergence tolerance on the reconstruction error.
    pub tol: f64,
    /// Number of worker threads `T` (paper default 20; ours defaults to the
    /// machine's available parallelism).
    pub threads: usize,
    /// Scheduling policy for the row updates (paper: dynamic).
    pub schedule: Schedule,
    /// Which algorithm variant to run.
    pub variant: Variant,
    /// RNG seed for factor/core initialization.
    pub seed: u64,
    /// Budget for intermediate data (see `ptucker-memtrack`).
    pub budget: MemoryBudget,
    /// Extension (paper future work / author code): refit the core as
    /// `G = X ×₁ Q⁽¹⁾ᵀ ⋯ ×_N Q⁽ᴺ⁾ᵀ` over observed entries after
    /// orthogonalization. Off by default to stay paper-faithful.
    pub refit_core: bool,
    /// Extension (paper future work): during factor updates, use every
    /// `sample_stride`-th observed entry of each slice (1 = use all).
    pub sample_stride: usize,
    /// Out-of-core fits only: overlap each window's scratch-file read with
    /// the previous window's row updates (a second pinned buffer + a
    /// background refill thread — both buffers are counted against the
    /// budget). On by default; the driver still reads synchronously when
    /// windows are too small to amortize the hand-off. Never changes
    /// results — spilled sweeps are bitwise identical either way.
    pub prefetch: bool,
    /// Out-of-core fits only: number of pinned window buffers in the
    /// prefetch ring (default 2 — the classic double buffer: one buffer
    /// being consumed, one being refilled in the background). Depth `d`
    /// keeps up to `d − 1` refills banked ahead of the consumer, smoothing
    /// bursty window costs at the price of `d` budget-metered buffers.
    /// The driver self-gates per fit: it only engages the deepest depth
    /// `≤ prefetch_depth` whose buffers still fit the [`MemoryBudget`]
    /// with amortizable windows, falling back toward the synchronous
    /// single buffer — so requesting a deeper ring never loses to a
    /// shallower one. Ignored when [`FitOptions::prefetch`] is off.
    /// Never changes results at any depth.
    pub prefetch_depth: usize,
    /// Storage precision for streamed data (plan values, Pres table).
    /// Default [`StoragePrecision::F64`]; see [`StoragePrecision`] for the
    /// f32-storage/f64-arithmetic trade-off.
    pub precision: StoragePrecision,
    /// When set, the fit atomically snapshots its full state (factors,
    /// core, iteration counter, per-iteration stats, kernel auxiliary
    /// state) to this path every [`FitOptions::checkpoint_every`]
    /// iterations, so an interrupted fit can continue **bitwise** via
    /// [`FitOptions::resume_from`]. `None` (the default) checkpoints
    /// nothing.
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Checkpoint cadence in iterations (1 = after every iteration).
    /// Ignored unless [`FitOptions::checkpoint_path`] is set.
    pub checkpoint_every: usize,
    /// When set, the fit loads this checkpoint after initialization and
    /// continues from its recorded iteration instead of iteration 0. The
    /// resumed trajectory — including the already-recorded iteration
    /// stats — is bitwise identical to the uninterrupted fit's. The
    /// checkpoint must match the fit's configuration and tensor (a
    /// fingerprint is verified).
    pub resume_from: Option<std::path::PathBuf>,
}

impl FitOptions {
    /// Creates options with the paper's defaults for the given ranks.
    pub fn new(ranks: Vec<usize>) -> Self {
        FitOptions {
            ranks,
            lambda: 0.01,
            max_iters: 20,
            tol: 1e-4,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            schedule: Schedule::dynamic(),
            variant: Variant::Default,
            seed: 0,
            budget: MemoryBudget::default(),
            refit_core: false,
            sample_stride: 1,
            prefetch: true,
            prefetch_depth: 2,
            precision: StoragePrecision::F64,
            checkpoint_path: None,
            checkpoint_every: 1,
            resume_from: None,
        }
    }

    /// Sets the regularization parameter `λ`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the maximum iteration count.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the convergence tolerance (relative error change).
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the number of worker threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the scheduling policy for row updates.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Selects the algorithm variant.
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the RNG seed for initialization.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the intermediate-data budget.
    pub fn budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Enables/disables the observed-entry core refit extension.
    pub fn refit_core(mut self, on: bool) -> Self {
        self.refit_core = on;
        self
    }

    /// Sets the observed-entry sampling stride (1 = no sampling).
    pub fn sample_stride(mut self, stride: usize) -> Self {
        self.sample_stride = stride;
        self
    }

    /// Enables/disables the double-buffered window prefetch of out-of-core
    /// fits (on by default; irrelevant to fits that stay resident).
    pub fn prefetch(mut self, on: bool) -> Self {
        self.prefetch = on;
        self
    }

    /// Sets the prefetch ring depth for out-of-core fits (default 2; 1
    /// degenerates to synchronous refills). The driver clamps the
    /// *effective* depth down per fit so a deeper request never loses.
    pub fn prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch_depth = depth;
        self
    }

    /// Sets the storage precision for streamed data (f64 default).
    pub fn precision(mut self, precision: StoragePrecision) -> Self {
        self.precision = precision;
        self
    }

    /// Enables periodic checkpointing to `path` (atomic write-temp +
    /// fsync + rename; see [`crate::checkpoint::FitCheckpoint`]).
    pub fn checkpoint_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Sets the checkpoint cadence in iterations (default 1).
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Resumes the fit from a checkpoint written by a previous run with
    /// [`FitOptions::checkpoint_path`]; the continued trajectory is
    /// bitwise identical to the uninterrupted fit's.
    pub fn resume_from(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// Checks internal consistency (rank positivity, rate ranges, …).
    ///
    /// # Errors
    /// [`PtuckerError::InvalidConfig`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        if self.ranks.is_empty() {
            return Err(PtuckerError::InvalidConfig(
                "ranks must be non-empty".into(),
            ));
        }
        if self.ranks.contains(&0) {
            return Err(PtuckerError::InvalidConfig("all ranks must be >= 1".into()));
        }
        if !(self.lambda >= 0.0 && self.lambda.is_finite()) {
            return Err(PtuckerError::InvalidConfig(
                "lambda must be finite and >= 0".into(),
            ));
        }
        if !(self.tol >= 0.0 && self.tol.is_finite()) {
            return Err(PtuckerError::InvalidConfig(
                "tol must be finite and >= 0".into(),
            ));
        }
        if self.max_iters == 0 {
            return Err(PtuckerError::InvalidConfig("max_iters must be >= 1".into()));
        }
        if self.sample_stride == 0 {
            return Err(PtuckerError::InvalidConfig(
                "sample_stride must be >= 1".into(),
            ));
        }
        if let Variant::Approx { truncation_rate } = self.variant {
            if !(0.0..1.0).contains(&truncation_rate) {
                return Err(PtuckerError::InvalidConfig(
                    "truncation_rate must be in [0, 1)".into(),
                ));
            }
        }
        if self.prefetch_depth == 0 {
            return Err(PtuckerError::InvalidConfig(
                "prefetch_depth must be >= 1".into(),
            ));
        }
        if self.checkpoint_every == 0 {
            return Err(PtuckerError::InvalidConfig(
                "checkpoint_every must be >= 1".into(),
            ));
        }
        Ok(())
    }

    /// Validates the options against a concrete tensor shape.
    ///
    /// # Errors
    /// [`PtuckerError::InvalidConfig`] if the rank arity does not match the
    /// tensor order or some `Jₙ > Iₙ`.
    pub fn validate_for(&self, dims: &[usize]) -> Result<()> {
        self.validate()?;
        if self.ranks.len() != dims.len() {
            return Err(PtuckerError::InvalidConfig(format!(
                "ranks have order {} but the tensor has order {}",
                self.ranks.len(),
                dims.len()
            )));
        }
        for (n, (&j, &i)) in self.ranks.iter().zip(dims).enumerate() {
            if j > i {
                return Err(PtuckerError::InvalidConfig(format!(
                    "rank J_{n} = {j} exceeds dimensionality I_{n} = {i}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = FitOptions::new(vec![10, 10, 10]);
        assert_eq!(o.lambda, 0.01);
        assert_eq!(o.max_iters, 20);
        assert_eq!(o.sample_stride, 1);
        assert!(!o.refit_core);
        assert!(o.prefetch);
        assert_eq!(o.prefetch_depth, 2);
        assert_eq!(o.precision, StoragePrecision::F64);
        assert!(o.validate().is_ok());
    }

    #[test]
    fn precision_semantics() {
        assert_eq!(StoragePrecision::F64.value_bytes(), 8);
        assert_eq!(StoragePrecision::F32.value_bytes(), 4);
        // Quantize: identity for f64, one rounding for f32.
        let v = 0.1f64;
        assert_eq!(StoragePrecision::F64.quantize(v).to_bits(), v.to_bits());
        assert_eq!(
            StoragePrecision::F32.quantize(v).to_bits(),
            (0.1f32 as f64).to_bits()
        );
        // Already-representable values survive the f32 round-trip exactly.
        assert_eq!(StoragePrecision::F32.quantize(0.5), 0.5);
        let o = FitOptions::new(vec![2]).precision(StoragePrecision::F32);
        assert_eq!(o.precision, StoragePrecision::F32);
        assert!(o.validate().is_ok());
    }

    #[test]
    fn builder_chains() {
        let o = FitOptions::new(vec![2, 2])
            .lambda(0.5)
            .max_iters(3)
            .tol(1e-6)
            .threads(2)
            .seed(7)
            .sample_stride(2)
            .refit_core(true)
            .variant(Variant::Cache);
        assert_eq!(o.lambda, 0.5);
        assert_eq!(o.max_iters, 3);
        assert_eq!(o.threads, 2);
        assert_eq!(o.seed, 7);
        assert_eq!(o.sample_stride, 2);
        assert!(o.refit_core);
        assert_eq!(o.variant, Variant::Cache);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(FitOptions::new(vec![]).validate().is_err());
        assert!(FitOptions::new(vec![0, 2]).validate().is_err());
        assert!(FitOptions::new(vec![2])
            .lambda(f64::NAN)
            .validate()
            .is_err());
        assert!(FitOptions::new(vec![2]).lambda(-1.0).validate().is_err());
        assert!(FitOptions::new(vec![2]).max_iters(0).validate().is_err());
        assert!(FitOptions::new(vec![2]).tol(-0.1).validate().is_err());
        assert!(FitOptions::new(vec![2])
            .sample_stride(0)
            .validate()
            .is_err());
        assert!(FitOptions::new(vec![2])
            .prefetch_depth(0)
            .validate()
            .is_err());
        assert!(FitOptions::new(vec![2])
            .prefetch_depth(4)
            .validate()
            .is_ok());
        // Rate 0 is the valid "truncate nothing" degenerate case; 1.0 and
        // negatives/NaN are rejected.
        assert!(FitOptions::new(vec![2])
            .variant(Variant::Approx {
                truncation_rate: 0.0
            })
            .validate()
            .is_ok());
        assert!(FitOptions::new(vec![2])
            .variant(Variant::Approx {
                truncation_rate: 1.0
            })
            .validate()
            .is_err());
        assert!(FitOptions::new(vec![2])
            .variant(Variant::Approx {
                truncation_rate: -0.1
            })
            .validate()
            .is_err());
        assert!(FitOptions::new(vec![2])
            .variant(Variant::Approx {
                truncation_rate: f64::NAN
            })
            .validate()
            .is_err());
    }

    #[test]
    fn validate_for_checks_shape() {
        let o = FitOptions::new(vec![3, 3]);
        assert!(o.validate_for(&[10, 10]).is_ok());
        assert!(o.validate_for(&[10, 10, 10]).is_err());
        assert!(o.validate_for(&[10, 2]).is_err());
    }
}
