//! Length-prefixed framed transport with checksums, byte accounting,
//! read deadlines and deterministic fault injection — the wire layer
//! shared by the sharded-fit coordinator (`ptucker-shard`) and the
//! factor-serving read path (`ptucker-serve`).
//!
//! A frame is `[len: u32 LE] [tag: u8] [payload: len-1 bytes]
//! [checksum: u64 LE]` where `len` counts the tag plus the payload and
//! the checksum is FNV-1a 64 over them. The framing carries no type
//! information beyond the tag — message bodies are encoded by each
//! protocol crate — and no compression: the steady-state traffic is
//! factor rows and query batches, which are already dense.
//!
//! [`Channel`] works over any `Read`/`Write` pair — the stdin/stdout
//! pipes of a spawned worker, or a [`std::os::unix::net::UnixStream`]
//! for in-process thread peers — and counts bytes both ways through
//! shared [`ByteCounters`], so a coordinator or server can report comms
//! volume even after the channel has been moved onto a background I/O
//! thread.
//!
//! Two seams support fault tolerance and adversarial testing:
//!
//! * [`DeadlineCapable`] exposes descriptor-level read deadlines
//!   ([`Channel::set_read_timeout`]) on transports that have them
//!   (Unix sockets), so a silent peer surfaces as a timed-out read
//!   instead of a forever-blocked thread; pipe transports get the same
//!   protection one layer up, from the caller's deadline-aware response
//!   collection.
//! * [`FaultInjector`] intercepts frames at this, the lowest layer —
//!   dropping, corrupting, delaying them or killing the process — which
//!   is what lets fault-injection test suites exercise every recovery
//!   path deterministically over the *real* framing code. Each protocol
//!   supplies its own message-name vocabulary to
//!   [`FaultInjector::parse_with`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Frames larger than this are rejected as corruption before any
/// allocation happens (1 GiB — far beyond any factor, plan or query
/// message the workspace produces).
const MAX_FRAME_BYTES: u32 = 1 << 30;

/// FNV-1a 64-bit over `bytes` — cheap, allocation-free, and plenty for
/// catching framing bugs and torn pipes (this is an integrity check, not
/// an authenticity one).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Monotonic sent/received byte totals of one [`Channel`], shared by
/// reference so they stay readable after the channel moves to a
/// background I/O thread.
#[derive(Debug, Clone, Default)]
pub struct ByteCounters {
    sent: Arc<AtomicU64>,
    received: Arc<AtomicU64>,
}

impl ByteCounters {
    /// Total bytes written so far, framing included.
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Total bytes read so far, framing included.
    pub fn received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }
}

/// Where in the transport a fault-injection rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// The rule fires as a frame is written.
    Send,
    /// The rule fires as a frame is read.
    Recv,
}

/// What a matched fault-injection rule does to its frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Silently discard the frame: the sender believes it was delivered,
    /// the receiver never sees it.
    Drop,
    /// Flip one bit of the frame *after* its checksum was computed, so
    /// the receiving side detects the corruption.
    Corrupt,
    /// Stall the frame for the given duration before letting it through
    /// untouched — a hung-but-alive peer.
    Delay(Duration),
    /// SIGKILL the current process mid-protocol: sudden worker death
    /// with no flushing, no unwinding, no goodbye.
    Kill,
}

/// One injection rule: perform [`FaultRule::action`] on the
/// [`FaultRule::nth`] (1-based) frame observed at [`FaultRule::point`]
/// whose tag matches [`FaultRule::tag`] (`None` matches every tag).
/// Each rule fires exactly once.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Send side or receive side of the channel.
    pub point: FaultPoint,
    /// Frame tag to match (`None` = any).
    pub tag: Option<u8>,
    /// 1-based match ordinal at which the rule fires.
    pub nth: u64,
    /// The fault to perform.
    pub action: FaultAction,
}

#[derive(Debug)]
struct RuleState {
    rule: FaultRule,
    seen: u64,
    fired: bool,
}

/// Deterministic transport-level fault injection: a rule table consulted
/// by [`Channel::send_frame`] / [`Channel::recv_frame`] on every frame.
/// Cloning shares the table (rules fire once *globally*), so a single
/// injector can be observed from a test while installed in a channel.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    rules: Arc<Mutex<Vec<RuleState>>>,
}

impl FaultInjector {
    /// An injector with no rules (it never fires).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule, builder style.
    #[must_use]
    pub fn rule(self, rule: FaultRule) -> Self {
        self.rules.lock().expect("injector lock").push(RuleState {
            rule,
            seen: 0,
            fired: false,
        });
        self
    }

    /// Parses a fault spec string: `;`-separated rules of the form
    /// `point:tag:nth:action[:millis]`, where `point` is `send` or
    /// `recv`, `tag` is a lowercase message name resolved by
    /// `tag_by_name` (each protocol supplies its own vocabulary — e.g.
    /// `rows`/`factorsync` for the shard protocol, `point`/`topk` for
    /// the query protocol) or `any`, `nth` is the 1-based match ordinal,
    /// and `action` is one of `drop`, `corrupt`, `kill` or `delay` (the
    /// latter taking the stall length in milliseconds as a fifth field).
    /// For example `"send:rows:2:delay:1500"` stalls the second `Rows`
    /// frame this side writes by 1.5 seconds.
    ///
    /// # Errors
    /// A description of the first malformed rule.
    pub fn parse_with(
        spec: &str,
        tag_by_name: impl Fn(&str) -> Option<u8>,
    ) -> Result<Self, String> {
        let mut inj = FaultInjector::new();
        for rule in spec.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            let parts: Vec<&str> = rule.split(':').collect();
            if parts.len() < 4 {
                return Err(format!(
                    "fault rule `{rule}`: expected point:tag:nth:action[:millis]"
                ));
            }
            let point = match parts[0] {
                "send" => FaultPoint::Send,
                "recv" => FaultPoint::Recv,
                p => return Err(format!("fault rule `{rule}`: unknown point `{p}`")),
            };
            let tag = match parts[1] {
                "any" | "*" => None,
                name => Some(
                    tag_by_name(name)
                        .ok_or_else(|| format!("fault rule `{rule}`: unknown message `{name}`"))?,
                ),
            };
            let nth: u64 = parts[2]
                .parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("fault rule `{rule}`: bad ordinal `{}`", parts[2]))?;
            let action = match (parts[3], parts.get(4)) {
                ("drop", None) => FaultAction::Drop,
                ("corrupt", None) => FaultAction::Corrupt,
                ("kill", None) => FaultAction::Kill,
                ("delay", Some(ms)) => FaultAction::Delay(Duration::from_millis(
                    ms.parse()
                        .map_err(|_| format!("fault rule `{rule}`: bad delay `{ms}`"))?,
                )),
                _ => return Err(format!("fault rule `{rule}`: bad action `{}`", parts[3])),
            };
            inj = inj.rule(FaultRule {
                point,
                tag,
                nth,
                action,
            });
        }
        Ok(inj)
    }

    /// Consults the table for a frame with `tag` observed at `point`;
    /// returns the action of the first rule that fires, if any.
    fn fire(&self, point: FaultPoint, tag: u8) -> Option<FaultAction> {
        let mut rules = self.rules.lock().expect("injector lock");
        let mut hit = None;
        for rs in rules.iter_mut() {
            if rs.rule.point != point {
                continue;
            }
            if rs.rule.tag.is_some_and(|t| t != tag) {
                continue;
            }
            rs.seen += 1;
            if hit.is_none() && !rs.fired && rs.seen == rs.rule.nth {
                rs.fired = true;
                hit = Some(rs.rule.action);
            }
        }
        hit
    }
}

/// SIGKILLs the current process — the [`FaultAction::Kill`] endgame. The
/// process dies with no unwinding, exactly like an OOM kill or a crashed
/// node, which is the failure recovery machinery must survive.
fn kill_self() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill")
        .args(["-9", &pid])
        .status();
    // SIGKILL cannot be masked; reaching this line means the `kill`
    // binary itself was unavailable — exit hard instead.
    std::process::exit(137);
}

/// Transports whose read side supports a descriptor-level deadline, so a
/// peer that stops talking surfaces as a timed-out read
/// (`ErrorKind::WouldBlock`/`TimedOut`) instead of a forever-blocked
/// thread. Implemented for [`std::os::unix::net::UnixStream`]; plain
/// pipes have no such knob, which is why pipe-based coordinators also
/// enforce deadlines one layer up when collecting responses.
pub trait DeadlineCapable {
    /// Sets (or, with `None`, clears) the read deadline.
    ///
    /// # Errors
    /// The underlying `setsockopt`-style failure.
    fn set_read_deadline(&self, timeout: Option<Duration>) -> io::Result<()>;
}

impl DeadlineCapable for std::os::unix::net::UnixStream {
    fn set_read_deadline(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

/// One framed, checksummed, byte-counted duplex connection.
#[derive(Debug)]
pub struct Channel<R, W> {
    reader: R,
    writer: W,
    counters: ByteCounters,
    /// Reusable frame staging buffer (one allocation per connection, not
    /// per message).
    buf: Vec<u8>,
    /// Fault injection hook; `None` outside the fault test/chaos paths.
    faults: Option<FaultInjector>,
}

/// A raw frame: the tag byte plus its payload, checksum already
/// verified.
#[derive(Debug)]
pub struct Frame {
    /// The message tag (assigned by the protocol crate).
    pub tag: u8,
    /// The encoded message body.
    pub payload: Vec<u8>,
}

impl<R: DeadlineCapable, W> Channel<R, W> {
    /// Applies a read deadline to the underlying transport: a
    /// [`Channel::recv_frame`] with no peer bytes for `timeout` fails
    /// with `ErrorKind::WouldBlock` (or `TimedOut`) instead of blocking
    /// forever. `None` restores blocking reads.
    ///
    /// # Errors
    /// The transport's own failure to apply the deadline.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.set_read_deadline(timeout)
    }
}

impl<R: Read, W: Write> Channel<R, W> {
    /// Wraps a `Read`/`Write` pair with fresh byte counters.
    pub fn new(reader: R, writer: W) -> Self {
        Channel {
            reader,
            writer,
            counters: ByteCounters::default(),
            buf: Vec::new(),
            faults: None,
        }
    }

    /// A shared handle to this channel's byte counters.
    pub fn counters(&self) -> ByteCounters {
        self.counters.clone()
    }

    /// Installs a fault injector consulted on every subsequent frame in
    /// both directions.
    pub fn inject_faults(&mut self, faults: FaultInjector) {
        self.faults = Some(faults);
    }

    /// Writes one frame (single `write_all` + flush, so a frame is never
    /// interleaved with another writer's bytes).
    ///
    /// # Errors
    /// Propagates transport I/O failures.
    pub fn send_frame(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(1 + payload.len())
            .ok()
            .filter(|&l| l <= MAX_FRAME_BYTES)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
        self.buf.clear();
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.push(tag);
        self.buf.extend_from_slice(payload);
        let sum = fnv1a(&self.buf[4..]);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        if let Some(action) = self
            .faults
            .as_ref()
            .and_then(|f| f.fire(FaultPoint::Send, tag))
        {
            match action {
                FaultAction::Drop => return Ok(()),
                // The checksum is already in the buffer, so flipping a
                // bit of the body makes the receiver reject the frame.
                FaultAction::Corrupt => self.buf[3 + len as usize] ^= 0x40,
                FaultAction::Delay(d) => std::thread::sleep(d),
                FaultAction::Kill => kill_self(),
            }
        }
        self.writer.write_all(&self.buf)?;
        self.writer.flush()?;
        self.counters
            .sent
            .fetch_add(self.buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Reads one frame, verifying length bounds and the checksum, and
    /// places its payload in `payload` (cleared and reused — the
    /// allocation-free receive path query servers run on). Returns the
    /// frame's tag.
    ///
    /// # Errors
    /// Transport I/O failures, `UnexpectedEof` on a closed peer, or
    /// `InvalidData` on a corrupt frame.
    pub fn recv_frame_into(&mut self, payload: &mut Vec<u8>) -> io::Result<u8> {
        loop {
            let mut head = [0u8; 4];
            self.reader.read_exact(&mut head)?;
            let len = u32::from_le_bytes(head);
            if len == 0 || len > MAX_FRAME_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad frame length {len}"),
                ));
            }
            self.buf.clear();
            self.buf.resize(len as usize, 0);
            self.reader.read_exact(&mut self.buf)?;
            let mut sum = [0u8; 8];
            self.reader.read_exact(&mut sum)?;
            self.counters
                .received
                .fetch_add(4 + u64::from(len) + 8, Ordering::Relaxed);
            let tag = self.buf[0];
            if let Some(action) = self
                .faults
                .as_ref()
                .and_then(|f| f.fire(FaultPoint::Recv, tag))
            {
                match action {
                    // The frame vanishes before anyone decodes it; keep
                    // reading, as if the peer had never sent it.
                    FaultAction::Drop => continue,
                    FaultAction::Corrupt => self.buf[len as usize - 1] ^= 0x40,
                    FaultAction::Delay(d) => std::thread::sleep(d),
                    FaultAction::Kill => kill_self(),
                }
            }
            if fnv1a(&self.buf) != u64::from_le_bytes(sum) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "frame checksum mismatch",
                ));
            }
            payload.clear();
            payload.extend_from_slice(&self.buf[1..]);
            return Ok(self.buf[0]);
        }
    }

    /// Reads one frame, verifying length bounds and the checksum.
    /// Allocates a fresh payload per frame; hot loops use
    /// [`Channel::recv_frame_into`] instead.
    ///
    /// # Errors
    /// Transport I/O failures, `UnexpectedEof` on a closed peer, or
    /// `InvalidData` on a corrupt frame.
    pub fn recv_frame(&mut self) -> io::Result<Frame> {
        let mut payload = Vec::new();
        let tag = self.recv_frame_into(&mut payload)?;
        Ok(Frame { tag, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(tag: u8, payload: &[u8]) -> Frame {
        let mut wire = Vec::new();
        {
            let mut tx = Channel::new(io::empty(), &mut wire);
            tx.send_frame(tag, payload).unwrap();
            assert_eq!(tx.counters().sent(), wire.len() as u64);
        }
        let mut rx = Channel::new(wire.as_slice(), io::sink());
        let f = rx.recv_frame().unwrap();
        assert_eq!(rx.counters().received(), wire.len() as u64);
        f
    }

    #[test]
    fn frame_roundtrip() {
        let f = roundtrip(7, b"hello shard");
        assert_eq!(f.tag, 7);
        assert_eq!(f.payload, b"hello shard");
        let empty = roundtrip(1, b"");
        assert_eq!(empty.tag, 1);
        assert!(empty.payload.is_empty());
    }

    #[test]
    fn recv_into_reuses_the_caller_buffer() {
        let mut wire = Vec::new();
        {
            let mut tx = Channel::new(io::empty(), &mut wire);
            tx.send_frame(2, b"a longer first payload").unwrap();
            tx.send_frame(5, b"short").unwrap();
        }
        let mut rx = Channel::new(wire.as_slice(), io::sink());
        let mut payload = Vec::new();
        assert_eq!(rx.recv_frame_into(&mut payload).unwrap(), 2);
        assert_eq!(payload, b"a longer first payload");
        let cap = payload.capacity();
        assert_eq!(rx.recv_frame_into(&mut payload).unwrap(), 5);
        assert_eq!(payload, b"short");
        assert_eq!(
            payload.capacity(),
            cap,
            "no reallocation on a smaller frame"
        );
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let mut wire = Vec::new();
        Channel::new(io::empty(), &mut wire)
            .send_frame(3, b"abcdef")
            .unwrap();
        wire[7] ^= 0x40; // flip a payload bit
        let err = Channel::new(wire.as_slice(), io::sink())
            .recv_frame()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut wire = Vec::new();
        Channel::new(io::empty(), &mut wire)
            .send_frame(3, b"abcdef")
            .unwrap();
        wire.truncate(wire.len() - 3);
        let err = Channel::new(wire.as_slice(), io::sink())
            .recv_frame()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn absurd_length_is_rejected_before_allocation() {
        let wire = u32::MAX.to_le_bytes();
        let err = Channel::new(wire.as_slice(), io::sink())
            .recv_frame()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn injector_drops_the_nth_send() {
        let mut wire = Vec::new();
        {
            let mut tx = Channel::new(io::empty(), &mut wire);
            tx.inject_faults(FaultInjector::new().rule(FaultRule {
                point: FaultPoint::Send,
                tag: None,
                nth: 2,
                action: FaultAction::Drop,
            }));
            tx.send_frame(1, b"first").unwrap();
            tx.send_frame(2, b"second").unwrap(); // vanishes
            tx.send_frame(3, b"third").unwrap();
        }
        let mut rx = Channel::new(wire.as_slice(), io::sink());
        assert_eq!(rx.recv_frame().unwrap().tag, 1);
        assert_eq!(rx.recv_frame().unwrap().tag, 3);
    }

    #[test]
    fn injector_corrupts_detectably() {
        let mut wire = Vec::new();
        {
            let mut tx = Channel::new(io::empty(), &mut wire);
            tx.inject_faults(FaultInjector::new().rule(FaultRule {
                point: FaultPoint::Send,
                tag: Some(5),
                nth: 1,
                action: FaultAction::Corrupt,
            }));
            tx.send_frame(4, b"clean").unwrap();
            tx.send_frame(5, b"dirty").unwrap();
        }
        let mut rx = Channel::new(wire.as_slice(), io::sink());
        assert_eq!(rx.recv_frame().unwrap().tag, 4);
        let err = rx.recv_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn injector_drops_on_the_recv_side_too() {
        let mut wire = Vec::new();
        {
            let mut tx = Channel::new(io::empty(), &mut wire);
            tx.send_frame(1, b"skipped").unwrap();
            tx.send_frame(2, b"seen").unwrap();
        }
        let mut rx = Channel::new(wire.as_slice(), io::sink());
        rx.inject_faults(FaultInjector::new().rule(FaultRule {
            point: FaultPoint::Recv,
            tag: Some(1),
            nth: 1,
            action: FaultAction::Drop,
        }));
        assert_eq!(rx.recv_frame().unwrap().tag, 2);
    }

    #[test]
    fn injector_delay_stalls_the_frame() {
        let mut wire = Vec::new();
        let mut tx = Channel::new(io::empty(), &mut wire);
        tx.inject_faults(FaultInjector::new().rule(FaultRule {
            point: FaultPoint::Send,
            tag: None,
            nth: 1,
            action: FaultAction::Delay(Duration::from_millis(60)),
        }));
        let t0 = std::time::Instant::now();
        tx.send_frame(1, b"slow").unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn spec_parsing_accepts_the_documented_grammar() {
        let names = |name: &str| match name {
            "rows" => Some(4u8),
            "modestart" => Some(3),
            _ => None,
        };
        assert!(FaultInjector::parse_with("send:rows:2:drop", names).is_ok());
        assert!(
            FaultInjector::parse_with("recv:any:1:corrupt; send:modestart:3:delay:250", names)
                .is_ok()
        );
        assert!(FaultInjector::parse_with("send:rows:1:kill", names).is_ok());
        // Malformed specs name the offending rule.
        assert!(FaultInjector::parse_with("sideways:rows:1:drop", names).is_err());
        assert!(FaultInjector::parse_with("send:nosuchmsg:1:drop", names).is_err());
        assert!(FaultInjector::parse_with("send:rows:0:drop", names).is_err());
        assert!(FaultInjector::parse_with("send:rows:1:delay", names).is_err());
        assert!(FaultInjector::parse_with("send:rows:1:explode", names).is_err());
    }

    #[test]
    fn unix_stream_read_deadline_times_out() {
        let (a, _b) = std::os::unix::net::UnixStream::pair().unwrap();
        let chan = Channel::new(a.try_clone().unwrap(), a);
        chan.set_read_timeout(Some(Duration::from_millis(40)))
            .unwrap();
        let mut chan = chan;
        let err = chan.recv_frame().unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "expected a timeout kind, got {err:?}"
        );
    }
}
