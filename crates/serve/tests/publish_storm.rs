//! Concurrent-publish consistency: a storm of point queries racing a
//! stream of refit publishes must only ever observe a *fully consistent*
//! snapshot — the old model or the new one, bitwise, never a mix — and
//! every reply's epoch must name the model that produced its value.

use ptucker::{Predictor, TuckerDecomposition};
use ptucker_linalg::Matrix;
use ptucker_serve::{serve, ServeOptions};
use ptucker_tensor::CoreTensor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A model that reconstructs to exactly `value` at every index: all-ones
/// rank-1 factors and a single-cell core holding `value`. Any partially
/// applied publish would surface as a reconstruction equal to neither
/// constant.
fn constant_model(dims: &[usize], value: f64) -> TuckerDecomposition {
    let factors = dims
        .iter()
        .map(|&i_n| Matrix::from_vec(i_n, 1, vec![1.0; i_n]).unwrap())
        .collect();
    let core = CoreTensor::dense_from_fn(vec![1; dims.len()], |_| value).unwrap();
    TuckerDecomposition { factors, core }
}

fn sock(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ptk-storm-{}-{name}.sock", std::process::id()))
}

#[test]
fn query_storm_only_observes_consistent_snapshots() {
    let dims = [6usize, 5, 4];
    let va = 0.125f64; // exactly representable, distinct bit patterns
    let vb = -2.5f64;
    let model_a = constant_model(&dims, va);
    let model_b = constant_model(&dims, vb);

    let path = sock("storm");
    let handle = Arc::new(
        serve(
            &path,
            Predictor::new(model_a.clone()).unwrap(),
            ServeOptions::default(),
        )
        .unwrap(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for t in 0..4 {
        let stop = Arc::clone(&stop);
        let handle = Arc::clone(&handle);
        clients.push(std::thread::spawn(move || {
            let mut client = handle.connect().unwrap();
            let mut observed = 0u64;
            let mut last_epoch = 0u64;
            while !stop.load(Ordering::Acquire) {
                let v = client.point(&[t % 6, t % 5, t % 4]).unwrap();
                let epoch = client.epoch();
                // Epoch 1, 3, 5, … served model A; even epochs model B.
                let want = if epoch % 2 == 1 { va } else { vb };
                assert_eq!(
                    v.to_bits(),
                    want.to_bits(),
                    "epoch {epoch} must serve the matching constant, got {v}"
                );
                assert!(epoch >= last_epoch, "epochs moved backwards");
                last_epoch = epoch;
                observed += 1;
            }
            observed
        }));
    }

    // Publish a refit storm under the readers: B, A, B, A, …
    for round in 0..40 {
        let next = if round % 2 == 0 {
            model_b.clone()
        } else {
            model_a.clone()
        };
        handle.publish(Predictor::new(next).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    stop.store(true, Ordering::Release);
    let mut total = 0;
    for c in clients {
        total += c.join().expect("query thread must not panic");
    }
    assert!(total > 0, "the storm must actually have queried");

    let stats = Arc::try_unwrap(handle)
        .expect("all clones joined")
        .shutdown()
        .unwrap();
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(stats.publishes, 41);
    assert_eq!(stats.error_replies, 0);
}
