//! Property-based proofs of the query protocol's two contracts:
//!
//! * `point_query_is_bitwise` — a served point reconstruction is
//!   bit-for-bit the value [`Predictor::predict`] computes locally, for
//!   every storage precision;
//! * `topk_matches_brute_force` — the served top-K over a mode equals an
//!   exhaustive reconstruct-and-sort of every candidate row, with ties
//!   broken deterministically by ascending row index, for every
//!   `K ∈ {0 … rows+…}` including `K > rows`.
//!
//! Each case runs over a real Unix socket through the production server,
//! not a shortcut into the kernels.

use proptest::prelude::*;
use ptucker::{Predictor, StoragePrecision, TuckerDecomposition};
use ptucker_linalg::kernels::top_k_select;
use ptucker_linalg::Matrix;
use ptucker_serve::{serve, ServeOptions};
use ptucker_tensor::CoreTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn sock(name: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "ptk-qp-{}-{name}-{}.sock",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn random_model(seed: u64, dims: &[usize], ranks: &[usize]) -> TuckerDecomposition {
    let mut rng = StdRng::seed_from_u64(seed);
    let factors = dims
        .iter()
        .zip(ranks)
        .map(|(&i_n, &j_n)| {
            Matrix::from_vec(
                i_n,
                j_n,
                (0..i_n * j_n)
                    .map(|_| rng.gen::<f64>() * 2.0 - 1.0)
                    .collect(),
            )
            .unwrap()
        })
        .collect();
    let core = CoreTensor::dense_from_fn(ranks.to_vec(), |idx| {
        let mut h = 0.7;
        for &b in idx {
            h = h * 1.37 + b as f64 * 0.11;
        }
        h.sin()
    })
    .unwrap();
    TuckerDecomposition { factors, core }
}

/// A random small shape: order 2 or 3, dims ≤ 9, ranks ≤ 3.
fn shape() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (2..=3usize).prop_flat_map(|order| {
        (
            proptest::collection::vec(2..=9usize, order..=order),
            proptest::collection::vec(1..=3usize, order..=order),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn point_query_is_bitwise(
        seed in 0..u64::MAX,
        (dims, ranks) in shape(),
        f32_storage in any::<bool>(),
    ) {
        let model = random_model(seed, &dims, &ranks);
        let precision = if f32_storage {
            StoragePrecision::F32
        } else {
            StoragePrecision::F64
        };
        let local = Predictor::new(model.clone()).unwrap();
        let served = Predictor::with_precision(model, precision).unwrap();
        let path = sock("point");
        let handle = serve(&path, served, ServeOptions::default()).unwrap();
        let mut client = handle.connect().unwrap();

        // Every corner plus a pseudo-random interior walk.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let mut flat = Vec::new();
        for _ in 0..8 {
            for &d in &dims {
                flat.push(rng.gen_range(0..d));
            }
        }
        for &d in &dims {
            flat.push(d - 1);
        }
        let values = client.point_batch(&flat).unwrap();
        for (q, entry) in flat.chunks_exact(dims.len()).enumerate() {
            let want = local.predict(entry);
            prop_assert_eq!(
                values[q].to_bits(),
                want.to_bits(),
                "entry {:?}: served {} vs local {}",
                entry,
                values[q],
                want
            );
        }
        handle.shutdown().unwrap();
    }

    #[test]
    fn topk_matches_brute_force(
        seed in 0..u64::MAX,
        (dims, ranks) in shape(),
        mode_pick in 0..64usize,
        k_pick in 0..64usize,
    ) {
        let model = random_model(seed, &dims, &ranks);
        let order = dims.len();
        let mode = mode_pick % order;
        // K sweeps past the row count: k ∈ {0 … rows+4}.
        let k = k_pick % (dims[mode] + 5);
        let local = Predictor::new(model.clone()).unwrap();
        let path = sock("topk");
        let handle = serve(
            &path,
            Predictor::new(model).unwrap(),
            ServeOptions::default(),
        )
        .unwrap();
        let mut client = handle.connect().unwrap();

        let mut rng = StdRng::seed_from_u64(seed ^ 0x70_9b);
        let others: Vec<usize> = (0..order)
            .filter(|&n| n != mode)
            .map(|n| rng.gen_range(0..dims[n]))
            .collect();
        let got = client.top_k(mode, &others, k).unwrap();
        let kk = k.min(dims[mode]);
        prop_assert_eq!(got.len(), kk);

        // The served ranking must be exactly the documented kernel path…
        let mut delta = vec![0.0; ranks[mode]];
        let mut scores = vec![0.0; dims[mode]];
        let others_u32: Vec<u32> = others.iter().map(|&i| i as u32).collect();
        local.scores_into(&others_u32, mode, &mut delta, &mut scores);
        let mut want = Vec::new();
        top_k_select(&scores, kk, &mut want);
        prop_assert_eq!(&got, &want, "served top-K diverges from the scoring kernel");

        // …and agree with an exhaustive reconstruct-and-sort up to the
        // dot-order tolerance: every unserved row must score no better
        // than the worst served row.
        let mut exhaustive: Vec<(usize, f64)> = (0..dims[mode])
            .map(|i| {
                let mut index = vec![0usize; order];
                let mut slot = 0;
                for (n, cell) in index.iter_mut().enumerate() {
                    if n == mode {
                        *cell = i;
                    } else {
                        *cell = others[slot];
                        slot += 1;
                    }
                }
                (i, local.predict(&index))
            })
            .collect();
        exhaustive.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let tol = 1e-9;
        for &(row, score) in &got {
            let full = exhaustive.iter().find(|&&(i, _)| i == row as usize).unwrap().1;
            prop_assert!(
                (score - full).abs() <= tol * (1.0 + full.abs()),
                "row {} served score {} vs reconstruction {}",
                row,
                score,
                full
            );
        }
        if kk > 0 && kk < dims[mode] {
            let worst_served = got.last().unwrap().1;
            let served_rows: Vec<u32> = got.iter().map(|&(r, _)| r).collect();
            for &(i, s) in &exhaustive {
                if !served_rows.contains(&(i as u32)) {
                    prop_assert!(
                        s <= worst_served + tol * (1.0 + s.abs()),
                        "unserved row {} reconstructs to {} > worst served {}",
                        i,
                        s,
                        worst_served
                    );
                }
            }
        }
        handle.shutdown().unwrap();
    }
}

/// Ties break by ascending row index, deterministically — proved on a
/// model whose scores are exact small integers.
#[test]
fn topk_ties_break_by_ascending_row() {
    // Rank-1 everywhere: score(i) = a⁰(i,0) · (core · a¹(ctx,0)).
    // With core = 1 and a¹ ≡ 1, score(i) is exactly the mode-0 factor
    // entry — integers, so ties are exact.
    let factors = vec![
        Matrix::from_vec(5, 1, vec![2.0, 5.0, 5.0, 1.0, 5.0]).unwrap(),
        Matrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]).unwrap(),
    ];
    let core = CoreTensor::dense_from_fn(vec![1, 1], |_| 1.0).unwrap();
    let model = TuckerDecomposition { factors, core };
    let path = sock("ties");
    let handle = serve(
        &path,
        Predictor::new(model).unwrap(),
        ServeOptions::default(),
    )
    .unwrap();
    let mut client = handle.connect().unwrap();
    let got = client.top_k(0, &[2], 4).unwrap();
    assert_eq!(got, vec![(1, 5.0), (2, 5.0), (4, 5.0), (0, 2.0)]);
    // K beyond the rows returns every row, still deterministically.
    let all = client.top_k(0, &[0], 100).unwrap();
    assert_eq!(all, vec![(1, 5.0), (2, 5.0), (4, 5.0), (0, 2.0), (3, 1.0)]);
    handle.shutdown().unwrap();
}
