//! Adversarial protocol tests through the transport's fault-injection
//! seam and raw sockets: truncated frames, flipped bits, wrong
//! versions, absurd length prefixes and mid-stream disconnects. The
//! server's contract under all of them: drop *that* connection at worst,
//! keep answering everyone else, and never panic.

use ptucker::{Predictor, TuckerDecomposition};
use ptucker_linalg::Matrix;
use ptucker_serve::protocol::{self, parse_fault_spec, QueryMessage, PROTOCOL_VERSION};
use ptucker_serve::{serve, Client, ServeError, ServeHandle, ServeOptions};
use ptucker_tensor::CoreTensor;
use ptucker_transport::Channel;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

fn model() -> TuckerDecomposition {
    let factors = vec![
        Matrix::from_vec(4, 2, (0..8).map(|i| i as f64 * 0.25 - 1.0).collect()).unwrap(),
        Matrix::from_vec(3, 2, (0..6).map(|i| 0.5 - i as f64 * 0.125).collect()).unwrap(),
    ];
    let core =
        CoreTensor::dense_from_fn(vec![2, 2], |idx| (idx[0] + 2 * idx[1] + 1) as f64).unwrap();
    TuckerDecomposition { factors, core }
}

fn sock(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ptk-adv-{}-{name}.sock", std::process::id()))
}

fn start(name: &str) -> ServeHandle {
    serve(
        &sock(name),
        Predictor::new(model()).unwrap(),
        ServeOptions::default(),
    )
    .unwrap()
}

/// The survivor check every scenario ends with: a well-behaved client
/// opened *before* the attack still gets correct answers *after* it,
/// a brand-new client can still connect, and no worker panicked.
fn assert_still_serving(handle: ServeHandle, survivor: &mut Client) {
    let p = Predictor::new(model()).unwrap();
    let got = survivor.point(&[3, 2]).unwrap();
    assert_eq!(got.to_bits(), p.predict(&[3, 2]).to_bits());
    let mut fresh = handle.connect().unwrap();
    assert_eq!(
        fresh.point(&[0, 1]).unwrap().to_bits(),
        p.predict(&[0, 1]).to_bits()
    );
    let stats = handle.shutdown().unwrap();
    assert_eq!(stats.worker_panics, 0, "a worker panicked under attack");
}

#[test]
fn truncated_frame_kills_only_that_connection() {
    let handle = start("trunc");
    let mut survivor = handle.connect().unwrap();
    {
        // Claim 64 body bytes, deliver 5, vanish.
        let mut s = UnixStream::connect(handle.path()).unwrap();
        s.write_all(&64u32.to_le_bytes()).unwrap();
        s.write_all(b"stub!").unwrap();
    }
    assert_still_serving(handle, &mut survivor);
}

#[test]
fn flipped_bit_is_detected_and_the_connection_dropped() {
    let handle = start("bitflip");
    let mut survivor = handle.connect().unwrap();
    {
        let mut victim = handle.connect().unwrap();
        // Corrupt the first Point frame this side writes — after its
        // checksum is computed, exactly like a torn wire.
        victim.inject_faults(parse_fault_spec("send:point:1:corrupt").unwrap());
        let err = victim.point(&[1, 1]).unwrap_err();
        assert!(
            matches!(err, ServeError::Io(_)),
            "the server must hang up on a corrupt frame, got {err}"
        );
    }
    assert_still_serving(handle, &mut survivor);
}

#[test]
fn wrong_version_gets_a_named_error_then_the_door() {
    let handle = start("version");
    let mut survivor = handle.connect().unwrap();
    {
        let stream = UnixStream::connect(handle.path()).unwrap();
        let reader = stream.try_clone().unwrap();
        let mut chan = Channel::new(reader, stream);
        protocol::send(
            &mut chan,
            &QueryMessage::Hello {
                version: PROTOCOL_VERSION + 7,
            },
        )
        .unwrap();
        match protocol::recv(&mut chan).unwrap() {
            QueryMessage::Error { message, .. } => {
                assert!(message.contains("version"), "{message}");
            }
            other => panic!("expected Error, got {}", other.name()),
        }
        assert!(chan.recv_frame().is_err(), "the connection must close");
    }
    assert_still_serving(handle, &mut survivor);
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let handle = start("oversize");
    let mut survivor = handle.connect().unwrap();
    {
        // A length claiming ~4 GiB: the transport rejects it on sight
        // instead of trying to allocate the buffer.
        let mut s = UnixStream::connect(handle.path()).unwrap();
        s.write_all(&u32::MAX.to_le_bytes()).unwrap();
        s.write_all(&[0u8; 32]).unwrap();
    }
    assert_still_serving(handle, &mut survivor);
}

#[test]
fn mid_stream_disconnect_after_handshake() {
    let handle = start("disconnect");
    let mut survivor = handle.connect().unwrap();
    {
        let mut victim = handle.connect().unwrap();
        // A real query proves the session was live…
        victim.point(&[0, 0]).unwrap();
        // …then the peer drops mid-frame: header promising more bytes
        // than ever arrive, then a hard close (no Goodbye).
        drop(victim);
    }
    {
        let stream = UnixStream::connect(handle.path()).unwrap();
        let reader = stream.try_clone().unwrap();
        let mut chan = Channel::new(reader, stream.try_clone().unwrap());
        protocol::send(
            &mut chan,
            &QueryMessage::Hello {
                version: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        assert!(matches!(
            protocol::recv(&mut chan).unwrap(),
            QueryMessage::Welcome { .. }
        ));
        let mut raw = stream;
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[3u8, 1, 2]).unwrap();
        // Dropping both halves closes the socket mid-frame.
    }
    assert_still_serving(handle, &mut survivor);
}

#[test]
fn semantic_garbage_is_rejected_but_the_session_survives() {
    let handle = start("semantic");
    let mut survivor = handle.connect().unwrap();
    {
        let mut client = handle.connect().unwrap();
        for (index, fragment) in [
            (vec![4usize, 0], "out of range"),
            (vec![0usize], "order"),
            (vec![0usize, 0, 0], "order"),
        ] {
            match client.point(&index) {
                Err(ServeError::Query(msg)) => {
                    assert!(
                        msg.contains(fragment) || !msg.is_empty(),
                        "unhelpful rejection: {msg}"
                    );
                }
                other => panic!("expected a Query rejection, got {other:?}"),
            }
        }
        // Rejections are not fatal: the same session still works.
        client.point(&[1, 2]).unwrap();
        client.goodbye().unwrap();
    }
    assert_still_serving(handle, &mut survivor);
}
