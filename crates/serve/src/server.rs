//! The query server: listener → per-connection workers → snapshot slot.
//!
//! [`serve`] binds a Unix socket and returns a [`ServeHandle`]. A
//! non-blocking listener thread accepts connections and hands each to a
//! worker thread (tracked by a [`ptucker_sched::ThreadSet`], so panics
//! are contained and counted). Each worker owns one `QueryScratch` —
//! every buffer a query needs, reused across requests — which is what
//! keeps the steady-state query path **allocation-free**: frames land in
//! a reused payload buffer ([`Channel::recv_frame_into`]), requests are
//! decoded into reused index buffers, the δ/score/top-K compute runs
//! entirely in caller-owned slices through [`ptucker::Predictor`], and
//! replies are encoded into a reused output buffer.
//!
//! # Snapshot publish
//!
//! The live model is an `Arc<Predictor>` in a mutex-guarded slot next to
//! an atomic **epoch**. [`ServeHandle::publish`] swaps the slot and bumps
//! the epoch under the mutex; workers keep a local clone of the `Arc`
//! and re-read the slot only when they observe an epoch change — so the
//! steady state takes no lock and the slot mutex is touched once per
//! publish per worker. A worker answers every request from whichever
//! snapshot it holds when the request arrives: old model or new model,
//! never a mix, and every reply names the epoch it was answered from.
//!
//! # Failure policy
//!
//! * Semantic rejections (bad arity, out-of-range index, unknown mode)
//!   get an `Error` reply; the connection stays open.
//! * A corrupt frame (checksum mismatch) or torn stream closes that one
//!   connection; other clients are unaffected.
//! * A version-mismatch `Hello` gets an `Error` reply, then the
//!   connection closes.
//! * Worker panics are absorbed by the thread set and surface in
//!   [`ServeStats::worker_panics`]; the listener keeps accepting.

use crate::protocol::{
    self, decode_point_into, decode_topk_into, encode_error_into, encode_point_reply_into,
    encode_topk_reply_into, encode_welcome_into, PROTOCOL_VERSION, TAG_ERROR, TAG_GOODBYE,
    TAG_HELLO, TAG_INFO, TAG_POINT, TAG_POINT_REPLY, TAG_TOPK, TAG_TOPK_REPLY, TAG_WELCOME,
};
use crate::{Client, Result, ServeError};
use ptucker::Predictor;
use ptucker_linalg::kernels::top_k_select;
use ptucker_sched::ThreadSet;
use ptucker_transport::Channel;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Poll interval for the accept loop and for each worker's read
    /// timeout — the upper bound on how long shutdown takes to observe.
    pub poll: Duration,
    /// Fault-injection spec installed on every accepted connection's
    /// transport (see [`protocol::parse_fault_spec`]); test/chaos
    /// tooling only. `None` in production.
    pub fault: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            poll: Duration::from_millis(25),
            fault: None,
        }
    }
}

/// A snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// `Point` requests answered (batches, not entries).
    pub point_requests: u64,
    /// `TopK` requests answered (batches, not contexts).
    pub topk_requests: u64,
    /// `Info` requests answered.
    pub info_requests: u64,
    /// `Error` replies sent (semantic rejections and bad handshakes).
    pub error_replies: u64,
    /// Models published, the initial one included.
    pub publishes: u64,
    /// Worker threads that panicked (always `0` unless a kernel
    /// invariant was violated; the server keeps serving regardless).
    pub worker_panics: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    point_requests: AtomicU64,
    topk_requests: AtomicU64,
    info_requests: AtomicU64,
    error_replies: AtomicU64,
    publishes: AtomicU64,
    worker_panics: AtomicU64,
}

/// State shared by the handle, the listener and every worker.
#[derive(Debug)]
struct Shared {
    /// The live model. Swapped whole under the mutex; workers hold local
    /// `Arc` clones and only touch the mutex on an epoch change.
    slot: Mutex<Arc<Predictor>>,
    /// Bumped (under the slot mutex) by every publish; read lock-free by
    /// workers to detect that their local snapshot is stale.
    epoch: AtomicU64,
    stop: AtomicBool,
    stats: Counters,
}

impl Shared {
    /// A consistent `(model, epoch)` pair — both read under the slot
    /// mutex, so a concurrent publish is seen entirely or not at all.
    fn snapshot(&self) -> (Arc<Predictor>, u64) {
        let g = self.slot.lock().expect("snapshot slot");
        let p = Arc::clone(&g);
        let e = self.epoch.load(Ordering::Acquire);
        (p, e)
    }
}

/// Handle to a running server: publish refits, read stats, shut down.
/// Dropping the handle shuts the server down and joins its threads.
#[derive(Debug)]
pub struct ServeHandle {
    shared: Arc<Shared>,
    threads: Option<ThreadSet>,
    path: PathBuf,
}

/// Starts serving `predictor` on a Unix socket at `path` (any stale
/// socket file there is replaced). Returns immediately; queries are
/// answered on background threads until [`ServeHandle::shutdown`] (or
/// drop).
///
/// # Errors
/// Socket binding failures, or a malformed `fault` spec in `opts`.
pub fn serve(path: &Path, predictor: Predictor, opts: ServeOptions) -> Result<ServeHandle> {
    if let Some(spec) = &opts.fault {
        protocol::parse_fault_spec(spec).map_err(ServeError::Protocol)?;
    }
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared {
        slot: Mutex::new(Arc::new(predictor)),
        epoch: AtomicU64::new(1),
        stop: AtomicBool::new(false),
        stats: Counters::default(),
    });
    shared.stats.publishes.fetch_add(1, Ordering::Relaxed);
    let mut threads = ThreadSet::new();
    {
        let shared = Arc::clone(&shared);
        threads.spawn(move || listen(listener, shared, opts));
    }
    Ok(ServeHandle {
        shared,
        threads: Some(threads),
        path: path.to_path_buf(),
    })
}

impl ServeHandle {
    /// The socket path clients connect to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Opens a new in-process client session against this server.
    ///
    /// # Errors
    /// Connection or handshake failures.
    pub fn connect(&self) -> Result<Client> {
        Client::connect(&self.path)
    }

    /// The current snapshot epoch (starts at 1 for the model passed to
    /// [`serve`]).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Publishes a refit model: every request that arrives after this
    /// returns is answered from `predictor` (requests in flight finish
    /// on the snapshot they started with). Returns the new epoch.
    pub fn publish(&self, predictor: Predictor) -> u64 {
        let next = Arc::new(predictor);
        let mut g = self.shared.slot.lock().expect("publish slot");
        *g = next;
        let e = self.shared.epoch.load(Ordering::Relaxed) + 1;
        self.shared.epoch.store(e, Ordering::Release);
        drop(g);
        self.shared.stats.publishes.fetch_add(1, Ordering::Relaxed);
        e
    }

    /// A point-in-time snapshot of the server's counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.stats;
        ServeStats {
            connections: c.connections.load(Ordering::Relaxed),
            point_requests: c.point_requests.load(Ordering::Relaxed),
            topk_requests: c.topk_requests.load(Ordering::Relaxed),
            info_requests: c.info_requests.load(Ordering::Relaxed),
            error_replies: c.error_replies.load(Ordering::Relaxed),
            publishes: c.publishes.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, drains every worker, removes the socket file and
    /// returns the final counters.
    ///
    /// # Errors
    /// None today; the signature reserves the right.
    pub fn shutdown(mut self) -> Result<ServeStats> {
        self.stop_and_join();
        Ok(self.stats())
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(threads) = self.threads.take() {
            let panics = threads.join_all();
            self.shared
                .stats
                .worker_panics
                .fetch_add(panics as u64, Ordering::Relaxed);
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn listen(listener: UnixListener, shared: Arc<Shared>, opts: ServeOptions) {
    let mut workers = ThreadSet::new();
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&shared);
                let opts = opts.clone();
                workers.spawn(move || connection(stream, &shared, &opts));
                workers.reap();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                workers.reap();
                std::thread::sleep(opts.poll);
            }
            Err(_) => break,
        }
    }
    let panics = workers.join_all();
    shared
        .stats
        .worker_panics
        .fetch_add(panics as u64, Ordering::Relaxed);
}

/// One client session: handshake, then answer queries until the peer
/// says goodbye, disconnects, corrupts the stream, or the server stops.
fn connection(stream: UnixStream, shared: &Shared, opts: &ServeOptions) {
    let reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut chan = Channel::new(reader, stream);
    if chan.set_read_timeout(Some(opts.poll)).is_err() {
        return;
    }
    if let Some(spec) = &opts.fault {
        // Validated in `serve`; a fresh injector per connection so each
        // session sees the full rule table.
        if let Ok(inj) = protocol::parse_fault_spec(spec) {
            chan.inject_faults(inj);
        }
    }
    let mut scratch = QueryScratch::default();
    let (mut predictor, mut epoch) = shared.snapshot();
    scratch.rebind(&predictor);

    // Handshake: the first frame must be a compatible Hello.
    match recv_polling(&mut chan, &mut scratch.payload, shared) {
        Some(TAG_HELLO) => {
            let version = scratch
                .payload
                .get(..4)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4B")));
            if version != Some(PROTOCOL_VERSION) {
                shared.stats.error_replies.fetch_add(1, Ordering::Relaxed);
                encode_error_into(
                    &mut scratch.out,
                    0,
                    &format!(
                        "protocol version mismatch (server speaks {PROTOCOL_VERSION}, client sent {version:?})"
                    ),
                );
                let _ = chan.send_frame(TAG_ERROR, &scratch.out);
                return;
            }
            encode_welcome_into(
                &mut scratch.out,
                PROTOCOL_VERSION,
                epoch,
                &scratch.dims,
                &scratch.ranks,
                predictor.precision(),
            );
            if chan.send_frame(TAG_WELCOME, &scratch.out).is_err() {
                return;
            }
        }
        Some(_) => {
            shared.stats.error_replies.fetch_add(1, Ordering::Relaxed);
            encode_error_into(&mut scratch.out, 0, "expected Hello to open the session");
            let _ = chan.send_frame(TAG_ERROR, &scratch.out);
            return;
        }
        None => return,
    }

    loop {
        let tag = match recv_polling(&mut chan, &mut scratch.payload, shared) {
            Some(tag) => tag,
            None => return,
        };
        // Refresh the snapshot if a publish happened since the last
        // request — the only time a worker touches the slot mutex.
        if shared.epoch.load(Ordering::Acquire) != epoch {
            let (p, e) = shared.snapshot();
            predictor = p;
            epoch = e;
            scratch.rebind(&predictor);
        }
        match answer(&predictor, epoch, tag, &mut scratch) {
            Outcome::Reply(reply_tag) => {
                count_reply(shared, tag, reply_tag);
                if chan.send_frame(reply_tag, &scratch.out).is_err() {
                    return;
                }
            }
            Outcome::FinalReply(reply_tag) => {
                count_reply(shared, tag, reply_tag);
                let _ = chan.send_frame(reply_tag, &scratch.out);
                return;
            }
            Outcome::Close => return,
        }
    }
}

fn count_reply(shared: &Shared, request_tag: u8, reply_tag: u8) {
    let c = &shared.stats;
    if reply_tag == TAG_ERROR {
        c.error_replies.fetch_add(1, Ordering::Relaxed);
        return;
    }
    match request_tag {
        TAG_POINT => c.point_requests.fetch_add(1, Ordering::Relaxed),
        TAG_TOPK => c.topk_requests.fetch_add(1, Ordering::Relaxed),
        TAG_INFO => c.info_requests.fetch_add(1, Ordering::Relaxed),
        _ => 0,
    };
}

/// Receives one frame into `payload`, treating read timeouts as "check
/// the stop flag and keep waiting". `None` means the session is over:
/// the peer closed or corrupted the stream, or the server is stopping.
fn recv_polling<R: io::Read, W: io::Write>(
    chan: &mut Channel<R, W>,
    payload: &mut Vec<u8>,
    shared: &Shared,
) -> Option<u8> {
    loop {
        match chan.recv_frame_into(payload) {
            Ok(tag) => return Some(tag),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stop.load(Ordering::Acquire) {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

/// Per-worker scratch arena: every buffer the query path needs, reused
/// across requests so the steady state allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct QueryScratch {
    /// Incoming frame payload ([`Channel::recv_frame_into`] target).
    pub(crate) payload: Vec<u8>,
    /// Outgoing reply payload.
    pub(crate) out: Vec<u8>,
    /// Decoded flat indices of a `Point` batch.
    idx: Vec<u64>,
    /// Decoded flat contexts of a `TopK` batch.
    others: Vec<u64>,
    /// One full entry index, handed to [`Predictor::predict`].
    entry: Vec<usize>,
    /// One context in kernel form, handed to [`Predictor::scores_into`].
    others_u32: Vec<u32>,
    /// δ accumulator (`J_mode`).
    delta: Vec<f64>,
    /// Candidate scores (`I_mode`).
    scores: Vec<f64>,
    /// Point-batch results.
    values: Vec<f64>,
    /// One context's ranked rows.
    topk: Vec<(u32, f64)>,
    /// The whole batch's ranked rows, reply order.
    items: Vec<(u32, f64)>,
    /// Model shape, re-derived on snapshot changes so the hot path
    /// never calls the allocating [`Predictor::dims`]/[`Predictor::ranks`].
    dims: Vec<usize>,
    ranks: Vec<usize>,
}

impl QueryScratch {
    /// Re-derives the cached model shape; called once per snapshot, not
    /// per query.
    fn rebind(&mut self, predictor: &Predictor) {
        self.dims.clear();
        self.dims.extend(predictor.dims());
        self.ranks.clear();
        self.ranks.extend(predictor.ranks());
    }

    /// Capacities of every buffer, for allocation-stability tests.
    #[cfg(test)]
    fn capacities(&self) -> [usize; 13] {
        [
            self.payload.capacity(),
            self.out.capacity(),
            self.idx.capacity(),
            self.others.capacity(),
            self.entry.capacity(),
            self.others_u32.capacity(),
            self.delta.capacity(),
            self.scores.capacity(),
            self.values.capacity(),
            self.topk.capacity(),
            self.items.capacity(),
            self.dims.capacity(),
            self.ranks.capacity(),
        ]
    }
}

/// What the session loop should do with the reply in `scratch.out`.
pub(crate) enum Outcome {
    /// Send it; keep the session open.
    Reply(u8),
    /// Send it; then close (handshake violations, malformed payloads).
    FinalReply(u8),
    /// Close with nothing to send (`Goodbye`).
    Close,
}

/// Answers one already-received request (tag + `scratch.payload`) from
/// `predictor`, encoding the reply into `scratch.out`. Socket-free, so
/// tests can drive the exact production query path without a server.
pub(crate) fn answer(
    predictor: &Predictor,
    epoch: u64,
    tag: u8,
    scratch: &mut QueryScratch,
) -> Outcome {
    match tag {
        TAG_POINT => answer_point(predictor, epoch, scratch),
        TAG_TOPK => answer_topk(predictor, epoch, scratch),
        TAG_INFO => {
            if scratch.payload.len() != 8 {
                encode_error_into(&mut scratch.out, 0, "malformed Info payload");
                return Outcome::FinalReply(TAG_ERROR);
            }
            encode_welcome_into(
                &mut scratch.out,
                PROTOCOL_VERSION,
                epoch,
                &scratch.dims,
                &scratch.ranks,
                predictor.precision(),
            );
            Outcome::Reply(TAG_WELCOME)
        }
        TAG_GOODBYE => Outcome::Close,
        TAG_HELLO => {
            encode_error_into(&mut scratch.out, 0, "unexpected Hello mid-session");
            Outcome::Reply(TAG_ERROR)
        }
        t => {
            encode_error_into(&mut scratch.out, 0, &format!("unsupported request tag {t}"));
            Outcome::Reply(TAG_ERROR)
        }
    }
}

fn answer_point(predictor: &Predictor, epoch: u64, scratch: &mut QueryScratch) -> Outcome {
    let id = match decode_point_into(&scratch.payload, &mut scratch.idx) {
        Ok(id) => id,
        Err(e) => {
            encode_error_into(&mut scratch.out, 0, &format!("malformed Point: {e}"));
            return Outcome::FinalReply(TAG_ERROR);
        }
    };
    let order = scratch.dims.len();
    if !scratch.idx.len().is_multiple_of(order) {
        encode_error_into(
            &mut scratch.out,
            id,
            &format!(
                "point batch of {} coordinates is not a multiple of the order {order}",
                scratch.idx.len()
            ),
        );
        return Outcome::Reply(TAG_ERROR);
    }
    scratch.values.clear();
    for entry in scratch.idx.chunks_exact(order) {
        scratch.entry.clear();
        for (n, &raw) in entry.iter().enumerate() {
            match usize::try_from(raw).ok().filter(|&i| i < scratch.dims[n]) {
                Some(i) => scratch.entry.push(i),
                None => {
                    encode_error_into(
                        &mut scratch.out,
                        id,
                        &format!(
                            "index {raw} out of range for mode {n} (dim {})",
                            scratch.dims[n]
                        ),
                    );
                    return Outcome::Reply(TAG_ERROR);
                }
            }
        }
        scratch.values.push(predictor.predict(&scratch.entry));
    }
    encode_point_reply_into(&mut scratch.out, id, epoch, &scratch.values);
    Outcome::Reply(TAG_POINT_REPLY)
}

fn answer_topk(predictor: &Predictor, epoch: u64, scratch: &mut QueryScratch) -> Outcome {
    let h = match decode_topk_into(&scratch.payload, &mut scratch.others) {
        Ok(h) => h,
        Err(e) => {
            encode_error_into(&mut scratch.out, 0, &format!("malformed TopK: {e}"));
            return Outcome::FinalReply(TAG_ERROR);
        }
    };
    let order = scratch.dims.len();
    let mode = h.mode as usize;
    if mode >= order {
        encode_error_into(
            &mut scratch.out,
            h.id,
            &format!("mode {mode} out of range for an order-{order} model"),
        );
        return Outcome::Reply(TAG_ERROR);
    }
    let per_query = order - 1;
    if scratch.others.len() != h.queries as usize * per_query {
        encode_error_into(
            &mut scratch.out,
            h.id,
            &format!(
                "{} context coordinates do not match {} queries of {per_query}",
                scratch.others.len(),
                h.queries
            ),
        );
        return Outcome::Reply(TAG_ERROR);
    }
    let kk = (h.k as usize).min(scratch.dims[mode]);
    scratch.delta.clear();
    scratch.delta.resize(scratch.ranks[mode], 0.0);
    scratch.scores.clear();
    scratch.scores.resize(scratch.dims[mode], 0.0);
    scratch.items.clear();
    for q in 0..h.queries as usize {
        scratch.others_u32.clear();
        let ctx = &scratch.others[q * per_query..(q + 1) * per_query];
        for (slot, n) in (0..order).filter(|&n| n != mode).enumerate() {
            let raw = ctx[slot];
            match u32::try_from(raw)
                .ok()
                .filter(|&i| (i as usize) < scratch.dims[n])
            {
                Some(i) => scratch.others_u32.push(i),
                None => {
                    encode_error_into(
                        &mut scratch.out,
                        h.id,
                        &format!(
                            "context index {raw} out of range for mode {n} (dim {})",
                            scratch.dims[n]
                        ),
                    );
                    return Outcome::Reply(TAG_ERROR);
                }
            }
        }
        predictor.scores_into(
            &scratch.others_u32,
            mode,
            &mut scratch.delta,
            &mut scratch.scores,
        );
        top_k_select(&scratch.scores, kk, &mut scratch.topk);
        scratch.items.extend_from_slice(&scratch.topk);
    }
    encode_topk_reply_into(&mut scratch.out, h.id, epoch, kk as u32, &scratch.items);
    Outcome::Reply(TAG_TOPK_REPLY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::QueryMessage;
    use ptucker::TuckerDecomposition;
    use ptucker_linalg::Matrix;
    use ptucker_tensor::CoreTensor;

    fn model(dims: &[usize], ranks: &[usize], seed: u64) -> TuckerDecomposition {
        // Deterministic pseudo-random values without an RNG dependency.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let factors = dims
            .iter()
            .zip(ranks)
            .map(|(&i_n, &j_n)| {
                Matrix::from_vec(i_n, j_n, (0..i_n * j_n).map(|_| next()).collect()).unwrap()
            })
            .collect();
        let core = CoreTensor::dense_from_fn(ranks.to_vec(), |_| next()).unwrap();
        TuckerDecomposition { factors, core }
    }

    fn predictor(dims: &[usize], ranks: &[usize], seed: u64) -> Predictor {
        Predictor::new(model(dims, ranks, seed)).unwrap()
    }

    fn load_request(scratch: &mut QueryScratch, msg: &QueryMessage) -> u8 {
        let (tag, payload) = msg.encode();
        scratch.payload.clear();
        scratch.payload.extend_from_slice(&payload);
        tag
    }

    fn sock(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ptk-serve-{}-{name}.sock", std::process::id()))
    }

    #[test]
    fn the_query_hot_path_reuses_its_scratch() {
        let p = predictor(&[40, 30, 20], &[4, 3, 2], 17);
        let mut scratch = QueryScratch::default();
        scratch.rebind(&p);
        let point = QueryMessage::Point {
            id: 1,
            indices: vec![3, 2, 1, 39, 29, 19, 0, 0, 0],
        };
        let topk = QueryMessage::TopK {
            id: 2,
            mode: 0,
            k: 10,
            queries: 2,
            others: vec![5, 5, 12, 19],
        };
        // Warm up once, then the capacities must never move again.
        for msg in [&point, &topk] {
            let tag = load_request(&mut scratch, msg);
            assert!(matches!(
                answer(&p, 1, tag, &mut scratch),
                Outcome::Reply(_)
            ));
        }
        let caps = scratch.capacities();
        for _ in 0..64 {
            for msg in [&point, &topk] {
                let tag = load_request(&mut scratch, msg);
                assert!(matches!(
                    answer(&p, 1, tag, &mut scratch),
                    Outcome::Reply(_)
                ));
            }
            assert_eq!(
                scratch.capacities(),
                caps,
                "a warm query grew a scratch buffer"
            );
        }
    }

    #[test]
    fn answer_point_matches_the_predictor_bitwise() {
        let p = predictor(&[9, 7, 5], &[3, 2, 2], 23);
        let mut scratch = QueryScratch::default();
        scratch.rebind(&p);
        let tag = load_request(
            &mut scratch,
            &QueryMessage::Point {
                id: 77,
                indices: vec![8, 6, 4, 0, 3, 2],
            },
        );
        match answer(&p, 9, tag, &mut scratch) {
            Outcome::Reply(TAG_POINT_REPLY) => {}
            _ => panic!("expected a point reply"),
        }
        let reply = QueryMessage::decode(&ptucker_transport::Frame {
            tag: TAG_POINT_REPLY,
            payload: scratch.out.clone(),
        })
        .unwrap();
        match reply {
            QueryMessage::PointReply { id, epoch, values } => {
                assert_eq!((id, epoch), (77, 9));
                assert_eq!(values.len(), 2);
                assert_eq!(values[0].to_bits(), p.predict(&[8, 6, 4]).to_bits());
                assert_eq!(values[1].to_bits(), p.predict(&[0, 3, 2]).to_bits());
            }
            other => panic!("unexpected {}", other.name()),
        }
    }

    #[test]
    fn semantic_rejections_keep_the_session_answerable() {
        let p = predictor(&[6, 4], &[2, 2], 31);
        let mut scratch = QueryScratch::default();
        scratch.rebind(&p);
        for bad in [
            QueryMessage::Point {
                id: 1,
                indices: vec![1, 2, 3], // arity
            },
            QueryMessage::Point {
                id: 2,
                indices: vec![6, 0], // out of range
            },
            QueryMessage::TopK {
                id: 3,
                mode: 5, // unknown mode
                k: 2,
                queries: 1,
                others: vec![0],
            },
            QueryMessage::TopK {
                id: 4,
                mode: 0,
                k: 2,
                queries: 3, // count/arity mismatch
                others: vec![0],
            },
        ] {
            let tag = load_request(&mut scratch, &bad);
            match answer(&p, 1, tag, &mut scratch) {
                Outcome::Reply(TAG_ERROR) => {}
                _ => panic!("expected a recoverable Error reply for {}", bad.name()),
            }
        }
        // The same scratch still answers a good query.
        let tag = load_request(
            &mut scratch,
            &QueryMessage::Point {
                id: 5,
                indices: vec![0, 0],
            },
        );
        assert!(matches!(
            answer(&p, 1, tag, &mut scratch),
            Outcome::Reply(TAG_POINT_REPLY)
        ));
    }

    #[test]
    fn k_larger_than_the_mode_is_clamped() {
        let p = predictor(&[5, 3], &[2, 2], 41);
        let mut scratch = QueryScratch::default();
        scratch.rebind(&p);
        let tag = load_request(
            &mut scratch,
            &QueryMessage::TopK {
                id: 6,
                mode: 0,
                k: 1000,
                queries: 1,
                others: vec![2],
            },
        );
        assert!(matches!(
            answer(&p, 1, tag, &mut scratch),
            Outcome::Reply(TAG_TOPK_REPLY)
        ));
        match QueryMessage::decode(&ptucker_transport::Frame {
            tag: TAG_TOPK_REPLY,
            payload: scratch.out.clone(),
        })
        .unwrap()
        {
            QueryMessage::TopKReply { k, items, .. } => {
                assert_eq!(k, 5);
                assert_eq!(items.len(), 5);
            }
            other => panic!("unexpected {}", other.name()),
        }
    }

    #[test]
    fn end_to_end_over_the_socket() {
        let path = sock("e2e");
        let p = predictor(&[12, 8, 6], &[3, 2, 2], 47);
        let handle = serve(&path, p.clone(), ServeOptions::default()).unwrap();
        let mut client = handle.connect().unwrap();
        assert_eq!(client.dims(), &[12, 8, 6]);
        assert_eq!(client.epoch(), 1);

        let got = client.point(&[11, 7, 5]).unwrap();
        assert_eq!(got.to_bits(), p.predict(&[11, 7, 5]).to_bits());

        let top = client.top_k(1, &[3, 2], 3).unwrap();
        assert_eq!(top.len(), 3);
        // Verify against a local exhaustive ranking.
        let mut delta = vec![0.0; 2];
        let mut scores = vec![0.0; 8];
        p.scores_into(&[3, 2], 1, &mut delta, &mut scores);
        let mut want = Vec::new();
        top_k_select(&scores, 3, &mut want);
        assert_eq!(top, want);

        // A semantic rejection leaves the session usable.
        assert!(matches!(
            client.point(&[99, 0, 0]),
            Err(ServeError::Query(_))
        ));
        assert!(client.point(&[0, 0, 0]).is_ok());

        client.goodbye().unwrap();
        let stats = handle.shutdown().unwrap();
        assert_eq!(stats.connections, 1);
        assert!(stats.point_requests >= 2);
        assert_eq!(stats.topk_requests, 1);
        assert_eq!(stats.error_replies, 1);
        assert_eq!(stats.worker_panics, 0);
        assert!(!path.exists(), "shutdown removes the socket file");
    }

    #[test]
    fn publish_switches_the_served_model_and_epoch() {
        let path = sock("publish");
        let a = predictor(&[5, 4], &[2, 2], 53);
        let b = predictor(&[5, 4], &[2, 2], 59);
        let handle = serve(&path, a.clone(), ServeOptions::default()).unwrap();
        let mut client = handle.connect().unwrap();
        assert_eq!(
            client.point(&[1, 1]).unwrap().to_bits(),
            a.predict(&[1, 1]).to_bits()
        );
        assert_eq!(client.epoch(), 1);
        assert_eq!(handle.publish(b.clone()), 2);
        assert_eq!(
            client.point(&[1, 1]).unwrap().to_bits(),
            b.predict(&[1, 1]).to_bits()
        );
        assert_eq!(client.epoch(), 2);
        handle.shutdown().unwrap();
    }

    #[test]
    fn version_mismatch_is_rejected_then_closed() {
        let path = sock("version");
        let handle = serve(
            &path,
            predictor(&[3, 3], &[2, 2], 61),
            ServeOptions::default(),
        )
        .unwrap();
        let stream = UnixStream::connect(&path).unwrap();
        let reader = stream.try_clone().unwrap();
        let mut chan = Channel::new(reader, stream);
        protocol::send(
            &mut chan,
            &QueryMessage::Hello {
                version: PROTOCOL_VERSION + 1,
            },
        )
        .unwrap();
        match protocol::recv(&mut chan).unwrap() {
            QueryMessage::Error { message, .. } => {
                assert!(message.contains("version"), "{message}");
            }
            other => panic!("unexpected {}", other.name()),
        }
        // The server closed its side: the next read hits EOF.
        assert!(chan.recv_frame().is_err());
        handle.shutdown().unwrap();
    }
}
