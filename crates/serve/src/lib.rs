//! Factor-serving read path for fitted P-Tucker models.
//!
//! The fit engine produces a [`ptucker::TuckerDecomposition`]; this crate
//! turns one into a live query service. Three layers, mirroring the
//! sharded-fit stack it shares its wire layer with:
//!
//! * **framing** — [`ptucker_transport`]: length-prefixed, checksummed
//!   frames over a Unix socket, with byte accounting and the
//!   fault-injection seam;
//! * **messages** — [`protocol`]: the nine-message query family
//!   (`Hello`/`Welcome` handshake, batched `Point` and `TopK` requests
//!   with their replies, `Info`, `Goodbye`, `Error`);
//! * **service** — [`server`]: a listener that accepts Unix-socket (and
//!   in-process thread) clients and answers queries from per-connection
//!   worker threads, each owning a scratch arena so the steady-state
//!   query path performs **zero heap allocation**; [`client`]: the
//!   matching blocking client.
//!
//! Refits publish a new model through
//! [`ServeHandle::publish`](server::ServeHandle::publish): an
//! epoch-stamped snapshot swap that in-flight queries observe atomically
//! — a reader sees the old model or the new one, never a mix — without
//! taking a lock on the steady-state query path.
//!
//! ```no_run
//! use ptucker::{Predictor, TuckerDecomposition};
//! use ptucker_serve::{serve, Client, ServeOptions};
//! use std::path::Path;
//!
//! let model = TuckerDecomposition::load(Path::new("model.ptm"))?;
//! let handle = serve(
//!     Path::new("/tmp/ptucker.sock"),
//!     Predictor::new(model)?,
//!     ServeOptions::default(),
//! )?;
//! let mut client = Client::connect(Path::new("/tmp/ptucker.sock"))?;
//! let value = client.point(&[3, 1, 4])?;
//! let top = client.top_k(0, &[1, 4], 10)?;
//! # let _ = (value, top);
//! handle.shutdown()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::{QueryMessage, PROTOCOL_VERSION};
pub use server::{serve, ServeHandle, ServeOptions, ServeStats};

/// Errors produced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// A transport-level failure: socket I/O, a torn or corrupt frame,
    /// or a peer that disconnected mid-stream.
    Io(std::io::Error),
    /// A decodable frame whose body violates the query protocol —
    /// unknown tag, malformed payload, or a version mismatch.
    Protocol(String),
    /// A semantic rejection reported by the server as an `Error` reply
    /// (bad index arity, out-of-range coordinate, unknown mode, …). The
    /// connection stays usable after one of these.
    Query(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve transport failure: {e}"),
            ServeError::Protocol(msg) => write!(f, "serve protocol violation: {msg}"),
            ServeError::Query(msg) => write!(f, "query rejected: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Protocol(_) | ServeError::Query(_) => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
