//! The query message family and its wire encoding.
//!
//! Nine messages run a query session:
//!
//! | message      | direction | payload                                           |
//! |--------------|-----------|---------------------------------------------------|
//! | `Hello`      | c → s     | protocol version                                  |
//! | `Welcome`    | s → c     | version, snapshot epoch, dims, ranks, precision   |
//! | `Point`      | c → s     | request id, batch of full indices (flat, `N` each)|
//! | `PointReply` | s → c     | id, epoch, one reconstruction per batch entry     |
//! | `TopK`       | c → s     | id, mode, `K`, batch of contexts (flat, `N−1` each)|
//! | `TopKReply`  | s → c     | id, epoch, effective `K`, `(row, score)` items    |
//! | `Info`       | c → s     | request id (answered with a fresh `Welcome`)      |
//! | `Goodbye`    | c → s     | clean end of the session                          |
//! | `Error`      | s → c     | id of the rejected request, human-readable reason |
//!
//! Sessions open with `Hello`/`Welcome` (version check plus the model's
//! shape), then any number of `Point`/`TopK`/`Info` requests, each
//! answered in order by its reply — or by `Error`, which echoes the
//! request id and leaves the connection usable. `Goodbye` ends the
//! session. Every reply carries the snapshot **epoch** it was answered
//! from, so a client interleaving queries with refit publishes can tell
//! which model version produced each answer.
//!
//! Everything is little-endian with `usize` widened to `u64`; `f64`
//! values travel as raw bits, which is what makes a served point query
//! bitwise-comparable to a local reconstruction. Decoders bound every
//! length prefix by the bytes actually present, so corrupt frames decode
//! to an error — never a panic or a huge allocation.
//!
//! The server's hot path never materializes a [`QueryMessage`]: the
//! `*_into` helpers in this module decode requests into reusable
//! buffers and encode replies into a reusable output vector, keeping the
//! steady state allocation-free. The enum codec (used by clients and
//! tests) shares those helpers, so the two views of the wire format
//! cannot drift apart.

use crate::{Result, ServeError};
use ptucker::StoragePrecision;
use ptucker_transport::{Channel, FaultInjector, Frame};
use std::io::{Read, Write};

/// Version of the query protocol; `Hello`/`Welcome` both carry it and a
/// mismatch is rejected with an `Error` reply before any query runs.
pub const PROTOCOL_VERSION: u32 = 1;

// Frame tags. Kept dense and explicit — the wire format is a contract.
pub(crate) const TAG_HELLO: u8 = 1;
pub(crate) const TAG_WELCOME: u8 = 2;
pub(crate) const TAG_POINT: u8 = 3;
pub(crate) const TAG_POINT_REPLY: u8 = 4;
pub(crate) const TAG_TOPK: u8 = 5;
pub(crate) const TAG_TOPK_REPLY: u8 = 6;
pub(crate) const TAG_INFO: u8 = 7;
pub(crate) const TAG_GOODBYE: u8 = 8;
pub(crate) const TAG_ERROR: u8 = 9;

/// One query-protocol message. See the [module docs](self) for the
/// session flow.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryMessage {
    /// Session opener: the client's protocol version.
    Hello {
        /// [`PROTOCOL_VERSION`] of the client.
        version: u32,
    },
    /// Handshake reply (and the answer to [`QueryMessage::Info`]): the
    /// served model's shape and the current snapshot epoch.
    Welcome {
        /// [`PROTOCOL_VERSION`] of the server.
        version: u32,
        /// Snapshot epoch of the model answering this session right now.
        epoch: u64,
        /// Tensor dimensionalities `I₁ … I_N`.
        dims: Vec<u64>,
        /// Tucker ranks `J₁ … J_N`.
        ranks: Vec<u64>,
        /// Storage precision of the scoring sweep.
        precision: StoragePrecision,
    },
    /// A batch of point-reconstruction queries: `indices` holds the full
    /// `N`-ary index of each entry, flattened in query order.
    Point {
        /// Client-chosen request id, echoed in the reply.
        id: u64,
        /// Flat indices, `N` per query.
        indices: Vec<u64>,
    },
    /// One reconstruction per entry of the matching [`QueryMessage::Point`].
    PointReply {
        /// Echo of the request id.
        id: u64,
        /// Snapshot epoch the batch was answered from.
        epoch: u64,
        /// `x̂` per query, in request order (raw-bits exact).
        values: Vec<f64>,
    },
    /// A batch of top-K queries over one mode: each context fixes the
    /// other `N−1` coordinates (ascending mode order, `mode` skipped).
    TopK {
        /// Client-chosen request id, echoed in the reply.
        id: u64,
        /// The mode whose rows are ranked.
        mode: u32,
        /// Requested K (the server clamps it to the mode's row count).
        k: u32,
        /// Number of contexts in the batch (explicit so order-1 tensors
        /// still carry a well-defined batch size).
        queries: u32,
        /// Flat contexts, `N−1` coordinates per query.
        others: Vec<u64>,
    },
    /// The ranked rows for each context of the matching
    /// [`QueryMessage::TopK`], concatenated in request order.
    TopKReply {
        /// Echo of the request id.
        id: u64,
        /// Snapshot epoch the batch was answered from.
        epoch: u64,
        /// Effective K: `min(requested K, I_mode)` — each context
        /// contributed exactly this many items.
        k: u32,
        /// `(row, score)` pairs: descending score, ascending row on
        /// ties; `k` consecutive items per context.
        items: Vec<(u32, f64)>,
    },
    /// Asks for a fresh [`QueryMessage::Welcome`] — how a long-lived
    /// client observes publishes without issuing a query.
    Info {
        /// Client-chosen request id (the `Welcome` reply carries no id;
        /// replies are strictly in request order).
        id: u64,
    },
    /// Clean end of the session.
    Goodbye,
    /// A rejected request: semantic problems (bad arity, out-of-range
    /// index, unknown mode) keep the connection open; a version-mismatch
    /// `Hello` gets one of these and then the connection closes.
    Error {
        /// Id of the rejected request (`0` during the handshake).
        id: u64,
        /// Human-readable reason.
        message: String,
    },
}

/// Parses a transport fault spec (see
/// [`FaultInjector::parse_with`] for the grammar) bound to the query
/// message vocabulary: `hello`, `welcome`, `point`, `pointreply`,
/// `topk`, `topkreply`, `info`, `goodbye`, `error`, or `any`.
///
/// # Errors
/// A description of the first malformed rule.
pub fn parse_fault_spec(spec: &str) -> std::result::Result<FaultInjector, String> {
    FaultInjector::parse_with(spec, tag_by_name)
}

/// Maps a lowercase message name to its frame tag — the vocabulary of
/// [`parse_fault_spec`] specs.
pub(crate) fn tag_by_name(name: &str) -> Option<u8> {
    Some(match name {
        "hello" => TAG_HELLO,
        "welcome" => TAG_WELCOME,
        "point" => TAG_POINT,
        "pointreply" => TAG_POINT_REPLY,
        "topk" => TAG_TOPK,
        "topkreply" => TAG_TOPK_REPLY,
        "info" => TAG_INFO,
        "goodbye" => TAG_GOODBYE,
        "error" => TAG_ERROR,
        _ => return None,
    })
}

// ---- little-endian primitives over a reusable output buffer ----

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Little-endian cursor over a received payload; every getter checks
/// bounds so truncated or mis-tagged payloads decode to an error, never
/// a panic.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ServeError::Protocol("truncated payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    /// A length prefix for `elem_bytes`-wide elements, guarded against
    /// the bytes actually present so a corrupt count cannot force a huge
    /// allocation.
    fn len(&mut self, elem_bytes: usize) -> Result<usize> {
        let n = usize::try_from(self.u64()?)
            .map_err(|_| ServeError::Protocol("count exceeds usize".into()))?;
        if n > (self.buf.len() - self.pos) / elem_bytes.max(1) {
            return Err(ServeError::Protocol("count overruns payload".into()));
        }
        Ok(n)
    }

    fn u64_list_into(&mut self, out: &mut Vec<u64>) -> Result<()> {
        let n = self.len(8)?;
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(())
    }

    fn finish(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ServeError::Protocol("trailing bytes in payload".into()))
        }
    }
}

// ---- allocation-free server-side request/reply helpers ----
//
// Each helper is one half of the enum codec below; the enum delegates to
// them so the fast path and the spec-level representation stay in
// lockstep.

/// Header of a decoded [`QueryMessage::TopK`] request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TopKHeader {
    pub id: u64,
    pub mode: u32,
    pub k: u32,
    pub queries: u32,
}

pub(crate) fn encode_hello_into(out: &mut Vec<u8>, version: u32) {
    out.clear();
    put_u32(out, version);
}

pub(crate) fn encode_welcome_into(
    out: &mut Vec<u8>,
    version: u32,
    epoch: u64,
    dims: &[usize],
    ranks: &[usize],
    precision: StoragePrecision,
) {
    out.clear();
    put_u32(out, version);
    put_u64(out, epoch);
    put_u8(
        out,
        match precision {
            StoragePrecision::F64 => 0,
            StoragePrecision::F32 => 1,
        },
    );
    put_u64(out, dims.len() as u64);
    for &d in dims {
        put_u64(out, d as u64);
    }
    put_u64(out, ranks.len() as u64);
    for &r in ranks {
        put_u64(out, r as u64);
    }
}

pub(crate) fn encode_point_into(out: &mut Vec<u8>, id: u64, indices: &[u64]) {
    out.clear();
    put_u64(out, id);
    put_u64(out, indices.len() as u64);
    for &i in indices {
        put_u64(out, i);
    }
}

/// Decodes a `Point` payload: indices land in `indices` (cleared and
/// reused), the request id is returned.
pub(crate) fn decode_point_into(payload: &[u8], indices: &mut Vec<u64>) -> Result<u64> {
    let mut d = Dec::new(payload);
    let id = d.u64()?;
    d.u64_list_into(indices)?;
    d.finish()?;
    Ok(id)
}

pub(crate) fn encode_point_reply_into(out: &mut Vec<u8>, id: u64, epoch: u64, values: &[f64]) {
    out.clear();
    put_u64(out, id);
    put_u64(out, epoch);
    put_u64(out, values.len() as u64);
    for &v in values {
        put_f64(out, v);
    }
}

pub(crate) fn encode_topk_into(out: &mut Vec<u8>, h: TopKHeader, others: &[u64]) {
    out.clear();
    put_u64(out, h.id);
    put_u32(out, h.mode);
    put_u32(out, h.k);
    put_u32(out, h.queries);
    put_u64(out, others.len() as u64);
    for &i in others {
        put_u64(out, i);
    }
}

/// Decodes a `TopK` payload: contexts land in `others` (cleared and
/// reused), the header is returned.
pub(crate) fn decode_topk_into(payload: &[u8], others: &mut Vec<u64>) -> Result<TopKHeader> {
    let mut d = Dec::new(payload);
    let h = TopKHeader {
        id: d.u64()?,
        mode: d.u32()?,
        k: d.u32()?,
        queries: d.u32()?,
    };
    d.u64_list_into(others)?;
    d.finish()?;
    Ok(h)
}

pub(crate) fn encode_topk_reply_into(
    out: &mut Vec<u8>,
    id: u64,
    epoch: u64,
    k: u32,
    items: &[(u32, f64)],
) {
    out.clear();
    put_u64(out, id);
    put_u64(out, epoch);
    put_u32(out, k);
    put_u64(out, items.len() as u64);
    for &(row, score) in items {
        put_u32(out, row);
        put_f64(out, score);
    }
}

pub(crate) fn encode_info_into(out: &mut Vec<u8>, id: u64) {
    out.clear();
    put_u64(out, id);
}

pub(crate) fn encode_error_into(out: &mut Vec<u8>, id: u64, message: &str) {
    out.clear();
    put_u64(out, id);
    put_u64(out, message.len() as u64);
    out.extend_from_slice(message.as_bytes());
}

impl QueryMessage {
    /// Encodes into `(tag, payload)` for the framed transport.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut out = Vec::new();
        let tag = self.encode_into(&mut out);
        (tag, out)
    }

    /// Encodes into a reusable buffer (cleared first); returns the tag.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> u8 {
        match self {
            QueryMessage::Hello { version } => {
                encode_hello_into(out, *version);
                TAG_HELLO
            }
            QueryMessage::Welcome {
                version,
                epoch,
                dims,
                ranks,
                precision,
            } => {
                // encode_welcome_into takes the Predictor's usize shape
                // slices; the enum stores the wire's u64 view, so this
                // arm writes the same layout directly.
                out.clear();
                put_u32(out, *version);
                put_u64(out, *epoch);
                put_u8(
                    out,
                    match precision {
                        StoragePrecision::F64 => 0,
                        StoragePrecision::F32 => 1,
                    },
                );
                put_u64(out, dims.len() as u64);
                for &d in dims {
                    put_u64(out, d);
                }
                put_u64(out, ranks.len() as u64);
                for &r in ranks {
                    put_u64(out, r);
                }
                TAG_WELCOME
            }
            QueryMessage::Point { id, indices } => {
                encode_point_into(out, *id, indices);
                TAG_POINT
            }
            QueryMessage::PointReply { id, epoch, values } => {
                encode_point_reply_into(out, *id, *epoch, values);
                TAG_POINT_REPLY
            }
            QueryMessage::TopK {
                id,
                mode,
                k,
                queries,
                others,
            } => {
                encode_topk_into(
                    out,
                    TopKHeader {
                        id: *id,
                        mode: *mode,
                        k: *k,
                        queries: *queries,
                    },
                    others,
                );
                TAG_TOPK
            }
            QueryMessage::TopKReply {
                id,
                epoch,
                k,
                items,
            } => {
                encode_topk_reply_into(out, *id, *epoch, *k, items);
                TAG_TOPK_REPLY
            }
            QueryMessage::Info { id } => {
                encode_info_into(out, *id);
                TAG_INFO
            }
            QueryMessage::Goodbye => {
                out.clear();
                TAG_GOODBYE
            }
            QueryMessage::Error { id, message } => {
                encode_error_into(out, *id, message);
                TAG_ERROR
            }
        }
    }

    /// Decodes a verified [`Frame`] back into a message.
    ///
    /// # Errors
    /// [`ServeError::Protocol`] on an unknown tag or malformed payload.
    pub fn decode(frame: &Frame) -> Result<QueryMessage> {
        let mut d = Dec::new(&frame.payload);
        let msg = match frame.tag {
            TAG_HELLO => QueryMessage::Hello { version: d.u32()? },
            TAG_WELCOME => {
                let version = d.u32()?;
                let epoch = d.u64()?;
                let precision = match d.u8()? {
                    0 => StoragePrecision::F64,
                    1 => StoragePrecision::F32,
                    t => return Err(ServeError::Protocol(format!("bad precision tag {t}"))),
                };
                let mut dims = Vec::new();
                d.u64_list_into(&mut dims)?;
                let mut ranks = Vec::new();
                d.u64_list_into(&mut ranks)?;
                QueryMessage::Welcome {
                    version,
                    epoch,
                    dims,
                    ranks,
                    precision,
                }
            }
            TAG_POINT => {
                let mut indices = Vec::new();
                let id = decode_point_into(&frame.payload, &mut indices)?;
                return Ok(QueryMessage::Point { id, indices });
            }
            TAG_POINT_REPLY => {
                let id = d.u64()?;
                let epoch = d.u64()?;
                let n = d.len(8)?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(d.f64()?);
                }
                QueryMessage::PointReply { id, epoch, values }
            }
            TAG_TOPK => {
                let mut others = Vec::new();
                let h = decode_topk_into(&frame.payload, &mut others)?;
                return Ok(QueryMessage::TopK {
                    id: h.id,
                    mode: h.mode,
                    k: h.k,
                    queries: h.queries,
                    others,
                });
            }
            TAG_TOPK_REPLY => {
                let id = d.u64()?;
                let epoch = d.u64()?;
                let k = d.u32()?;
                let n = d.len(12)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let row = d.u32()?;
                    let score = d.f64()?;
                    items.push((row, score));
                }
                QueryMessage::TopKReply {
                    id,
                    epoch,
                    k,
                    items,
                }
            }
            TAG_INFO => QueryMessage::Info { id: d.u64()? },
            TAG_GOODBYE => QueryMessage::Goodbye,
            TAG_ERROR => {
                let id = d.u64()?;
                let n = d.len(1)?;
                let message = String::from_utf8(d.take(n)?.to_vec())
                    .map_err(|_| ServeError::Protocol("error message is not UTF-8".into()))?;
                QueryMessage::Error { id, message }
            }
            t => return Err(ServeError::Protocol(format!("unknown frame tag {t}"))),
        };
        d.finish()?;
        Ok(msg)
    }

    /// The message's name, for error reporting.
    pub fn name(&self) -> &'static str {
        match self {
            QueryMessage::Hello { .. } => "Hello",
            QueryMessage::Welcome { .. } => "Welcome",
            QueryMessage::Point { .. } => "Point",
            QueryMessage::PointReply { .. } => "PointReply",
            QueryMessage::TopK { .. } => "TopK",
            QueryMessage::TopKReply { .. } => "TopKReply",
            QueryMessage::Info { .. } => "Info",
            QueryMessage::Goodbye => "Goodbye",
            QueryMessage::Error { .. } => "Error",
        }
    }
}

/// Sends one message over a framed channel.
///
/// # Errors
/// Transport I/O failures ([`ServeError::Io`]).
pub fn send<R: Read, W: Write>(chan: &mut Channel<R, W>, msg: &QueryMessage) -> Result<()> {
    let (tag, payload) = msg.encode();
    chan.send_frame(tag, &payload)?;
    Ok(())
}

/// Receives and decodes one message.
///
/// # Errors
/// Transport I/O failures or a malformed frame.
pub fn recv<R: Read, W: Write>(chan: &mut Channel<R, W>) -> Result<QueryMessage> {
    QueryMessage::decode(&chan.recv_frame()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &QueryMessage) {
        let (tag, payload) = msg.encode();
        let back = QueryMessage::decode(&Frame { tag, payload }).unwrap();
        assert_eq!(&back, msg);
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip(&QueryMessage::Hello {
            version: PROTOCOL_VERSION,
        });
        roundtrip(&QueryMessage::Welcome {
            version: PROTOCOL_VERSION,
            epoch: 7,
            dims: vec![100, 80, 60],
            ranks: vec![10, 10, 5],
            precision: StoragePrecision::F32,
        });
        roundtrip(&QueryMessage::Point {
            id: 42,
            indices: vec![3, 1, 4, 1, 5, 9],
        });
        roundtrip(&QueryMessage::PointReply {
            id: 42,
            epoch: 7,
            values: vec![0.25, -1.5],
        });
        roundtrip(&QueryMessage::TopK {
            id: 43,
            mode: 1,
            k: 10,
            queries: 2,
            others: vec![3, 4, 1, 5],
        });
        roundtrip(&QueryMessage::TopKReply {
            id: 43,
            epoch: 7,
            k: 2,
            items: vec![(5, 1.25), (0, 0.5), (9, 9.0), (1, 3.0)],
        });
        roundtrip(&QueryMessage::Info { id: 44 });
        roundtrip(&QueryMessage::Goodbye);
        roundtrip(&QueryMessage::Error {
            id: 45,
            message: "mode 9 out of range".into(),
        });
    }

    #[test]
    fn in_place_helpers_agree_with_the_enum_codec() {
        // Requests: enum encode → in-place decode.
        let (_, payload) = QueryMessage::Point {
            id: 5,
            indices: vec![9, 8, 7],
        }
        .encode();
        let mut idx = vec![99u64; 32];
        assert_eq!(decode_point_into(&payload, &mut idx).unwrap(), 5);
        assert_eq!(idx, vec![9, 8, 7]);

        let (_, payload) = QueryMessage::TopK {
            id: 6,
            mode: 2,
            k: 3,
            queries: 1,
            others: vec![4, 2],
        }
        .encode();
        let mut others = Vec::new();
        let h = decode_topk_into(&payload, &mut others).unwrap();
        assert_eq!(
            h,
            TopKHeader {
                id: 6,
                mode: 2,
                k: 3,
                queries: 1
            }
        );
        assert_eq!(others, vec![4, 2]);

        // Replies: in-place encode → enum decode.
        let mut out = Vec::new();
        encode_point_reply_into(&mut out, 5, 2, &[1.5, -0.25]);
        let back = QueryMessage::decode(&Frame {
            tag: TAG_POINT_REPLY,
            payload: out.clone(),
        })
        .unwrap();
        assert_eq!(
            back,
            QueryMessage::PointReply {
                id: 5,
                epoch: 2,
                values: vec![1.5, -0.25],
            }
        );

        encode_topk_reply_into(&mut out, 6, 2, 2, &[(1, 9.0), (0, 3.0)]);
        let back = QueryMessage::decode(&Frame {
            tag: TAG_TOPK_REPLY,
            payload: out.clone(),
        })
        .unwrap();
        assert_eq!(
            back,
            QueryMessage::TopKReply {
                id: 6,
                epoch: 2,
                k: 2,
                items: vec![(1, 9.0), (0, 3.0)],
            }
        );

        encode_welcome_into(
            &mut out,
            PROTOCOL_VERSION,
            3,
            &[10, 20],
            &[2, 4],
            StoragePrecision::F64,
        );
        let back = QueryMessage::decode(&Frame {
            tag: TAG_WELCOME,
            payload: out.clone(),
        })
        .unwrap();
        assert_eq!(
            back,
            QueryMessage::Welcome {
                version: PROTOCOL_VERSION,
                epoch: 3,
                dims: vec![10, 20],
                ranks: vec![2, 4],
                precision: StoragePrecision::F64,
            }
        );

        encode_error_into(&mut out, 7, "nope");
        let back = QueryMessage::decode(&Frame {
            tag: TAG_ERROR,
            payload: out.clone(),
        })
        .unwrap();
        assert_eq!(
            back,
            QueryMessage::Error {
                id: 7,
                message: "nope".into(),
            }
        );

        // And the enum's Hello arm is the helper.
        let mut hello = Vec::new();
        encode_hello_into(&mut hello, PROTOCOL_VERSION);
        assert_eq!(
            QueryMessage::Hello {
                version: PROTOCOL_VERSION
            }
            .encode()
            .1,
            hello
        );
    }

    #[test]
    fn bad_tags_truncation_and_inflated_counts_error() {
        assert!(QueryMessage::decode(&Frame {
            tag: 99,
            payload: vec![],
        })
        .is_err());

        let (tag, payload) = QueryMessage::Point {
            id: 1,
            indices: vec![2, 3],
        }
        .encode();
        assert!(QueryMessage::decode(&Frame {
            tag,
            payload: payload[..payload.len() - 1].to_vec(),
        })
        .is_err());

        // A corrupt count must not force a huge allocation.
        let (tag, mut payload) = QueryMessage::PointReply {
            id: 1,
            epoch: 0,
            values: vec![1.0],
        }
        .encode();
        payload[21] = 0xff; // inflate the count prefix
        assert!(QueryMessage::decode(&Frame { tag, payload }).is_err());

        // Trailing bytes are a defect, not padding.
        let (tag, mut payload) = QueryMessage::Info { id: 2 }.encode();
        payload.push(0);
        assert!(QueryMessage::decode(&Frame { tag, payload }).is_err());
    }

    #[test]
    fn fault_specs_bind_the_query_vocabulary() {
        assert!(parse_fault_spec("send:point:1:drop").is_ok());
        assert!(parse_fault_spec("recv:topkreply:2:corrupt; send:any:1:delay:10").is_ok());
        assert!(parse_fault_spec("send:rows:1:drop").is_err(), "shard name");
        assert!(parse_fault_spec("send:point:0:drop").is_err());
    }
}
