//! The blocking query client.
//!
//! [`Client::connect`] opens a session (Unix socket + `Hello`/`Welcome`
//! handshake) and caches the served model's shape; the query methods
//! then map one-to-one onto the protocol's request messages. Replies
//! are matched to requests by id; an `Error` reply surfaces as
//! [`ServeError::Query`] and leaves the session usable, exactly
//! mirroring the server's failure policy.

use crate::protocol::{self, QueryMessage, PROTOCOL_VERSION};
use crate::{Result, ServeError};
use ptucker::StoragePrecision;
use ptucker_transport::{ByteCounters, Channel, FaultInjector};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One query session against a [`crate::server`] instance.
#[derive(Debug)]
pub struct Client {
    chan: Channel<UnixStream, UnixStream>,
    next_id: u64,
    epoch: u64,
    dims: Vec<usize>,
    ranks: Vec<usize>,
    precision: StoragePrecision,
}

impl Client {
    /// Connects to the server socket at `path` and performs the
    /// `Hello`/`Welcome` handshake.
    ///
    /// # Errors
    /// Connection failures, a version mismatch, or a handshake that the
    /// server rejected.
    pub fn connect(path: &Path) -> Result<Self> {
        let stream = UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        let mut chan = Channel::new(reader, stream);
        protocol::send(
            &mut chan,
            &QueryMessage::Hello {
                version: PROTOCOL_VERSION,
            },
        )?;
        match protocol::recv(&mut chan)? {
            QueryMessage::Welcome {
                version,
                epoch,
                dims,
                ranks,
                precision,
            } => {
                if version != PROTOCOL_VERSION {
                    return Err(ServeError::Protocol(format!(
                        "server speaks protocol {version}, this client speaks {PROTOCOL_VERSION}"
                    )));
                }
                Ok(Client {
                    chan,
                    next_id: 1,
                    epoch,
                    dims: dims.iter().map(|&d| d as usize).collect(),
                    ranks: ranks.iter().map(|&r| r as usize).collect(),
                    precision,
                })
            }
            QueryMessage::Error { message, .. } => Err(ServeError::Query(message)),
            other => Err(ServeError::Protocol(format!(
                "expected Welcome, got {}",
                other.name()
            ))),
        }
    }

    /// Tensor dimensionalities of the served model (as of the last
    /// `Welcome`; refresh with [`Client::info`]).
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Tucker ranks of the served model.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Tensor order `N`.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Storage precision of the server's scoring sweep.
    pub fn precision(&self) -> StoragePrecision {
        self.precision
    }

    /// Snapshot epoch of the most recent reply — how a caller detects
    /// that a refit was published between two queries.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Shared handles to the session's sent/received byte totals.
    pub fn counters(&self) -> ByteCounters {
        self.chan.counters()
    }

    /// Installs transport fault injection on this session (adversarial
    /// tests; see [`protocol::parse_fault_spec`] for spec strings).
    pub fn inject_faults(&mut self, faults: FaultInjector) {
        self.chan.inject_faults(faults);
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn request(&mut self, msg: &QueryMessage) -> Result<QueryMessage> {
        protocol::send(&mut self.chan, msg)?;
        match protocol::recv(&mut self.chan)? {
            QueryMessage::Error { message, .. } => Err(ServeError::Query(message)),
            reply => Ok(reply),
        }
    }

    fn check_id(&self, got: u64, want: u64) -> Result<()> {
        if got == want {
            Ok(())
        } else {
            Err(ServeError::Protocol(format!(
                "reply id {got} does not match request id {want}"
            )))
        }
    }

    /// Reconstructs one entry: `x̂(index)`. The result is bitwise the
    /// value [`ptucker::Predictor::predict`] computes locally on the
    /// same snapshot.
    ///
    /// # Errors
    /// Transport failures, or [`ServeError::Query`] if the server
    /// rejects the index.
    pub fn point(&mut self, index: &[usize]) -> Result<f64> {
        let values = self.point_batch(index)?;
        values
            .first()
            .copied()
            .ok_or_else(|| ServeError::Protocol("empty point reply".into()))
    }

    /// Reconstructs a batch of entries: `flat` holds `N` coordinates per
    /// entry, answers arrive in request order.
    ///
    /// # Errors
    /// Transport failures, or [`ServeError::Query`] on a rejected batch
    /// (the whole batch is rejected atomically).
    pub fn point_batch(&mut self, flat: &[usize]) -> Result<Vec<f64>> {
        let id = self.fresh_id();
        let reply = self.request(&QueryMessage::Point {
            id,
            indices: flat.iter().map(|&i| i as u64).collect(),
        })?;
        match reply {
            QueryMessage::PointReply {
                id: rid,
                epoch,
                values,
            } => {
                self.check_id(rid, id)?;
                self.epoch = epoch;
                Ok(values)
            }
            other => Err(ServeError::Protocol(format!(
                "expected PointReply, got {}",
                other.name()
            ))),
        }
    }

    /// Ranks the rows of `mode` for one context (the other `N−1`
    /// coordinates, ascending mode order with `mode` skipped) and
    /// returns the top `k` as `(row, score)` — descending score,
    /// ascending row on ties, clamped to the mode's row count.
    ///
    /// # Errors
    /// Transport failures, or [`ServeError::Query`] on a rejected query.
    pub fn top_k(&mut self, mode: usize, others: &[usize], k: usize) -> Result<Vec<(u32, f64)>> {
        let (_, items) = self.top_k_batch(mode, others, 1, k)?;
        Ok(items)
    }

    /// Ranks the rows of `mode` for `queries` contexts in one request:
    /// `flat_others` holds `N−1` coordinates per context. Returns the
    /// effective K and the concatenated `(row, score)` items — each
    /// context owns the next `K` items in request order.
    ///
    /// # Errors
    /// Transport failures, or [`ServeError::Query`] on a rejected batch.
    pub fn top_k_batch(
        &mut self,
        mode: usize,
        flat_others: &[usize],
        queries: usize,
        k: usize,
    ) -> Result<(usize, Vec<(u32, f64)>)> {
        let id = self.fresh_id();
        let reply = self.request(&QueryMessage::TopK {
            id,
            mode: u32::try_from(mode)
                .map_err(|_| ServeError::Protocol(format!("mode {mode} exceeds u32")))?,
            k: u32::try_from(k).unwrap_or(u32::MAX),
            queries: u32::try_from(queries)
                .map_err(|_| ServeError::Protocol(format!("{queries} queries exceed u32")))?,
            others: flat_others.iter().map(|&i| i as u64).collect(),
        })?;
        match reply {
            QueryMessage::TopKReply {
                id: rid,
                epoch,
                k,
                items,
            } => {
                self.check_id(rid, id)?;
                self.epoch = epoch;
                Ok((k as usize, items))
            }
            other => Err(ServeError::Protocol(format!(
                "expected TopKReply, got {}",
                other.name()
            ))),
        }
    }

    /// Refreshes the cached model shape and epoch from a fresh `Welcome`
    /// and returns the epoch — how a long-lived client observes a
    /// publish without issuing a query.
    ///
    /// # Errors
    /// Transport failures.
    pub fn info(&mut self) -> Result<u64> {
        let id = self.fresh_id();
        match self.request(&QueryMessage::Info { id })? {
            QueryMessage::Welcome {
                epoch,
                dims,
                ranks,
                precision,
                ..
            } => {
                self.epoch = epoch;
                self.dims = dims.iter().map(|&d| d as usize).collect();
                self.ranks = ranks.iter().map(|&r| r as usize).collect();
                self.precision = precision;
                Ok(epoch)
            }
            other => Err(ServeError::Protocol(format!(
                "expected Welcome, got {}",
                other.name()
            ))),
        }
    }

    /// Ends the session cleanly.
    ///
    /// # Errors
    /// Transport failures flushing the goodbye.
    pub fn goodbye(mut self) -> Result<()> {
        protocol::send(&mut self.chan, &QueryMessage::Goodbye)
    }
}
