//! Multi-process sharded P-Tucker fits.
//!
//! A coordinator spawns `K` workers (separate processes over stdio
//! pipes, or in-process threads over a Unix socket pair — both speak the
//! identical byte protocol) and runs the ALS sweep in lockstep with
//! them. Every process holds a full deterministic replica of the fit —
//! same seeded factor/core init, same plans, same replicated error pass
//! — but each worker only *updates* the factor rows it owns
//! (nnz-balanced via [`ptucker_sched::weighted_blocks`]). After each
//! mode the coordinator gathers the owners' rows, concatenates them (the
//! ranges are disjoint, so the merge involves no floating-point
//! arithmetic and is trivially deterministic) and broadcasts the merged
//! factor before the next mode begins. Only `O(I_n·J)` doubles per mode
//! cross the wire — execution-plan windows and `Pres` tiles never do.
//!
//! The result is **bitwise identical** to a single-process
//! [`ptucker::PTucker::fit`] with the same options, for every kernel
//! variant and for resident and spilled placements alike.
//!
//! ```no_run
//! use ptucker::FitOptions;
//! use ptucker_shard::{ShardedFit, WorkerSpawn};
//! # fn demo(x: &ptucker_tensor::SparseTensor) -> Result<(), ptucker_shard::ShardError> {
//! // `worker_guard()` first thing in main() makes any binary shardable.
//! ptucker_shard::worker_guard();
//! let sharded = ShardedFit::new(2, WorkerSpawn::CurrentExe);
//! let out = sharded.fit(x, FitOptions::new(vec![4, 4, 4]).seed(7))?;
//! println!("moved {} bytes", out.fit.stats.bytes_sent);
//! # Ok(()) }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod protocol;
pub mod transport;
mod worker;

pub use transport::{fnv1a, ByteCounters, Channel, Frame, PROTOCOL_VERSION};
pub use worker::worker_loop;

use protocol::{Message, PlanMsg, WorkerStatsMsg};
use ptucker::engine::{ApproxKernel, DirectKernel};
use ptucker::sync::FitSync;
use ptucker::FitOptions;
use ptucker::{FitResult, FitStats, PTucker, PtuckerError, Variant};
use ptucker_sched::Background;
use ptucker_tensor::SparseTensor;
use std::fmt;
use std::io;
use std::ops::Range;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;

/// Argument that flips a [`worker_guard`]-instrumented binary into
/// worker mode when the coordinator re-executes itself.
pub const WORKER_ARG: &str = "--ptucker-shard-worker";

/// Anything that can go wrong running a sharded fit.
#[derive(Debug)]
pub enum ShardError {
    /// A transport read/write failed (broken pipe, closed socket, EOF
    /// from a peer that exited early, corrupt frame).
    Io(io::Error),
    /// The byte stream was intact but the conversation was not: version
    /// mismatch, unexpected message, malformed payload, bad shard plan.
    Protocol(String),
    /// The underlying fit failed (on this process or, via the shared
    /// `ok` flag, on a peer).
    Fit(PtuckerError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard transport error: {e}"),
            ShardError::Protocol(msg) => write!(f, "shard protocol error: {msg}"),
            ShardError::Fit(e) => write!(f, "shard fit error: {e}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Io(e) => Some(e),
            ShardError::Protocol(_) => None,
            ShardError::Fit(e) => Some(e),
        }
    }
}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// Runs the worker protocol over this process's stdin/stdout. This is
/// what the `ptucker-shard-worker` binary does, and what
/// [`worker_guard`] dispatches to.
///
/// # Errors
/// Transport/protocol failures or any error of the underlying fit.
pub fn worker_stdio() -> Result<FitResult, ShardError> {
    worker_loop(io::stdin().lock(), io::stdout().lock())
}

/// Call this first thing in `main()` to make a binary usable as a
/// [`WorkerSpawn::CurrentExe`] target: if [`WORKER_ARG`] is present on
/// the command line the process runs the worker protocol on its stdio
/// and exits (status 0 on a clean fit, 1 otherwise); if not, it returns
/// immediately and `main()` proceeds as the coordinator.
pub fn worker_guard() {
    if std::env::args().any(|a| a == WORKER_ARG) {
        match worker_stdio() {
            Ok(_) => std::process::exit(0),
            Err(e) => {
                eprintln!("ptucker-shard worker: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// How the coordinator obtains its `K` workers.
#[derive(Debug, Clone)]
pub enum WorkerSpawn {
    /// Spawn the given binary (e.g. `ptucker-shard-worker`, or any
    /// binary that calls [`worker_guard`]) once per worker, speaking the
    /// protocol over its stdin/stdout. [`WORKER_ARG`] is passed so
    /// guarded binaries enter worker mode.
    Binary(PathBuf),
    /// Re-execute [`std::env::current_exe`] with [`WORKER_ARG`]; the
    /// target must call [`worker_guard`] early in `main()`.
    CurrentExe,
    /// Run workers as in-process threads over Unix socket pairs. Same
    /// byte protocol, same framing, same checksums — only the transport
    /// differs — which makes this the cheap way to property-test the
    /// protocol and to benchmark sharding without process startup noise.
    Threads,
}

/// One request to a worker's background I/O thread. Pairing discipline:
/// every submit is matched by exactly one collect, in order — that is
/// what lets a broadcast overlap the writes to all `K` workers.
enum IoReq {
    Send(Box<Message>),
    Recv,
}

type IoResp = Result<Option<Message>, ShardError>;

/// A connected worker: its framed channel (owned by a
/// [`Background`] I/O thread so sends/recvs to different workers
/// overlap), byte counters, and the process/thread to reap at the end.
struct WorkerHandle {
    id: u32,
    io: Option<Background<IoReq, IoResp>>,
    counters: ByteCounters,
    child: Option<Child>,
    thread: Option<JoinHandle<Result<FitResult, ShardError>>>,
}

impl WorkerHandle {
    fn from_channel<R, W>(id: u32, mut chan: Channel<R, W>) -> Self
    where
        R: io::Read + Send + 'static,
        W: io::Write + Send + 'static,
    {
        let counters = chan.counters();
        let io = Background::spawn(move |req: IoReq| match req {
            IoReq::Send(msg) => protocol::send(&mut chan, &msg).map(|()| None),
            IoReq::Recv => protocol::recv(&mut chan).map(Some),
        });
        WorkerHandle {
            id,
            io: Some(io),
            counters,
            child: None,
            thread: None,
        }
    }

    fn io(&self) -> &Background<IoReq, IoResp> {
        self.io.as_ref().expect("io thread lives until reap")
    }

    fn submit(&self, req: IoReq) -> Result<(), ShardError> {
        self.io()
            .submit(req)
            .map_err(|_| ShardError::Protocol(format!("worker {} I/O thread died", self.id)))
    }

    /// Collects the response to the oldest outstanding submit.
    fn collect(&self) -> Result<Option<Message>, ShardError> {
        self.io()
            .recv()
            .ok_or_else(|| ShardError::Protocol(format!("worker {} I/O thread died", self.id)))?
    }

    /// Collects a response that must be a message (a completed `Recv`).
    fn collect_msg(&self) -> Result<Message, ShardError> {
        self.collect()?.ok_or_else(|| {
            ShardError::Protocol(format!(
                "worker {}: send ack where a message was expected",
                self.id
            ))
        })
    }

    /// Clean shutdown after a successful fit: the worker has already
    /// been sent `Shutdown`, so it is exiting on its own.
    fn reap(&mut self) -> Result<(), ShardError> {
        drop(self.io.take());
        if let Some(mut child) = self.child.take() {
            let status = child.wait()?;
            if !status.success() {
                return Err(ShardError::Protocol(format!(
                    "worker {} exited with {status}",
                    self.id
                )));
            }
        }
        if let Some(t) = self.thread.take() {
            match t.join() {
                Ok(Ok(_)) => {}
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(ShardError::Protocol(format!("worker {} panicked", self.id))),
            }
        }
        Ok(())
    }

    /// Teardown on the error path: kill the process first so the I/O
    /// thread's pending read (if any) unblocks with EOF, then join
    /// everything, ignoring the worker's own (expected) failure.
    fn abort(&mut self) {
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
        }
        drop(self.io.take());
        if let Some(mut child) = self.child.take() {
            let _ = child.wait();
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.abort();
    }
}

/// The coordinator's [`FitSync`]: it owns no rows (its `row_range` is
/// empty, so its sweeps touch no plan windows), merges the workers'
/// rows after every mode, and broadcasts the result.
struct CoordSync<'a> {
    handles: &'a [WorkerHandle],
    /// `ranges[w][m]` — worker `w`'s owned rows of mode `m`.
    ranges: &'a [Vec<Range<usize>>],
    worker_stats: Vec<WorkerStatsMsg>,
}

fn sync_err(e: ShardError) -> PtuckerError {
    PtuckerError::Sync(e.to_string())
}

impl CoordSync<'_> {
    /// Sends `msg` to every worker through the background I/O threads —
    /// the `K` writes overlap — then collects the acks.
    fn broadcast(&self, msg: &Message) -> Result<(), ShardError> {
        for h in self.handles {
            h.submit(IoReq::Send(Box::new(msg.clone())))?;
        }
        for h in self.handles {
            h.collect()?;
        }
        Ok(())
    }
}

impl FitSync for CoordSync<'_> {
    fn begin_mode(&mut self, iter: usize, mode: usize) -> ptucker::Result<()> {
        self.broadcast(&Message::ModeStart {
            iter: iter as u64,
            mode: mode as u32,
        })
        .map_err(sync_err)
    }

    fn row_range(&mut self, _mode: usize, _rows: usize) -> Range<usize> {
        0..0
    }

    fn sync_factor(
        &mut self,
        mode: usize,
        j_n: usize,
        data: &mut [f64],
        local_ok: bool,
    ) -> ptucker::Result<()> {
        // Gather: the recvs were all submitted before any collect, so
        // slow workers overlap; the merge order (worker 0..K) is fixed,
        // and the ranges are disjoint, so the merged factor is
        // deterministic regardless of arrival order.
        for h in self.handles {
            h.submit(IoReq::Recv).map_err(sync_err)?;
        }
        let mut ok = local_ok;
        for (w, h) in self.handles.iter().enumerate() {
            let msg = h.collect_msg().map_err(sync_err)?;
            let rows = match msg {
                Message::Rows(r) => r,
                m => {
                    return Err(sync_err(worker::unexpected("Rows", &m)));
                }
            };
            let expected = &self.ranges[w][mode];
            let (lo, hi) = (rows.lo as usize, rows.hi as usize);
            if rows.mode as usize != mode || lo != expected.start || hi != expected.end {
                return Err(PtuckerError::Sync(format!(
                    "worker {w} sent rows {lo}..{hi} of mode {}, expected {expected:?} of mode {mode}",
                    rows.mode
                )));
            }
            if rows.data.len() != (hi - lo) * j_n || hi * j_n > data.len() {
                return Err(PtuckerError::Sync(format!(
                    "worker {w} sent {} doubles for rows {lo}..{hi} (J={j_n})",
                    rows.data.len()
                )));
            }
            data[lo * j_n..hi * j_n].copy_from_slice(&rows.data);
            ok &= rows.ok;
        }
        self.broadcast(&Message::FactorSync {
            mode: mode as u32,
            ok,
            data: data.to_vec(),
        })
        .map_err(sync_err)?;
        if !ok {
            // Same error a single-process fit returns from its own
            // failed row solve; every worker raises it too.
            return Err(worker::solve_failure());
        }
        Ok(())
    }

    fn finish(&mut self, stats: &mut FitStats) -> ptucker::Result<()> {
        for h in self.handles {
            h.submit(IoReq::Recv).map_err(sync_err)?;
        }
        for h in self.handles {
            match h.collect_msg().map_err(sync_err)? {
                Message::Stats(s) => self.worker_stats.push(s),
                m => return Err(sync_err(worker::unexpected("Stats", &m))),
            }
        }
        self.broadcast(&Message::Shutdown).map_err(sync_err)?;
        stats.bytes_sent = self.handles.iter().map(|h| h.counters.sent()).sum();
        stats.bytes_received = self.handles.iter().map(|h| h.counters.received()).sum();
        Ok(())
    }
}

/// What a sharded fit returns: the fit (bitwise identical to the
/// single-process one, except `FitStats::bytes_sent`/`bytes_received`
/// which report the coordinator's comms volume) plus each worker's
/// share of the work.
#[derive(Debug, Clone)]
pub struct ShardedFitResult {
    /// The fitted model and statistics, from the coordinator's replica.
    pub fit: FitResult,
    /// Per-worker totals, in worker order.
    pub worker_stats: Vec<WorkerStatsMsg>,
}

/// Coordinator for a `K`-worker sharded fit.
#[derive(Debug, Clone)]
pub struct ShardedFit {
    workers: usize,
    spawn: WorkerSpawn,
}

impl ShardedFit {
    /// A coordinator that will run `workers` workers obtained via
    /// `spawn`. `workers` is clamped to at least 1.
    pub fn new(workers: usize, spawn: WorkerSpawn) -> Self {
        ShardedFit {
            workers: workers.max(1),
            spawn,
        }
    }

    /// Runs a sharded fit with nnz-balanced row ownership
    /// ([`nnz_balanced_ranges`]).
    ///
    /// # Errors
    /// Spawn/transport/protocol failures, or the fit error every process
    /// raises identically (e.g. a singular row solve on any shard).
    pub fn fit(&self, x: &SparseTensor, opts: FitOptions) -> Result<ShardedFitResult, ShardError> {
        self.fit_with_ranges(x, opts, nnz_balanced_ranges(x, self.workers))
    }

    /// Like [`ShardedFit::fit`] but with explicit row ownership:
    /// `ranges[w][m]` is worker `w`'s rows of mode `m`. Per mode, the
    /// ranges must tile `0..dims[m]` contiguously in worker order
    /// (empty ranges are fine) — that is what makes the merge a plain
    /// concatenation.
    ///
    /// # Errors
    /// As [`ShardedFit::fit`], plus [`ShardError::Protocol`] on a plan
    /// that does not tile every mode.
    pub fn fit_with_ranges(
        &self,
        x: &SparseTensor,
        opts: FitOptions,
        ranges: Vec<Vec<Range<usize>>>,
    ) -> Result<ShardedFitResult, ShardError> {
        validate_ranges(x, self.workers, &ranges)?;
        let mut handles = Vec::with_capacity(self.workers);
        for id in 0..self.workers as u32 {
            handles.push(self.spawn_worker(id)?);
        }
        // Handshake + plan, per worker. Submitting everything before
        // collecting anything overlaps worker startup and plan builds.
        for (w, h) in handles.iter().enumerate() {
            h.submit(IoReq::Send(Box::new(Message::Hello {
                version: PROTOCOL_VERSION,
                worker_id: h.id,
                workers: self.workers as u32,
            })))?;
            h.submit(IoReq::Recv)?;
            h.submit(IoReq::Send(Box::new(Message::Plan(PlanMsg {
                opts: opts.clone(),
                dims: x.dims().to_vec(),
                indices: x.flat_indices().to_vec(),
                values: x.values().to_vec(),
                ranges: ranges[w].clone(),
            }))))?;
        }
        for h in &handles {
            h.collect()?; // Hello ack
            match h.collect_msg()? {
                Message::Hello {
                    version, worker_id, ..
                } if version == PROTOCOL_VERSION && worker_id == h.id => {}
                Message::Hello { version, .. } => {
                    return Err(ShardError::Protocol(format!(
                        "worker {} answered with protocol version {version}, expected {PROTOCOL_VERSION}",
                        h.id
                    )));
                }
                m => return Err(worker::unexpected("Hello", &m)),
            }
            h.collect()?; // Plan ack
        }

        let solver = PTucker::new(opts.clone()).map_err(ShardError::Fit)?;
        let mut sync = CoordSync {
            handles: &handles,
            ranges: &ranges,
            worker_stats: Vec::new(),
        };
        // The coordinator updates no rows, so the `Pres` cache tables
        // would be pure overhead: drive `Variant::Cache` with the direct
        // kernel. `Approx` keeps its kernel because the per-iteration
        // entry truncation must replicate bit-for-bit everywhere.
        let fit = match opts.variant {
            Variant::Approx { truncation_rate } => {
                solver.fit_with_kernel(x, ApproxKernel::new(truncation_rate), &mut sync)
            }
            Variant::Default | Variant::Cache => solver.fit_with_kernel(x, DirectKernel, &mut sync),
        };
        let worker_stats = std::mem::take(&mut sync.worker_stats);
        drop(sync);
        match fit {
            Ok(fit) => {
                for h in &mut handles {
                    h.reap()?;
                }
                Ok(ShardedFitResult { fit, worker_stats })
            }
            Err(e) => {
                for h in &mut handles {
                    h.abort();
                }
                Err(ShardError::Fit(e))
            }
        }
    }

    fn spawn_worker(&self, id: u32) -> Result<WorkerHandle, ShardError> {
        match &self.spawn {
            WorkerSpawn::Binary(path) => spawn_process(id, path.clone()),
            WorkerSpawn::CurrentExe => spawn_process(id, std::env::current_exe()?),
            WorkerSpawn::Threads => {
                let (coord, side) = UnixStream::pair()?;
                let reader = side.try_clone()?;
                let thread = std::thread::Builder::new()
                    .name(format!("ptucker-shard-worker-{id}"))
                    .spawn(move || worker_loop(reader, side))?;
                let mut h = WorkerHandle::from_channel(id, Channel::new(coord.try_clone()?, coord));
                h.thread = Some(thread);
                Ok(h)
            }
        }
    }
}

fn spawn_process(id: u32, path: PathBuf) -> Result<WorkerHandle, ShardError> {
    let mut child = Command::new(path)
        .arg(WORKER_ARG)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdin = child
        .stdin
        .take()
        .ok_or_else(|| ShardError::Protocol("spawned worker has no stdin".into()))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| ShardError::Protocol("spawned worker has no stdout".into()))?;
    let mut h = WorkerHandle::from_channel(id, Channel::new(stdout, stdin));
    h.child = Some(child);
    Ok(h)
}

/// nnz-balanced row ownership: for every mode, rows are split into `K`
/// contiguous blocks of roughly equal observed-entry count via
/// [`ptucker_sched::weighted_blocks`]. When a mode has fewer rows than
/// workers, the surplus workers own an empty range there.
pub fn nnz_balanced_ranges(x: &SparseTensor, workers: usize) -> Vec<Vec<Range<usize>>> {
    let k = workers.max(1);
    let mut out = vec![Vec::with_capacity(x.order()); k];
    for m in 0..x.order() {
        let dim = x.dims()[m];
        let blocks = ptucker_sched::weighted_blocks(dim, k, |i| x.slice_len(m, i));
        for (w, ranges) in out.iter_mut().enumerate() {
            let r = blocks.get(w).map_or(dim..dim, |&(lo, hi)| lo..hi);
            ranges.push(r);
        }
    }
    out
}

/// Checks that `ranges[w][m]` tiles `0..dims[m]` contiguously in worker
/// order for every mode.
fn validate_ranges(
    x: &SparseTensor,
    workers: usize,
    ranges: &[Vec<Range<usize>>],
) -> Result<(), ShardError> {
    if ranges.len() != workers {
        return Err(ShardError::Protocol(format!(
            "{} range sets for {workers} workers",
            ranges.len()
        )));
    }
    for m in 0..x.order() {
        let dim = x.dims()[m];
        let mut pos = 0usize;
        for (w, rs) in ranges.iter().enumerate() {
            let r = rs.get(m).ok_or_else(|| {
                ShardError::Protocol(format!("worker {w} has no range for mode {m}"))
            })?;
            if r.start != pos || r.end < r.start {
                return Err(ShardError::Protocol(format!(
                    "mode {m}: worker {w} owns {r:?} but the previous worker ended at {pos}"
                )));
            }
            pos = r.end;
        }
        if pos != dim {
            return Err(ShardError::Protocol(format!(
                "mode {m}: ranges cover 0..{pos} of 0..{dim}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptucker_tensor::SparseTensor;

    fn small() -> SparseTensor {
        // 4×3 with lopsided rows: row 0 holds most entries.
        SparseTensor::from_flat(
            vec![4, 3],
            vec![0, 0, 0, 1, 0, 2, 1, 0, 2, 1, 3, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn balanced_ranges_tile_every_mode() {
        let x = small();
        for k in 1..=6 {
            let ranges = nnz_balanced_ranges(&x, k);
            assert_eq!(ranges.len(), k.max(1));
            validate_ranges(&x, k.max(1), &ranges).unwrap();
        }
    }

    #[test]
    fn surplus_workers_get_empty_ranges() {
        let x = small();
        let ranges = nnz_balanced_ranges(&x, 6);
        // Mode 1 has only 3 rows; workers beyond it own nothing there.
        assert!(ranges.iter().filter(|r| r[1].is_empty()).count() >= 3);
        validate_ranges(&x, 6, &ranges).unwrap();
    }

    #[test]
    fn bad_plans_are_rejected() {
        let x = small();
        // Gap.
        let bad = vec![vec![0..1, 0..3], vec![2..4, 3..3]];
        assert!(validate_ranges(&x, 2, &bad).is_err());
        // Short cover.
        let bad = vec![vec![0..1, 0..3], vec![1..3, 3..3]];
        assert!(validate_ranges(&x, 2, &bad).is_err());
        // Wrong worker count.
        assert!(validate_ranges(&x, 2, &[vec![0..4, 0..3]]).is_err());
    }
}
