//! Multi-process sharded P-Tucker fits.
//!
//! A coordinator spawns `K` workers (separate processes over stdio
//! pipes, or in-process threads over a Unix socket pair — both speak the
//! identical byte protocol) and runs the ALS sweep in lockstep with
//! them. Every process holds a full deterministic replica of the fit —
//! same seeded factor/core init, same plans, same replicated error pass
//! — but each worker only *updates* the factor rows it owns
//! (nnz-balanced via [`ptucker_sched::weighted_blocks`]). After each
//! mode the coordinator gathers the owners' rows, concatenates them (the
//! ranges are disjoint, so the merge involves no floating-point
//! arithmetic and is trivially deterministic) and broadcasts the merged
//! factor before the next mode begins. Only `O(I_n·J)` doubles per mode
//! cross the wire — execution-plan windows and `Pres` tiles never do.
//!
//! The result is **bitwise identical** to a single-process
//! [`ptucker::PTucker::fit`] with the same options, for every kernel
//! variant and for resident and spilled placements alike.
//!
//! # Fault tolerance
//!
//! With a [`FaultPolicy`] installed, a worker that dies or hangs
//! mid-fit no longer takes the fit down. Deadlines
//! ([`FaultPolicy::frame_timeout`], probed with heartbeats) distinguish
//! a slow worker from a silent one; a condemned worker's owned rows are
//! re-swept by the coordinator's own replica — with the *same* kernel,
//! schedule and window mechanics as the worker would have used, so the
//! fit stays bitwise identical — and then either permanently
//! reassigned to an adjacent surviving worker
//! ([`Recovery::Reassign`]) or handed back to a respawned replacement
//! seeded from an in-memory checkpoint ([`Recovery::Respawn`]). If
//! neither works, the coordinator simply keeps the rows: graceful
//! degradation, never a wrong answer.
//!
//! Checkpoint–resume rides the same machinery: with
//! [`ptucker::FitOptions::checkpoint_path`] set, the coordinator
//! persists [`ptucker::FitCheckpoint`]s at the configured cadence, and
//! [`ptucker::FitOptions::resume_from`] continues an interrupted
//! sharded fit bitwise (workers receive the checkpoint bytes in their
//! plan).
//!
//! ```no_run
//! use ptucker::FitOptions;
//! use ptucker_shard::{FaultPolicy, ShardedFit, WorkerSpawn};
//! # fn demo(x: &ptucker_tensor::SparseTensor) -> Result<(), ptucker_shard::ShardError> {
//! // `worker_guard()` first thing in main() makes any binary shardable.
//! ptucker_shard::worker_guard();
//! let sharded = ShardedFit::new(2, WorkerSpawn::CurrentExe)
//!     .fault_policy(FaultPolicy::default());
//! let out = sharded.fit(x, FitOptions::new(vec![4, 4, 4]).seed(7))?;
//! println!("moved {} bytes", out.fit.stats.bytes_sent);
//! # Ok(()) }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod protocol;
pub mod transport;
mod worker;

pub use transport::{
    fnv1a, ByteCounters, Channel, FaultAction, FaultInjector, FaultPoint, FaultRule, Frame,
    PROTOCOL_VERSION,
};
pub use worker::worker_loop;

use protocol::{Message, PlanMsg, RowsMsg, WorkerStatsMsg};
use ptucker::engine::{ApproxKernel, DirectKernel};
use ptucker::sync::FitSync;
use ptucker::{FitCheckpoint, FitOptions};
use ptucker::{FitResult, FitStats, PTucker, PtuckerError, Variant};
use ptucker_sched::{Background, RecvTimeout};
use ptucker_tensor::SparseTensor;
use std::fmt;
use std::io;
use std::ops::Range;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;
use std::time::Duration;

/// Argument that flips a [`worker_guard`]-instrumented binary into
/// worker mode when the coordinator re-executes itself.
pub const WORKER_ARG: &str = "--ptucker-shard-worker";

/// Which step of the coordinator↔worker conversation an error occurred
/// in — carried by [`ShardError::Worker`] and [`ShardError::Timeout`]
/// so a failure names its protocol phase, not just its byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPhase {
    /// Launching the worker process/thread.
    Spawn,
    /// The version handshake.
    Hello,
    /// Shipping the tensor + options + shard plan.
    Plan,
    /// The per-(iteration, mode) lockstep barrier.
    ModeStart,
    /// Gathering a worker's updated factor rows.
    Rows,
    /// Broadcasting the merged factor.
    FactorSync,
    /// The final stats exchange.
    Stats,
    /// The clean-shutdown message.
    Shutdown,
    /// A liveness probe.
    Heartbeat,
    /// Re-homing a dead worker's rows onto a survivor.
    Reassign,
}

impl fmt::Display for ShardPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ShardPhase::Spawn => "Spawn",
            ShardPhase::Hello => "Hello",
            ShardPhase::Plan => "Plan",
            ShardPhase::ModeStart => "ModeStart",
            ShardPhase::Rows => "Rows",
            ShardPhase::FactorSync => "FactorSync",
            ShardPhase::Stats => "Stats",
            ShardPhase::Shutdown => "Shutdown",
            ShardPhase::Heartbeat => "Heartbeat",
            ShardPhase::Reassign => "Reassign",
        };
        f.write_str(name)
    }
}

/// Anything that can go wrong running a sharded fit.
#[derive(Debug)]
pub enum ShardError {
    /// A transport read/write failed (broken pipe, closed socket, EOF
    /// from a peer that exited early, corrupt frame).
    Io(io::Error),
    /// The byte stream was intact but the conversation was not: version
    /// mismatch, unexpected message, malformed payload, bad shard plan.
    Protocol(String),
    /// The underlying fit failed (on this process or, via the shared
    /// `ok` flag, on a peer).
    Fit(PtuckerError),
    /// A specific worker failed during a specific protocol phase — the
    /// coordinator's attribution wrapper around the underlying cause.
    Worker {
        /// Which worker failed.
        worker: u32,
        /// Which step of the conversation it failed in.
        phase: ShardPhase,
        /// What actually went wrong.
        cause: Box<ShardError>,
    },
    /// A worker stayed silent past every deadline the [`FaultPolicy`]
    /// allowed — alive enough to keep its pipe open, but not answering.
    Timeout {
        /// Which worker went silent.
        worker: u32,
        /// Which message the coordinator was waiting for.
        phase: ShardPhase,
        /// Total time spent waiting (including retries) before giving up.
        waited: Duration,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard transport error: {e}"),
            ShardError::Protocol(msg) => write!(f, "shard protocol error: {msg}"),
            ShardError::Fit(e) => write!(f, "shard fit error: {e}"),
            ShardError::Worker {
                worker,
                phase,
                cause,
            } => write!(f, "worker {worker} failed during {phase}: {cause}"),
            ShardError::Timeout {
                worker,
                phase,
                waited,
            } => write!(
                f,
                "worker {worker} timed out during {phase} after {waited:?}"
            ),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Io(e) => Some(e),
            ShardError::Protocol(_) => None,
            ShardError::Fit(e) => Some(e),
            ShardError::Worker { cause, .. } => Some(cause),
            ShardError::Timeout { .. } => None,
        }
    }
}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// What the coordinator does with a worker it has declared dead.
///
/// Either way, the mode in which the death is detected is first covered
/// by the coordinator's own replica (bitwise, via the driver's resweep
/// hook); `Recovery` decides who owns the rows *afterwards*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Permanently widen an adjacent surviving worker's shard to absorb
    /// the dead worker's rows. Cheap (one small message), but the
    /// survivor's per-mode work grows.
    Reassign,
    /// Spawn a replacement at the end of the iteration, seeded from an
    /// in-memory checkpoint of the coordinator's replica, owning the
    /// same rows. Costs a respawn + checkpoint transfer, but restores
    /// the original balance.
    Respawn,
}

/// Deadlines and recovery strategy for a fault-tolerant sharded fit.
///
/// Installed with [`ShardedFit::fault_policy`]. Without one, any worker
/// failure aborts the fit (the pre-fault-tolerance behaviour) — with
/// one, the coordinator probes silent workers with heartbeats, declares
/// them dead after `worker_retries` missed deadlines, covers their rows
/// itself and recovers per [`Recovery`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// How long a single wait for a worker's frame may take before the
    /// coordinator probes it with a heartbeat.
    pub frame_timeout: Duration,
    /// How many consecutive missed deadlines (per wait) before the
    /// worker is declared dead. Also bounds how many times a worker can
    /// buy itself more time with heartbeat echoes alone.
    pub worker_retries: usize,
    /// Extra grace added to each successive retry's deadline.
    pub backoff: Duration,
    /// What to do with a dead worker's rows.
    pub recovery: Recovery,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            frame_timeout: Duration::from_secs(30),
            worker_retries: 3,
            backoff: Duration::from_secs(1),
            recovery: Recovery::Reassign,
        }
    }
}

/// Runs the worker protocol over this process's stdin/stdout. This is
/// what the `ptucker-shard-worker` binary does, and what
/// [`worker_guard`] dispatches to.
///
/// # Errors
/// Transport/protocol failures or any error of the underlying fit.
pub fn worker_stdio() -> Result<FitResult, ShardError> {
    worker_loop(io::stdin().lock(), io::stdout().lock())
}

/// Call this first thing in `main()` to make a binary usable as a
/// [`WorkerSpawn::CurrentExe`] target: if [`WORKER_ARG`] is present on
/// the command line the process runs the worker protocol on its stdio
/// and exits (status 0 on a clean fit, 1 otherwise); if not, it returns
/// immediately and `main()` proceeds as the coordinator.
pub fn worker_guard() {
    if std::env::args().any(|a| a == WORKER_ARG) {
        match worker_stdio() {
            Ok(_) => std::process::exit(0),
            Err(e) => {
                eprintln!("ptucker-shard worker: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// How the coordinator obtains its `K` workers.
#[derive(Debug, Clone)]
pub enum WorkerSpawn {
    /// Spawn the given binary (e.g. `ptucker-shard-worker`, or any
    /// binary that calls [`worker_guard`]) once per worker, speaking the
    /// protocol over its stdin/stdout. [`WORKER_ARG`] is passed so
    /// guarded binaries enter worker mode.
    Binary(PathBuf),
    /// Re-execute [`std::env::current_exe`] with [`WORKER_ARG`]; the
    /// target must call [`worker_guard`] early in `main()`.
    CurrentExe,
    /// Run workers as in-process threads over Unix socket pairs. Same
    /// byte protocol, same framing, same checksums — only the transport
    /// differs — which makes this the cheap way to property-test the
    /// protocol and to benchmark sharding without process startup noise.
    /// (A [`FaultAction::Kill`] injected fault kills the whole process
    /// here; use a process spawn for kill-based chaos tests.)
    Threads,
}

type RecvResp = Result<Message, ShardError>;
type SendResp = Result<(), ShardError>;

/// A connected worker. Reads and writes run on *separate*
/// [`Background`] threads over half-channels of the same transport, so
/// the coordinator can push a heartbeat probe at a worker while a read
/// from it is still pending — the single-threaded I/O loop this
/// replaces could not probe a silent worker at all. Pairing discipline
/// per half: every submit is matched by exactly one collect, in order.
struct WorkerHandle {
    id: u32,
    rx: Option<Background<(), RecvResp>>,
    tx: Option<Background<Box<Message>, SendResp>>,
    rx_counters: ByteCounters,
    tx_counters: ByteCounters,
    child: Option<Child>,
    thread: Option<JoinHandle<Result<FitResult, ShardError>>>,
    /// Thread-transport only: the coordinator's socket endpoint, kept
    /// so teardown can `shutdown()` it — closing a clone's fd does not
    /// unblock a peer's in-flight read, shutdown does.
    socket: Option<UnixStream>,
}

impl WorkerHandle {
    fn from_parts<R, W>(id: u32, reader: R, writer: W) -> Self
    where
        R: io::Read + Send + 'static,
        W: io::Write + Send + 'static,
    {
        let mut rx_chan = Channel::new(reader, io::sink());
        let rx_counters = rx_chan.counters();
        let rx = Background::spawn(move |(): ()| protocol::recv(&mut rx_chan));
        let mut tx_chan = Channel::new(io::empty(), writer);
        let tx_counters = tx_chan.counters();
        let tx = Background::spawn(move |msg: Box<Message>| protocol::send(&mut tx_chan, &msg));
        WorkerHandle {
            id,
            rx: Some(rx),
            tx: Some(tx),
            rx_counters,
            tx_counters,
            child: None,
            thread: None,
            socket: None,
        }
    }

    /// Attributes `cause` to this worker at `phase`.
    fn wrap(&self, phase: ShardPhase, cause: ShardError) -> ShardError {
        ShardError::Worker {
            worker: self.id,
            phase,
            cause: Box::new(cause),
        }
    }

    /// The error for an I/O thread that is gone (died, or already torn
    /// down) — the typed replacement for what used to be a panic.
    fn thread_died(&self, phase: ShardPhase) -> ShardError {
        self.wrap(
            phase,
            ShardError::Protocol("background I/O thread died".into()),
        )
    }

    fn submit_send(&self, phase: ShardPhase, msg: Message) -> Result<(), ShardError> {
        match self.tx.as_ref() {
            Some(tx) => tx
                .submit(Box::new(msg))
                .map_err(|_| self.thread_died(phase)),
            None => Err(self.thread_died(phase)),
        }
    }

    /// Collects the ack of the oldest outstanding send. Without a
    /// policy this blocks; with one, the wait is bounded (generously:
    /// writes only block when a peer stops draining its pipe).
    fn collect_send_ack(
        &self,
        phase: ShardPhase,
        policy: Option<&FaultPolicy>,
    ) -> Result<(), ShardError> {
        let tx = self.tx.as_ref().ok_or_else(|| self.thread_died(phase))?;
        match policy {
            None => match tx.recv() {
                Some(Ok(())) => Ok(()),
                Some(Err(e)) => Err(self.wrap(phase, e)),
                None => Err(self.thread_died(phase)),
            },
            Some(p) => {
                let wait = p.frame_timeout * (p.worker_retries as u32 + 1);
                match tx.recv_timeout(wait) {
                    RecvTimeout::Ready(Ok(())) => Ok(()),
                    RecvTimeout::Ready(Err(e)) => Err(self.wrap(phase, e)),
                    RecvTimeout::Disconnected => Err(self.thread_died(phase)),
                    RecvTimeout::TimedOut => Err(ShardError::Timeout {
                        worker: self.id,
                        phase,
                        waited: wait,
                    }),
                }
            }
        }
    }

    fn send(
        &self,
        phase: ShardPhase,
        policy: Option<&FaultPolicy>,
        msg: Message,
    ) -> Result<(), ShardError> {
        self.submit_send(phase, msg)?;
        self.collect_send_ack(phase, policy)
    }

    fn submit_recv(&self, phase: ShardPhase) -> Result<(), ShardError> {
        match self.rx.as_ref() {
            Some(rx) => rx.submit(()).map_err(|_| self.thread_died(phase)),
            None => Err(self.thread_died(phase)),
        }
    }

    /// Collects the message answering the oldest outstanding
    /// [`WorkerHandle::submit_recv`]. Stale heartbeat echoes are
    /// swallowed (and the recv resubmitted) at every collect point, so
    /// probes can never desynchronise the conversation.
    ///
    /// With a policy, each wait is bounded by `frame_timeout` plus an
    /// escalating backoff; a missed deadline triggers a heartbeat probe
    /// (a dead worker fails the probe write; a hung one accepts it and
    /// keeps burning retries), and `worker_retries` misses condemn the
    /// worker with [`ShardError::Timeout`]. Heartbeat echoes reset the
    /// retry clock at most `worker_retries` times, so a worker that
    /// echoes but never progresses is still condemned eventually.
    fn collect_msg(
        &self,
        phase: ShardPhase,
        policy: Option<&FaultPolicy>,
    ) -> Result<Message, ShardError> {
        let rx = self.rx.as_ref().ok_or_else(|| self.thread_died(phase))?;
        let Some(p) = policy else {
            loop {
                match rx.recv() {
                    Some(Ok(Message::Heartbeat)) => self.submit_recv(phase)?,
                    Some(Ok(m)) => return Ok(m),
                    Some(Err(e)) => return Err(self.wrap(phase, e)),
                    None => return Err(self.thread_died(phase)),
                }
            }
        };
        let mut attempts = 0usize;
        let mut revives = 0usize;
        let mut waited = Duration::ZERO;
        loop {
            let wait = p.frame_timeout + p.backoff * attempts as u32;
            match rx.recv_timeout(wait) {
                RecvTimeout::Ready(Ok(Message::Heartbeat)) => {
                    self.submit_recv(phase)?;
                    if revives < p.worker_retries {
                        revives += 1;
                        attempts = 0;
                    }
                }
                RecvTimeout::Ready(Ok(m)) => return Ok(m),
                RecvTimeout::Ready(Err(e)) => return Err(self.wrap(phase, e)),
                RecvTimeout::Disconnected => return Err(self.thread_died(phase)),
                RecvTimeout::TimedOut => {
                    waited += wait;
                    attempts += 1;
                    if attempts > p.worker_retries {
                        return Err(ShardError::Timeout {
                            worker: self.id,
                            phase,
                            waited,
                        });
                    }
                    self.probe(p)?;
                }
            }
        }
    }

    /// Liveness probe: push a heartbeat at the worker. A dead peer
    /// fails the write (broken pipe); a merely slow or hung one accepts
    /// the bytes — only the recv deadline can condemn it.
    fn probe(&self, p: &FaultPolicy) -> Result<(), ShardError> {
        self.submit_send(ShardPhase::Heartbeat, Message::Heartbeat)?;
        self.collect_send_ack(ShardPhase::Heartbeat, Some(p))
    }

    /// Clean shutdown after a successful fit: the worker has already
    /// been sent `Shutdown`, so it is exiting on its own.
    fn reap(&mut self) -> Result<(), ShardError> {
        drop(self.tx.take());
        drop(self.rx.take());
        drop(self.socket.take());
        if let Some(mut child) = self.child.take() {
            let status = child.wait()?;
            if !status.success() {
                return Err(ShardError::Protocol(format!(
                    "worker {} exited with {status}",
                    self.id
                )));
            }
        }
        if let Some(t) = self.thread.take() {
            match t.join() {
                Ok(Ok(_)) => {}
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(ShardError::Protocol(format!("worker {} panicked", self.id))),
            }
        }
        Ok(())
    }

    /// Teardown on the error path, deadlock-free even against a worker
    /// that died mid-frame: kill the process (its pipe ends close, so a
    /// pending read unblocks with EOF and a pending write with EPIPE),
    /// shut down the thread-transport socket (unblocks both peers'
    /// reads — a half-closed socket clone would not), then join the I/O
    /// threads and reap, ignoring the worker's own (expected) failure.
    fn abort(&mut self) {
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
        }
        if let Some(s) = self.socket.as_ref() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        drop(self.tx.take());
        drop(self.rx.take());
        drop(self.socket.take());
        if let Some(mut child) = self.child.take() {
            let _ = child.wait();
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.abort();
    }
}

fn spawn_worker(spawn: &WorkerSpawn, id: u32) -> Result<WorkerHandle, ShardError> {
    match spawn {
        WorkerSpawn::Binary(path) => spawn_process(id, path.clone()),
        WorkerSpawn::CurrentExe => spawn_process(id, std::env::current_exe()?),
        WorkerSpawn::Threads => {
            let (coord, side) = UnixStream::pair()?;
            let reader = side.try_clone()?;
            let thread = std::thread::Builder::new()
                .name(format!("ptucker-shard-worker-{id}"))
                .spawn(move || worker_loop(reader, side))?;
            let mut h = WorkerHandle::from_parts(id, coord.try_clone()?, coord.try_clone()?);
            h.socket = Some(coord);
            h.thread = Some(thread);
            Ok(h)
        }
    }
}

fn spawn_process(id: u32, path: PathBuf) -> Result<WorkerHandle, ShardError> {
    let mut child = Command::new(path)
        .arg(WORKER_ARG)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdin = child
        .stdin
        .take()
        .ok_or_else(|| ShardError::Protocol("spawned worker has no stdin".into()))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| ShardError::Protocol("spawned worker has no stdout".into()))?;
    let mut h = WorkerHandle::from_parts(id, stdout, stdin);
    h.child = Some(child);
    Ok(h)
}

/// Validates a worker's Hello reply.
fn check_hello(h: &WorkerHandle, msg: Message) -> Result<(), ShardError> {
    match msg {
        Message::Hello {
            version, worker_id, ..
        } if version == PROTOCOL_VERSION && worker_id == h.id => Ok(()),
        Message::Hello { version, .. } => Err(ShardError::Protocol(format!(
            "worker {} answered with protocol version {version}, expected {PROTOCOL_VERSION}",
            h.id
        ))),
        m => Err(h.wrap(ShardPhase::Hello, worker::unexpected("Hello", &m))),
    }
}

/// The full handshake, sequentially (used when respawning a
/// replacement; the initial K-worker handshake overlaps its submits).
fn handshake(
    h: &WorkerHandle,
    workers: u32,
    policy: Option<&FaultPolicy>,
) -> Result<(), ShardError> {
    h.send(
        ShardPhase::Hello,
        policy,
        Message::Hello {
            version: PROTOCOL_VERSION,
            worker_id: h.id,
            workers,
        },
    )?;
    h.submit_recv(ShardPhase::Hello)?;
    check_hello(h, h.collect_msg(ShardPhase::Hello, policy)?)
}

/// Gathers and validates one worker's `Rows` message for `mode`.
fn collect_rows(
    h: &WorkerHandle,
    policy: Option<&FaultPolicy>,
    mode: usize,
    expected: &Range<usize>,
    j_n: usize,
    data_len: usize,
) -> Result<RowsMsg, ShardError> {
    let rows = match h.collect_msg(ShardPhase::Rows, policy)? {
        Message::Rows(r) => r,
        m => return Err(h.wrap(ShardPhase::Rows, worker::unexpected("Rows", &m))),
    };
    let (lo, hi) = (rows.lo as usize, rows.hi as usize);
    if rows.mode as usize != mode || lo != expected.start || hi != expected.end {
        return Err(h.wrap(
            ShardPhase::Rows,
            ShardError::Protocol(format!(
                "sent rows {lo}..{hi} of mode {}, expected {expected:?} of mode {mode}",
                rows.mode
            )),
        ));
    }
    if rows.data.len() != (hi - lo) * j_n || hi * j_n > data_len {
        return Err(h.wrap(
            ShardPhase::Rows,
            ShardError::Protocol(format!(
                "sent {} doubles for rows {lo}..{hi} (J={j_n})",
                rows.data.len()
            )),
        ));
    }
    Ok(rows)
}

/// Re-homes every dead worker's owned ranges onto an adjacent alive
/// worker: the nearest survivor below whose range abuts from the left
/// is widened rightward, else the nearest above abutting from the
/// right is widened leftward; with no adjacent survivor the range
/// stays put (the coordinator keeps re-sweeping it). Dead workers are
/// visited in index order so a chain of deaths cascades downward onto
/// one survivor. Returns the indices of workers whose ranges changed.
fn transfer_ranges(alive: &[bool], ranges: &mut [Vec<Range<usize>>], order: usize) -> Vec<usize> {
    let mut changed = Vec::new();
    for w in 0..ranges.len() {
        if alive[w] {
            continue;
        }
        for m in 0..order {
            let r = ranges[w][m].clone();
            if r.is_empty() {
                continue;
            }
            let below = (0..w).rev().find(|&v| alive[v]);
            let above = (w + 1..ranges.len()).find(|&v| alive[v]);
            let target = match below {
                Some(v) if ranges[v][m].end == r.start => Some((v, true)),
                _ => match above {
                    Some(v) if ranges[v][m].start == r.end => Some((v, false)),
                    _ => None,
                },
            };
            let Some((v, is_below)) = target else {
                continue;
            };
            if is_below {
                ranges[v][m].end = r.end;
            } else {
                ranges[v][m].start = r.start;
            }
            ranges[w][m] = r.start..r.start;
            if !changed.contains(&v) {
                changed.push(v);
            }
        }
    }
    changed
}

/// One worker's seat at the fit: its live handle (`None` once dead),
/// its current row ownership, and whether respawning it has been given
/// up on.
struct WorkerSlot {
    handle: Option<WorkerHandle>,
    ranges: Vec<Range<usize>>,
    abandoned: bool,
}

/// The coordinator's [`FitSync`]: it owns no rows (its `row_range` is
/// empty, so its sweeps touch no plan windows), merges the workers'
/// rows after every mode, and broadcasts the result. Under a
/// [`FaultPolicy`] it is also the recovery state machine: detect (via
/// deadlines) → cover (resweep the dead shard on its own replica) →
/// recover (reassign or respawn).
struct CoordSync<'a> {
    slots: Vec<WorkerSlot>,
    policy: Option<FaultPolicy>,
    spawn: &'a WorkerSpawn,
    x: &'a SparseTensor,
    /// The options workers run with: checkpoint/resume paths stripped
    /// (persistence is the coordinator's job alone).
    plan_opts: FitOptions,
    workers: u32,
    worker_stats: Vec<WorkerStatsMsg>,
    recovered: Vec<String>,
    first_fault: Option<ShardError>,
    /// Byte counters salvaged from aborted workers' channels, so the
    /// final stats still account for traffic to workers that died.
    lost_sent: u64,
    lost_received: u64,
}

impl CoordSync<'_> {
    /// Records the first fatal fault (the typed error the public API
    /// surfaces) and converts it to the driver's error type.
    fn fail(&mut self, e: ShardError) -> PtuckerError {
        let msg = e.to_string();
        if self.first_fault.is_none() {
            self.first_fault = Some(e);
        }
        PtuckerError::Sync(msg)
    }

    /// Declares worker `w` dead: tears its handle down and salvages its
    /// byte counters. Idempotent.
    fn kill_slot(&mut self, w: usize, why: &ShardError) {
        if let Some(mut h) = self.slots[w].handle.take() {
            self.lost_sent += h.tx_counters.sent();
            self.lost_received += h.rx_counters.received();
            h.abort();
            self.recovered.push(format!("worker {w} removed: {why}"));
        }
    }

    /// Sends `msg` to every live worker — submits first so the `K`
    /// writes overlap, then collects the acks. Without a policy the
    /// first failure is fatal; with one, failed workers are killed and
    /// the broadcast succeeds for the survivors.
    fn broadcast(&mut self, phase: ShardPhase, msg: &Message) -> Result<(), ShardError> {
        let mut doomed: Vec<(usize, ShardError)> = Vec::new();
        for (w, s) in self.slots.iter().enumerate() {
            let Some(h) = s.handle.as_ref() else { continue };
            if let Err(e) = h.submit_send(phase, msg.clone()) {
                doomed.push((w, e));
            }
        }
        for (w, s) in self.slots.iter().enumerate() {
            if doomed.iter().any(|(d, _)| *d == w) {
                continue;
            }
            let Some(h) = s.handle.as_ref() else { continue };
            if let Err(e) = h.collect_send_ack(phase, self.policy.as_ref()) {
                doomed.push((w, e));
            }
        }
        if self.policy.is_some() {
            for (w, e) in doomed {
                self.kill_slot(w, &e);
            }
            Ok(())
        } else {
            match doomed.into_iter().next() {
                Some((_, e)) => Err(e),
                None => Ok(()),
            }
        }
    }

    /// Moves dead workers' future row ownership onto adjacent
    /// survivors and tells those survivors, *before* the FactorSync of
    /// the mode in which the deaths were detected — a worker blocked on
    /// that FactorSync applies the reassignment first, so the widened
    /// shard is in place before its next `row_range`.
    fn reassign_dead(&mut self, policy: FaultPolicy) {
        let alive: Vec<bool> = self.slots.iter().map(|s| s.handle.is_some()).collect();
        let mut ranges: Vec<Vec<Range<usize>>> =
            self.slots.iter().map(|s| s.ranges.clone()).collect();
        let changed = transfer_ranges(&alive, &mut ranges, self.x.order());
        for (s, r) in self.slots.iter_mut().zip(ranges) {
            s.ranges = r;
        }
        for v in changed {
            let msg = Message::Reassign {
                ranges: self.slots[v].ranges.clone(),
            };
            let res = match self.slots[v].handle.as_ref() {
                Some(h) => h.send(ShardPhase::Reassign, Some(&policy), msg),
                None => continue,
            };
            match res {
                Ok(()) => self
                    .recovered
                    .push(format!("worker {v} absorbed reassigned rows")),
                Err(e) => self.kill_slot(v, &e),
            }
        }
    }

    /// Spawns a replacement for slot `w`, replays the handshake and a
    /// plan carrying the checkpoint, and seats it. The replacement
    /// resumes at the checkpoint's iteration — in lockstep with
    /// everyone else by construction.
    fn respawn(&mut self, w: usize, ckpt: &[u8], p: &FaultPolicy) -> Result<(), ShardError> {
        let h = spawn_worker(self.spawn, w as u32).map_err(|e| ShardError::Worker {
            worker: w as u32,
            phase: ShardPhase::Spawn,
            cause: Box::new(e),
        })?;
        handshake(&h, self.workers, Some(p))?;
        h.send(
            ShardPhase::Plan,
            Some(p),
            Message::Plan(Box::new(PlanMsg {
                opts: self.plan_opts.clone(),
                dims: self.x.dims().to_vec(),
                indices: self.x.flat_indices().to_vec(),
                values: self.x.values().to_vec(),
                ranges: self.slots[w].ranges.clone(),
                resume: Some(ckpt.to_vec()),
                fault: None,
            })),
        )?;
        self.slots[w].handle = Some(h);
        Ok(())
    }
}

impl FitSync for CoordSync<'_> {
    fn begin_mode(&mut self, iter: usize, mode: usize) -> ptucker::Result<()> {
        self.broadcast(
            ShardPhase::ModeStart,
            &Message::ModeStart {
                iter: iter as u64,
                mode: mode as u32,
            },
        )
        .map_err(|e| self.fail(e))
    }

    fn row_range(&mut self, _mode: usize, _rows: usize) -> Range<usize> {
        0..0
    }

    fn sync_factor(
        &mut self,
        mode: usize,
        j_n: usize,
        data: &mut [f64],
        local_ok: bool,
        resweep: &mut ptucker::sync::Resweep<'_>,
    ) -> ptucker::Result<()> {
        let policy = self.policy;
        // Gather: the recvs were all submitted before any collect, so
        // slow workers overlap; the merge order (worker 0..K) is fixed,
        // and the ranges are disjoint, so the merged factor is
        // deterministic regardless of arrival order.
        let mut doomed: Vec<(usize, ShardError)> = Vec::new();
        for (w, s) in self.slots.iter().enumerate() {
            let Some(h) = s.handle.as_ref() else { continue };
            if let Err(e) = h.submit_recv(ShardPhase::Rows) {
                doomed.push((w, e));
            }
        }
        let mut ok = local_ok;
        for (w, s) in self.slots.iter().enumerate() {
            if doomed.iter().any(|(d, _)| *d == w) {
                continue;
            }
            let Some(h) = s.handle.as_ref() else { continue };
            match collect_rows(h, policy.as_ref(), mode, &s.ranges[mode], j_n, data.len()) {
                Ok(rows) => {
                    let (lo, hi) = (rows.lo as usize, rows.hi as usize);
                    data[lo * j_n..hi * j_n].copy_from_slice(&rows.data);
                    ok &= rows.ok;
                }
                Err(e) => doomed.push((w, e)),
            }
        }
        if policy.is_none() {
            if let Some((_, e)) = doomed.into_iter().next() {
                return Err(self.fail(e));
            }
        } else {
            for (w, e) in doomed {
                self.kill_slot(w, &e);
            }
        }
        // Cover every dead shard on the coordinator's own replica: the
        // resweep hook re-runs the rows with the same kernel, schedule
        // and windows the worker would have used, so the merged factor
        // is bitwise what the undisturbed fit would have produced.
        for w in 0..self.slots.len() {
            if self.slots[w].handle.is_some() {
                continue;
            }
            let r = self.slots[w].ranges[mode].clone();
            if r.is_empty() {
                continue;
            }
            ok &= resweep(r, data)?;
        }
        if let Some(p) = policy {
            if p.recovery == Recovery::Reassign {
                self.reassign_dead(p);
            }
        }
        self.broadcast(
            ShardPhase::FactorSync,
            &Message::FactorSync {
                mode: mode as u32,
                ok,
                data: data.to_vec(),
            },
        )
        .map_err(|e| self.fail(e))?;
        if !ok {
            // Same error a single-process fit returns from its own
            // failed row solve; every worker raises it too.
            return Err(worker::solve_failure());
        }
        Ok(())
    }

    fn end_iter(
        &mut self,
        _iter: usize,
        make_checkpoint: &mut dyn FnMut() -> ptucker::Result<Vec<u8>>,
    ) -> ptucker::Result<()> {
        let Some(p) = self.policy else {
            return Ok(());
        };
        if p.recovery != Recovery::Respawn {
            return Ok(());
        }
        let need: Vec<usize> = (0..self.slots.len())
            .filter(|&w| {
                self.slots[w].handle.is_none()
                    && !self.slots[w].abandoned
                    && self.slots[w].ranges.iter().any(|r| !r.is_empty())
            })
            .collect();
        if need.is_empty() {
            return Ok(());
        }
        let bytes = make_checkpoint()?;
        for w in need {
            match self.respawn(w, &bytes, &p) {
                Ok(()) => self
                    .recovered
                    .push(format!("worker {w} respawned from checkpoint")),
                Err(e) => {
                    // Graceful degradation: stop trying, keep covering
                    // its rows from the coordinator's replica.
                    self.slots[w].abandoned = true;
                    self.recovered.push(format!(
                        "worker {w} could not be respawned ({e}); coordinator keeps its rows"
                    ));
                }
            }
        }
        Ok(())
    }

    fn finish(&mut self, stats: &mut FitStats) -> ptucker::Result<()> {
        let policy = self.policy;
        let mut doomed: Vec<(usize, ShardError)> = Vec::new();
        for (w, s) in self.slots.iter().enumerate() {
            let Some(h) = s.handle.as_ref() else { continue };
            if let Err(e) = h.submit_recv(ShardPhase::Stats) {
                doomed.push((w, e));
            }
        }
        let mut got = Vec::new();
        for (w, s) in self.slots.iter().enumerate() {
            if doomed.iter().any(|(d, _)| *d == w) {
                continue;
            }
            let Some(h) = s.handle.as_ref() else { continue };
            match h.collect_msg(ShardPhase::Stats, policy.as_ref()) {
                Ok(Message::Stats(s)) => got.push(s),
                Ok(m) => doomed.push((w, worker::unexpected("Stats", &m))),
                Err(e) => doomed.push((w, e)),
            }
        }
        if policy.is_none() {
            if let Some((_, e)) = doomed.into_iter().next() {
                return Err(self.fail(e));
            }
        } else {
            for (w, e) in doomed {
                self.kill_slot(w, &e);
            }
        }
        self.worker_stats.extend(got);
        self.broadcast(ShardPhase::Shutdown, &Message::Shutdown)
            .map_err(|e| self.fail(e))?;
        stats.bytes_sent = self.lost_sent
            + self
                .slots
                .iter()
                .filter_map(|s| s.handle.as_ref())
                .map(|h| h.tx_counters.sent())
                .sum::<u64>();
        stats.bytes_received = self.lost_received
            + self
                .slots
                .iter()
                .filter_map(|s| s.handle.as_ref())
                .map(|h| h.rx_counters.received())
                .sum::<u64>();
        Ok(())
    }
}

/// What a sharded fit returns: the fit (bitwise identical to the
/// single-process one, except `FitStats::bytes_sent`/`bytes_received`
/// which report the coordinator's comms volume) plus each worker's
/// share of the work.
#[derive(Debug, Clone)]
pub struct ShardedFitResult {
    /// The fitted model and statistics, from the coordinator's replica.
    pub fit: FitResult,
    /// Per-worker totals, in worker order. Workers that died mid-fit
    /// contribute no entry (their traffic still counts in the fit's
    /// byte totals).
    pub worker_stats: Vec<WorkerStatsMsg>,
    /// Human-readable log of every fault the coordinator survived:
    /// which workers were declared dead and why, which rows were
    /// reassigned, which workers were respawned. Empty for an
    /// undisturbed fit.
    pub recovered: Vec<String>,
}

/// Coordinator for a `K`-worker sharded fit.
#[derive(Debug, Clone)]
pub struct ShardedFit {
    workers: usize,
    spawn: WorkerSpawn,
    policy: Option<FaultPolicy>,
    faults: Vec<(u32, String)>,
}

impl ShardedFit {
    /// A coordinator that will run `workers` workers obtained via
    /// `spawn`. `workers` is clamped to at least 1.
    pub fn new(workers: usize, spawn: WorkerSpawn) -> Self {
        ShardedFit {
            workers: workers.max(1),
            spawn,
            policy: None,
            faults: Vec::new(),
        }
    }

    /// Installs a [`FaultPolicy`]: worker deaths and hangs mid-fit are
    /// survived (and the fit stays bitwise identical) instead of
    /// aborting. Failures during spawn or the initial handshake remain
    /// fatal — a fit that cannot even start has nothing to recover.
    #[must_use]
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Arms a [`FaultInjector`] on `worker`'s transport (chaos
    /// testing): `spec` uses the grammar of
    /// [`protocol::parse_fault_spec`], e.g. `"send:rows:2:drop"` or
    /// `"recv:factorsync:1:kill"`.
    /// Several calls for the same worker are joined into one spec.
    /// Respawned replacements are never re-armed.
    #[must_use]
    pub fn inject_fault(mut self, worker: u32, spec: impl Into<String>) -> Self {
        self.faults.push((worker, spec.into()));
        self
    }

    /// Runs a sharded fit with nnz-balanced row ownership
    /// ([`nnz_balanced_ranges`]).
    ///
    /// # Errors
    /// Spawn/transport/protocol failures, or the fit error every process
    /// raises identically (e.g. a singular row solve on any shard).
    pub fn fit(&self, x: &SparseTensor, opts: FitOptions) -> Result<ShardedFitResult, ShardError> {
        self.fit_with_ranges(x, opts, nnz_balanced_ranges(x, self.workers))
    }

    /// Like [`ShardedFit::fit`] but with explicit row ownership:
    /// `ranges[w][m]` is worker `w`'s rows of mode `m`. Per mode, the
    /// ranges must tile `0..dims[m]` contiguously in worker order
    /// (empty ranges are fine) — that is what makes the merge a plain
    /// concatenation.
    ///
    /// # Errors
    /// As [`ShardedFit::fit`], plus [`ShardError::Protocol`] on a plan
    /// that does not tile every mode or a malformed fault spec.
    pub fn fit_with_ranges(
        &self,
        x: &SparseTensor,
        opts: FitOptions,
        ranges: Vec<Vec<Range<usize>>>,
    ) -> Result<ShardedFitResult, ShardError> {
        validate_ranges(x, self.workers, &ranges)?;
        for (w, spec) in &self.faults {
            if *w as usize >= self.workers {
                return Err(ShardError::Protocol(format!(
                    "fault spec targets worker {w}, but there are only {}",
                    self.workers
                )));
            }
            protocol::parse_fault_spec(spec).map_err(ShardError::Protocol)?;
        }
        // The coordinator owns persistence; workers run with the
        // checkpoint/resume paths stripped and receive resume *bytes*
        // in their plan instead (their stripped options still
        // fingerprint-match a checkpoint made here, by construction).
        let mut plan_opts = opts.clone();
        plan_opts.checkpoint_path = None;
        plan_opts.resume_from = None;
        let resume_bytes = match opts.resume_from.as_ref() {
            Some(p) => Some(FitCheckpoint::load(p).map_err(ShardError::Fit)?.encode()),
            None => None,
        };
        let policy = self.policy;
        let k = self.workers as u32;
        let mut handles = Vec::with_capacity(self.workers);
        for id in 0..k {
            handles.push(
                spawn_worker(&self.spawn, id).map_err(|e| ShardError::Worker {
                    worker: id,
                    phase: ShardPhase::Spawn,
                    cause: Box::new(e),
                })?,
            );
        }
        // Handshake + plan, per worker. Submitting everything before
        // collecting anything overlaps worker startup and plan builds.
        for (w, h) in handles.iter().enumerate() {
            h.submit_send(
                ShardPhase::Hello,
                Message::Hello {
                    version: PROTOCOL_VERSION,
                    worker_id: h.id,
                    workers: k,
                },
            )?;
            h.submit_recv(ShardPhase::Hello)?;
            let specs: Vec<&str> = self
                .faults
                .iter()
                .filter(|(fw, _)| *fw as usize == w)
                .map(|(_, s)| s.as_str())
                .collect();
            h.submit_send(
                ShardPhase::Plan,
                Message::Plan(Box::new(PlanMsg {
                    opts: plan_opts.clone(),
                    dims: x.dims().to_vec(),
                    indices: x.flat_indices().to_vec(),
                    values: x.values().to_vec(),
                    ranges: ranges[w].clone(),
                    resume: resume_bytes.clone(),
                    fault: if specs.is_empty() {
                        None
                    } else {
                        Some(specs.join(";"))
                    },
                })),
            )?;
        }
        for h in &handles {
            h.collect_send_ack(ShardPhase::Hello, None)?;
            check_hello(h, h.collect_msg(ShardPhase::Hello, policy.as_ref())?)?;
            h.collect_send_ack(ShardPhase::Plan, None)?;
        }

        let solver = PTucker::new(opts.clone()).map_err(ShardError::Fit)?;
        let slots: Vec<WorkerSlot> = handles
            .into_iter()
            .zip(ranges)
            .map(|(h, r)| WorkerSlot {
                handle: Some(h),
                ranges: r,
                abandoned: false,
            })
            .collect();
        let mut sync = CoordSync {
            slots,
            policy,
            spawn: &self.spawn,
            x,
            plan_opts,
            workers: k,
            worker_stats: Vec::new(),
            recovered: Vec::new(),
            first_fault: None,
            lost_sent: 0,
            lost_received: 0,
        };
        // Fault-tolerant (or checkpointing/resuming) fits drive the
        // *real* variant kernel on the coordinator: its replica must be
        // able to re-sweep any worker's rows bitwise and to checkpoint
        // kernel state (the Cache `Pres` tables evolve by incremental
        // rescale, which a fresh rebuild does not reproduce bitwise).
        // Without those needs, the coordinator updates no rows, so the
        // `Pres` tables would be pure overhead: drive `Variant::Cache`
        // with the direct kernel. `Approx` always keeps its kernel
        // because the per-iteration entry truncation must replicate
        // bit-for-bit everywhere.
        let fault_mode =
            policy.is_some() || opts.checkpoint_path.is_some() || opts.resume_from.is_some();
        let fit = if fault_mode {
            solver.fit_with_sync(x, &mut sync)
        } else {
            match opts.variant {
                Variant::Approx { truncation_rate } => {
                    solver.fit_with_kernel(x, ApproxKernel::new(truncation_rate), &mut sync)
                }
                Variant::Default | Variant::Cache => {
                    solver.fit_with_kernel(x, DirectKernel, &mut sync)
                }
            }
        };
        let CoordSync {
            mut slots,
            worker_stats,
            recovered,
            first_fault,
            ..
        } = sync;
        match fit {
            Ok(fit) => {
                for s in &mut slots {
                    if let Some(h) = s.handle.as_mut() {
                        h.reap()?;
                    }
                }
                Ok(ShardedFitResult {
                    fit,
                    worker_stats,
                    recovered,
                })
            }
            Err(e) => {
                for s in &mut slots {
                    if let Some(h) = s.handle.as_mut() {
                        h.abort();
                    }
                }
                Err(first_fault.unwrap_or(ShardError::Fit(e)))
            }
        }
    }
}

/// nnz-balanced row ownership: for every mode, rows are split into `K`
/// contiguous blocks of roughly equal observed-entry count via
/// [`ptucker_sched::weighted_blocks`]. When a mode has fewer rows than
/// workers, the surplus workers own an empty range there.
pub fn nnz_balanced_ranges(x: &SparseTensor, workers: usize) -> Vec<Vec<Range<usize>>> {
    let k = workers.max(1);
    let mut out = vec![Vec::with_capacity(x.order()); k];
    for m in 0..x.order() {
        let dim = x.dims()[m];
        let blocks = ptucker_sched::weighted_blocks(dim, k, |i| x.slice_len(m, i));
        for (w, ranges) in out.iter_mut().enumerate() {
            let r = blocks.get(w).map_or(dim..dim, |&(lo, hi)| lo..hi);
            ranges.push(r);
        }
    }
    out
}

/// Checks that `ranges[w][m]` tiles `0..dims[m]` contiguously in worker
/// order for every mode.
fn validate_ranges(
    x: &SparseTensor,
    workers: usize,
    ranges: &[Vec<Range<usize>>],
) -> Result<(), ShardError> {
    if ranges.len() != workers {
        return Err(ShardError::Protocol(format!(
            "{} range sets for {workers} workers",
            ranges.len()
        )));
    }
    for m in 0..x.order() {
        let dim = x.dims()[m];
        let mut pos = 0usize;
        for (w, rs) in ranges.iter().enumerate() {
            let r = rs.get(m).ok_or_else(|| {
                ShardError::Protocol(format!("worker {w} has no range for mode {m}"))
            })?;
            if r.start != pos || r.end < r.start {
                return Err(ShardError::Protocol(format!(
                    "mode {m}: worker {w} owns {r:?} but the previous worker ended at {pos}"
                )));
            }
            pos = r.end;
        }
        if pos != dim {
            return Err(ShardError::Protocol(format!(
                "mode {m}: ranges cover 0..{pos} of 0..{dim}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptucker_tensor::SparseTensor;

    fn small() -> SparseTensor {
        // 4×3 with lopsided rows: row 0 holds most entries.
        SparseTensor::from_flat(
            vec![4, 3],
            vec![0, 0, 0, 1, 0, 2, 1, 0, 2, 1, 3, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn balanced_ranges_tile_every_mode() {
        let x = small();
        for k in 1..=6 {
            let ranges = nnz_balanced_ranges(&x, k);
            assert_eq!(ranges.len(), k.max(1));
            validate_ranges(&x, k.max(1), &ranges).unwrap();
        }
    }

    #[test]
    fn surplus_workers_get_empty_ranges() {
        let x = small();
        let ranges = nnz_balanced_ranges(&x, 6);
        // Mode 1 has only 3 rows; workers beyond it own nothing there.
        assert!(ranges.iter().filter(|r| r[1].is_empty()).count() >= 3);
        validate_ranges(&x, 6, &ranges).unwrap();
    }

    #[test]
    fn bad_plans_are_rejected() {
        let x = small();
        // Gap.
        let bad = vec![vec![0..1, 0..3], vec![2..4, 3..3]];
        assert!(validate_ranges(&x, 2, &bad).is_err());
        // Short cover.
        let bad = vec![vec![0..1, 0..3], vec![1..3, 3..3]];
        assert!(validate_ranges(&x, 2, &bad).is_err());
        // Wrong worker count.
        assert!(validate_ranges(&x, 2, &[vec![0..4, 0..3]]).is_err());
    }

    #[test]
    fn dead_ranges_move_to_the_adjacent_survivor() {
        // Middle worker dies; its rows go to the survivor below.
        let alive = [true, false, true];
        let mut ranges = vec![vec![0..2, 0..1], vec![2..5, 1..2], vec![5..8, 2..3]];
        let changed = transfer_ranges(&alive, &mut ranges, 2);
        assert_eq!(changed, vec![0]);
        assert_eq!(ranges[0], vec![0..5, 0..2]);
        assert_eq!(ranges[1], vec![2..2, 1..1]);
        assert_eq!(ranges[2], vec![5..8, 2..3]);
    }

    #[test]
    fn dead_first_worker_moves_up() {
        let alive = [false, true];
        let mut ranges = vec![vec![0..4], vec![4..8]];
        let changed = transfer_ranges(&alive, &mut ranges, 1);
        assert_eq!(changed, vec![1]);
        assert_eq!(ranges[1], vec![0..8]);
        assert_eq!(ranges[0], vec![0..0]);
    }

    #[test]
    fn death_chain_cascades_onto_one_survivor() {
        let alive = [true, false, false];
        let mut ranges = vec![vec![0..2], vec![2..4], vec![4..6]];
        let changed = transfer_ranges(&alive, &mut ranges, 1);
        assert_eq!(changed, vec![0]);
        assert_eq!(ranges[0], vec![0..6]);
        assert!(ranges[1][0].is_empty() && ranges[2][0].is_empty());
    }

    #[test]
    fn no_survivor_leaves_ranges_with_the_coordinator() {
        let alive = [false, false];
        let mut ranges = vec![vec![0..3], vec![3..6]];
        let changed = transfer_ranges(&alive, &mut ranges, 1);
        assert!(changed.is_empty());
        assert_eq!(ranges[0], vec![0..3]);
        assert_eq!(ranges[1], vec![3..6]);
    }
}
