//! The sharded-fit message set and its wire encoding.
//!
//! Nine messages run a whole fit:
//!
//! | message      | direction | payload                                          |
//! |--------------|-----------|--------------------------------------------------|
//! | `Hello`      | both      | protocol version, worker id, worker count        |
//! | `Plan`       | coord → w | fit options, COO tensor, this worker's row ranges, optional resume checkpoint and fault spec |
//! | `ModeStart`  | coord → w | iteration and mode about to be swept             |
//! | `Rows`       | w → coord | the worker's updated factor rows (+ solve flag)  |
//! | `FactorSync` | coord → w | the merged factor for the mode (+ global flag)   |
//! | `Stats`      | w → coord | per-worker rows/nnz/wall/byte totals             |
//! | `Shutdown`   | coord → w | clean end of the run                             |
//! | `Heartbeat`  | both      | liveness probe (coordinator) and echo (worker)   |
//! | `Reassign`   | coord → w | the worker's new per-mode row ownership          |
//!
//! Only `Plan` carries bulk data, exactly once per worker; the per-mode
//! steady state is `Rows` + `FactorSync` — `O(I_n·J)` doubles each —
//! plan windows and `Pres` tiles never cross the wire. Everything is
//! little-endian with `usize` widened to `u64`; COO entries travel in
//! insertion order, which [`ptucker_tensor::SparseTensor::from_flat`]
//! preserves, so a worker's rebuilt tensor (entry ids, mode indexes,
//! plans) is bit-for-bit the coordinator's.

use crate::transport::{Channel, Frame};
use crate::ShardError;
use ptucker::{BudgetPolicy, FitOptions, MemoryBudget, Schedule, StoragePrecision, Variant};
use std::io::{Read, Write};
use std::ops::Range;

/// One protocol message. See the [module docs](self) for the flow.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Handshake: version check plus the receiver's place in the fleet.
    Hello {
        /// [`crate::PROTOCOL_VERSION`] of the sender.
        version: u32,
        /// Zero-based id of the worker this connection belongs to.
        worker_id: u32,
        /// Total worker count `K`.
        workers: u32,
    },
    /// Everything a worker needs to run its replica of the fit.
    Plan(Box<PlanMsg>),
    /// Lockstep marker: the `(iter, mode)` sweep both sides enter next.
    ModeStart {
        /// Zero-based ALS iteration.
        iter: u64,
        /// Mode about to be swept.
        mode: u32,
    },
    /// A worker's updated rows for the mode it just swept.
    Rows(RowsMsg),
    /// The merged factor broadcast after all owners reported.
    FactorSync {
        /// Mode the factor belongs to.
        mode: u32,
        /// False if **any** shard had a failed row solve — every process
        /// abandons the fit identically.
        ok: bool,
        /// The full merged factor, row-major.
        data: Vec<f64>,
    },
    /// A worker's end-of-run statistics.
    Stats(WorkerStatsMsg),
    /// Clean end of the run.
    Shutdown,
    /// Liveness probe. The coordinator sends one when a worker misses a
    /// frame deadline; a live worker echoes it back from its receive
    /// loop, which is what distinguishes a *slow* worker (echoes) from a
    /// *silent* one (doesn't) before the fault policy declares it dead.
    Heartbeat,
    /// Mid-fit ownership change: the receiving worker's owned row range
    /// per mode, replacing the ranges it got with its plan. Sent under
    /// `Recovery::Reassign` when a dead worker's rows are redistributed
    /// to a surviving neighbor, always *before* the `FactorSync` of the
    /// mode the death was detected in, so the new ownership is in place
    /// before the next mode's sweep.
    Reassign {
        /// The receiver's new owned row range per mode.
        ranges: Vec<Range<usize>>,
    },
}

/// Body of [`Message::Plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanMsg {
    /// The fit configuration, replicated verbatim (same seed ⇒ same RNG
    /// init on every process).
    pub opts: FitOptions,
    /// Tensor dimensions.
    pub dims: Vec<usize>,
    /// Flat COO indices (`order · nnz`), insertion order.
    pub indices: Vec<usize>,
    /// COO values, insertion order.
    pub values: Vec<f64>,
    /// This worker's owned row range per mode.
    pub ranges: Vec<Range<usize>>,
    /// Encoded `ptucker::FitCheckpoint` bytes to resume from instead of
    /// starting at iteration 0 — how a respawned worker (or a whole
    /// sharded fit resuming a checkpointed run) rejoins mid-trajectory,
    /// bitwise. `None` for a fresh fit.
    pub resume: Option<Vec<u8>>,
    /// Fault-injection spec to install on the worker's transport (see
    /// [`parse_fault_spec`]); test/chaos tooling only. `None` in
    /// production.
    pub fault: Option<String>,
}

/// Body of [`Message::Rows`].
#[derive(Debug, Clone, PartialEq)]
pub struct RowsMsg {
    /// Mode the rows belong to.
    pub mode: u32,
    /// First owned row.
    pub lo: u64,
    /// One past the last owned row.
    pub hi: u64,
    /// Whether every row solve in the range succeeded.
    pub ok: bool,
    /// The owned rows, row-major (`(hi - lo) · J_n` doubles).
    pub data: Vec<f64>,
}

/// Body of [`Message::Stats`]: one worker's contribution to the run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkerStatsMsg {
    /// Factor rows this worker updated, summed over modes and iterations.
    pub rows_updated: u64,
    /// Stream positions (observed entries) its sweeps covered, summed
    /// over modes and iterations.
    pub nnz_processed: u64,
    /// Wall-clock seconds from receiving the plan to finishing the fit.
    pub wall_seconds: f64,
    /// Bytes the worker wrote to the coordinator before this message.
    pub bytes_sent: u64,
    /// Bytes the worker read from the coordinator before this message.
    pub bytes_received: u64,
}

// Frame tags. Kept dense and explicit — the wire format is a contract.
const TAG_HELLO: u8 = 1;
const TAG_PLAN: u8 = 2;
const TAG_MODE_START: u8 = 3;
const TAG_ROWS: u8 = 4;
const TAG_FACTOR_SYNC: u8 = 5;
const TAG_STATS: u8 = 6;
const TAG_SHUTDOWN: u8 = 7;
const TAG_HEARTBEAT: u8 = 8;
const TAG_REASSIGN: u8 = 9;

/// Parses a transport fault spec (see
/// [`crate::transport::FaultInjector::parse_with`] for the grammar)
/// bound to the shard message vocabulary: `hello`, `plan`, `modestart`,
/// `rows`, `factorsync`, `stats`, `shutdown`, `heartbeat`, `reassign`,
/// or `any`.
///
/// # Errors
/// A description of the first malformed rule.
pub fn parse_fault_spec(spec: &str) -> Result<crate::transport::FaultInjector, String> {
    crate::transport::FaultInjector::parse_with(spec, tag_by_name)
}

/// Maps a lowercase message name to its frame tag — the vocabulary of
/// [`parse_fault_spec`] specs.
pub(crate) fn tag_by_name(name: &str) -> Option<u8> {
    Some(match name {
        "hello" => TAG_HELLO,
        "plan" => TAG_PLAN,
        "modestart" => TAG_MODE_START,
        "rows" => TAG_ROWS,
        "factorsync" => TAG_FACTOR_SYNC,
        "stats" => TAG_STATS,
        "shutdown" => TAG_SHUTDOWN,
        "heartbeat" => TAG_HEARTBEAT,
        "reassign" => TAG_REASSIGN,
        _ => return None,
    })
}

/// Little-endian byte writer over a growable buffer.
#[derive(Default)]
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn usize_slice(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }
    fn f64_slice(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }
    fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.0.extend_from_slice(v);
    }
    fn opt_bytes(&mut self, v: Option<&[u8]>) {
        match v {
            None => self.bool(false),
            Some(b) => {
                self.bool(true);
                self.bytes(b);
            }
        }
    }
}

/// Little-endian cursor over a received payload; every getter checks
/// bounds so truncated or mis-tagged payloads decode to an error, never
/// a panic.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ShardError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ShardError::Protocol("truncated payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ShardError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, ShardError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }
    fn u64(&mut self) -> Result<u64, ShardError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }
    fn usize(&mut self) -> Result<usize, ShardError> {
        usize::try_from(self.u64()?)
            .map_err(|_| ShardError::Protocol("u64 field exceeds usize".into()))
    }
    fn f64(&mut self) -> Result<f64, ShardError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }
    fn bool(&mut self) -> Result<bool, ShardError> {
        Ok(self.u8()? != 0)
    }

    /// Length-prefixed element reads guard the count against the bytes
    /// actually present, so a corrupt length cannot force a huge
    /// allocation.
    fn checked_len(&self, elem_bytes: usize) -> Result<usize, ShardError> {
        Ok((self.buf.len() - self.pos) / elem_bytes.max(1))
    }

    fn usize_vec(&mut self) -> Result<Vec<usize>, ShardError> {
        let n = self.usize()?;
        if n > self.checked_len(8)? {
            return Err(ShardError::Protocol(
                "vector length overruns payload".into(),
            ));
        }
        (0..n).map(|_| self.usize()).collect()
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, ShardError> {
        let n = self.usize()?;
        if n > self.checked_len(8)? {
            return Err(ShardError::Protocol(
                "vector length overruns payload".into(),
            ));
        }
        (0..n).map(|_| self.f64()).collect()
    }

    fn bytes_vec(&mut self) -> Result<Vec<u8>, ShardError> {
        let n = self.usize()?;
        if n > self.checked_len(1)? {
            return Err(ShardError::Protocol(
                "byte-string length overruns payload".into(),
            ));
        }
        Ok(self.take(n)?.to_vec())
    }

    fn opt_bytes(&mut self) -> Result<Option<Vec<u8>>, ShardError> {
        if self.bool()? {
            Ok(Some(self.bytes_vec()?))
        } else {
            Ok(None)
        }
    }

    fn finish(&self) -> Result<(), ShardError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ShardError::Protocol("trailing bytes in payload".into()))
        }
    }
}

fn encode_opts(e: &mut Enc, o: &FitOptions) {
    e.usize_slice(&o.ranks);
    e.f64(o.lambda);
    e.usize(o.max_iters);
    e.f64(o.tol);
    e.usize(o.threads);
    match o.schedule {
        Schedule::Static => {
            e.u8(0);
            e.usize(0);
        }
        Schedule::Dynamic { chunk } => {
            e.u8(1);
            e.usize(chunk);
        }
    }
    match o.variant {
        Variant::Default => {
            e.u8(0);
            e.f64(0.0);
        }
        Variant::Cache => {
            e.u8(1);
            e.f64(0.0);
        }
        Variant::Approx { truncation_rate } => {
            e.u8(2);
            e.f64(truncation_rate);
        }
    }
    e.u64(o.seed);
    e.usize(o.budget.budget());
    e.u8(match o.budget.policy() {
        BudgetPolicy::Spill => 0,
        BudgetPolicy::Strict => 1,
    });
    e.bool(o.refit_core);
    e.usize(o.sample_stride);
    e.bool(o.prefetch);
    e.u8(match o.precision {
        StoragePrecision::F64 => 0,
        StoragePrecision::F32 => 1,
    });
    // Checkpointing fields, for codec fidelity. The coordinator strips
    // `checkpoint_path`/`resume_from` from the plans it sends (only the
    // coordinator touches checkpoint files; workers resume from in-plan
    // bytes), so workers only ever see `None` here. Paths travel as
    // UTF-8 (lossily, which is moot for the stripped production path).
    e.usize(o.checkpoint_every);
    e.opt_bytes(
        o.checkpoint_path
            .as_ref()
            .map(|p| p.to_string_lossy().into_owned().into_bytes())
            .as_deref(),
    );
    e.opt_bytes(
        o.resume_from
            .as_ref()
            .map(|p| p.to_string_lossy().into_owned().into_bytes())
            .as_deref(),
    );
}

fn decode_opts(d: &mut Dec<'_>) -> Result<FitOptions, ShardError> {
    let ranks = d.usize_vec()?;
    let lambda = d.f64()?;
    let max_iters = d.usize()?;
    let tol = d.f64()?;
    let threads = d.usize()?;
    let schedule = match (d.u8()?, d.usize()?) {
        (0, _) => Schedule::Static,
        (1, chunk) => Schedule::Dynamic { chunk },
        (t, _) => return Err(ShardError::Protocol(format!("bad schedule tag {t}"))),
    };
    let variant = match (d.u8()?, d.f64()?) {
        (0, _) => Variant::Default,
        (1, _) => Variant::Cache,
        (2, truncation_rate) => Variant::Approx { truncation_rate },
        (t, _) => return Err(ShardError::Protocol(format!("bad variant tag {t}"))),
    };
    let seed = d.u64()?;
    let budget_bytes = d.usize()?;
    let policy = match d.u8()? {
        0 => BudgetPolicy::Spill,
        1 => BudgetPolicy::Strict,
        t => return Err(ShardError::Protocol(format!("bad budget policy tag {t}"))),
    };
    let refit_core = d.bool()?;
    let sample_stride = d.usize()?;
    let prefetch = d.bool()?;
    let precision = match d.u8()? {
        0 => StoragePrecision::F64,
        1 => StoragePrecision::F32,
        t => return Err(ShardError::Protocol(format!("bad precision tag {t}"))),
    };
    let checkpoint_every = d.usize()?;
    let utf8_path = |bytes: Vec<u8>| {
        String::from_utf8(bytes)
            .map_err(|_| ShardError::Protocol("checkpoint path is not UTF-8".into()))
    };
    let checkpoint_path = d.opt_bytes()?.map(utf8_path).transpose()?;
    let resume_from = d.opt_bytes()?.map(utf8_path).transpose()?;
    let mut opts = FitOptions::new(ranks)
        .lambda(lambda)
        .max_iters(max_iters)
        .tol(tol)
        .threads(threads)
        .schedule(schedule)
        .variant(variant)
        .seed(seed)
        .budget(MemoryBudget::with_policy(budget_bytes, policy))
        .refit_core(refit_core)
        .sample_stride(sample_stride)
        .prefetch(prefetch)
        .precision(precision)
        .checkpoint_every(checkpoint_every);
    if let Some(p) = checkpoint_path {
        opts = opts.checkpoint_path(p);
    }
    if let Some(p) = resume_from {
        opts = opts.resume_from(p);
    }
    Ok(opts)
}

impl Message {
    /// Encodes into `(tag, payload)` for the framed transport.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut e = Enc::default();
        let tag = match self {
            Message::Hello {
                version,
                worker_id,
                workers,
            } => {
                e.u32(*version);
                e.u32(*worker_id);
                e.u32(*workers);
                TAG_HELLO
            }
            Message::Plan(p) => {
                encode_opts(&mut e, &p.opts);
                e.usize_slice(&p.dims);
                e.usize_slice(&p.indices);
                e.f64_slice(&p.values);
                e.usize(p.ranges.len());
                for r in &p.ranges {
                    e.usize(r.start);
                    e.usize(r.end);
                }
                e.opt_bytes(p.resume.as_deref());
                e.opt_bytes(p.fault.as_ref().map(|s| s.as_bytes()));
                TAG_PLAN
            }
            Message::ModeStart { iter, mode } => {
                e.u64(*iter);
                e.u32(*mode);
                TAG_MODE_START
            }
            Message::Rows(r) => {
                e.u32(r.mode);
                e.u64(r.lo);
                e.u64(r.hi);
                e.bool(r.ok);
                e.f64_slice(&r.data);
                TAG_ROWS
            }
            Message::FactorSync { mode, ok, data } => {
                e.u32(*mode);
                e.bool(*ok);
                e.f64_slice(data);
                TAG_FACTOR_SYNC
            }
            Message::Stats(s) => {
                e.u64(s.rows_updated);
                e.u64(s.nnz_processed);
                e.f64(s.wall_seconds);
                e.u64(s.bytes_sent);
                e.u64(s.bytes_received);
                TAG_STATS
            }
            Message::Shutdown => TAG_SHUTDOWN,
            Message::Heartbeat => TAG_HEARTBEAT,
            Message::Reassign { ranges } => {
                e.usize(ranges.len());
                for r in ranges {
                    e.usize(r.start);
                    e.usize(r.end);
                }
                TAG_REASSIGN
            }
        };
        (tag, e.0)
    }

    /// Decodes a verified [`Frame`] back into a message.
    ///
    /// # Errors
    /// [`ShardError::Protocol`] on an unknown tag or malformed payload.
    pub fn decode(frame: &Frame) -> Result<Message, ShardError> {
        let mut d = Dec::new(&frame.payload);
        let msg = match frame.tag {
            TAG_HELLO => Message::Hello {
                version: d.u32()?,
                worker_id: d.u32()?,
                workers: d.u32()?,
            },
            TAG_PLAN => {
                let opts = decode_opts(&mut d)?;
                let dims = d.usize_vec()?;
                let indices = d.usize_vec()?;
                let values = d.f64_vec()?;
                let n = d.usize()?;
                let mut ranges = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let start = d.usize()?;
                    let end = d.usize()?;
                    ranges.push(start..end);
                }
                let resume = d.opt_bytes()?;
                let fault = d
                    .opt_bytes()?
                    .map(|b| {
                        String::from_utf8(b)
                            .map_err(|_| ShardError::Protocol("fault spec is not UTF-8".into()))
                    })
                    .transpose()?;
                Message::Plan(Box::new(PlanMsg {
                    opts,
                    dims,
                    indices,
                    values,
                    ranges,
                    resume,
                    fault,
                }))
            }
            TAG_MODE_START => Message::ModeStart {
                iter: d.u64()?,
                mode: d.u32()?,
            },
            TAG_ROWS => Message::Rows(RowsMsg {
                mode: d.u32()?,
                lo: d.u64()?,
                hi: d.u64()?,
                ok: d.bool()?,
                data: d.f64_vec()?,
            }),
            TAG_FACTOR_SYNC => Message::FactorSync {
                mode: d.u32()?,
                ok: d.bool()?,
                data: d.f64_vec()?,
            },
            TAG_STATS => Message::Stats(WorkerStatsMsg {
                rows_updated: d.u64()?,
                nnz_processed: d.u64()?,
                wall_seconds: d.f64()?,
                bytes_sent: d.u64()?,
                bytes_received: d.u64()?,
            }),
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_HEARTBEAT => Message::Heartbeat,
            TAG_REASSIGN => {
                let n = d.usize()?;
                let mut ranges = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let start = d.usize()?;
                    let end = d.usize()?;
                    ranges.push(start..end);
                }
                Message::Reassign { ranges }
            }
            t => return Err(ShardError::Protocol(format!("unknown frame tag {t}"))),
        };
        d.finish()?;
        Ok(msg)
    }

    /// The message's name, for error reporting.
    pub fn name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "Hello",
            Message::Plan(_) => "Plan",
            Message::ModeStart { .. } => "ModeStart",
            Message::Rows(_) => "Rows",
            Message::FactorSync { .. } => "FactorSync",
            Message::Stats(_) => "Stats",
            Message::Shutdown => "Shutdown",
            Message::Heartbeat => "Heartbeat",
            Message::Reassign { .. } => "Reassign",
        }
    }
}

/// Sends one message over a framed channel.
///
/// # Errors
/// Transport I/O failures ([`ShardError::Io`]).
pub fn send<R: Read, W: Write>(chan: &mut Channel<R, W>, msg: &Message) -> Result<(), ShardError> {
    let (tag, payload) = msg.encode();
    chan.send_frame(tag, &payload)?;
    Ok(())
}

/// Receives and decodes one message.
///
/// # Errors
/// Transport I/O failures or a malformed frame.
pub fn recv<R: Read, W: Write>(chan: &mut Channel<R, W>) -> Result<Message, ShardError> {
    Message::decode(&chan.recv_frame()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &Message) {
        let (tag, payload) = msg.encode();
        let back = Message::decode(&Frame { tag, payload }).unwrap();
        assert_eq!(&back, msg);
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip(&Message::Hello {
            version: PROTOCOL_VERSION_FOR_TEST,
            worker_id: 3,
            workers: 4,
        });
        roundtrip(&Message::Plan(Box::new(PlanMsg {
            opts: FitOptions::new(vec![2, 3])
                .lambda(0.02)
                .max_iters(7)
                .tol(1e-6)
                .threads(2)
                .schedule(Schedule::Dynamic { chunk: 5 })
                .variant(Variant::Approx {
                    truncation_rate: 0.25,
                })
                .seed(99)
                .budget(MemoryBudget::with_policy(1 << 20, BudgetPolicy::Strict))
                .refit_core(true)
                .sample_stride(3)
                .prefetch(false)
                .precision(StoragePrecision::F32)
                .checkpoint_every(2)
                .checkpoint_path("/tmp/x.ckpt")
                .resume_from("/tmp/y.ckpt"),
            dims: vec![4, 5],
            indices: vec![0, 1, 3, 4],
            values: vec![1.5, -2.25],
            ranges: vec![0..2, 1..5],
            resume: Some(vec![7, 8, 9]),
            fault: Some("send:rows:1:drop".into()),
        })));
        roundtrip(&Message::ModeStart { iter: 9, mode: 2 });
        roundtrip(&Message::Rows(RowsMsg {
            mode: 1,
            lo: 2,
            hi: 4,
            ok: false,
            data: vec![0.5; 6],
        }));
        roundtrip(&Message::FactorSync {
            mode: 0,
            ok: true,
            data: vec![1.0, 2.0, 3.0],
        });
        roundtrip(&Message::Stats(WorkerStatsMsg {
            rows_updated: 10,
            nnz_processed: 1000,
            wall_seconds: 0.125,
            bytes_sent: 512,
            bytes_received: 256,
        }));
        roundtrip(&Message::Shutdown);
        roundtrip(&Message::Heartbeat);
        roundtrip(&Message::Reassign {
            ranges: vec![0..3, 2..2, 5..9],
        });
    }

    const PROTOCOL_VERSION_FOR_TEST: u32 = crate::PROTOCOL_VERSION;

    #[test]
    fn bad_tags_and_truncation_error() {
        assert!(Message::decode(&Frame {
            tag: 99,
            payload: vec![],
        })
        .is_err());
        let (tag, payload) = Message::ModeStart { iter: 1, mode: 0 }.encode();
        assert!(Message::decode(&Frame {
            tag,
            payload: payload[..payload.len() - 1].to_vec(),
        })
        .is_err());
        // A corrupt vector length must not force a huge allocation.
        let (tag, mut payload) = Message::FactorSync {
            mode: 0,
            ok: true,
            data: vec![1.0],
        }
        .encode();
        payload[5] = 0xff; // inflate the length prefix
        assert!(Message::decode(&Frame { tag, payload }).is_err());
    }
}
