//! Standalone sharded-fit worker: speaks the `ptucker-shard` protocol
//! on stdin/stdout until the coordinator shuts it down.

fn main() {
    if let Err(e) = ptucker_shard::worker_stdio() {
        eprintln!("ptucker-shard-worker: {e}");
        std::process::exit(1);
    }
}
