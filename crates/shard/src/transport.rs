//! The shard side of the shared wire layer.
//!
//! The framed transport itself — length-prefixed checksummed frames,
//! [`ByteCounters`], read deadlines, [`FaultInjector`] — lives in
//! [`ptucker_transport`] so the factor-serving read path
//! (`ptucker-serve`) speaks the identical framing; this module
//! re-exports it wholesale and adds the two shard-specific pieces: the
//! shard protocol version negotiated by `Hello`, and fault-spec parsing
//! bound to the shard message vocabulary
//! ([`crate::protocol::parse_fault_spec`]).

pub use ptucker_transport::{
    fnv1a, ByteCounters, Channel, DeadlineCapable, FaultAction, FaultInjector, FaultPoint,
    FaultRule, Frame,
};

/// Version negotiated by the `Hello` exchange; bumped whenever the frame
/// layout or any message encoding changes. Version 2 added the
/// `Heartbeat` and `Reassign` messages and the plan's `resume`/`fault`
/// fields.
pub const PROTOCOL_VERSION: u32 = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    /// The shard fault-spec grammar must keep resolving shard message
    /// names now that parsing lives behind a resolver seam.
    #[test]
    fn spec_parsing_accepts_the_documented_grammar() {
        let parse = crate::protocol::parse_fault_spec;
        assert!(parse("send:rows:2:drop").is_ok());
        assert!(parse("recv:any:1:corrupt; send:modestart:3:delay:250").is_ok());
        assert!(parse("send:rows:1:kill").is_ok());
        // Malformed specs name the offending rule.
        assert!(parse("sideways:rows:1:drop").is_err());
        assert!(parse("send:nosuchmsg:1:drop").is_err());
        assert!(parse("send:rows:0:drop").is_err());
        assert!(parse("send:rows:1:delay").is_err());
        assert!(parse("send:rows:1:explode").is_err());
    }

    /// Golden-bytes regression for the protocol-v2 frame layout: the
    /// transport extraction must not have changed a single wire byte.
    /// `[len: u32 LE][tag][payload][fnv1a(tag ‖ payload): u64 LE]`.
    #[test]
    fn frame_layout_is_bitwise_unchanged_after_the_transport_move() {
        let mut wire = Vec::new();
        Channel::new(io::empty(), &mut wire)
            .send_frame(4, &[0xde, 0xad, 0xbe, 0xef])
            .unwrap();
        let mut expected = vec![5, 0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef];
        expected.extend_from_slice(&fnv1a(&[4, 0xde, 0xad, 0xbe, 0xef]).to_le_bytes());
        assert_eq!(wire, expected);
        // And two published FNV-1a 64 vectors, so a silent change to the
        // hash parameters cannot slip through either.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    /// Shard protocol v2 messages round-trip unchanged through the
    /// extracted transport.
    #[test]
    fn protocol_v2_roundtrips_through_the_shared_transport() {
        use crate::protocol::Message;
        let msgs = [
            Message::Hello {
                version: PROTOCOL_VERSION,
                worker_id: 3,
                workers: 4,
            },
            Message::ModeStart { iter: 2, mode: 1 },
            Message::Heartbeat,
            Message::Shutdown,
        ];
        let mut wire = Vec::new();
        {
            let mut tx = Channel::new(io::empty(), &mut wire);
            for m in &msgs {
                crate::protocol::send(&mut tx, m).unwrap();
            }
        }
        let mut rx = Channel::new(wire.as_slice(), io::sink());
        for m in &msgs {
            assert_eq!(&crate::protocol::recv(&mut rx).unwrap(), m);
        }
    }
}
