//! Length-prefixed framed transport with checksums and byte accounting.
//!
//! A frame is `[len: u32 LE] [tag: u8] [payload: len-1 bytes]
//! [checksum: u64 LE]` where `len` counts the tag plus the payload and
//! the checksum is FNV-1a 64 over them. The framing carries no type
//! information beyond the tag — message bodies are encoded by
//! [`crate::protocol`] — and no compression: the steady-state traffic is
//! factor rows (`O(I_n·J)` doubles per mode), which are already dense.
//!
//! [`Channel`] works over any `Read`/`Write` pair — the stdin/stdout
//! pipes of a spawned worker, or a [`std::os::unix::net::UnixStream`]
//! for in-process thread workers — and counts bytes both ways through
//! shared [`ByteCounters`], so the coordinator can report comms volume
//! (`FitStats::bytes_sent`/`bytes_received`) even after the channel has
//! been moved onto its background I/O thread.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version negotiated by the `Hello` exchange; bumped whenever the frame
/// layout or any message encoding changes.
pub const PROTOCOL_VERSION: u32 = 1;

/// Frames larger than this are rejected as corruption before any
/// allocation happens (1 GiB — far beyond any factor or plan message
/// this crate produces).
const MAX_FRAME_BYTES: u32 = 1 << 30;

/// FNV-1a 64-bit over `bytes` — cheap, allocation-free, and plenty for
/// catching framing bugs and torn pipes (this is an integrity check, not
/// an authenticity one).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Monotonic sent/received byte totals of one [`Channel`], shared by
/// reference so they stay readable after the channel moves to a
/// background I/O thread.
#[derive(Debug, Clone, Default)]
pub struct ByteCounters {
    sent: Arc<AtomicU64>,
    received: Arc<AtomicU64>,
}

impl ByteCounters {
    /// Total bytes written so far, framing included.
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Total bytes read so far, framing included.
    pub fn received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }
}

/// One framed, checksummed, byte-counted duplex connection.
#[derive(Debug)]
pub struct Channel<R, W> {
    reader: R,
    writer: W,
    counters: ByteCounters,
    /// Reusable frame staging buffer (one allocation per connection, not
    /// per message).
    buf: Vec<u8>,
}

/// A raw frame: the tag byte plus its payload, checksum already
/// verified.
#[derive(Debug)]
pub struct Frame {
    /// The message tag (see [`crate::protocol`]).
    pub tag: u8,
    /// The encoded message body.
    pub payload: Vec<u8>,
}

impl<R: Read, W: Write> Channel<R, W> {
    /// Wraps a `Read`/`Write` pair with fresh byte counters.
    pub fn new(reader: R, writer: W) -> Self {
        Channel {
            reader,
            writer,
            counters: ByteCounters::default(),
            buf: Vec::new(),
        }
    }

    /// A shared handle to this channel's byte counters.
    pub fn counters(&self) -> ByteCounters {
        self.counters.clone()
    }

    /// Writes one frame (single `write_all` + flush, so a frame is never
    /// interleaved with another writer's bytes).
    ///
    /// # Errors
    /// Propagates transport I/O failures.
    pub fn send_frame(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(1 + payload.len())
            .ok()
            .filter(|&l| l <= MAX_FRAME_BYTES)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
        self.buf.clear();
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.push(tag);
        self.buf.extend_from_slice(payload);
        let sum = fnv1a(&self.buf[4..]);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.writer.write_all(&self.buf)?;
        self.writer.flush()?;
        self.counters
            .sent
            .fetch_add(self.buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Reads one frame, verifying length bounds and the checksum.
    ///
    /// # Errors
    /// Transport I/O failures, `UnexpectedEof` on a closed peer, or
    /// `InvalidData` on a corrupt frame.
    pub fn recv_frame(&mut self) -> io::Result<Frame> {
        let mut head = [0u8; 4];
        self.reader.read_exact(&mut head)?;
        let len = u32::from_le_bytes(head);
        if len == 0 || len > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame length {len}"),
            ));
        }
        self.buf.clear();
        self.buf.resize(len as usize, 0);
        self.reader.read_exact(&mut self.buf)?;
        let mut sum = [0u8; 8];
        self.reader.read_exact(&mut sum)?;
        if fnv1a(&self.buf) != u64::from_le_bytes(sum) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame checksum mismatch",
            ));
        }
        self.counters
            .received
            .fetch_add(4 + u64::from(len) + 8, Ordering::Relaxed);
        Ok(Frame {
            tag: self.buf[0],
            payload: self.buf[1..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(tag: u8, payload: &[u8]) -> Frame {
        let mut wire = Vec::new();
        {
            let mut tx = Channel::new(io::empty(), &mut wire);
            tx.send_frame(tag, payload).unwrap();
            assert_eq!(tx.counters().sent(), wire.len() as u64);
        }
        let mut rx = Channel::new(wire.as_slice(), io::sink());
        let f = rx.recv_frame().unwrap();
        assert_eq!(rx.counters().received(), wire.len() as u64);
        f
    }

    #[test]
    fn frame_roundtrip() {
        let f = roundtrip(7, b"hello shard");
        assert_eq!(f.tag, 7);
        assert_eq!(f.payload, b"hello shard");
        let empty = roundtrip(1, b"");
        assert_eq!(empty.tag, 1);
        assert!(empty.payload.is_empty());
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let mut wire = Vec::new();
        Channel::new(io::empty(), &mut wire)
            .send_frame(3, b"abcdef")
            .unwrap();
        wire[7] ^= 0x40; // flip a payload bit
        let err = Channel::new(wire.as_slice(), io::sink())
            .recv_frame()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut wire = Vec::new();
        Channel::new(io::empty(), &mut wire)
            .send_frame(3, b"abcdef")
            .unwrap();
        wire.truncate(wire.len() - 3);
        let err = Channel::new(wire.as_slice(), io::sink())
            .recv_frame()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn absurd_length_is_rejected_before_allocation() {
        let wire = u32::MAX.to_le_bytes();
        let err = Channel::new(wire.as_slice(), io::sink())
            .recv_frame()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
