//! The worker side of a sharded fit: a full deterministic fit replica
//! whose row sweeps are restricted to the shard it owns.
//!
//! A worker does **not** receive factors, plans or windows — it receives
//! the COO tensor and the fit options once ([`crate::protocol::Message::Plan`])
//! and rebuilds everything locally: the same seeded RNG produces the
//! same initial factors and core on every process, the same plan builder
//! produces the same execution plan, and the replicated error pass
//! (needing only COO and the model) produces the same convergence
//! decisions. The only
//! divergence is which rows each process updates — repaired every mode
//! by the `Rows`/`FactorSync` all-reduce — which is what makes a
//! K-shard fit bitwise identical to the single-process one.
//!
//! Fault tolerance adds three things on this side:
//!
//! - **Heartbeats**: at every receive point, a [`Message::Heartbeat`] is
//!   echoed straight back and the expected message awaited again — that
//!   is how the coordinator distinguishes a slow worker (echo arrives)
//!   from a dead one (pipe error) or a hung one (silence).
//! - **Reassignment**: a [`Message::Reassign`] received while awaiting
//!   `FactorSync` replaces the worker's owned row ranges in place — the
//!   coordinator widens a survivor's shard to absorb a dead neighbour's
//!   rows mid-fit.
//! - **Resume**: a plan may carry an encoded
//!   [`ptucker::FitCheckpoint`]; the worker then joins an in-flight fit
//!   at the checkpoint's iteration instead of iteration 0 (how a
//!   respawned replacement catches up bitwise).

use crate::protocol::{self, Message, PlanMsg, RowsMsg, WorkerStatsMsg};
use crate::transport::Channel;
use crate::{ShardError, PROTOCOL_VERSION};
use ptucker::sync::FitSync;
use ptucker::{FitCheckpoint, FitResult, FitStats, PTucker, PtuckerError};
use ptucker_linalg::LinalgError;
use ptucker_tensor::SparseTensor;
use std::io::{Read, Write};
use std::ops::Range;
use std::time::Instant;

/// Converts a transport/protocol failure into the fit error the hooks
/// must return.
fn sync_err(e: ShardError) -> PtuckerError {
    PtuckerError::Sync(e.to_string())
}

/// The error every process returns when **some** shard's row solve
/// failed — the same error a single-process fit returns from its own
/// failed solve, so sharding preserves error semantics.
pub(crate) fn solve_failure() -> PtuckerError {
    PtuckerError::Linalg(LinalgError::Singular { pivot: 0 })
}

pub(crate) fn unexpected(expected: &str, got: &Message) -> ShardError {
    ShardError::Protocol(format!("expected {expected}, got {}", got.name()))
}

/// Observed entries in the owned range, per mode — a sweep of mode `m`
/// touches exactly this many stream positions. Recomputed after a
/// reassignment widens the shard.
fn ranges_nnz(x: &SparseTensor, ranges: &[Range<usize>]) -> Vec<u64> {
    (0..x.order())
        .map(|m| ranges[m].clone().map(|i| x.slice_len(m, i) as u64).sum())
        .collect()
}

/// [`FitSync`] implementation driving one worker's fit replica.
struct WorkerSync<'a, R: Read, W: Write> {
    chan: &'a mut Channel<R, W>,
    x: &'a SparseTensor,
    /// Owned row range per mode.
    ranges: Vec<Range<usize>>,
    /// Precomputed per-mode owned-entry counts (see [`ranges_nnz`]).
    mode_nnz: Vec<u64>,
    rows_updated: u64,
    nnz_processed: u64,
    t_start: Instant,
}

impl<R: Read, W: Write> WorkerSync<'_, R, W> {
    /// Receives the next fit-protocol message, transparently servicing
    /// control traffic: heartbeats are echoed (liveness probes must not
    /// desynchronise the fit conversation) and reassignments are applied
    /// in place, then the wait resumes.
    fn recv_expected(&mut self) -> Result<Message, ShardError> {
        loop {
            match protocol::recv(self.chan)? {
                Message::Heartbeat => protocol::send(self.chan, &Message::Heartbeat)?,
                Message::Reassign { ranges } => self.apply_reassign(ranges)?,
                m => return Ok(m),
            }
        }
    }

    /// Installs a widened shard sent by the coordinator after a peer
    /// died. Validated like the original plan's ranges; `mode_nnz` is
    /// recomputed so the stats stay honest.
    fn apply_reassign(&mut self, ranges: Vec<Range<usize>>) -> Result<(), ShardError> {
        validate_shard_ranges(self.x, &ranges)?;
        self.mode_nnz = ranges_nnz(self.x, &ranges);
        self.ranges = ranges;
        Ok(())
    }
}

/// Checks a per-mode range vector against the tensor's dimensions.
fn validate_shard_ranges(x: &SparseTensor, ranges: &[Range<usize>]) -> Result<(), ShardError> {
    if ranges.len() != x.order() {
        return Err(ShardError::Protocol(format!(
            "{} shard ranges for an order-{} tensor",
            ranges.len(),
            x.order()
        )));
    }
    for (m, r) in ranges.iter().enumerate() {
        if r.start > r.end || r.end > x.dims()[m] {
            return Err(ShardError::Protocol(format!(
                "shard range {r:?} out of bounds for mode {m} ({} rows)",
                x.dims()[m]
            )));
        }
    }
    Ok(())
}

impl<R: Read, W: Write> FitSync for WorkerSync<'_, R, W> {
    fn begin_mode(&mut self, iter: usize, mode: usize) -> ptucker::Result<()> {
        match self.recv_expected().map_err(sync_err)? {
            Message::ModeStart { iter: i, mode: m }
                if i == iter as u64 && m == mode as u32 =>
            {
                Ok(())
            }
            Message::ModeStart { iter: i, mode: m } => Err(PtuckerError::Sync(format!(
                "lockstep broken: coordinator at iter {i} mode {m}, worker at iter {iter} mode {mode}"
            ))),
            m => Err(sync_err(unexpected("ModeStart", &m))),
        }
    }

    fn row_range(&mut self, mode: usize, rows: usize) -> Range<usize> {
        let r = self.ranges[mode].clone();
        debug_assert!(
            r.end <= rows,
            "owned range validated against dims at startup"
        );
        let _ = rows;
        self.rows_updated += (r.end - r.start) as u64;
        self.nnz_processed += self.mode_nnz[mode];
        r
    }

    fn sync_factor(
        &mut self,
        mode: usize,
        j_n: usize,
        data: &mut [f64],
        local_ok: bool,
        _resweep: &mut ptucker::sync::Resweep<'_>,
    ) -> ptucker::Result<()> {
        let r = self.ranges[mode].clone();
        protocol::send(
            self.chan,
            &Message::Rows(RowsMsg {
                mode: mode as u32,
                lo: r.start as u64,
                hi: r.end as u64,
                ok: local_ok,
                data: data[r.start * j_n..r.end * j_n].to_vec(),
            }),
        )
        .map_err(sync_err)?;
        // A Reassign, if one is coming this mode, arrives *before* the
        // FactorSync — recv_expected applies it, so the widened shard is
        // in place before the next mode's row_range is consulted.
        match self.recv_expected().map_err(sync_err)? {
            Message::FactorSync {
                mode: m,
                ok,
                data: merged,
            } if m == mode as u32 => {
                if !ok {
                    return Err(solve_failure());
                }
                if merged.len() != data.len() {
                    return Err(PtuckerError::Sync(format!(
                        "merged factor has {} doubles, expected {}",
                        merged.len(),
                        data.len()
                    )));
                }
                data.copy_from_slice(&merged);
                Ok(())
            }
            m => Err(sync_err(unexpected("FactorSync", &m))),
        }
    }

    fn finish(&mut self, stats: &mut FitStats) -> ptucker::Result<()> {
        let counters = self.chan.counters();
        stats.bytes_sent = counters.sent();
        stats.bytes_received = counters.received();
        protocol::send(
            self.chan,
            &Message::Stats(WorkerStatsMsg {
                rows_updated: self.rows_updated,
                nnz_processed: self.nnz_processed,
                wall_seconds: self.t_start.elapsed().as_secs_f64(),
                bytes_sent: counters.sent(),
                bytes_received: counters.received(),
            }),
        )
        .map_err(sync_err)?;
        match self.recv_expected().map_err(sync_err)? {
            Message::Shutdown => Ok(()),
            m => Err(sync_err(unexpected("Shutdown", &m))),
        }
    }
}

/// Runs the worker protocol to completion over an established transport:
/// handshake, plan receipt, the sharded fit replica, stats, shutdown.
/// This is the entire worker — the same function serves a spawned
/// process (stdin/stdout pipes) and an in-process thread worker (a Unix
/// socket pair), which is what lets the thread transport property-test
/// the byte protocol itself.
///
/// # Errors
/// Transport/protocol failures, or any error of the underlying fit.
pub fn worker_loop<R: Read, W: Write>(reader: R, writer: W) -> Result<FitResult, ShardError> {
    let mut chan = Channel::new(reader, writer);
    let (worker_id, workers) = match protocol::recv(&mut chan)? {
        Message::Hello {
            version,
            worker_id,
            workers,
        } => {
            if version != PROTOCOL_VERSION {
                return Err(ShardError::Protocol(format!(
                    "protocol version mismatch: coordinator {version}, worker {PROTOCOL_VERSION}"
                )));
            }
            (worker_id, workers)
        }
        m => return Err(unexpected("Hello", &m)),
    };
    protocol::send(
        &mut chan,
        &Message::Hello {
            version: PROTOCOL_VERSION,
            worker_id,
            workers,
        },
    )?;
    let mut plan = match protocol::recv(&mut chan)? {
        Message::Plan(p) => p,
        m => return Err(unexpected("Plan", &m)),
    };
    // Chaos harness: a plan may carry a fault spec for *this* worker.
    // Installed after the handshake so the rule counters start at the
    // first fit-protocol frame (ModeStart is recv #1).
    if let Some(spec) = plan.fault.take() {
        let inj = protocol::parse_fault_spec(&spec).map_err(ShardError::Protocol)?;
        chan.inject_faults(inj);
    }
    run_shard(&mut chan, *plan)
}

/// Rebuilds the tensor and runs the restricted fit replica.
fn run_shard<R: Read, W: Write>(
    chan: &mut Channel<R, W>,
    plan: PlanMsg,
) -> Result<FitResult, ShardError> {
    let t_start = Instant::now();
    let PlanMsg {
        opts,
        dims,
        indices,
        values,
        ranges,
        resume,
        fault: _,
    } = plan;
    let x =
        SparseTensor::from_flat(dims, indices, values).map_err(|e| ShardError::Fit(e.into()))?;
    validate_shard_ranges(&x, &ranges)?;
    let resume_ckpt = match resume {
        Some(bytes) => Some(FitCheckpoint::decode(&bytes).map_err(ShardError::Fit)?),
        None => None,
    };
    let mode_nnz = ranges_nnz(&x, &ranges);
    let solver = PTucker::new(opts).map_err(ShardError::Fit)?;
    let mut sync = WorkerSync {
        chan,
        x: &x,
        ranges,
        mode_nnz,
        rows_updated: 0,
        nnz_processed: 0,
        t_start,
    };
    solver
        .fit_with_sync_resume(&x, &mut sync, resume_ckpt)
        .map_err(ShardError::Fit)
}
