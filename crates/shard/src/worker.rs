//! The worker side of a sharded fit: a full deterministic fit replica
//! whose row sweeps are restricted to the shard it owns.
//!
//! A worker does **not** receive factors, plans or windows — it receives
//! the COO tensor and the fit options once ([`crate::protocol::Message::Plan`])
//! and rebuilds everything locally: the same seeded RNG produces the
//! same initial factors and core on every process, the same plan builder
//! produces the same execution plan, and the replicated error pass
//! (needing only COO and the model) produces the same convergence
//! decisions. The only
//! divergence is which rows each process updates — repaired every mode
//! by the `Rows`/`FactorSync` all-reduce — which is what makes a
//! K-shard fit bitwise identical to the single-process one.

use crate::protocol::{self, Message, PlanMsg, RowsMsg, WorkerStatsMsg};
use crate::transport::Channel;
use crate::{ShardError, PROTOCOL_VERSION};
use ptucker::sync::FitSync;
use ptucker::{FitResult, FitStats, PTucker, PtuckerError};
use ptucker_linalg::LinalgError;
use ptucker_tensor::SparseTensor;
use std::io::{Read, Write};
use std::ops::Range;
use std::time::Instant;

/// Converts a transport/protocol failure into the fit error the hooks
/// must return.
fn sync_err(e: ShardError) -> PtuckerError {
    PtuckerError::Sync(e.to_string())
}

/// The error every process returns when **some** shard's row solve
/// failed — the same error a single-process fit returns from its own
/// failed solve, so sharding preserves error semantics.
pub(crate) fn solve_failure() -> PtuckerError {
    PtuckerError::Linalg(LinalgError::Singular { pivot: 0 })
}

pub(crate) fn unexpected(expected: &str, got: &Message) -> ShardError {
    ShardError::Protocol(format!("expected {expected}, got {}", got.name()))
}

/// [`FitSync`] implementation driving one worker's fit replica.
struct WorkerSync<'a, R: Read, W: Write> {
    chan: &'a mut Channel<R, W>,
    /// Owned row range per mode.
    ranges: Vec<Range<usize>>,
    /// Observed entries in the owned range, per mode (precomputed; a
    /// sweep of mode `m` touches exactly this many stream positions).
    mode_nnz: Vec<u64>,
    rows_updated: u64,
    nnz_processed: u64,
    t_start: Instant,
}

impl<R: Read, W: Write> FitSync for WorkerSync<'_, R, W> {
    fn begin_mode(&mut self, iter: usize, mode: usize) -> ptucker::Result<()> {
        match protocol::recv(self.chan).map_err(sync_err)? {
            Message::ModeStart { iter: i, mode: m }
                if i == iter as u64 && m == mode as u32 =>
            {
                Ok(())
            }
            Message::ModeStart { iter: i, mode: m } => Err(PtuckerError::Sync(format!(
                "lockstep broken: coordinator at iter {i} mode {m}, worker at iter {iter} mode {mode}"
            ))),
            m => Err(sync_err(unexpected("ModeStart", &m))),
        }
    }

    fn row_range(&mut self, mode: usize, rows: usize) -> Range<usize> {
        let r = self.ranges[mode].clone();
        debug_assert!(
            r.end <= rows,
            "owned range validated against dims at startup"
        );
        let _ = rows;
        self.rows_updated += (r.end - r.start) as u64;
        self.nnz_processed += self.mode_nnz[mode];
        r
    }

    fn sync_factor(
        &mut self,
        mode: usize,
        j_n: usize,
        data: &mut [f64],
        local_ok: bool,
    ) -> ptucker::Result<()> {
        let r = &self.ranges[mode];
        protocol::send(
            self.chan,
            &Message::Rows(RowsMsg {
                mode: mode as u32,
                lo: r.start as u64,
                hi: r.end as u64,
                ok: local_ok,
                data: data[r.start * j_n..r.end * j_n].to_vec(),
            }),
        )
        .map_err(sync_err)?;
        match protocol::recv(self.chan).map_err(sync_err)? {
            Message::FactorSync {
                mode: m,
                ok,
                data: merged,
            } if m == mode as u32 => {
                if !ok {
                    return Err(solve_failure());
                }
                if merged.len() != data.len() {
                    return Err(PtuckerError::Sync(format!(
                        "merged factor has {} doubles, expected {}",
                        merged.len(),
                        data.len()
                    )));
                }
                data.copy_from_slice(&merged);
                Ok(())
            }
            m => Err(sync_err(unexpected("FactorSync", &m))),
        }
    }

    fn finish(&mut self, stats: &mut FitStats) -> ptucker::Result<()> {
        let counters = self.chan.counters();
        stats.bytes_sent = counters.sent();
        stats.bytes_received = counters.received();
        protocol::send(
            self.chan,
            &Message::Stats(WorkerStatsMsg {
                rows_updated: self.rows_updated,
                nnz_processed: self.nnz_processed,
                wall_seconds: self.t_start.elapsed().as_secs_f64(),
                bytes_sent: counters.sent(),
                bytes_received: counters.received(),
            }),
        )
        .map_err(sync_err)?;
        match protocol::recv(self.chan).map_err(sync_err)? {
            Message::Shutdown => Ok(()),
            m => Err(sync_err(unexpected("Shutdown", &m))),
        }
    }
}

/// Runs the worker protocol to completion over an established transport:
/// handshake, plan receipt, the sharded fit replica, stats, shutdown.
/// This is the entire worker — the same function serves a spawned
/// process (stdin/stdout pipes) and an in-process thread worker (a Unix
/// socket pair), which is what lets the thread transport property-test
/// the byte protocol itself.
///
/// # Errors
/// Transport/protocol failures, or any error of the underlying fit.
pub fn worker_loop<R: Read, W: Write>(reader: R, writer: W) -> Result<FitResult, ShardError> {
    let mut chan = Channel::new(reader, writer);
    let (worker_id, workers) = match protocol::recv(&mut chan)? {
        Message::Hello {
            version,
            worker_id,
            workers,
        } => {
            if version != PROTOCOL_VERSION {
                return Err(ShardError::Protocol(format!(
                    "protocol version mismatch: coordinator {version}, worker {PROTOCOL_VERSION}"
                )));
            }
            (worker_id, workers)
        }
        m => return Err(unexpected("Hello", &m)),
    };
    protocol::send(
        &mut chan,
        &Message::Hello {
            version: PROTOCOL_VERSION,
            worker_id,
            workers,
        },
    )?;
    let plan = match protocol::recv(&mut chan)? {
        Message::Plan(p) => p,
        m => return Err(unexpected("Plan", &m)),
    };
    run_shard(&mut chan, plan)
}

/// Rebuilds the tensor and runs the restricted fit replica.
fn run_shard<R: Read, W: Write>(
    chan: &mut Channel<R, W>,
    plan: PlanMsg,
) -> Result<FitResult, ShardError> {
    let t_start = Instant::now();
    let PlanMsg {
        opts,
        dims,
        indices,
        values,
        ranges,
    } = plan;
    let x =
        SparseTensor::from_flat(dims, indices, values).map_err(|e| ShardError::Fit(e.into()))?;
    if ranges.len() != x.order() {
        return Err(ShardError::Protocol(format!(
            "{} shard ranges for an order-{} tensor",
            ranges.len(),
            x.order()
        )));
    }
    for (m, r) in ranges.iter().enumerate() {
        if r.start > r.end || r.end > x.dims()[m] {
            return Err(ShardError::Protocol(format!(
                "shard range {r:?} out of bounds for mode {m} ({} rows)",
                x.dims()[m]
            )));
        }
    }
    let mode_nnz = (0..x.order())
        .map(|m| ranges[m].clone().map(|i| x.slice_len(m, i) as u64).sum())
        .collect();
    let solver = PTucker::new(opts).map_err(ShardError::Fit)?;
    let mut sync = WorkerSync {
        chan,
        ranges,
        mode_nnz,
        rows_updated: 0,
        nnz_processed: 0,
        t_start,
    };
    solver.fit_with_sync(&x, &mut sync).map_err(ShardError::Fit)
}
