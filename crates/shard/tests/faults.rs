//! Fault-tolerance acceptance for sharded fits: workers that are
//! SIGKILLed, stalled, or fed corrupted frames mid-fit must either
//! surface a *typed* error promptly (no policy) or be survived with a
//! **bitwise identical** result (with a [`FaultPolicy`]) — for every
//! kernel variant, resident and spilled placement, and both recovery
//! strategies. Checkpoint–resume must likewise continue a sharded fit
//! bitwise.

use proptest::prelude::*;
use ptucker::{FitOptions, FitResult, MemoryBudget, PTucker, Variant};
use ptucker_shard::protocol::{self, Message};
use ptucker_shard::{
    worker_loop, Channel, FaultPolicy, Recovery, ShardError, ShardedFit, WorkerSpawn,
    PROTOCOL_VERSION,
};
use ptucker_tensor::SparseTensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// The dedicated worker binary, built alongside this test. Kill faults
/// take the whole process down, so chaos tests need real processes.
fn worker_bin() -> WorkerSpawn {
    WorkerSpawn::Binary(env!("CARGO_BIN_EXE_ptucker-shard-worker").into())
}

fn planted(seed: u64) -> SparseTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    ptucker_datagen::planted_lowrank(&[14, 12, 10], &[2, 2, 2], 700, 0.01, &mut rng).tensor
}

fn base_opts() -> FitOptions {
    FitOptions::new(vec![2, 2, 2])
        .max_iters(3)
        .tol(0.0)
        .threads(2)
        .seed(17)
}

/// Deadlines tight enough that an injected stall is condemned in well
/// under a second, but generous enough that an honestly busy worker on
/// a loaded CI machine is never condemned by accident.
fn policy(recovery: Recovery) -> FaultPolicy {
    FaultPolicy {
        frame_timeout: Duration::from_millis(2_000),
        worker_retries: 2,
        backoff: Duration::from_millis(100),
        recovery,
    }
}

fn assert_bitwise(a: &FitResult, b: &FitResult, tag: &str) {
    assert_eq!(
        a.stats.iterations.len(),
        b.stats.iterations.len(),
        "{tag}: iteration count"
    );
    for (ia, ib) in a.stats.iterations.iter().zip(&b.stats.iterations) {
        assert_eq!(
            ia.reconstruction_error.to_bits(),
            ib.reconstruction_error.to_bits(),
            "{tag}: error at iter {}",
            ia.iter
        );
    }
    assert_eq!(
        a.stats.final_error.to_bits(),
        b.stats.final_error.to_bits(),
        "{tag}: final error"
    );
    for (m, (fa, fb)) in a
        .decomposition
        .factors
        .iter()
        .zip(&b.decomposition.factors)
        .enumerate()
    {
        for (va, vb) in fa.as_slice().iter().zip(fb.as_slice()) {
            assert_eq!(va.to_bits(), vb.to_bits(), "{tag}: factor {m} drift");
        }
    }
    for (va, vb) in a
        .decomposition
        .core
        .values()
        .iter()
        .zip(b.decomposition.core.values())
    {
        assert_eq!(va.to_bits(), vb.to_bits(), "{tag}: core drift");
    }
}

/// Malformed fault specs are rejected before any worker is spawned.
#[test]
fn bad_fault_specs_are_rejected_up_front() {
    let x = planted(90);
    let err = ShardedFit::new(2, worker_bin())
        .inject_fault(0, "sideways:rows:1:drop")
        .fit(&x, base_opts())
        .expect_err("bad point must be rejected");
    assert!(matches!(err, ShardError::Protocol(_)), "got {err}");
    let err = ShardedFit::new(2, worker_bin())
        .inject_fault(7, "send:rows:1:drop")
        .fit(&x, base_opts())
        .expect_err("out-of-range worker must be rejected");
    assert!(
        err.to_string().contains("worker 7"),
        "error must name the worker: {err}"
    );
}

/// A coordinator speaking a future protocol version gets a named
/// version-mismatch error from the worker, not a panic or garbage.
#[test]
fn wrong_protocol_version_is_named_not_panicked() {
    let (ours, theirs) = std::os::unix::net::UnixStream::pair().unwrap();
    let reader = theirs.try_clone().unwrap();
    let worker = std::thread::spawn(move || worker_loop(reader, theirs));
    let mut chan = Channel::new(ours.try_clone().unwrap(), ours);
    protocol::send(
        &mut chan,
        &Message::Hello {
            version: PROTOCOL_VERSION + 1,
            worker_id: 0,
            workers: 1,
        },
    )
    .unwrap();
    let err = worker.join().unwrap().expect_err("worker must refuse");
    match err {
        ShardError::Protocol(msg) => {
            assert!(msg.contains("version mismatch"), "unhelpful error: {msg}")
        }
        other => panic!("expected a protocol error, got {other}"),
    }
}

/// Regression: without a policy, a worker SIGKILLed between receiving
/// `ModeStart` and sending `Rows` must fail the fit *promptly* with a
/// typed, attributed error — the old teardown deadlocked joining the
/// I/O thread against the half-closed pipe.
#[test]
fn sigkilled_worker_without_policy_fails_fast_and_typed() {
    let x = planted(91);
    // The worker SIGKILLs itself upon receiving the 2nd ModeStart —
    // after the handshake, mid-fit, before answering with Rows.
    let err = ShardedFit::new(2, worker_bin())
        .inject_fault(1, "recv:modestart:2:kill")
        .fit(&x, base_opts())
        .expect_err("a dead worker without a policy must fail the fit");
    match &err {
        ShardError::Worker { worker, .. } => assert_eq!(*worker, 1, "wrong worker blamed: {err}"),
        other => panic!("expected an attributed worker error, got {other}"),
    }
}

/// Tentpole acceptance (reassign): a worker SIGKILLed mid-fit is
/// detected, its rows are re-swept by the coordinator and then handed
/// to an adjacent survivor — and the fit is bitwise identical to the
/// undisturbed single-process fit.
#[test]
fn sigkilled_worker_recovers_bitwise_via_reassign() {
    let x = planted(92);
    let opts = base_opts().variant(Variant::Cache);
    let solo = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
    let out = ShardedFit::new(3, worker_bin())
        .fault_policy(policy(Recovery::Reassign))
        .inject_fault(1, "recv:modestart:2:kill")
        .fit(&x, opts)
        .expect("the fit must survive the death");
    assert_bitwise(&solo, &out.fit, "reassign");
    assert!(
        out.recovered.iter().any(|r| r.contains("worker 1 removed")),
        "recovery log must name the death: {:?}",
        out.recovered
    );
    assert!(
        out.recovered.iter().any(|r| r.contains("reassigned")),
        "recovery log must record the reassignment: {:?}",
        out.recovered
    );
}

/// Tentpole acceptance (respawn): the dead worker's replacement is
/// seeded from an in-memory checkpoint at the end of the iteration,
/// rejoins in lockstep, and the fit is bitwise identical. The
/// replacement also reports stats again at the end.
#[test]
fn sigkilled_worker_recovers_bitwise_via_respawn() {
    let x = planted(93);
    let opts = base_opts().variant(Variant::Cache);
    let solo = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
    let out = ShardedFit::new(2, worker_bin())
        .fault_policy(policy(Recovery::Respawn))
        .inject_fault(0, "recv:modestart:2:kill")
        .fit(&x, opts)
        .expect("the fit must survive the death");
    assert_bitwise(&solo, &out.fit, "respawn");
    assert!(
        out.recovered.iter().any(|r| r.contains("respawned")),
        "recovery log must record the respawn: {:?}",
        out.recovered
    );
    assert_eq!(
        out.worker_stats.len(),
        2,
        "the respawned worker must report stats"
    );
}

/// A *hung* worker — alive, pipe open, accepting heartbeats, but not
/// answering — must trip `frame_timeout` and be recovered from, not
/// block the fit forever. The stall is injected as a 60 s delay on the
/// worker's next receive; the policy condemns it in under a second.
#[test]
fn stalled_worker_trips_frame_timeout() {
    let x = planted(94);
    let opts = base_opts();
    let solo = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
    let tight = FaultPolicy {
        frame_timeout: Duration::from_millis(150),
        worker_retries: 1,
        backoff: Duration::ZERO,
        recovery: Recovery::Reassign,
    };
    let out = ShardedFit::new(2, worker_bin())
        .fault_policy(tight)
        .inject_fault(1, "recv:factorsync:2:delay:60000")
        .fit(&x, opts)
        .expect("the fit must survive the stall");
    assert_bitwise(&solo, &out.fit, "stall");
    assert!(
        out.recovered
            .iter()
            .any(|r| r.contains("timed out") && r.contains("worker 1")),
        "recovery log must record the timeout: {:?}",
        out.recovered
    );
}

/// A worker whose `Rows` frame is silently dropped looks identical to a
/// hung worker from the coordinator's side (it even echoes heartbeat
/// probes, since it is alive and blocked on FactorSync) — the bounded
/// revive budget must still condemn it.
#[test]
fn dropped_rows_frame_is_condemned_despite_heartbeat_echoes() {
    let x = planted(95);
    let opts = base_opts();
    let solo = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
    let tight = FaultPolicy {
        frame_timeout: Duration::from_millis(150),
        worker_retries: 1,
        backoff: Duration::ZERO,
        recovery: Recovery::Reassign,
    };
    let out = ShardedFit::new(2, worker_bin())
        .fault_policy(tight)
        .inject_fault(0, "send:rows:3:drop")
        .fit(&x, opts)
        .expect("the fit must survive the dropped frame");
    assert_bitwise(&solo, &out.fit, "dropped-rows");
    assert!(!out.recovered.is_empty(), "the drop must be recovered from");
}

/// A corrupted frame (bit flipped in flight, caught by the checksum)
/// names itself as a transport error and is recovered from like any
/// other death of that worker.
#[test]
fn corrupted_frame_is_recovered_from() {
    let x = planted(96);
    let opts = base_opts();
    let solo = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
    let out = ShardedFit::new(2, worker_bin())
        .fault_policy(policy(Recovery::Reassign))
        .inject_fault(1, "recv:factorsync:2:corrupt")
        .fit(&x, opts)
        .expect("the fit must survive the corruption");
    assert_bitwise(&solo, &out.fit, "corrupt");
    assert!(!out.recovered.is_empty());
}

/// Interrupt a *sharded* fit (checkpoint cadence 1), resume it sharded,
/// and land bitwise on the uninterrupted single-process fit. The
/// workers never see the checkpoint file — they receive the bytes in
/// their plan.
#[test]
fn sharded_checkpoint_resume_is_bitwise() {
    let x = planted(97);
    let dir = std::env::temp_dir().join(format!("ptk-shard-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sharded.ckpt");
    for variant in [Variant::Cache, Variant::Default] {
        let opts = base_opts().max_iters(3).variant(variant);
        let solo = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
        let interrupted = ShardedFit::new(2, worker_bin())
            .fit(
                &x,
                opts.clone()
                    .max_iters(1)
                    .checkpoint_every(1)
                    .checkpoint_path(&path),
            )
            .expect("interrupted run");
        assert_eq!(interrupted.fit.stats.iterations.len(), 1);
        let resumed = ShardedFit::new(2, worker_bin())
            .fit(&x, opts.clone().resume_from(&path))
            .expect("resumed run");
        assert_bitwise(&solo, &resumed.fit, &format!("{variant:?}/sharded-resume"));
    }
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    // Tentpole property: a worker killed at a *random* protocol point,
    // under a random worker count, kernel variant, placement and
    // recovery strategy, leaves the fit bitwise identical to the
    // undisturbed single-process fit.
    #[test]
    fn sharded_fit_survives_random_worker_death(seed in 0..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = ptucker_datagen::planted_lowrank(&[11, 9, 8], &[2, 2, 2], 350, 0.02, &mut rng).tensor;
        let k = 2 + (seed % 2) as usize; // 2 or 3 workers
        let victim = (seed % k as u64) as u32;
        let variant = [
            Variant::Default,
            Variant::Cache,
            Variant::Approx { truncation_rate: 0.3 },
        ][(seed % 3) as usize];
        let budget = if seed & 1 == 0 {
            MemoryBudget::unlimited()
        } else {
            MemoryBudget::new(1)
        };
        let recovery = if seed & 2 == 0 { Recovery::Reassign } else { Recovery::Respawn };
        // Random kill point: either on receiving a ModeStart or a
        // FactorSync, somewhere in the first two iterations (2 iters ×
        // 3 modes = 6 of each).
        let tag = if seed & 4 == 0 { "modestart" } else { "factorsync" };
        let nth = 1 + (seed >> 8) % 6;
        let opts = FitOptions::new(vec![2, 2, 2])
            .max_iters(3)
            .tol(0.0)
            .threads(2)
            .seed(seed ^ 0xdead)
            .variant(variant)
            .budget(budget);
        let solo = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
        let out = ShardedFit::new(k, worker_bin())
            .fault_policy(policy(recovery))
            .inject_fault(victim, format!("recv:{tag}:{nth}:kill"))
            .fit(&x, opts)
            .unwrap_or_else(|e| panic!("K={k} victim={victim} {tag}#{nth} {recovery:?}: {e}"));
        assert_bitwise(
            &solo,
            &out.fit,
            &format!("{variant:?}/K={k}/victim={victim}/{tag}#{nth}/{recovery:?}"),
        );
        prop_assert!(
            !out.recovered.is_empty(),
            "a mid-fit kill must be recovered from"
        );
    }
}
