//! End-to-end sharded-fit acceptance: a K-shard fit — real spawned
//! worker processes or in-process thread workers, both speaking the
//! same byte protocol — must be **bitwise identical** to the
//! single-process fit for every kernel variant and placement.

use proptest::prelude::*;
use ptucker::{FitOptions, FitResult, MemoryBudget, PTucker, PtuckerError, Variant};
use ptucker_shard::{nnz_balanced_ranges, ShardError, ShardedFit, WorkerSpawn};
use ptucker_tensor::SparseTensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;

/// The dedicated worker binary, built alongside this test.
fn worker_bin() -> WorkerSpawn {
    WorkerSpawn::Binary(env!("CARGO_BIN_EXE_ptucker-shard-worker").into())
}

fn planted(seed: u64) -> SparseTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    ptucker_datagen::planted_lowrank(&[14, 12, 10], &[2, 2, 2], 700, 0.01, &mut rng).tensor
}

fn base_opts() -> FitOptions {
    // threads=2 keeps `parallel_reduce` partials FP-safe to merge; the
    // seed pins every replica's factor/core init.
    FitOptions::new(vec![2, 2, 2])
        .max_iters(3)
        .tol(0.0)
        .threads(2)
        .seed(17)
}

fn assert_bitwise(a: &FitResult, b: &FitResult, tag: &str) {
    assert_eq!(
        a.stats.iterations.len(),
        b.stats.iterations.len(),
        "{tag}: iteration count"
    );
    for (ia, ib) in a.stats.iterations.iter().zip(&b.stats.iterations) {
        assert_eq!(
            ia.reconstruction_error.to_bits(),
            ib.reconstruction_error.to_bits(),
            "{tag}: error at iter {}",
            ia.iter
        );
    }
    assert_eq!(
        a.stats.final_error.to_bits(),
        b.stats.final_error.to_bits(),
        "{tag}: final error"
    );
    for (m, (fa, fb)) in a
        .decomposition
        .factors
        .iter()
        .zip(&b.decomposition.factors)
        .enumerate()
    {
        for (va, vb) in fa.as_slice().iter().zip(fb.as_slice()) {
            assert_eq!(va.to_bits(), vb.to_bits(), "{tag}: factor {m} drift");
        }
    }
    assert_eq!(
        a.decomposition.core.nnz(),
        b.decomposition.core.nnz(),
        "{tag}: core nnz"
    );
    for (va, vb) in a
        .decomposition
        .core
        .values()
        .iter()
        .zip(b.decomposition.core.values())
    {
        assert_eq!(va.to_bits(), vb.to_bits(), "{tag}: core drift");
    }
}

fn variants() -> [Variant; 3] {
    [
        Variant::Default,
        Variant::Cache,
        Variant::Approx {
            truncation_rate: 0.3,
        },
    ]
}

/// The headline acceptance: K ∈ {2, 4} spawned worker *processes*, all
/// three kernels, resident and spilled placement — bitwise identical to
/// `PTucker::fit`, with real comms volume reported.
#[test]
fn process_sharded_fit_is_bitwise_identical() {
    let x = planted(71);
    for variant in variants() {
        for (placement, budget) in [
            ("resident", MemoryBudget::unlimited()),
            // A 1-byte budget forces the fully spilled, many-window path.
            ("spilled", MemoryBudget::new(1)),
        ] {
            let opts = base_opts().variant(variant).budget(budget);
            let solo = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
            assert_eq!(
                solo.stats.bytes_sent, 0,
                "single-process fits move no bytes"
            );
            assert_eq!(solo.stats.bytes_received, 0);
            for k in [2usize, 4] {
                let tag = format!("{variant:?}/{placement}/K={k}");
                let out = ShardedFit::new(k, worker_bin())
                    .fit(&x, opts.clone())
                    .unwrap_or_else(|e| panic!("{tag}: {e}"));
                assert_bitwise(&solo.clone(), &out.fit, &tag);
                assert!(out.fit.stats.bytes_sent > 0, "{tag}: no bytes sent");
                assert!(out.fit.stats.bytes_received > 0, "{tag}: no bytes received");
                assert_eq!(out.worker_stats.len(), k, "{tag}: worker stats");
                let dims_total: u64 = x.dims().iter().map(|&d| d as u64).sum();
                let rows_total: u64 = out.worker_stats.iter().map(|s| s.rows_updated).sum();
                assert_eq!(
                    rows_total,
                    dims_total * out.fit.stats.iterations.len() as u64,
                    "{tag}: workers together must update every row each iteration"
                );
                let nnz_total: u64 = out.worker_stats.iter().map(|s| s.nnz_processed).sum();
                assert_eq!(
                    nnz_total,
                    (x.nnz() * x.order()) as u64 * out.fit.stats.iterations.len() as u64,
                    "{tag}: workers together must observe every entry per mode sweep"
                );
            }
        }
    }
}

/// A row with a single observed entry has a rank-1 normal matrix, so at
/// λ=0 its J=2 row solve is exactly singular. The failure starts on one
/// shard, but the `ok` all-reduce must surface the *same* error
/// everywhere — identical to what the single-process fit raises.
#[test]
fn solve_failure_propagates_identically() {
    // Mode-0 row 2 holds exactly one entry; every other row holds three.
    let x = SparseTensor::from_flat(
        vec![4, 3, 3],
        vec![
            0, 0, 0, 0, 1, 1, 0, 2, 2, 1, 0, 1, 1, 1, 2, 1, 2, 0, 2, 1, 1, 3, 0, 2, 3, 1, 0, 3, 2,
            1,
        ],
        vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
    )
    .unwrap();
    let opts = FitOptions::new(vec![2, 2, 2])
        .max_iters(2)
        .threads(1)
        .seed(5)
        .lambda(0.0);
    let solo_err = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap_err();
    assert!(
        matches!(solo_err, PtuckerError::Linalg(_)),
        "fixture must fail the row solve, got {solo_err:?}"
    );
    let sharded_err = ShardedFit::new(2, worker_bin())
        .fit(&x, opts)
        .expect_err("sharded fit must fail identically");
    match sharded_err {
        ShardError::Fit(e) => assert_eq!(format!("{e}"), format!("{solo_err}")),
        other => panic!("expected a fit error, got {other}"),
    }
}

/// Thread-transport workers speak the identical byte protocol; K=1 is
/// the degenerate shard plan (one worker owns everything).
#[test]
fn thread_sharded_fit_is_bitwise_identical() {
    let x = planted(72);
    let opts = base_opts().variant(Variant::Cache);
    let solo = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
    for k in [1usize, 3] {
        let out = ShardedFit::new(k, WorkerSpawn::Threads)
            .fit(&x, opts.clone())
            .unwrap();
        assert_bitwise(&solo, &out.fit, &format!("threads/K={k}"));
    }
}

/// Turns proptest-chosen weights into a contiguous per-mode tiling: the
/// cut points are wherever the weighted prefix sums cross `1/k`-iles.
fn weighted_ranges(x: &SparseTensor, k: usize, weights: &[usize]) -> Vec<Vec<Range<usize>>> {
    let mut out = vec![Vec::with_capacity(x.order()); k];
    for m in 0..x.order() {
        let dim = x.dims()[m];
        let blocks =
            ptucker_sched::weighted_blocks(dim, k, |i| weights[(m + i) % weights.len()] + 1);
        for (w, ranges) in out.iter_mut().enumerate() {
            ranges.push(blocks.get(w).map_or(dim..dim, |&(lo, hi)| lo..hi));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Satellite: the sharded fit is partition-invariant — any worker
    // count and any (weighted, arbitrary-cut) contiguous row tiling
    // produces bitwise the single-process fit.
    #[test]
    fn sharded_fit_is_partition_invariant(seed in 0..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = ptucker_datagen::planted_lowrank(&[11, 9, 8], &[2, 2, 2], 350, 0.02, &mut rng).tensor;
        let k = 1 + (seed % 4) as usize;
        let weights: Vec<usize> = (0..7).map(|i| ((seed >> (i * 8)) & 0xff) as usize).collect();
        let variant = variants()[(seed % 3) as usize];
        let budget = if seed & 1 == 0 {
            MemoryBudget::unlimited()
        } else {
            MemoryBudget::new(1)
        };
        let opts = FitOptions::new(vec![2, 2, 2])
            .max_iters(2)
            .tol(0.0)
            .threads(2)
            .seed(seed ^ 0x5eed)
            .variant(variant)
            .budget(budget);
        let solo = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
        let sharded = ShardedFit::new(k, WorkerSpawn::Threads);
        for (kind, ranges) in [
            ("nnz-balanced", nnz_balanced_ranges(&x, k)),
            ("weighted", weighted_ranges(&x, k, &weights)),
        ] {
            let out = sharded
                .fit_with_ranges(&x, opts.clone(), ranges)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_bitwise(&solo, &out.fit, &format!("{variant:?}/{kind}/K={k}"));
        }
    }
}
