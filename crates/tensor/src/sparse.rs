use crate::{Result, TensorError};

/// CSR-like index of one mode: for every slice index `iₙ`, the ids of the
/// observed entries whose mode-`n` index equals `iₙ` — the paper's `Ω⁽ⁿ⁾ᵢₙ`.
///
/// Built once at construction with a counting sort; lookups are O(1) +
/// contiguous slice iteration, which is what makes the row-wise update's
/// cost proportional to `|Ω⁽ⁿ⁾ᵢₙ|`.
#[derive(Debug, Clone)]
pub struct ModeIndex {
    /// `offsets[i]..offsets[i+1]` delimits the entry ids of slice `i`.
    offsets: Vec<usize>,
    /// Entry ids grouped by slice, ascending within each slice.
    entries: Vec<usize>,
}

impl ModeIndex {
    fn build(dim: usize, nnz: usize, mode_of: impl Fn(usize) -> usize) -> Self {
        let mut offsets = vec![0usize; dim + 1];
        for e in 0..nnz {
            offsets[mode_of(e) + 1] += 1;
        }
        for i in 0..dim {
            offsets[i + 1] += offsets[i];
        }
        // Scatter using offsets[i] as slice i's write cursor; afterwards
        // offsets[i] holds what offsets[i+1] held before (each cursor
        // advanced to the start of the next slice), so a single rotate
        // restores the boundaries — one buffer serves both roles.
        let mut entries = vec![0usize; nnz];
        for e in 0..nnz {
            let i = mode_of(e);
            entries[offsets[i]] = e;
            offsets[i] += 1;
        }
        offsets.rotate_right(1);
        offsets[0] = 0;
        ModeIndex { offsets, entries }
    }

    /// Entry ids belonging to slice `i`.
    #[inline]
    pub fn slice(&self, i: usize) -> &[usize] {
        &self.entries[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of entries in slice `i` (`|Ω⁽ⁿ⁾ᵢ|`).
    #[inline]
    pub fn slice_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Number of slices in this mode.
    pub fn num_slices(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// A sparse, partially observed tensor in coordinate (COO) format with
/// per-mode slice indices.
///
/// Indices are **0-based** internally; the TSV I/O layer converts from the
/// 1-based convention the paper's datasets use.
#[derive(Debug, Clone)]
pub struct SparseTensor {
    dims: Vec<usize>,
    /// Flat index storage: entry `e` occupies
    /// `indices[e*order .. (e+1)*order]`.
    indices: Vec<usize>,
    values: Vec<f64>,
    mode_index: Vec<ModeIndex>,
}

impl SparseTensor {
    /// Builds a sparse tensor from `(multi-index, value)` pairs.
    ///
    /// # Errors
    /// * [`TensorError::InvalidDims`] for empty dims or a zero dimension.
    /// * [`TensorError::OrderMismatch`] if an entry has the wrong arity.
    /// * [`TensorError::IndexOutOfBounds`] for out-of-range indices.
    /// * [`TensorError::NonFiniteValue`] for NaN/inf values.
    pub fn new(dims: Vec<usize>, entries: Vec<(Vec<usize>, f64)>) -> Result<Self> {
        let order = dims.len();
        let mut indices = Vec::with_capacity(entries.len() * order);
        let mut values = Vec::with_capacity(entries.len());
        for (idx, val) in entries {
            if idx.len() != order {
                return Err(TensorError::OrderMismatch {
                    expected: order,
                    got: idx.len(),
                });
            }
            indices.extend_from_slice(&idx);
            values.push(val);
        }
        Self::from_flat(dims, indices, values)
    }

    /// Builds a sparse tensor from flat index storage (entry `e` at
    /// `indices[e*order..]`). This is the allocation-free constructor used
    /// by the generators.
    ///
    /// # Errors
    /// Same conditions as [`SparseTensor::new`].
    pub fn from_flat(dims: Vec<usize>, indices: Vec<usize>, values: Vec<f64>) -> Result<Self> {
        let order = dims.len();
        if order == 0 {
            return Err(TensorError::InvalidDims("tensor order must be >= 1".into()));
        }
        if let Some(zero_mode) = dims.iter().position(|&d| d == 0) {
            return Err(TensorError::InvalidDims(format!(
                "mode {zero_mode} has dimensionality 0"
            )));
        }
        if indices.len() != values.len() * order {
            return Err(TensorError::OrderMismatch {
                expected: values.len() * order,
                got: indices.len(),
            });
        }
        for (e, v) in values.iter().enumerate() {
            if !v.is_finite() {
                return Err(TensorError::NonFiniteValue { entry: e });
            }
        }
        for e in 0..values.len() {
            for (n, &dim) in dims.iter().enumerate() {
                let i = indices[e * order + n];
                if i >= dim {
                    return Err(TensorError::IndexOutOfBounds {
                        mode: n,
                        index: i,
                        dim,
                    });
                }
            }
        }
        let nnz = values.len();
        let mode_index = dims
            .iter()
            .enumerate()
            .map(|(n, &dim)| ModeIndex::build(dim, nnz, |e| indices[e * order + n]))
            .collect();
        Ok(SparseTensor {
            dims,
            indices,
            values,
            mode_index,
        })
    }

    /// Order `N` of the tensor (number of modes).
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Dimensionalities `I₁ … I_N`.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of observed entries `|Ω|`.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The multi-index of entry `e`.
    #[inline]
    pub fn index(&self, e: usize) -> &[usize] {
        let n = self.order();
        &self.indices[e * n..(e + 1) * n]
    }

    /// The value of entry `e`.
    #[inline]
    pub fn value(&self, e: usize) -> f64 {
        self.values[e]
    }

    /// All values, in entry order.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Flat index storage (entry `e` occupies `[e*order, (e+1)*order)`).
    #[inline]
    pub fn flat_indices(&self) -> &[usize] {
        &self.indices
    }

    /// Entry ids observed in slice `i` of `mode` — the paper's `Ω⁽ⁿ⁾ᵢₙ`.
    #[inline]
    pub fn slice(&self, mode: usize, i: usize) -> &[usize] {
        self.mode_index[mode].slice(i)
    }

    /// `|Ω⁽ⁿ⁾ᵢ|` for every slice `i` of `mode`.
    pub fn slice_len(&self, mode: usize, i: usize) -> usize {
        self.mode_index[mode].slice_len(i)
    }

    /// The full per-mode index structure.
    pub fn mode_index(&self, mode: usize) -> &ModeIndex {
        &self.mode_index[mode]
    }

    /// Iterates `(multi-index, value)` over all observed entries.
    pub fn iter(&self) -> impl Iterator<Item = (&[usize], f64)> + '_ {
        (0..self.nnz()).map(move |e| (self.index(e), self.value(e)))
    }

    /// Frobenius norm over the observed entries (Definition 1 restricted to
    /// `Ω`, which is the only meaningful norm for a partially observed
    /// tensor).
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Fraction of cells that are observed: `|Ω| / Π Iₙ` (may underflow to 0
    /// for astronomically sparse tensors; reported as `f64`).
    pub fn density(&self) -> f64 {
        let total: f64 = self.dims.iter().map(|&d| d as f64).product();
        self.nnz() as f64 / total
    }

    /// Minimum and maximum observed value; `None` when empty.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        if self.values.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Min-max normalizes values into `[0, 1]`, as the paper does for all
    /// real-world tensors ("we normalize all values of real-world tensors to
    /// numbers between 0 to 1"). Returns the original `(min, max)`.
    ///
    /// A constant tensor maps to all-zeros.
    pub fn normalize_values(&mut self) -> Option<(f64, f64)> {
        let (lo, hi) = self.value_range()?;
        let span = hi - lo;
        if span == 0.0 {
            for v in &mut self.values {
                *v = 0.0;
            }
        } else {
            for v in &mut self.values {
                *v = (*v - lo) / span;
            }
        }
        Some((lo, hi))
    }

    /// Builds a new tensor with the same dims from a subset of entry ids
    /// (used by the train/test splitter).
    ///
    /// Fast path: the copied entries were validated when `self` was built,
    /// so this skips `from_flat`'s full bounds/finiteness re-checks and
    /// goes straight to the per-mode index build.
    ///
    /// # Errors
    /// None in practice (`Result` kept for API stability; out-of-range
    /// entry ids panic, as any slice index does).
    pub fn subset(&self, entry_ids: &[usize]) -> Result<SparseTensor> {
        let order = self.order();
        let mut indices = Vec::with_capacity(entry_ids.len() * order);
        let mut values = Vec::with_capacity(entry_ids.len());
        for &e in entry_ids {
            indices.extend_from_slice(self.index(e));
            values.push(self.value(e));
        }
        let nnz = values.len();
        let mode_index = self
            .dims
            .iter()
            .enumerate()
            .map(|(n, &dim)| ModeIndex::build(dim, nnz, |e| indices[e * order + n]))
            .collect();
        Ok(SparseTensor {
            dims: self.dims.clone(),
            indices,
            values,
            mode_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseTensor {
        // 3x2x2 tensor with 4 observed entries.
        SparseTensor::new(
            vec![3, 2, 2],
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 1], 2.0),
                (vec![1, 0, 1], 3.0),
                (vec![2, 1, 0], 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let x = sample();
        assert_eq!(x.order(), 3);
        assert_eq!(x.dims(), &[3, 2, 2]);
        assert_eq!(x.nnz(), 4);
        assert_eq!(x.index(2), &[1, 0, 1]);
        assert_eq!(x.value(3), 4.0);
    }

    #[test]
    fn mode_slices_group_correctly() {
        let x = sample();
        // Mode 0: slice 0 holds entries 0,1; slice 1 holds entry 2; slice 2 entry 3.
        assert_eq!(x.slice(0, 0), &[0, 1]);
        assert_eq!(x.slice(0, 1), &[2]);
        assert_eq!(x.slice(0, 2), &[3]);
        // Mode 1: index 0 -> entries 0,2; index 1 -> entries 1,3.
        assert_eq!(x.slice(1, 0), &[0, 2]);
        assert_eq!(x.slice(1, 1), &[1, 3]);
        // Mode 2.
        assert_eq!(x.slice(2, 0), &[0, 3]);
        assert_eq!(x.slice(2, 1), &[1, 2]);
        assert_eq!(x.slice_len(2, 1), 2);
        assert_eq!(x.mode_index(0).num_slices(), 3);
    }

    #[test]
    fn slices_partition_all_entries() {
        let x = sample();
        for n in 0..x.order() {
            let mut seen = vec![false; x.nnz()];
            for i in 0..x.dims()[n] {
                for &e in x.slice(n, i) {
                    assert!(!seen[e], "entry {e} appears twice in mode {n}");
                    seen[e] = true;
                    assert_eq!(x.index(e)[n], i);
                }
            }
            assert!(seen.iter().all(|&s| s), "mode {n} missed entries");
        }
    }

    #[test]
    fn empty_slice_is_empty() {
        let x = SparseTensor::new(vec![4, 2], vec![(vec![0, 0], 1.0)]).unwrap();
        assert!(x.slice(0, 3).is_empty());
        assert_eq!(x.slice_len(0, 3), 0);
    }

    #[test]
    fn frobenius_and_density() {
        let x = sample();
        let want = (1.0f64 + 4.0 + 9.0 + 16.0).sqrt();
        assert!((x.frobenius_norm() - want).abs() < 1e-12);
        assert!((x.density() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_to_unit_interval() {
        let mut x = sample();
        let (lo, hi) = x.normalize_values().unwrap();
        assert_eq!((lo, hi), (1.0, 4.0));
        let (nlo, nhi) = x.value_range().unwrap();
        assert_eq!((nlo, nhi), (0.0, 1.0));
    }

    #[test]
    fn normalization_of_constant_tensor() {
        let mut x =
            SparseTensor::new(vec![2, 2], vec![(vec![0, 0], 5.0), (vec![1, 1], 5.0)]).unwrap();
        x.normalize_values().unwrap();
        assert_eq!(x.value_range().unwrap(), (0.0, 0.0));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            SparseTensor::new(vec![], vec![]),
            Err(TensorError::InvalidDims(_))
        ));
        assert!(matches!(
            SparseTensor::new(vec![2, 0], vec![]),
            Err(TensorError::InvalidDims(_))
        ));
        assert!(matches!(
            SparseTensor::new(vec![2, 2], vec![(vec![0], 1.0)]),
            Err(TensorError::OrderMismatch { .. })
        ));
        assert!(matches!(
            SparseTensor::new(vec![2, 2], vec![(vec![0, 2], 1.0)]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            SparseTensor::new(vec![2, 2], vec![(vec![0, 0], f64::NAN)]),
            Err(TensorError::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn subset_preserves_entries() {
        let x = sample();
        let sub = x.subset(&[1, 3]).unwrap();
        assert_eq!(sub.nnz(), 2);
        assert_eq!(sub.dims(), x.dims());
        assert_eq!(sub.index(0), &[0, 1, 1]);
        assert_eq!(sub.value(0), 2.0);
        assert_eq!(sub.index(1), &[2, 1, 0]);
        assert_eq!(sub.value(1), 4.0);
    }

    #[test]
    fn subset_fast_path_matches_validated_construction() {
        // The fast path skips re-validation but must produce the exact
        // structure `from_flat` would, mode indices included.
        let x = sample();
        for ids in [vec![], vec![2], vec![1, 3], vec![0, 1, 2, 3], vec![3, 0]] {
            let fast = x.subset(&ids).unwrap();
            let order = x.order();
            let mut indices = Vec::new();
            let mut values = Vec::new();
            for &e in &ids {
                indices.extend_from_slice(x.index(e));
                values.push(x.value(e));
            }
            let slow = SparseTensor::from_flat(x.dims().to_vec(), indices, values).unwrap();
            assert_eq!(fast.dims(), slow.dims());
            assert_eq!(fast.flat_indices(), slow.flat_indices());
            assert_eq!(fast.values(), slow.values());
            for n in 0..order {
                for i in 0..x.dims()[n] {
                    assert_eq!(fast.slice(n, i), slow.slice(n, i), "ids {ids:?}");
                }
            }
        }
    }

    #[test]
    fn empty_tensor_is_valid() {
        let x = SparseTensor::new(vec![3, 3], vec![]).unwrap();
        assert_eq!(x.nnz(), 0);
        assert_eq!(x.value_range(), None);
        assert_eq!(x.frobenius_norm(), 0.0);
    }

    #[test]
    fn iter_yields_all_entries() {
        let x = sample();
        let collected: Vec<(Vec<usize>, f64)> = x.iter().map(|(i, v)| (i.to_vec(), v)).collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[0], (vec![0, 0, 0], 1.0));
        assert_eq!(collected[3], (vec![2, 1, 0], 4.0));
    }
}
