use crate::{delinearize, linearize, row_major_strides, Result, TensorError};
use ptucker_linalg::Matrix;

/// A dense tensor with row-major strides (last mode varies fastest).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor {
    dims: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<f64>,
}

impl DenseTensor {
    /// Creates an all-zero dense tensor.
    ///
    /// # Errors
    /// [`TensorError::InvalidDims`] for empty dims or a zero dimension.
    pub fn zeros(dims: Vec<usize>) -> Result<Self> {
        if dims.is_empty() {
            return Err(TensorError::InvalidDims("tensor order must be >= 1".into()));
        }
        if dims.contains(&0) {
            return Err(TensorError::InvalidDims("zero dimension".into()));
        }
        let total: usize = dims.iter().product();
        let strides = row_major_strides(&dims);
        Ok(DenseTensor {
            dims,
            strides,
            data: vec![0.0; total],
        })
    }

    /// Creates a dense tensor by evaluating `f` at every multi-index.
    ///
    /// # Errors
    /// Same as [`DenseTensor::zeros`].
    pub fn from_fn(dims: Vec<usize>, mut f: impl FnMut(&[usize]) -> f64) -> Result<Self> {
        let mut t = DenseTensor::zeros(dims)?;
        let mut idx = vec![0usize; t.order()];
        for lin in 0..t.data.len() {
            delinearize(lin, &t.dims, &mut idx);
            t.data[lin] = f(&idx);
        }
        Ok(t)
    }

    /// Wraps existing row-major data.
    ///
    /// # Errors
    /// [`TensorError::ShapeMismatch`] if `data.len() != Π dims`, plus the
    /// [`DenseTensor::zeros`] conditions.
    pub fn from_data(dims: Vec<usize>, data: Vec<f64>) -> Result<Self> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(TensorError::InvalidDims("bad dims".into()));
        }
        let total: usize = dims.iter().product();
        if data.len() != total {
            return Err(TensorError::ShapeMismatch(format!(
                "data length {} != product of dims {}",
                data.len(),
                total
            )));
        }
        let strides = row_major_strides(&dims);
        Ok(DenseTensor {
            dims,
            strides,
            data,
        })
    }

    /// Order `N` of the tensor.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Dimensionalities.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Row-major strides.
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Total number of cells (`Π Iₙ`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has zero cells (cannot happen for valid dims).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Value at a multi-index.
    #[inline]
    pub fn get(&self, index: &[usize]) -> f64 {
        self.data[linearize(index, &self.strides)]
    }

    /// Sets the value at a multi-index.
    #[inline]
    pub fn set(&mut self, index: &[usize], v: f64) {
        let lin = linearize(index, &self.strides);
        self.data[lin] = v;
    }

    /// Frobenius norm over all cells (Definition 1).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Mode-`n` matricization `X₍ₙ₎ ∈ R^{Iₙ × Π_{k≠n} Iₖ}` (Definition 2).
    ///
    /// The column index follows Eq. (1) of the paper (0-based here):
    /// `j = Σ_{k≠n} iₖ · Π_{m<k, m≠n} Iₘ`, i.e. *earlier* modes vary fastest.
    pub fn matricize(&self, n: usize) -> Matrix {
        assert!(n < self.order(), "mode out of range");
        let rows = self.dims[n];
        let cols: usize = self
            .dims
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != n)
            .map(|(_, &d)| d)
            .product();
        let mut out = Matrix::zeros(rows, cols);
        let mult = matricize_multipliers(&self.dims, n);
        let mut idx = vec![0usize; self.order()];
        for lin in 0..self.data.len() {
            delinearize(lin, &self.dims, &mut idx);
            let mut j = 0usize;
            for (k, &i) in idx.iter().enumerate() {
                if k != n {
                    j += i * mult[k];
                }
            }
            out[(idx[n], j)] = self.data[lin];
        }
        out
    }

    /// n-mode product `Y = X ×ₙ U` with `U ∈ R^{J×Iₙ}` (Definition 3):
    /// `Y(i₁…jₙ…i_N) = Σ_{iₙ} X(i₁…iₙ…i_N) · u(jₙ, iₙ)`.
    ///
    /// # Errors
    /// [`TensorError::ShapeMismatch`] if `U.cols() != Iₙ` or `n` is out of
    /// range.
    pub fn mode_product(&self, n: usize, u: &Matrix) -> Result<DenseTensor> {
        if n >= self.order() {
            return Err(TensorError::ShapeMismatch(format!(
                "mode {n} out of range for order {}",
                self.order()
            )));
        }
        if u.cols() != self.dims[n] {
            return Err(TensorError::ShapeMismatch(format!(
                "mode product: matrix has {} cols, mode {n} has dim {}",
                u.cols(),
                self.dims[n]
            )));
        }
        let mut new_dims = self.dims.clone();
        new_dims[n] = u.rows();
        let mut out = DenseTensor::zeros(new_dims)?;
        let mut idx = vec![0usize; self.order()];
        for lin in 0..self.data.len() {
            let x = self.data[lin];
            if x == 0.0 {
                continue;
            }
            delinearize(lin, &self.dims, &mut idx);
            let in_n = idx[n];
            for j in 0..u.rows() {
                let coef = u[(j, in_n)];
                if coef == 0.0 {
                    continue;
                }
                idx[n] = j;
                let out_lin = linearize(&idx, &out.strides);
                out.data[out_lin] += x * coef;
                idx[n] = in_n;
            }
        }
        Ok(out)
    }

    /// Iterates `(multi-index, value)` over all cells (allocates one index
    /// buffer per item; intended for tests and small tensors).
    pub fn iter(&self) -> impl Iterator<Item = (Vec<usize>, f64)> + '_ {
        let dims = self.dims.clone();
        self.data.iter().enumerate().map(move |(lin, &v)| {
            let mut idx = vec![0usize; dims.len()];
            delinearize(lin, &dims, &mut idx);
            (idx, v)
        })
    }
}

/// Eq.-(1) column multipliers: `mult[k] = Π_{m<k, m≠n} I_m` for `k ≠ n`
/// (earlier modes vary fastest), `mult[n] = 0`.
pub fn matricize_multipliers(dims: &[usize], n: usize) -> Vec<usize> {
    let mut mult = vec![0usize; dims.len()];
    let mut acc = 1usize;
    for (k, &d) in dims.iter().enumerate() {
        if k == n {
            continue;
        }
        mult[k] = acc;
        acc *= d;
    }
    mult
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_get_set() {
        let mut t = DenseTensor::zeros(vec![2, 3]).unwrap();
        assert_eq!(t.len(), 6);
        t.set(&[1, 2], 5.0);
        assert_eq!(t.get(&[1, 2]), 5.0);
        assert_eq!(t.get(&[0, 0]), 0.0);
    }

    #[test]
    fn from_fn_layout() {
        let t = DenseTensor::from_fn(vec![2, 2], |i| (i[0] * 10 + i[1]) as f64).unwrap();
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.get(&[0, 1]), 1.0);
        assert_eq!(t.get(&[1, 0]), 10.0);
        assert_eq!(t.get(&[1, 1]), 11.0);
    }

    #[test]
    fn invalid_dims_rejected() {
        assert!(DenseTensor::zeros(vec![]).is_err());
        assert!(DenseTensor::zeros(vec![2, 0]).is_err());
        assert!(DenseTensor::from_data(vec![2, 2], vec![0.0; 3]).is_err());
    }

    #[test]
    fn matricization_mode0_of_known_tensor() {
        // 2x2x2 tensor with values equal to their linear index.
        let t =
            DenseTensor::from_fn(vec![2, 2, 2], |i| (i[0] * 4 + i[1] * 2 + i[2]) as f64).unwrap();
        let m = t.matricize(0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 4);
        // Column j = i1 * 1 + i2 * 2 (earlier modes fastest among k≠0).
        // X(0, i1, i2) = i1*2 + i2.
        assert_eq!(m[(0, 0)], 0.0); // (i1,i2)=(0,0)
        assert_eq!(m[(0, 1)], 2.0); // (1,0)
        assert_eq!(m[(0, 2)], 1.0); // (0,1)
        assert_eq!(m[(0, 3)], 3.0); // (1,1)
        assert_eq!(m[(1, 0)], 4.0);
    }

    #[test]
    fn matricization_preserves_norm() {
        let t = DenseTensor::from_fn(vec![3, 2, 4], |i| {
            (i[0] as f64) - 0.5 * (i[1] as f64) + 0.25 * (i[2] as f64)
        })
        .unwrap();
        for n in 0..3 {
            let m = t.matricize(n);
            assert!((m.frobenius_norm() - t.frobenius_norm()).abs() < 1e-12);
        }
    }

    #[test]
    fn mode_product_against_manual() {
        // X is 2x2: [[1,2],[3,4]]; U is 1x2 [[1,1]] over mode 0:
        // Y(j, i2) = Σ_i1 X(i1,i2) => [4, 6].
        let x = DenseTensor::from_data(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let u = Matrix::from_vec(1, 2, vec![1.0, 1.0]).unwrap();
        let y = x.mode_product(0, &u).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.get(&[0, 0]), 4.0);
        assert_eq!(y.get(&[0, 1]), 6.0);
    }

    #[test]
    fn mode_product_identity_is_noop() {
        let x = DenseTensor::from_fn(vec![2, 3], |i| (i[0] + 2 * i[1]) as f64).unwrap();
        let eye = Matrix::identity(3);
        let y = x.mode_product(1, &eye).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn mode_product_shape_mismatch() {
        let x = DenseTensor::zeros(vec![2, 2]).unwrap();
        let u = Matrix::zeros(2, 3);
        assert!(x.mode_product(0, &u).is_err());
        assert!(x.mode_product(5, &u).is_err());
    }

    #[test]
    fn successive_mode_products_commute_across_modes() {
        // (X ×1 A) ×2 B == (X ×2 B) ×1 A for distinct modes.
        let x = DenseTensor::from_fn(vec![2, 3], |i| ((i[0] + 1) * (i[1] + 2)) as f64).unwrap();
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 0.5, -1.0]).unwrap();
        let b = Matrix::from_vec(2, 3, vec![1.0, 0.0, 1.0, 0.0, 1.0, 2.0]).unwrap();
        let lhs = x.mode_product(0, &a).unwrap().mode_product(1, &b).unwrap();
        let rhs = x.mode_product(1, &b).unwrap().mode_product(0, &a).unwrap();
        for (u, v) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn mode_product_matches_matricized_multiply() {
        // (X ×n U)(n) == U * X(n): the defining identity of the n-mode
        // product.
        let x = DenseTensor::from_fn(vec![3, 2, 2], |i| {
            (i[0] as f64 + 1.0) * 0.7 - (i[1] as f64) * 0.3 + (i[2] as f64) * 0.1
        })
        .unwrap();
        let u = Matrix::from_vec(2, 3, vec![1.0, 0.5, -0.25, 0.0, 2.0, 1.0]).unwrap();
        let y = x.mode_product(0, &u).unwrap();
        let lhs = y.matricize(0);
        let rhs = u.matmul(&x.matricize(0)).unwrap();
        for (a, b) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn iter_visits_every_cell() {
        let t = DenseTensor::from_fn(vec![2, 2], |i| (i[0] * 2 + i[1]) as f64).unwrap();
        let cells: Vec<(Vec<usize>, f64)> = t.iter().collect();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[3], (vec![1, 1], 3.0));
    }
}
