//! Sparse/dense tensor substrate for the P-Tucker reproduction.
//!
//! Provides the data structures and tensor operations of Section II of the
//! paper:
//!
//! * [`SparseTensor`] — COO storage for a partially observed tensor `X` with
//!   per-mode slice indices (the paper's `Ω⁽ⁿ⁾ᵢₙ` sets) built once at
//!   construction,
//! * [`ModeStreams`] — the mode-major execution plan: per-mode streamed
//!   slice layouts ([`ModeStream`]) that row-update kernels walk linearly
//!   instead of gathering through entry ids (COO stays the source of
//!   truth). Its storage is a [`StreamStore`]: fully resident, or
//!   **spilled** to an unlinked scratch file. Either placement is swept
//!   through one abstraction, [`SweepSource`] — slice-aligned windows
//!   presented as [`StreamView`]s: zero-copy sub-views of a resident
//!   stream, or [`SliceWindows`] refills of pinned buffers (optionally
//!   double-buffered with a background prefetch) — the substrate of the
//!   unified fit driver,
//! * [`DenseTensor`] — strided dense storage with matricization
//!   (Definition 2) and the n-mode product (Definition 3),
//! * [`CoreTensor`] — the core `G`, dense at initialization but truncatable
//!   to a sparse entry list (P-Tucker-Approx removes "noisy" entries),
//! * TSV I/O in the 1-based `i₁ … i_N value` format the authors distribute
//!   their datasets in, and
//! * a seeded train/test splitter for the RMSE experiments (Section IV-E).
//!
//! ```
//! use ptucker_tensor::SparseTensor;
//!
//! // A 2x2 matrix (2-order tensor) with 3 observed entries.
//! let x = SparseTensor::new(
//!     vec![2, 2],
//!     vec![(vec![0, 0], 1.0), (vec![0, 1], 2.0), (vec![1, 1], 3.0)],
//! ).unwrap();
//! assert_eq!(x.nnz(), 3);
//! assert_eq!(x.slice(0, 0), &[0, 1]); // entries 0 and 1 live in row 0
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::should_implement_trait)]

mod coo_scratch;
mod core_tensor;
mod dense;
mod error;
mod io;
mod precision;
mod sparse;
mod split;
mod stream;

pub use coo_scratch::{coo_record_bytes, CooScratch, CooScratchWriter, CooSegment, CooSegments};
pub use core_tensor::CoreTensor;
pub use dense::DenseTensor;
pub use error::TensorError;
pub use io::{read_tsv, read_tsv_f32, write_tsv, write_tsv_f32};
pub use precision::StoragePrecision;
pub use sparse::{ModeIndex, SparseTensor};
pub use split::TrainTestSplit;
pub use stream::{
    IdsWindow, ModeStream, ModeStreams, SliceWindows, SpilledModeStream, StreamStore, StreamView,
    SweepSource, ValuesView, Window,
};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Computes row-major strides for the given dimensions (last mode fastest).
pub fn row_major_strides(dims: &[usize]) -> Vec<usize> {
    let n = dims.len();
    let mut strides = vec![1; n];
    for k in (0..n.saturating_sub(1)).rev() {
        strides[k] = strides[k + 1] * dims[k + 1];
    }
    strides
}

/// Linearizes a multi-index under row-major strides. Panics in debug builds
/// if the index length mismatches.
#[inline]
pub fn linearize(index: &[usize], strides: &[usize]) -> usize {
    debug_assert_eq!(index.len(), strides.len());
    index.iter().zip(strides).map(|(i, s)| i * s).sum()
}

/// Inverse of [`linearize`]: recovers the multi-index of `lin` under
/// row-major layout for `dims`.
pub fn delinearize(mut lin: usize, dims: &[usize], out: &mut [usize]) {
    debug_assert_eq!(dims.len(), out.len());
    for k in (0..dims.len()).rev() {
        out[k] = lin % dims[k];
        lin /= dims[k];
    }
    debug_assert_eq!(lin, 0, "linear index out of range");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(row_major_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(row_major_strides(&[5]), vec![1]);
        assert_eq!(row_major_strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn linearize_delinearize_roundtrip() {
        let dims = [3, 4, 5];
        let strides = row_major_strides(&dims);
        let mut idx = [0usize; 3];
        for lin in 0..(3 * 4 * 5) {
            delinearize(lin, &dims, &mut idx);
            assert_eq!(linearize(&idx, &strides), lin);
        }
    }
}
