//! The storage-precision axis of the streamed data plane.
//!
//! [`StoragePrecision`] selects how many bytes a *stored* value occupies —
//! the execution plan's entry values (resident vectors and spilled
//! interleaved records) and any per-entry caches built over them (the
//! Cached variant's `Pres` table). It never changes the arithmetic: every
//! consumer widens each element to `f64` at load (an exact conversion) and
//! accumulates in `f64`, and model state (factor matrices, core tensor)
//! always stays `f64`.

/// Storage precision for streamed per-entry data.
///
/// [`StoragePrecision::F32`] halves the bytes-per-entry of the
/// bandwidth-bound sweeps and doubles how far a memory budget reaches
/// before spilling, at the cost of rounding each stored value once to
/// `f32` on ingest. Placement equivalence (resident ≡ hybrid ≡ spilled
/// bitwise) holds *within* each precision, because every placement widens
/// the same stored bits through the same kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoragePrecision {
    /// 8-byte storage, bit-exact stored values (the classic mode).
    #[default]
    F64,
    /// 4-byte storage, f64 accumulation — values are rounded to `f32`
    /// once when stored; all arithmetic stays `f64`.
    F32,
}

impl StoragePrecision {
    /// Bytes per stored value element (8 or 4) — the factor every size
    /// formula and placement gate scales by.
    #[inline]
    pub const fn value_bytes(self) -> usize {
        match self {
            StoragePrecision::F64 => 8,
            StoragePrecision::F32 => 4,
        }
    }

    /// Rounds a value to this precision's storage grid: identity for
    /// [`StoragePrecision::F64`], one `f64→f32→f64` round-trip for
    /// [`StoragePrecision::F32`]. Lets f64-path code agree bitwise with
    /// what an f32 store-and-widen would produce.
    #[inline]
    pub fn quantize(self, v: f64) -> f64 {
        match self {
            StoragePrecision::F64 => v,
            StoragePrecision::F32 => v as f32 as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_bytes_and_quantize() {
        assert_eq!(StoragePrecision::F64.value_bytes(), 8);
        assert_eq!(StoragePrecision::F32.value_bytes(), 4);
        let v = 0.1f64;
        assert_eq!(StoragePrecision::F64.quantize(v).to_bits(), v.to_bits());
        assert_eq!(
            StoragePrecision::F32.quantize(v).to_bits(),
            (0.1f32 as f64).to_bits()
        );
        // Values on the f32 grid survive the round-trip exactly.
        assert_eq!(StoragePrecision::F32.quantize(0.5), 0.5);
        assert_eq!(StoragePrecision::default(), StoragePrecision::F64);
    }
}
