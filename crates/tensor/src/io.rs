use crate::{Result, SparseTensor, TensorError};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::path::Path;

/// Reads a sparse tensor from the whitespace-separated text format the
/// P-Tucker authors distribute their datasets in: each line is
/// `i₁ i₂ … i_N value` with **1-based** indices.
///
/// The tensor order is inferred from the first data line; dimensionalities
/// are the per-mode maxima. Blank lines and lines starting with `#` are
/// skipped.
///
/// # Errors
/// [`TensorError::Parse`] with a 1-based line number for malformed lines,
/// [`TensorError::Io`] for filesystem problems, plus tensor-construction
/// validation errors.
pub fn read_tsv<P: AsRef<Path>>(path: P) -> Result<SparseTensor> {
    read_tsv_impl(path, false)
}

/// [`read_tsv`] with values parsed **as `f32`** and widened to `f64` — for
/// end-to-end f32 pipelines: the tensor's values land exactly on the f32
/// storage grid the engine's `StoragePrecision::F32` mode uses, so reading
/// an f32 value file and fitting with f32 storage involves no second
/// rounding (the f64 text round-trip is skipped).
///
/// # Errors
/// As for [`read_tsv`].
pub fn read_tsv_f32<P: AsRef<Path>>(path: P) -> Result<SparseTensor> {
    read_tsv_impl(path, true)
}

fn read_tsv_impl<P: AsRef<Path>>(path: P, f32_values: bool) -> Result<SparseTensor> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);

    let mut order: Option<usize> = None;
    let mut dims: Vec<usize> = Vec::new();
    let mut indices: Vec<usize> = Vec::new();
    let mut values: Vec<f64> = Vec::new();

    let mut line = String::new();
    let mut line_no = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() < 2 {
            return Err(TensorError::Parse {
                line: line_no,
                message: "expected at least one index and a value".into(),
            });
        }
        let n = fields.len() - 1;
        match order {
            None => {
                order = Some(n);
                dims = vec![0; n];
            }
            Some(o) if o != n => {
                return Err(TensorError::Parse {
                    line: line_no,
                    message: format!("expected {o} indices, found {n}"),
                });
            }
            _ => {}
        }
        for (k, f) in fields[..n].iter().enumerate() {
            let one_based: usize = f.parse().map_err(|_| TensorError::Parse {
                line: line_no,
                message: format!("bad index '{f}' in mode {k}"),
            })?;
            if one_based == 0 {
                return Err(TensorError::Parse {
                    line: line_no,
                    message: format!("index in mode {k} is 0; the format is 1-based"),
                });
            }
            let zero_based = one_based - 1;
            dims[k] = dims[k].max(one_based);
            indices.push(zero_based);
        }
        let v: f64 = if f32_values {
            let v32: f32 = fields[n].parse().map_err(|_| TensorError::Parse {
                line: line_no,
                message: format!("bad value '{}'", fields[n]),
            })?;
            v32 as f64
        } else {
            fields[n].parse().map_err(|_| TensorError::Parse {
                line: line_no,
                message: format!("bad value '{}'", fields[n]),
            })?
        };
        values.push(v);
    }

    if order.is_none() {
        return Err(TensorError::Parse {
            line: 0,
            message: "file contains no data lines".into(),
        });
    }
    SparseTensor::from_flat(dims, indices, values)
}

/// Writes a sparse tensor in the same 1-based whitespace-separated format
/// accepted by [`read_tsv`].
///
/// # Errors
/// [`TensorError::Io`] on write failures.
pub fn write_tsv<P: AsRef<Path>>(path: P, tensor: &SparseTensor) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for e in 0..tensor.nnz() {
        let idx = tensor.index(e);
        for &i in idx {
            write!(w, "{} ", i + 1)?;
        }
        writeln!(w, "{}", tensor.value(e))?;
    }
    w.flush()?;
    Ok(())
}

/// [`write_tsv`] with values emitted at **`f32` precision** (each value is
/// rounded to `f32` once before formatting): the emit half of an
/// end-to-end f32 pipeline. Rust's shortest-roundtrip float formatting
/// guarantees [`read_tsv_f32`] recovers the f32 bits exactly.
///
/// # Errors
/// [`TensorError::Io`] on write failures.
pub fn write_tsv_f32<P: AsRef<Path>>(path: P, tensor: &SparseTensor) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for e in 0..tensor.nnz() {
        let idx = tensor.index(e);
        for &i in idx {
            write!(w, "{} ", i + 1)?;
        }
        writeln!(w, "{}", tensor.value(e) as f32)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ptucker-tensor-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        path
    }

    #[test]
    fn read_simple_3way() {
        let p = tmpfile(
            "simple.tsv",
            "1 1 1 0.5\n2 1 3 1.5\n# comment line\n\n1 2 2 -0.25\n",
        );
        let t = read_tsv(&p).unwrap();
        assert_eq!(t.order(), 3);
        assert_eq!(t.dims(), &[2, 2, 3]);
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.index(1), &[1, 0, 2]);
        assert_eq!(t.value(1), 1.5);
    }

    #[test]
    fn roundtrip_write_read() {
        let t = SparseTensor::new(
            vec![3, 4],
            vec![(vec![0, 0], 1.0), (vec![2, 3], -2.5), (vec![1, 2], 0.125)],
        )
        .unwrap();
        let p = std::env::temp_dir()
            .join("ptucker-tensor-io-tests")
            .join("roundtrip.tsv");
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        write_tsv(&p, &t).unwrap();
        let t2 = read_tsv(&p).unwrap();
        assert_eq!(t2.nnz(), 3);
        assert_eq!(t2.dims(), &[3, 4]);
        for e in 0..3 {
            assert_eq!(t2.index(e), t.index(e));
            assert_eq!(t2.value(e), t.value(e));
        }
    }

    #[test]
    fn f32_value_files_roundtrip_on_the_f32_grid() {
        // Values chosen off the f32 grid: write_tsv_f32 rounds once, and
        // read_tsv_f32 recovers exactly those f32 bits (shortest-roundtrip
        // formatting), so an f32 pipeline has no second rounding.
        let t = SparseTensor::new(
            vec![2, 2],
            vec![(vec![0, 0], 0.1), (vec![1, 1], 1.0e-7), (vec![0, 1], -2.5)],
        )
        .unwrap();
        let p = std::env::temp_dir()
            .join("ptucker-tensor-io-tests")
            .join("f32grid.tsv");
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        write_tsv_f32(&p, &t).unwrap();
        let t2 = read_tsv_f32(&p).unwrap();
        assert_eq!(t2.nnz(), 3);
        for e in 0..3 {
            assert_eq!(t2.index(e), t.index(e));
            let want = t.value(e) as f32 as f64;
            assert_eq!(t2.value(e).to_bits(), want.to_bits());
        }
        // An f64 reader sees the same decimal text, widened differently
        // only when the value is off the f64-representable f32 decimal —
        // shortest-roundtrip f32 decimals parse exactly as f64 too.
        let t3 = read_tsv(&p).unwrap();
        assert_eq!(t3.value(0) as f32, 0.1f32);
    }

    #[test]
    fn rejects_zero_index() {
        let p = tmpfile("zero.tsv", "0 1 0.5\n");
        let err = read_tsv(&p).unwrap_err();
        assert!(matches!(err, TensorError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_ragged_lines() {
        let p = tmpfile("ragged.tsv", "1 1 0.5\n1 1 1 0.5\n");
        let err = read_tsv(&p).unwrap_err();
        assert!(matches!(err, TensorError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_bad_value() {
        let p = tmpfile("badval.tsv", "1 1 abc\n");
        assert!(matches!(read_tsv(&p), Err(TensorError::Parse { .. })));
    }

    #[test]
    fn rejects_empty_file() {
        let p = tmpfile("empty.tsv", "# only a comment\n");
        assert!(matches!(read_tsv(&p), Err(TensorError::Parse { .. })));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_tsv("/nonexistent/definitely/missing.tsv"),
            Err(TensorError::Io(_))
        ));
    }
}
