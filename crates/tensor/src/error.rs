use std::fmt;

/// Errors produced by tensor construction, arithmetic and I/O.
#[derive(Debug)]
pub enum TensorError {
    /// A mode index exceeded its dimensionality.
    IndexOutOfBounds {
        /// Mode in which the violation occurred.
        mode: usize,
        /// The offending index.
        index: usize,
        /// The dimensionality of that mode.
        dim: usize,
    },
    /// An entry's multi-index has the wrong number of modes.
    OrderMismatch {
        /// Expected order (number of modes).
        expected: usize,
        /// Order actually provided.
        got: usize,
    },
    /// A dimension was zero or dimensions were empty.
    InvalidDims(String),
    /// A tensor value was NaN or infinite.
    NonFiniteValue {
        /// Position of the offending entry in input order.
        entry: usize,
    },
    /// Mismatched operand shapes for a tensor operation.
    ShapeMismatch(String),
    /// Parse or format problem in tensor I/O.
    Parse {
        /// 1-based line number of the problem.
        line: usize,
        /// Explanation of what failed to parse.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::IndexOutOfBounds { mode, index, dim } => write!(
                f,
                "index {index} out of bounds for mode {mode} with dimensionality {dim}"
            ),
            TensorError::OrderMismatch { expected, got } => {
                write!(f, "expected order {expected}, got {got}")
            }
            TensorError::InvalidDims(msg) => write!(f, "invalid dimensions: {msg}"),
            TensorError::NonFiniteValue { entry } => {
                write!(f, "non-finite value at entry {entry}")
            }
            TensorError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            TensorError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            TensorError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for TensorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TensorError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TensorError {
    fn from(e: std::io::Error) -> Self {
        TensorError::Io(e)
    }
}
