use crate::{Result, SparseTensor};
use rand::seq::SliceRandom;
use rand::Rng;

/// A train/test partition of a sparse tensor's observed entries.
///
/// Section IV-A1 of the paper: "we use 90% of observed entries as training
/// data and the rest of them as test data for measuring the accuracy".
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// The training tensor (same dims as the source).
    pub train: SparseTensor,
    /// The held-out test tensor (same dims as the source).
    pub test: SparseTensor,
}

impl TrainTestSplit {
    /// Randomly partitions the observed entries, putting a `test_fraction`
    /// share into the test set (at least one entry stays in train when
    /// possible). The split is exact up to rounding and is reproducible for
    /// a seeded `rng`.
    ///
    /// # Errors
    /// Propagates tensor construction errors (cannot occur for valid input).
    /// `test_fraction` is clamped to `[0, 1]`.
    pub fn new<R: Rng + ?Sized>(
        source: &SparseTensor,
        test_fraction: f64,
        rng: &mut R,
    ) -> Result<Self> {
        let frac = test_fraction.clamp(0.0, 1.0);
        let nnz = source.nnz();
        let mut ids: Vec<usize> = (0..nnz).collect();
        ids.shuffle(rng);
        let mut n_test = ((nnz as f64) * frac).round() as usize;
        if n_test >= nnz && nnz > 0 {
            n_test = nnz - 1; // keep at least one training entry
        }
        let (test_ids, train_ids) = ids.split_at(n_test);
        let mut train_ids = train_ids.to_vec();
        let mut test_ids = test_ids.to_vec();
        train_ids.sort_unstable();
        test_ids.sort_unstable();
        Ok(TrainTestSplit {
            train: source.subset(&train_ids)?,
            test: source.subset(&test_ids)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tensor(n: usize) -> SparseTensor {
        let entries = (0..n)
            .map(|e| (vec![e % 10, (e / 10) % 10], e as f64))
            .collect();
        SparseTensor::new(vec![10, 10], entries).unwrap()
    }

    #[test]
    fn split_sizes_match_fraction() {
        let t = tensor(100);
        let mut rng = StdRng::seed_from_u64(42);
        let s = TrainTestSplit::new(&t, 0.1, &mut rng).unwrap();
        assert_eq!(s.test.nnz(), 10);
        assert_eq!(s.train.nnz(), 90);
    }

    #[test]
    fn split_is_a_partition() {
        let t = tensor(50);
        let mut rng = StdRng::seed_from_u64(7);
        let s = TrainTestSplit::new(&t, 0.2, &mut rng).unwrap();
        let mut values: Vec<f64> = s
            .train
            .values()
            .iter()
            .chain(s.test.values())
            .copied()
            .collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let want: Vec<f64> = (0..50).map(|e| e as f64).collect();
        assert_eq!(values, want);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t = tensor(30);
        let s1 = TrainTestSplit::new(&t, 0.3, &mut StdRng::seed_from_u64(1)).unwrap();
        let s2 = TrainTestSplit::new(&t, 0.3, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(s1.test.values(), s2.test.values());
    }

    #[test]
    fn extreme_fractions() {
        let t = tensor(10);
        let mut rng = StdRng::seed_from_u64(3);
        let all_train = TrainTestSplit::new(&t, 0.0, &mut rng).unwrap();
        assert_eq!(all_train.test.nnz(), 0);
        assert_eq!(all_train.train.nnz(), 10);
        // A fraction of 1.0 still leaves one training entry.
        let nearly_all_test = TrainTestSplit::new(&t, 1.0, &mut rng).unwrap();
        assert_eq!(nearly_all_test.train.nnz(), 1);
        assert_eq!(nearly_all_test.test.nnz(), 9);
        // Out-of-range fractions are clamped.
        let clamped = TrainTestSplit::new(&t, 7.5, &mut rng).unwrap();
        assert_eq!(clamped.train.nnz(), 1);
    }

    #[test]
    fn dims_preserved() {
        let t = tensor(20);
        let s = TrainTestSplit::new(&t, 0.25, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(s.train.dims(), t.dims());
        assert_eq!(s.test.dims(), t.dims());
    }
}
