use crate::{delinearize, linearize, row_major_strides, DenseTensor, Result, TensorError};
use ptucker_linalg::Matrix;
use rand::Rng;

/// The Tucker core tensor `G ∈ R^{J₁×…×J_N}`, stored as an explicit entry
/// list.
///
/// P-Tucker initializes `G` **dense** with uniform random values in `[0, 1)`
/// (Algorithm 2 line 1) and keeps it fixed during the ALS sweeps; the entry
/// list starts with all `Π Jₙ` cells. P-Tucker-Approx then *truncates*
/// "noisy" entries each iteration (Algorithm 4), after which the core is
/// genuinely sparse — the entry-list representation makes the truncated δ
/// loops (`O(|G|)` per observed entry) automatic.
///
/// # Invariant: lexicographic entry order
///
/// Entries are **always stored in strictly ascending lexicographic
/// multi-index order**. The run-blocked δ micro-kernels depend on it:
/// adjacent entries share multi-index prefixes, so the kernel computes one
/// shared prefix product per *run* of entries and vectorizes over the run's
/// tail coordinates. Every constructor establishes the order
/// ([`CoreTensor::from_entries`] sorts its input; the dense and
/// [`CoreTensor::from_dense`] paths produce it by construction) and every
/// mutation path preserves it ([`CoreTensor::retain_by_id`] keeps a
/// subsequence), each backed by a debug assertion — new core manipulations
/// cannot silently regress the kernels to their slow path.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreTensor {
    dims: Vec<usize>,
    /// Flat index storage: entry `e` occupies `indices[e*order..(e+1)*order]`.
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CoreTensor {
    /// A fully dense core with every value drawn uniformly from `[0, 1)`,
    /// matching the paper's initialization.
    ///
    /// # Errors
    /// [`TensorError::InvalidDims`] for empty or zero dims.
    pub fn random_dense<R: Rng + ?Sized>(dims: Vec<usize>, rng: &mut R) -> Result<Self> {
        Self::dense_from_fn(dims, |_| rng.gen::<f64>())
    }

    /// A fully dense core with values produced by `f` at each multi-index.
    ///
    /// # Errors
    /// [`TensorError::InvalidDims`] for empty or zero dims.
    pub fn dense_from_fn(dims: Vec<usize>, mut f: impl FnMut(&[usize]) -> f64) -> Result<Self> {
        if dims.is_empty() {
            return Err(TensorError::InvalidDims("core order must be >= 1".into()));
        }
        if dims.contains(&0) {
            return Err(TensorError::InvalidDims("zero core dimension".into()));
        }
        let order = dims.len();
        let total: usize = dims.iter().product();
        let mut indices = Vec::with_capacity(total * order);
        let mut values = Vec::with_capacity(total);
        let mut idx = vec![0usize; order];
        for lin in 0..total {
            delinearize(lin, &dims, &mut idx);
            indices.extend_from_slice(&idx);
            values.push(f(&idx));
        }
        let core = CoreTensor {
            dims,
            indices,
            values,
        };
        debug_assert!(core.is_lexicographic(), "odometer order is lex order");
        Ok(core)
    }

    /// Builds a (possibly sparse) core from explicit entries.
    ///
    /// The entries are sorted into the type's lexicographic multi-index
    /// order, so callers may supply them in any order — entry *ids* refer
    /// to the sorted layout. Duplicate multi-indices are merged by summing
    /// their values (the same superposition every δ kernel and
    /// [`CoreTensor::to_dense`] would apply), keeping the order *strictly*
    /// ascending.
    ///
    /// # Errors
    /// Index/arity/value validation as in
    /// [`crate::SparseTensor::new`].
    pub fn from_entries(dims: Vec<usize>, mut entries: Vec<(Vec<usize>, f64)>) -> Result<Self> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(TensorError::InvalidDims("bad core dims".into()));
        }
        let order = dims.len();
        for (e, (idx, val)) in entries.iter().enumerate() {
            if idx.len() != order {
                return Err(TensorError::OrderMismatch {
                    expected: order,
                    got: idx.len(),
                });
            }
            for (n, (&i, &d)) in idx.iter().zip(&dims).enumerate() {
                if i >= d {
                    return Err(TensorError::IndexOutOfBounds {
                        mode: n,
                        index: i,
                        dim: d,
                    });
                }
            }
            if !val.is_finite() {
                return Err(TensorError::NonFiniteValue { entry: e });
            }
        }
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        let mut indices = Vec::with_capacity(entries.len() * order);
        let mut values: Vec<f64> = Vec::with_capacity(entries.len());
        for (idx, val) in entries {
            if indices.len() >= order && indices[indices.len() - order..] == idx[..] {
                let slot = values.last_mut().expect("non-empty alongside indices");
                *slot += val;
                // Two finite inputs can still overflow when merged; the
                // constructor's no-non-finite guarantee covers the sum.
                if !slot.is_finite() {
                    return Err(TensorError::NonFiniteValue {
                        entry: values.len() - 1,
                    });
                }
            } else {
                indices.extend_from_slice(&idx);
                values.push(val);
            }
        }
        let core = CoreTensor {
            dims,
            indices,
            values,
        };
        debug_assert!(core.is_lexicographic(), "sort established lex order");
        Ok(core)
    }

    /// Order `N` of the core.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Core dimensionalities `J₁ … J_N` (the Tucker ranks).
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of retained entries `|G|`.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Total number of cells `Π Jₙ` (dense size).
    pub fn dense_len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Multi-index of entry `e`.
    #[inline]
    pub fn index(&self, e: usize) -> &[usize] {
        let n = self.order();
        &self.indices[e * n..(e + 1) * n]
    }

    /// Value of entry `e`.
    #[inline]
    pub fn value(&self, e: usize) -> f64 {
        self.values[e]
    }

    /// All retained values in entry order.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the retained values (indices are fixed; used by
    /// core-refit extensions that re-estimate the weights in place).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Flat index storage (entry `e` occupies `[e*order, (e+1)*order)`).
    #[inline]
    pub fn flat_indices(&self) -> &[usize] {
        &self.indices
    }

    /// Iterates `(multi-index, value)` over retained entries.
    pub fn iter(&self) -> impl Iterator<Item = (&[usize], f64)> + '_ {
        (0..self.nnz()).map(move |e| (self.index(e), self.value(e)))
    }

    /// Whether the entries are in strictly ascending lexicographic
    /// multi-index order — the type invariant the run-blocked δ kernels
    /// rely on. Public so consumers (and property tests) can check the
    /// contract; every constructor/mutation path debug-asserts it.
    pub fn is_lexicographic(&self) -> bool {
        let order = self.order();
        (1..self.nnz()).all(|e| self.indices[(e - 1) * order..e * order] < self.index(e)[..])
    }

    /// Keeps only the entries whose id satisfies `keep` (P-Tucker-Approx
    /// truncation). Entry ids are renumbered compactly afterwards; a
    /// subsequence of lexicographic entries stays lexicographic.
    pub fn retain_by_id(&mut self, keep: impl Fn(usize) -> bool) {
        let order = self.order();
        let mut w = 0usize;
        for e in 0..self.values.len() {
            if keep(e) {
                if w != e {
                    self.values[w] = self.values[e];
                    let (dst, src) = (w * order, e * order);
                    for k in 0..order {
                        self.indices[dst + k] = self.indices[src + k];
                    }
                }
                w += 1;
            }
        }
        self.values.truncate(w);
        self.indices.truncate(w * order);
        debug_assert!(self.is_lexicographic(), "retain keeps a subsequence");
    }

    /// Frobenius norm over retained entries.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Converts to a dense tensor (absent entries become zero).
    ///
    /// # Errors
    /// Propagates dense-tensor construction errors (cannot occur for valid
    /// cores).
    pub fn to_dense(&self) -> Result<DenseTensor> {
        let mut d = DenseTensor::zeros(self.dims.clone())?;
        let strides = row_major_strides(&self.dims);
        for e in 0..self.nnz() {
            let lin = linearize(self.index(e), &strides);
            d.as_mut_slice()[lin] += self.value(e);
        }
        Ok(d)
    }

    /// Builds a core from a dense tensor, dropping entries with
    /// `|value| <= tol`.
    ///
    /// # Errors
    /// Propagates construction errors (cannot occur for valid input).
    pub fn from_dense(d: &DenseTensor, tol: f64) -> Result<Self> {
        let order = d.order();
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let mut idx = vec![0usize; order];
        for (lin, &v) in d.as_slice().iter().enumerate() {
            if v.abs() > tol {
                delinearize(lin, d.dims(), &mut idx);
                indices.extend_from_slice(&idx);
                values.push(v);
            }
        }
        let core = CoreTensor {
            dims: d.dims().to_vec(),
            indices,
            values,
        };
        debug_assert!(core.is_lexicographic(), "linear scan order is lex order");
        Ok(core)
    }

    /// In-place n-mode product `G ← G ×ₙ M` with square `M ∈ R^{Jₙ×Jₙ}` —
    /// the core update after QR orthogonalization (Eq. 8 of the paper).
    ///
    /// The result is computed densely (cores are small: `Π Jₙ ≤ ~10⁵` at the
    /// paper's settings) and re-sparsified with the given tolerance so a
    /// truncated core stays truncated.
    ///
    /// # Errors
    /// [`TensorError::ShapeMismatch`] if `M` is not `Jₙ×Jₙ` or `mode` is out
    /// of range.
    pub fn mode_product_in_place(&mut self, mode: usize, m: &Matrix, tol: f64) -> Result<()> {
        if mode >= self.order() {
            return Err(TensorError::ShapeMismatch(format!(
                "mode {mode} out of range for order {}",
                self.order()
            )));
        }
        if m.rows() != self.dims[mode] || m.cols() != self.dims[mode] {
            return Err(TensorError::ShapeMismatch(format!(
                "core mode product needs a {j}x{j} matrix, got {r}x{c}",
                j = self.dims[mode],
                r = m.rows(),
                c = m.cols()
            )));
        }
        let dense = self.to_dense()?;
        let result = dense.mode_product(mode, m)?;
        *self = CoreTensor::from_dense(&result, tol)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_dense_covers_all_cells() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = CoreTensor::random_dense(vec![2, 3, 2], &mut rng).unwrap();
        assert_eq!(g.nnz(), 12);
        assert_eq!(g.dense_len(), 12);
        assert!(g.values().iter().all(|&v| (0.0..1.0).contains(&v)));
        // All multi-indices distinct.
        let mut seen = std::collections::HashSet::new();
        for e in 0..g.nnz() {
            assert!(seen.insert(g.index(e).to_vec()));
        }
    }

    #[test]
    fn constructors_establish_lexicographic_order() {
        // Shuffled explicit entries are sorted into the invariant order.
        let g = CoreTensor::from_entries(
            vec![2, 3],
            vec![
                (vec![1, 2], 4.0),
                (vec![0, 1], 2.0),
                (vec![1, 0], 3.0),
                (vec![0, 0], 1.0),
            ],
        )
        .unwrap();
        assert!(g.is_lexicographic());
        assert_eq!(g.index(0), &[0, 0]);
        assert_eq!(g.value(0), 1.0);
        assert_eq!(g.index(3), &[1, 2]);
        assert_eq!(g.value(3), 4.0);
        // Dense construction, dense round-trip and truncation all keep it.
        let mut rng = StdRng::seed_from_u64(44);
        let mut d = CoreTensor::random_dense(vec![3, 2, 2], &mut rng).unwrap();
        assert!(d.is_lexicographic());
        assert!(CoreTensor::from_dense(&d.to_dense().unwrap(), 0.0)
            .unwrap()
            .is_lexicographic());
        d.retain_by_id(|e| e % 3 != 0);
        assert!(d.is_lexicographic());
        d.mode_product_in_place(1, &Matrix::from_rows(&[&[0.5, 1.0], &[1.0, -0.5]]), 0.0)
            .unwrap();
        assert!(d.is_lexicographic());
    }

    #[test]
    fn from_entries_merges_duplicate_indices() {
        // Duplicates previously rode through as repeated entries (every δ
        // kernel summed them); the strict-order invariant merges them at
        // construction with the same superposition semantics.
        let g = CoreTensor::from_entries(
            vec![1, 4],
            vec![
                (vec![0, 1], 1.0),
                (vec![0, 0], 2.0),
                (vec![0, 1], 0.5),
                (vec![0, 3], -1.0),
                (vec![0, 1], 0.25),
            ],
        )
        .unwrap();
        assert!(g.is_lexicographic());
        assert_eq!(g.nnz(), 3);
        assert_eq!(g.index(0), &[0, 0]);
        assert_eq!(g.value(0), 2.0);
        assert_eq!(g.index(1), &[0, 1]);
        assert_eq!(g.value(1), 1.75);
        assert_eq!(g.index(2), &[0, 3]);
        assert_eq!(g.value(2), -1.0);
    }

    #[test]
    fn from_entries_rejects_non_finite_merge() {
        // Two finite duplicates whose sum overflows must be rejected like
        // any other non-finite value.
        let err = CoreTensor::from_entries(vec![1], vec![(vec![0], f64::MAX), (vec![0], f64::MAX)])
            .unwrap_err();
        assert!(matches!(err, TensorError::NonFiniteValue { .. }));
    }

    #[test]
    fn is_lexicographic_detects_violations() {
        // Constructed directly (same module) — no public path produces this.
        let out_of_order = CoreTensor {
            dims: vec![2, 2],
            indices: vec![1, 0, 0, 1],
            values: vec![1.0, 2.0],
        };
        assert!(!out_of_order.is_lexicographic());
        let duplicate = CoreTensor {
            dims: vec![2, 2],
            indices: vec![0, 1, 0, 1],
            values: vec![1.0, 2.0],
        };
        assert!(!duplicate.is_lexicographic(), "order must be strict");
    }

    #[test]
    fn from_entries_validates() {
        assert!(CoreTensor::from_entries(vec![2, 2], vec![(vec![1, 1], 0.5)]).is_ok());
        assert!(CoreTensor::from_entries(vec![2, 2], vec![(vec![2, 0], 0.5)]).is_err());
        assert!(CoreTensor::from_entries(vec![2, 2], vec![(vec![0], 0.5)]).is_err());
        assert!(CoreTensor::from_entries(vec![], vec![]).is_err());
        assert!(CoreTensor::from_entries(vec![2, 2], vec![(vec![0, 0], f64::INFINITY)]).is_err());
    }

    #[test]
    fn retain_by_id_compacts() {
        let mut g = CoreTensor::from_entries(
            vec![2, 2],
            vec![
                (vec![0, 0], 1.0),
                (vec![0, 1], 2.0),
                (vec![1, 0], 3.0),
                (vec![1, 1], 4.0),
            ],
        )
        .unwrap();
        g.retain_by_id(|e| e % 2 == 1);
        assert_eq!(g.nnz(), 2);
        assert_eq!(g.index(0), &[0, 1]);
        assert_eq!(g.value(0), 2.0);
        assert_eq!(g.index(1), &[1, 1]);
        assert_eq!(g.value(1), 4.0);
    }

    #[test]
    fn dense_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = CoreTensor::random_dense(vec![3, 2], &mut rng).unwrap();
        let d = g.to_dense().unwrap();
        let g2 = CoreTensor::from_dense(&d, 0.0).unwrap();
        assert_eq!(g2.nnz(), g.nnz());
        assert!((g2.frobenius_norm() - g.frobenius_norm()).abs() < 1e-12);
    }

    #[test]
    fn from_dense_drops_small_entries() {
        let d = DenseTensor::from_data(vec![2, 2], vec![0.5, 1e-15, 0.0, -0.7]).unwrap();
        let g = CoreTensor::from_dense(&d, 1e-12).unwrap();
        assert_eq!(g.nnz(), 2);
    }

    #[test]
    fn mode_product_identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut g = CoreTensor::random_dense(vec![2, 3], &mut rng).unwrap();
        let before = g.to_dense().unwrap();
        g.mode_product_in_place(1, &Matrix::identity(3), 0.0)
            .unwrap();
        let after = g.to_dense().unwrap();
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn mode_product_matches_dense_path() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = CoreTensor::random_dense(vec![2, 2], &mut rng).unwrap();
        let r = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 3.0]]);
        let dense_result = g.to_dense().unwrap().mode_product(0, &r).unwrap();
        g.mode_product_in_place(0, &r, 0.0).unwrap();
        let got = g.to_dense().unwrap();
        for (a, b) in got.as_slice().iter().zip(dense_result.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn mode_product_shape_checks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = CoreTensor::random_dense(vec![2, 2], &mut rng).unwrap();
        assert!(g
            .mode_product_in_place(0, &Matrix::zeros(3, 3), 0.0)
            .is_err());
        assert!(g
            .mode_product_in_place(7, &Matrix::identity(2), 0.0)
            .is_err());
    }
}
