//! Mode-major execution plans: the streamed slice layout.
//!
//! The per-mode [`crate::ModeIndex`] answers "which entries live in slice
//! `iₙ`?" with a list of entry *ids* — every consumer then gathers the
//! entry's value and multi-index through those ids, which turns the hottest
//! loop of the row-wise update into a scatter/gather over the COO arrays.
//!
//! A [`ModeStream`] removes that indirection: for one mode, the entry
//! values and the packed *other-mode* indices are physically reordered
//! slice-by-slice, so walking a slice is a linear scan of contiguous
//! memory. Within a slice, entries appear in ascending COO entry-id order —
//! the same order `ModeIndex::slice` yields — so algorithms that subsample
//! (`sample_stride`) or accumulate in slice order produce *identical*
//! results on either layout.
//!
//! COO stays the source of truth; a [`ModeStreams`] plan is derived from a
//! [`SparseTensor`] once per fit (`O(N·|Ω|)` time and memory) and is
//! immutable afterwards. Other-mode indices and entry ids are stored as
//! `u32` — half the memory traffic of `usize` on 64-bit targets, which is
//! most of the point of a bandwidth-bound layout — so dimensionalities and
//! `|Ω|` must fit in 32 bits (they do for every tensor in the paper by
//! orders of magnitude; [`ModeStreams::build`] checks).

use crate::{Result, SparseTensor, TensorError};
use std::ops::Range;

/// The streamed slice layout of one mode: values and packed other-mode
/// indices in slice-major order, plus the stream-position → COO entry-id
/// map for consumers that keep per-entry state in COO order (e.g. the
/// P-Tucker-Cache `Pres` table).
#[derive(Debug, Clone)]
pub struct ModeStream {
    mode: usize,
    /// Number of *other* modes (`N − 1`): the per-entry stride of `others`.
    other_count: usize,
    /// `offsets[i]..offsets[i+1]` delimits slice `i`'s stream positions.
    offsets: Vec<usize>,
    /// Entry values in stream order.
    values: Vec<f64>,
    /// Packed other-mode indices: stream position `p` owns
    /// `others[p*other_count..(p+1)*other_count]`, modes ascending with the
    /// stream's own mode skipped.
    others: Vec<u32>,
    /// Stream position → COO entry id.
    entry_ids: Vec<u32>,
    /// COO entry id → stream position (the inverse of `entry_ids`).
    /// Consumers that keep per-entry state *in this stream's order* — the
    /// stream-ordered `Pres` table of P-Tucker-Cache — use it to compute
    /// the permutation that carries that state from one mode's order to
    /// another's.
    entry_positions: Vec<u32>,
}

impl ModeStream {
    fn build(x: &SparseTensor, mode: usize) -> Self {
        let order = x.order();
        let other_count = order - 1;
        let nnz = x.nnz();
        let dim = x.dims()[mode];
        let mut offsets = Vec::with_capacity(dim + 1);
        let mut values = Vec::with_capacity(nnz);
        let mut others = Vec::with_capacity(nnz * other_count);
        let mut entry_ids = Vec::with_capacity(nnz);
        let mut entry_positions = vec![0u32; nnz];
        offsets.push(0);
        for i in 0..dim {
            for &e in x.slice(mode, i) {
                let idx = x.index(e);
                entry_positions[e] = values.len() as u32;
                values.push(x.value(e));
                for (k, &ik) in idx.iter().enumerate() {
                    if k != mode {
                        others.push(ik as u32);
                    }
                }
                entry_ids.push(e as u32);
            }
            offsets.push(values.len());
        }
        ModeStream {
            mode,
            other_count,
            offsets,
            values,
            others,
            entry_ids,
            entry_positions,
        }
    }

    /// The mode this stream is laid out for.
    #[inline]
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Number of other modes (`N − 1`) — the per-entry stride of
    /// [`ModeStream::others`].
    #[inline]
    pub fn other_count(&self) -> usize {
        self.other_count
    }

    /// Number of slices (`Iₙ`).
    #[inline]
    pub fn num_slices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The stream positions of slice `i` (`Ω⁽ⁿ⁾ᵢ` in stream coordinates).
    #[inline]
    pub fn slice_range(&self, i: usize) -> Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// `|Ω⁽ⁿ⁾ᵢ|` — the per-row work weight the nnz-balanced scheduler
    /// partitions by.
    #[inline]
    pub fn slice_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// All values in stream order.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The flat packed other-mode index storage (stride
    /// [`ModeStream::other_count`]).
    #[inline]
    pub fn others_flat(&self) -> &[u32] {
        &self.others
    }

    /// The packed other-mode indices of stream position `p` (ascending
    /// mode order, this stream's mode skipped).
    #[inline]
    pub fn others(&self, p: usize) -> &[u32] {
        &self.others[p * self.other_count..(p + 1) * self.other_count]
    }

    /// The COO entry id behind stream position `p`.
    #[inline]
    pub fn entry_id(&self, p: usize) -> usize {
        self.entry_ids[p] as usize
    }

    /// The stream position holding COO entry `e` (inverse of
    /// [`ModeStream::entry_id`]).
    #[inline]
    pub fn position_of(&self, e: usize) -> usize {
        self.entry_positions[e] as usize
    }
}

/// The full mode-major execution plan: one [`ModeStream`] per mode.
#[derive(Debug, Clone)]
pub struct ModeStreams {
    streams: Vec<ModeStream>,
}

impl ModeStreams {
    /// Derives the plan from COO — `O(N·|Ω|)`, done once per fit.
    ///
    /// # Errors
    /// [`TensorError::InvalidDims`] if a dimensionality or `|Ω|` exceeds
    /// `u32::MAX` (the packed-index width).
    pub fn build(x: &SparseTensor) -> Result<Self> {
        let lim = u32::MAX as usize;
        if x.nnz() > lim {
            return Err(TensorError::InvalidDims(format!(
                "nnz {} exceeds the streamed layout's u32 entry-id width",
                x.nnz()
            )));
        }
        if let Some(&d) = x.dims().iter().find(|&&d| d > lim) {
            return Err(TensorError::InvalidDims(format!(
                "dimensionality {d} exceeds the streamed layout's u32 index width"
            )));
        }
        Ok(ModeStreams {
            streams: (0..x.order()).map(|n| ModeStream::build(x, n)).collect(),
        })
    }

    /// The stream for `mode`.
    #[inline]
    pub fn mode(&self, mode: usize) -> &ModeStream {
        &self.streams[mode]
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.streams.len()
    }

    /// Bytes the plan for `x` will occupy — computable *before* building,
    /// so callers can reserve against a memory budget first. Per mode:
    /// `|Ω|` values (8 B), `(N−1)·|Ω|` packed indices (4 B), `|Ω|` entry
    /// ids plus `|Ω|` inverse positions (4 B each) and `Iₙ+1` offsets
    /// (8 B).
    pub fn bytes_for(x: &SparseTensor) -> usize {
        let nnz = x.nnz();
        let order = x.order();
        let per_mode_entries = nnz * 8 + (order - 1) * nnz * 4 + 2 * nnz * 4;
        let offsets: usize = x.dims().iter().map(|&d| (d + 1) * 8).sum();
        order * per_mode_entries + offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseTensor {
        SparseTensor::new(
            vec![3, 2, 2],
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 1], 2.0),
                (vec![1, 0, 1], 3.0),
                (vec![2, 1, 0], 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn stream_matches_coo_slice_order() {
        let x = sample();
        let plan = ModeStreams::build(&x).unwrap();
        for n in 0..x.order() {
            let s = plan.mode(n);
            assert_eq!(s.mode(), n);
            assert_eq!(s.num_slices(), x.dims()[n]);
            assert_eq!(s.other_count(), x.order() - 1);
            for i in 0..x.dims()[n] {
                let range = s.slice_range(i);
                assert_eq!(range.len(), x.slice(n, i).len());
                assert_eq!(s.slice_len(i), x.slice_len(n, i));
                for (p, &e) in range.zip(x.slice(n, i)) {
                    assert_eq!(s.entry_id(p), e, "in-slice COO order preserved");
                    assert_eq!(s.values()[p], x.value(e));
                    let full = x.index(e);
                    let mut slot = 0;
                    for (k, &ik) in full.iter().enumerate() {
                        if k == n {
                            continue;
                        }
                        assert_eq!(s.others(p)[slot] as usize, ik, "mode {n} pos {p}");
                        slot += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn entry_ids_are_a_permutation() {
        let x = sample();
        let plan = ModeStreams::build(&x).unwrap();
        for n in 0..x.order() {
            let s = plan.mode(n);
            let mut seen = vec![false; x.nnz()];
            for p in 0..x.nnz() {
                let e = s.entry_id(p);
                assert!(!seen[e]);
                seen[e] = true;
                assert_eq!(s.position_of(e), p, "inverse map round-trips");
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn bytes_estimate_is_positive_and_scales_with_order() {
        let x = sample();
        let b = ModeStreams::bytes_for(&x);
        // 3 modes × (4·8 + 2·4·4 + 2·4·4) B entries + offsets.
        assert_eq!(b, 3 * (32 + 32 + 32) + (4 + 3 + 3) * 8);
    }

    #[test]
    fn empty_tensor_streams() {
        let x = SparseTensor::new(vec![3, 3], vec![]).unwrap();
        let plan = ModeStreams::build(&x).unwrap();
        for n in 0..2 {
            let s = plan.mode(n);
            for i in 0..3 {
                assert!(s.slice_range(i).is_empty());
            }
        }
    }

    #[test]
    fn order_one_tensor_has_empty_others() {
        let x = SparseTensor::new(vec![4], vec![(vec![1], 2.0), (vec![3], 5.0)]).unwrap();
        let plan = ModeStreams::build(&x).unwrap();
        let s = plan.mode(0);
        assert_eq!(s.other_count(), 0);
        assert_eq!(s.values(), &[2.0, 5.0]);
        assert!(s.others(0).is_empty());
        assert!(s.others(1).is_empty());
    }
}
