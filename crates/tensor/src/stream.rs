//! Mode-major execution plans: the streamed slice layout.
//!
//! The per-mode [`crate::ModeIndex`] answers "which entries live in slice
//! `iₙ`?" with a list of entry *ids* — every consumer then gathers the
//! entry's value and multi-index through those ids, which turns the hottest
//! loop of the row-wise update into a scatter/gather over the COO arrays.
//!
//! A [`ModeStream`] removes that indirection: for one mode, the entry
//! values and the packed *other-mode* indices are physically reordered
//! slice-by-slice, so walking a slice is a linear scan of contiguous
//! memory. Within a slice, entries appear in ascending COO entry-id order —
//! the same order `ModeIndex::slice` yields — so algorithms that subsample
//! (`sample_stride`) or accumulate in slice order produce *identical*
//! results on either layout.
//!
//! COO stays the source of truth; a [`ModeStreams`] plan is derived from a
//! [`SparseTensor`] once per fit (`O(N·|Ω|)` time and memory) and is
//! immutable afterwards. Other-mode indices and entry ids are stored as
//! `u32` — half the memory traffic of `usize` on 64-bit targets, which is
//! most of the point of a bandwidth-bound layout — so dimensionalities and
//! `|Ω|` must fit in 32 bits (they do for every tensor in the paper by
//! orders of magnitude; [`ModeStreams::build`] checks).
//!
//! # One sweep abstraction for every placement
//!
//! The plan's storage is a [`StreamStore`]: either every mode's stream is
//! resident ([`ModeStreams::build`]) or the bulk arrays — values, packed
//! other-mode indices and entry ids — live in an unlinked
//! [`ScratchFile`](ptucker_memtrack::ScratchFile) and only the per-mode
//! slice offsets and inverse entry maps stay in RAM
//! ([`ModeStreams::build_spilled`]).
//!
//! Consumers never branch on the placement. [`ModeStreams::sweep_source`]
//! yields a [`SweepSource`]: a lending iterator of **slice-aligned
//! windows**, each presented as a [`StreamView`] — contiguous values,
//! packed indices and entry ids with window-local slices and positions.
//! Over a resident plan a window is a zero-copy sub-view of the stream
//! (one window covering the whole stream when the capacity is unbounded);
//! over a spilled plan it is a [`SliceWindows`] refill of a pinned buffer
//! from the scratch file. The fit driver downstream is therefore *one*
//! loop: the in-memory fit is the single-full-window special case of the
//! windowed fit, and the per-row arithmetic is byte-identical on every
//! placement.
//!
//! # N-deep prefetch ring
//!
//! A spilled sweep can overlap its scratch-file reads with the row
//! computation: at pipeline depth `d ≥ 2`
//! ([`ModeStreams::sweep_source_deep`]), [`SliceWindows`] pins `d − 1`
//! extra buffers and hands refill requests to a
//! [`ptucker_sched::Background`] worker thread, keeping up to `d − 1`
//! window reads banked ahead of the compute — windows `w+1 … w+d−1`
//! stream in from disk while the rows of window `w` are being updated,
//! and slow windows drain the bank before the compute ever stalls. Depth
//! 2 is the classic double buffer; `prefetch: true` on the boolean APIs
//! maps to it. Prefetching changes only *when* bytes are read, never
//! their values — sweeps are bitwise identical at every depth. Budget
//! accounting is the caller's job (the fit driver books all `d` pinned
//! buffers).
//!
//! # Disk-to-disk builds
//!
//! A plan does not need a resident tensor at all:
//! [`ModeStreams::build_external`] derives the spilled plan straight from
//! an on-disk [`CooScratch`] source by external sort (budget-bounded
//! sorted runs + K-way merge), producing bit-for-bit the sections
//! [`ModeStreams::build_spilled`] writes. Combined with the streamed
//! ingest writers in `ptucker-datagen`, the whole path from raw data to
//! fitted factors touches RAM only through bounded buffers.

use crate::{CooScratch, Result, SparseTensor, StoragePrecision, TensorError};
use ptucker_memtrack::{MemoryBudget, Reservation, ScratchFile, SpillReservation};
use ptucker_sched::Background;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::ops::Range;
use std::sync::Arc;

/// Owned value storage at the plan's [`StoragePrecision`]: entry values in
/// stream order, as 8-byte or 4-byte slots.
#[derive(Debug, Clone)]
enum ValueStore {
    F64(Vec<f64>),
    F32(Vec<f32>),
}

impl ValueStore {
    fn with_capacity(precision: StoragePrecision, n: usize) -> Self {
        match precision {
            StoragePrecision::F64 => ValueStore::F64(Vec::with_capacity(n)),
            StoragePrecision::F32 => ValueStore::F32(Vec::with_capacity(n)),
        }
    }

    fn len(&self) -> usize {
        match self {
            ValueStore::F64(v) => v.len(),
            ValueStore::F32(v) => v.len(),
        }
    }

    /// Appends `v` rounded to the store's precision.
    fn push(&mut self, v: f64) {
        match self {
            ValueStore::F64(vec) => vec.push(v),
            ValueStore::F32(vec) => vec.push(v as f32),
        }
    }

    fn clear_reserve(&mut self, n: usize) {
        match self {
            ValueStore::F64(vec) => {
                vec.clear();
                vec.reserve(n);
            }
            ValueStore::F32(vec) => {
                vec.clear();
                vec.reserve(n);
            }
        }
    }

    fn view(&self, start: usize, end: usize) -> ValuesView<'_> {
        match self {
            ValueStore::F64(vec) => ValuesView::F64(&vec[start..end]),
            ValueStore::F32(vec) => ValuesView::F32(&vec[start..end]),
        }
    }
}

/// A borrowed slice of stream values at either storage precision — the
/// value half of a [`StreamView`]. [`ValuesView::at`] widens f32 storage
/// to `f64` at load (an exact conversion), so consumers are
/// precision-blind: one code path, f64 arithmetic everywhere.
#[derive(Debug, Clone, Copy)]
pub enum ValuesView<'a> {
    /// 8-byte storage.
    F64(&'a [f64]),
    /// 4-byte storage, widened per element by [`ValuesView::at`].
    F32(&'a [f32]),
}

impl<'a> ValuesView<'a> {
    /// Number of values in the view.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            ValuesView::F64(v) => v.len(),
            ValuesView::F32(v) => v.len(),
        }
    }

    /// Whether the view holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at position `p`, widened to `f64`.
    #[inline]
    pub fn at(&self, p: usize) -> f64 {
        match self {
            ValuesView::F64(v) => v[p],
            ValuesView::F32(v) => v[p] as f64,
        }
    }

    /// The storage precision behind the view.
    #[inline]
    pub fn precision(&self) -> StoragePrecision {
        match self {
            ValuesView::F64(_) => StoragePrecision::F64,
            ValuesView::F32(_) => StoragePrecision::F32,
        }
    }

    /// All values widened into an owned `f64` vector (tests, diagnostics).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            ValuesView::F64(v) => v.to_vec(),
            ValuesView::F32(v) => v.iter().map(|&x| x as f64).collect(),
        }
    }
}

/// The streamed slice layout of one mode: values and packed other-mode
/// indices in slice-major order, plus the stream-position → COO entry-id
/// map for consumers that keep per-entry state in COO order (e.g. the
/// P-Tucker-Cache `Pres` table).
#[derive(Debug, Clone)]
pub struct ModeStream {
    mode: usize,
    /// Number of *other* modes (`N − 1`): the per-entry stride of `others`.
    other_count: usize,
    /// `offsets[i]..offsets[i+1]` delimits slice `i`'s stream positions.
    offsets: Vec<usize>,
    /// Entry values in stream order, at the plan's storage precision.
    values: ValueStore,
    /// Packed other-mode indices: stream position `p` owns
    /// `others[p*other_count..(p+1)*other_count]`, modes ascending with the
    /// stream's own mode skipped.
    others: Vec<u32>,
    /// Stream position → COO entry id.
    entry_ids: Vec<u32>,
    /// COO entry id → stream position (the inverse of `entry_ids`).
    /// Consumers that keep per-entry state *in this stream's order* — the
    /// stream-ordered `Pres` table of P-Tucker-Cache — use it to compute
    /// the permutation that carries that state from one mode's order to
    /// another's.
    entry_positions: Vec<u32>,
}

impl ModeStream {
    fn build(x: &SparseTensor, mode: usize, precision: StoragePrecision) -> Self {
        let order = x.order();
        let other_count = order - 1;
        let nnz = x.nnz();
        let dim = x.dims()[mode];
        let mut offsets = Vec::with_capacity(dim + 1);
        let mut values = ValueStore::with_capacity(precision, nnz);
        let mut others = Vec::with_capacity(nnz * other_count);
        let mut entry_ids = Vec::with_capacity(nnz);
        let mut entry_positions = vec![0u32; nnz];
        offsets.push(0);
        for i in 0..dim {
            for &e in x.slice(mode, i) {
                let idx = x.index(e);
                entry_positions[e] = values.len() as u32;
                values.push(x.value(e));
                for (k, &ik) in idx.iter().enumerate() {
                    if k != mode {
                        others.push(ik as u32);
                    }
                }
                entry_ids.push(e as u32);
            }
            offsets.push(values.len());
        }
        ModeStream {
            mode,
            other_count,
            offsets,
            values,
            others,
            entry_ids,
            entry_positions,
        }
    }

    /// The mode this stream is laid out for.
    #[inline]
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Number of other modes (`N − 1`) — the per-entry stride of
    /// [`ModeStream::others`].
    #[inline]
    pub fn other_count(&self) -> usize {
        self.other_count
    }

    /// Number of slices (`Iₙ`).
    #[inline]
    pub fn num_slices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The stream positions of slice `i` (`Ω⁽ⁿ⁾ᵢ` in stream coordinates).
    #[inline]
    pub fn slice_range(&self, i: usize) -> Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// `|Ω⁽ⁿ⁾ᵢ|` — the per-row work weight the nnz-balanced scheduler
    /// partitions by.
    #[inline]
    pub fn slice_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// All values in stream order, behind a precision-blind view.
    #[inline]
    pub fn values(&self) -> ValuesView<'_> {
        self.values.view(0, self.values.len())
    }

    /// The value at stream position `p`, widened to `f64`.
    #[inline]
    pub fn value(&self, p: usize) -> f64 {
        self.values().at(p)
    }

    /// The flat packed other-mode index storage (stride
    /// [`ModeStream::other_count`]).
    #[inline]
    pub fn others_flat(&self) -> &[u32] {
        &self.others
    }

    /// The packed other-mode indices of stream position `p` (ascending
    /// mode order, this stream's mode skipped).
    #[inline]
    pub fn others(&self, p: usize) -> &[u32] {
        &self.others[p * self.other_count..(p + 1) * self.other_count]
    }

    /// The COO entry id behind stream position `p`.
    #[inline]
    pub fn entry_id(&self, p: usize) -> usize {
        self.entry_ids[p] as usize
    }

    /// The stream position holding COO entry `e` (inverse of
    /// [`ModeStream::entry_id`]).
    #[inline]
    pub fn position_of(&self, e: usize) -> usize {
        self.entry_positions[e] as usize
    }

    /// The whole stream as a [`StreamView`] (slices and positions global).
    #[inline]
    pub fn view(&self) -> StreamView<'_> {
        self.view_range(0, self.num_slices())
    }

    /// A zero-copy [`StreamView`] of slices `lo..hi` — slice `i` of the
    /// view is global slice `lo + i`, position `p` is global position
    /// `offsets[lo] + p`. This is how a resident plan serves slice-aligned
    /// windows without touching a byte.
    #[inline]
    pub fn view_range(&self, lo: usize, hi: usize) -> StreamView<'_> {
        let start = self.offsets[lo];
        let end = self.offsets[hi];
        StreamView {
            mode: self.mode,
            other_count: self.other_count,
            offsets: &self.offsets[lo..=hi],
            values: self.values.view(start, end),
            others: &self.others[start * self.other_count..end * self.other_count],
            entry_ids: &self.entry_ids[start..end],
        }
    }

    /// The largest slice's position count.
    fn max_slice_len(&self) -> usize {
        (0..self.num_slices())
            .map(|i| self.slice_len(i))
            .max()
            .unwrap_or(0)
    }
}

/// A borrowed, window-local view of (part of) one mode's stream — the one
/// shape every row sweep consumes, whatever the plan's placement.
///
/// Slices and positions are **window-local**: slice `i` of the view is
/// global slice `window.slices.start + i`, position `p` is global position
/// `window.base + p`. A view over a whole resident stream has local ==
/// global. Copyable (it is five slims slices), so sweep contexts embed it
/// by value.
#[derive(Debug, Clone, Copy)]
pub struct StreamView<'a> {
    mode: usize,
    other_count: usize,
    /// Covered slice boundaries; may carry a global bias (`offsets[0]`),
    /// which every accessor subtracts — a resident sub-view borrows the
    /// stream's global offsets, a pinned spill buffer stores them
    /// pre-localized.
    offsets: &'a [usize],
    values: ValuesView<'a>,
    others: &'a [u32],
    entry_ids: &'a [u32],
}

impl<'a> StreamView<'a> {
    /// The mode this view's stream is laid out for.
    #[inline]
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Number of other modes (`N − 1`) — the per-entry stride of
    /// [`StreamView::others_flat`].
    #[inline]
    pub fn other_count(&self) -> usize {
        self.other_count
    }

    /// Number of slices this view covers.
    #[inline]
    pub fn num_slices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total stream positions in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the view holds no positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The window-local positions of local slice `i`.
    #[inline]
    pub fn slice_range(&self, i: usize) -> Range<usize> {
        let bias = self.offsets[0];
        self.offsets[i] - bias..self.offsets[i + 1] - bias
    }

    /// `|Ω⁽ⁿ⁾ᵢ|` for local slice `i`.
    #[inline]
    pub fn slice_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// All values in the view, window-local, behind a precision-blind
    /// view ([`ValuesView::at`] widens f32 storage at load).
    #[inline]
    pub fn values(&self) -> ValuesView<'a> {
        self.values
    }

    /// The value at window-local position `p`, widened to `f64`.
    #[inline]
    pub fn value(&self, p: usize) -> f64 {
        self.values.at(p)
    }

    /// The flat packed other-mode index storage (stride
    /// [`StreamView::other_count`]), window-local.
    #[inline]
    pub fn others_flat(&self) -> &'a [u32] {
        self.others
    }

    /// The packed other-mode indices of window-local position `p`.
    #[inline]
    pub fn others(&self, p: usize) -> &'a [u32] {
        &self.others[p * self.other_count..(p + 1) * self.other_count]
    }

    /// The COO entry id behind window-local position `p`.
    #[inline]
    pub fn entry_id(&self, p: usize) -> usize {
        self.entry_ids[p] as usize
    }
}

/// Where a [`ModeStreams`] plan keeps its bulk arrays.
#[derive(Debug)]
pub enum StreamStore {
    /// Every mode's stream is fully resident — the default whenever the
    /// plan fits the memory budget.
    InMemory(Vec<ModeStream>),
    /// The bulk arrays (values, packed other-mode indices, entry ids) of
    /// every mode live in a per-fit scratch file; RAM holds only the
    /// per-mode slice offsets and inverse entry maps. Consumed through
    /// [`SweepSource`] / [`SliceWindows`].
    Spilled {
        /// The unlinked per-fit scratch file holding every mode's
        /// sections.
        file: Arc<ScratchFile>,
        /// Per-mode metadata and section offsets into `file`.
        modes: Vec<SpilledModeStream>,
        /// Keeps the resident-metadata bytes visible to the RAM meter for
        /// the plan's lifetime.
        _resident: Reservation,
        /// Keeps the on-disk bytes visible to the spill meter for the
        /// plan's lifetime.
        _spill: SpillReservation,
    },
}

/// A mode's stream whose bulk arrays live in the plan's scratch file.
///
/// RAM keeps the slice offsets (`Iₙ+1` words) and the COO-entry-id →
/// stream-position inverse map (`|Ω|` packed `u32`s — needed by consumers
/// that permute stream-ordered state between modes, like the Cached
/// variant's spilled `Pres` table). Everything per-position — values,
/// packed other-mode indices, entry ids — is read back window-at-a-time
/// through [`SliceWindows`].
#[derive(Debug)]
pub struct SpilledModeStream {
    mode: usize,
    other_count: usize,
    offsets: Vec<usize>,
    entry_positions: Vec<u32>,
    max_slice_len: usize,
    /// Byte offsets of this mode's sections in the plan's scratch file:
    /// the interleaved per-position records, and the ids-only copy.
    rec_off: u64,
    ids_off: u64,
}

impl SpilledModeStream {
    /// The mode this stream is laid out for.
    #[inline]
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Number of other modes (`N − 1`).
    #[inline]
    pub fn other_count(&self) -> usize {
        self.other_count
    }

    /// Number of slices (`Iₙ`).
    #[inline]
    pub fn num_slices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total stream positions (`|Ω|`).
    #[inline]
    pub fn len(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Whether the stream holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The **global** stream positions of slice `i`.
    #[inline]
    pub fn slice_range(&self, i: usize) -> Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// `|Ω⁽ⁿ⁾ᵢ|` for slice `i`.
    #[inline]
    pub fn slice_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The largest slice's position count — the irreducible window size,
    /// since windows are slice-aligned.
    #[inline]
    pub fn max_slice_len(&self) -> usize {
        self.max_slice_len
    }

    /// The global stream position holding COO entry `e`.
    #[inline]
    pub fn position_of(&self, e: usize) -> usize {
        self.entry_positions[e] as usize
    }

    /// Number of slice-aligned windows a sweep with `cap_positions` of
    /// window capacity will take (no I/O; pure offset arithmetic).
    pub fn window_count(&self, cap_positions: usize) -> usize {
        let cap = cap_positions.max(1);
        let mut n = 0;
        let mut lo = 0;
        while lo < self.num_slices() {
            lo = window_extent(&self.offsets, lo, cap);
            n += 1;
        }
        n
    }
}

/// Bytes of one interleaved spilled-stream record: the value (8 B or 4 B
/// by storage precision), the packed other-mode indices (4 B each) and
/// the entry id (4 B).
fn record_stride(other_count: usize, precision: StoragePrecision) -> usize {
    precision.value_bytes() + 4 * other_count + 4
}

/// Floor of the external-sort arena: below this, run counts explode and
/// the merge heap dominates — tiny budgets still get a working build,
/// with the floor booked against them honestly.
const MIN_SORT_BYTES: usize = 256 << 10;

/// Ceiling of the external-sort arena — beyond a few tens of MiB, longer
/// runs stop paying (fewer runs than the merge needs to care about).
const MAX_SORT_BYTES: usize = 64 << 20;

/// Staging-buffer flush threshold for sequential run writes.
const RUN_WRITE_BYTES: usize = 256 << 10;

/// One sorted run's read cursor during the K-way merge: a bounded buffer
/// of records, the in-buffer position, and how far into the run the
/// buffer reaches.
struct RunCursor {
    buf: Vec<u8>,
    /// Record position within `buf`.
    pos: usize,
    /// Records of the run consumed into `buf` so far.
    read: usize,
    /// Total records in the run.
    count: usize,
    /// Byte offset of the run in the run file.
    off: u64,
}

/// Sorts the arena's records by `(slice key, entry id)` and spills them as
/// one run, through a bounded staging buffer. No-op on an empty arena.
fn flush_run(
    run_file: &ScratchFile,
    runs: &mut Vec<(u64, usize)>,
    arena: &mut Vec<u8>,
    keys: &mut Vec<(u32, u32, u32)>,
    run_rec: usize,
    staging: &mut Vec<u8>,
) -> Result<()> {
    if keys.is_empty() {
        return Ok(());
    }
    keys.sort_unstable();
    let off = run_file.reserve_region((keys.len() * run_rec) as u64)?;
    let mut written = 0u64;
    staging.clear();
    for &(_, _, slot) in keys.iter() {
        let a = slot as usize * run_rec;
        staging.extend_from_slice(&arena[a..a + run_rec]);
        if staging.len() >= RUN_WRITE_BYTES {
            run_file.write_bytes(off + written, staging)?;
            written += staging.len() as u64;
            staging.clear();
        }
    }
    if !staging.is_empty() {
        run_file.write_bytes(off + written, staging)?;
        staging.clear();
    }
    runs.push((off, keys.len()));
    arena.clear();
    keys.clear();
    Ok(())
}

/// Refills a run cursor's buffer with its next records; `false` when the
/// run is exhausted.
fn refill_run(
    run_file: &ScratchFile,
    c: &mut RunCursor,
    per_run_recs: usize,
    run_rec: usize,
) -> Result<bool> {
    if c.read >= c.count {
        return Ok(false);
    }
    let n = per_run_recs.min(c.count - c.read);
    c.buf.resize(n * run_rec, 0);
    run_file.read_bytes(c.off + c.read as u64 * run_rec as u64, &mut c.buf)?;
    c.read += n;
    c.pos = 0;
    Ok(true)
}

/// The `(slice key, entry id)` of the record under a run cursor.
fn peek_run(c: &RunCursor, run_rec: usize) -> (u32, u32) {
    let a = c.pos * run_rec;
    let key = u32::from_le_bytes(c.buf[a..a + 4].try_into().expect("4-byte field"));
    let eid = u32::from_le_bytes(
        c.buf[a + run_rec - 4..a + run_rec]
            .try_into()
            .expect("4-byte field"),
    );
    (key, eid)
}

/// Returns the exclusive upper slice bound of the window starting at slice
/// `lo`: the longest run of whole slices whose combined positions fit
/// `cap`, but always at least one slice (a slice larger than `cap` forms a
/// singleton window — windows never split slices).
fn window_extent(offsets: &[usize], lo: usize, cap: usize) -> usize {
    let start = offsets[lo];
    let num_slices = offsets.len() - 1;
    let mut hi = lo + 1;
    while hi < num_slices && offsets[hi + 1] - start <= cap {
        hi += 1;
    }
    hi
}

/// The full mode-major execution plan: one stream per mode, resident or
/// spilled (see [`StreamStore`]).
#[derive(Debug)]
pub struct ModeStreams {
    store: StreamStore,
    /// Storage precision of the values (resident vectors and spilled
    /// records alike).
    precision: StoragePrecision,
}

impl ModeStreams {
    fn check_widths(x: &SparseTensor) -> Result<()> {
        Self::check_widths_dims(x.dims(), x.nnz())
    }

    fn check_widths_dims(dims: &[usize], nnz: usize) -> Result<()> {
        let lim = u32::MAX as usize;
        if nnz > lim {
            return Err(TensorError::InvalidDims(format!(
                "nnz {nnz} exceeds the streamed layout's u32 entry-id width"
            )));
        }
        if let Some(&d) = dims.iter().find(|&&d| d > lim) {
            return Err(TensorError::InvalidDims(format!(
                "dimensionality {d} exceeds the streamed layout's u32 index width"
            )));
        }
        Ok(())
    }

    /// Derives the fully resident plan from COO — `O(N·|Ω|)`, done once
    /// per fit.
    ///
    /// # Errors
    /// [`TensorError::InvalidDims`] if a dimensionality or `|Ω|` exceeds
    /// `u32::MAX` (the packed-index width).
    pub fn build(x: &SparseTensor) -> Result<Self> {
        Self::build_at(x, StoragePrecision::F64)
    }

    /// [`ModeStreams::build`] at an explicit storage precision: with
    /// [`StoragePrecision::F32`] every entry value is rounded to `f32`
    /// once here and stored in 4-byte slots; consumers widen at load.
    ///
    /// # Errors
    /// As for [`ModeStreams::build`].
    pub fn build_at(x: &SparseTensor, precision: StoragePrecision) -> Result<Self> {
        Self::check_widths(x)?;
        Ok(ModeStreams {
            store: StreamStore::InMemory(
                (0..x.order())
                    .map(|n| ModeStream::build(x, n, precision))
                    .collect(),
            ),
            precision,
        })
    }

    /// Derives the plan with its bulk arrays **spilled to a scratch
    /// file**, streaming each mode's sections to disk slice-by-slice
    /// through a bounded append buffer — peak transient memory during the
    /// build is the buffer plus one mode's resident metadata, not the
    /// full `O(N·|Ω|)` plan.
    ///
    /// Each mode writes two sections: the per-position data **interleaved
    /// as fixed-stride records** (`value f64 | packed other-mode u32s |
    /// entry id u32`), so any window of positions is one contiguous byte
    /// range — a refill is a single read, not one per array — plus a
    /// separate entry-id section for the ids-only sweeps (the spilled
    /// `Pres` table's build/rescale), which keep their 4-bytes-per-
    /// position read volume.
    ///
    /// The resident metadata (offsets + inverse entry maps) is booked with
    /// [`MemoryBudget::reserve_unchecked`] — it is the irreducible floor
    /// of the out-of-core path — and the file bytes with
    /// [`MemoryBudget::record_spill`]; both guards live inside the
    /// returned plan.
    ///
    /// # Errors
    /// [`TensorError::InvalidDims`] as for [`ModeStreams::build`], or
    /// [`TensorError::Io`] if scratch-file I/O fails.
    pub fn build_spilled(x: &SparseTensor, budget: &MemoryBudget) -> Result<Self> {
        Self::build_spilled_at(x, budget, StoragePrecision::F64)
    }

    /// [`ModeStreams::build_spilled`] at an explicit storage precision:
    /// with [`StoragePrecision::F32`] the value field of every interleaved
    /// record shrinks to 4 bytes (the same rounded bits a resident f32
    /// plan stores, so the two placements stay bitwise interchangeable).
    ///
    /// # Errors
    /// As for [`ModeStreams::build_spilled`].
    pub fn build_spilled_at(
        x: &SparseTensor,
        budget: &MemoryBudget,
        precision: StoragePrecision,
    ) -> Result<Self> {
        Self::check_widths(x)?;
        const FLUSH: usize = 1024;
        let file = ScratchFile::create_tracked(budget)?;
        let nnz = x.nnz();
        let order = x.order();
        let other_count = order - 1;
        let stride = record_stride(other_count, precision);
        let mut modes = Vec::with_capacity(order);
        let mut rbuf: Vec<u8> = Vec::with_capacity(FLUSH * stride);
        let mut ibuf: Vec<u32> = Vec::with_capacity(FLUSH);
        for mode in 0..order {
            let dim = x.dims()[mode];
            let mut offsets = Vec::with_capacity(dim + 1);
            let mut entry_positions = vec![0u32; nnz];
            let rec_off = file.reserve_region(nnz as u64 * stride as u64)?;
            let ids_off = file.reserve_region(nnz as u64 * 4)?;
            let mut written = 0usize;
            let mut max_slice_len = 0usize;
            offsets.push(0);
            for i in 0..dim {
                for &e in x.slice(mode, i) {
                    entry_positions[e] = (written + ibuf.len()) as u32;
                    match precision {
                        StoragePrecision::F64 => {
                            rbuf.extend_from_slice(&x.value(e).to_le_bytes());
                        }
                        StoragePrecision::F32 => {
                            rbuf.extend_from_slice(&(x.value(e) as f32).to_le_bytes());
                        }
                    }
                    for (k, &ik) in x.index(e).iter().enumerate() {
                        if k != mode {
                            rbuf.extend_from_slice(&(ik as u32).to_le_bytes());
                        }
                    }
                    rbuf.extend_from_slice(&(e as u32).to_le_bytes());
                    ibuf.push(e as u32);
                    if ibuf.len() == FLUSH {
                        file.write_bytes(rec_off + written as u64 * stride as u64, &rbuf)?;
                        file.write_u32s(ids_off + written as u64 * 4, &ibuf)?;
                        written += ibuf.len();
                        rbuf.clear();
                        ibuf.clear();
                    }
                }
                offsets.push(written + ibuf.len());
                max_slice_len = max_slice_len.max(x.slice_len(mode, i));
            }
            if !ibuf.is_empty() {
                file.write_bytes(rec_off + written as u64 * stride as u64, &rbuf)?;
                file.write_u32s(ids_off + written as u64 * 4, &ibuf)?;
                rbuf.clear();
                ibuf.clear();
            }
            modes.push(SpilledModeStream {
                mode,
                other_count,
                offsets,
                entry_positions,
                max_slice_len,
                rec_off,
                ids_off,
            });
        }
        let resident = budget.reserve_unchecked(Self::resident_bytes_for(x));
        let spill = budget.record_spill(file.len() as usize);
        Ok(ModeStreams {
            store: StreamStore::Spilled {
                file: Arc::new(file),
                modes,
                _resident: resident,
                _spill: spill,
            },
            precision,
        })
    }

    /// Derives the spilled plan **from an on-disk COO source** by external
    /// sort, never holding more than a budget-bounded buffer of the tensor
    /// in RAM — the disk→disk build: source scratch file in, plan scratch
    /// file out.
    ///
    /// Per mode, two bounded passes over the source: the COO records are
    /// streamed into **sorted runs** on a transient scratch file (each run
    /// sorted by `(slice index, entry id)` — exactly the slice-major,
    /// in-slice-ascending-COO order the resident layout has by
    /// construction), then **K-way merged** into the same interleaved
    /// record + ids sections [`ModeStreams::build_spilled`] writes. Run
    /// and merge buffers are sized from the budget's current headroom
    /// (with a small floor so tiny budgets still make progress, booked
    /// either way), and both scratch files report their traffic to the
    /// budget's I/O counters.
    ///
    /// The output is **bitwise identical** to
    /// [`ModeStreams::build_spilled_at`] over the resident tensor at the
    /// same precision — same record bytes, same slice offsets, same
    /// inverse entry maps — so a fit from a `CooScratch` source follows
    /// the exact trajectory of its in-RAM twin.
    ///
    /// # Errors
    /// [`TensorError::InvalidDims`] as for [`ModeStreams::build`], or
    /// [`TensorError::Io`] if scratch-file I/O fails.
    pub fn build_external(src: &CooScratch, budget: &MemoryBudget) -> Result<Self> {
        Self::build_external_at(src, budget, StoragePrecision::F64)
    }

    /// [`ModeStreams::build_external`] at an explicit storage precision.
    /// Values are quantized here, at plan ingest, exactly as the resident
    /// builds do — the COO source always stores full `f64` bits.
    ///
    /// # Errors
    /// As for [`ModeStreams::build_external`].
    pub fn build_external_at(
        src: &CooScratch,
        budget: &MemoryBudget,
        precision: StoragePrecision,
    ) -> Result<Self> {
        Self::check_widths_dims(src.dims(), src.nnz())?;
        const FLUSH: usize = 1024;
        let dims = src.dims().to_vec();
        let nnz = src.nnz();
        let order = dims.len();
        let other_count = order - 1;
        let stride = record_stride(other_count, precision);
        // A run record is the output payload behind a 4-byte slice-key
        // prefix; the sort arena also carries one (key, eid, arena slot)
        // triple per record.
        let run_rec = 4 + stride;
        let sort_cost = run_rec + std::mem::size_of::<(u32, u32, u32)>();
        // Book the plan's resident floor (offsets + inverse entry maps)
        // *before* sizing the sort arena: the maps are allocated inside
        // the per-mode loop below, and sizing the arena from a budget the
        // floor is about to consume would overshoot the tracked peak.
        let resident = budget.reserve_unchecked(Self::resident_bytes_for_dims(&dims, nnz));
        let arena_bytes = (budget.available() / 2).clamp(MIN_SORT_BYTES, MAX_SORT_BYTES);
        let run_entries = (arena_bytes / sort_cost).max(1).min(nnz.max(1));
        // The sort arena doubles as the merge pass's read buffers, so one
        // booking covers the build's transient RAM.
        let _sort_guard = budget.reserve_unchecked(run_entries * sort_cost);
        let seg_entries = run_entries.min(8 << 10);

        let file = ScratchFile::create_tracked(budget)?;
        let mut modes = Vec::with_capacity(order);
        let mut rbuf: Vec<u8> = Vec::with_capacity(FLUSH * stride);
        let mut ibuf: Vec<u32> = Vec::with_capacity(FLUSH);
        let mut arena: Vec<u8> = Vec::with_capacity(run_entries * run_rec);
        let mut keys: Vec<(u32, u32, u32)> = Vec::with_capacity(run_entries);
        let mut staging: Vec<u8> = Vec::new();
        for mode in 0..order {
            let dim = dims[mode];
            let mut offsets = Vec::with_capacity(dim + 1);
            let mut entry_positions = vec![0u32; nnz];
            let rec_off = file.reserve_region(nnz as u64 * stride as u64)?;
            let ids_off = file.reserve_region(nnz as u64 * 4)?;
            offsets.push(0);

            // Pass 1 — sorted runs: stream the source, pack each entry
            // into its *output* record shape behind the slice key, sort
            // each arena-full, spill it as one run.
            let run_file = ScratchFile::create_tracked(budget)?;
            let mut runs: Vec<(u64, usize)> = Vec::new();
            let mut cur = src.segments(seg_entries);
            while let Some(seg) = cur.next_segment()? {
                for i in 0..seg.len() {
                    let idx = seg.index(i);
                    let e = (seg.base + i) as u32;
                    keys.push((idx[mode], e, keys.len() as u32));
                    arena.extend_from_slice(&idx[mode].to_le_bytes());
                    match precision {
                        StoragePrecision::F64 => {
                            arena.extend_from_slice(&seg.value(i).to_le_bytes());
                        }
                        StoragePrecision::F32 => {
                            arena.extend_from_slice(&(seg.value(i) as f32).to_le_bytes());
                        }
                    }
                    for (k, &ik) in idx.iter().enumerate() {
                        if k != mode {
                            arena.extend_from_slice(&ik.to_le_bytes());
                        }
                    }
                    arena.extend_from_slice(&e.to_le_bytes());
                    if keys.len() == run_entries {
                        flush_run(
                            &run_file,
                            &mut runs,
                            &mut arena,
                            &mut keys,
                            run_rec,
                            &mut staging,
                        )?;
                    }
                }
            }
            flush_run(
                &run_file,
                &mut runs,
                &mut arena,
                &mut keys,
                run_rec,
                &mut staging,
            )?;
            let _run_guard = budget.record_spill(run_file.len() as usize);

            // Pass 2 — K-way merge of the sorted runs into the plan's
            // sections, through the same bounded flush buffers the
            // resident-source spill build uses. Ties on the slice key are
            // broken by entry id, reproducing build_spilled's in-slice
            // ascending-COO order — and with it, its exact bytes.
            let per_run_recs = (run_entries / runs.len().max(1)).max(1);
            let mut cursors: Vec<RunCursor> = runs
                .iter()
                .map(|&(off, count)| RunCursor {
                    buf: Vec::new(),
                    pos: 0,
                    read: 0,
                    count,
                    off,
                })
                .collect();
            let mut heap: BinaryHeap<Reverse<(u32, u32, usize)>> =
                BinaryHeap::with_capacity(cursors.len());
            for (ri, c) in cursors.iter_mut().enumerate() {
                if refill_run(&run_file, c, per_run_recs, run_rec)? {
                    let (key, eid) = peek_run(c, run_rec);
                    heap.push(Reverse((key, eid, ri)));
                }
            }
            let mut written = 0usize;
            let mut max_slice_len = 0usize;
            while let Some(Reverse((key, eid, ri))) = heap.pop() {
                let out_pos = written + ibuf.len();
                while offsets.len() <= key as usize {
                    offsets.push(out_pos);
                }
                entry_positions[eid as usize] = out_pos as u32;
                {
                    let c = &cursors[ri];
                    let a = c.pos * run_rec;
                    rbuf.extend_from_slice(&c.buf[a + 4..a + run_rec]);
                }
                ibuf.push(eid);
                if ibuf.len() == FLUSH {
                    file.write_bytes(rec_off + written as u64 * stride as u64, &rbuf)?;
                    file.write_u32s(ids_off + written as u64 * 4, &ibuf)?;
                    written += ibuf.len();
                    rbuf.clear();
                    ibuf.clear();
                }
                let c = &mut cursors[ri];
                c.pos += 1;
                if c.pos * run_rec >= c.buf.len()
                    && !refill_run(&run_file, c, per_run_recs, run_rec)?
                {
                    continue;
                }
                let (k2, e2) = peek_run(c, run_rec);
                heap.push(Reverse((k2, e2, ri)));
            }
            if !ibuf.is_empty() {
                file.write_bytes(rec_off + written as u64 * stride as u64, &rbuf)?;
                file.write_u32s(ids_off + written as u64 * 4, &ibuf)?;
                written += ibuf.len();
                rbuf.clear();
                ibuf.clear();
            }
            debug_assert_eq!(written, nnz, "merge must emit every record");
            while offsets.len() <= dim {
                offsets.push(nnz);
            }
            for i in 0..dim {
                max_slice_len = max_slice_len.max(offsets[i + 1] - offsets[i]);
            }
            modes.push(SpilledModeStream {
                mode,
                other_count,
                offsets,
                entry_positions,
                max_slice_len,
                rec_off,
                ids_off,
            });
        }
        let spill = budget.record_spill(file.len() as usize);
        Ok(ModeStreams {
            store: StreamStore::Spilled {
                file: Arc::new(file),
                modes,
                _resident: resident,
                _spill: spill,
            },
            precision,
        })
    }

    /// The storage precision of the plan's values.
    #[inline]
    pub fn precision(&self) -> StoragePrecision {
        self.precision
    }

    /// The resident stream for `mode`.
    ///
    /// # Panics
    /// Panics on a spilled plan — its per-position data is only reachable
    /// window-at-a-time through [`ModeStreams::sweep_source`].
    #[inline]
    pub fn mode(&self, mode: usize) -> &ModeStream {
        match &self.store {
            StreamStore::InMemory(streams) => &streams[mode],
            StreamStore::Spilled { .. } => {
                panic!("ModeStreams::mode on a spilled plan; iterate a SweepSource instead")
            }
        }
    }

    /// The spilled metadata for `mode`.
    ///
    /// # Panics
    /// Panics on an in-memory plan (use [`ModeStreams::mode`]).
    #[inline]
    pub fn spilled_mode(&self, mode: usize) -> &SpilledModeStream {
        match &self.store {
            StreamStore::Spilled { modes, .. } => &modes[mode],
            StreamStore::InMemory(_) => {
                panic!("ModeStreams::spilled_mode on an in-memory plan")
            }
        }
    }

    /// Whether the bulk arrays live in a scratch file.
    #[inline]
    pub fn is_spilled(&self) -> bool {
        matches!(self.store, StreamStore::Spilled { .. })
    }

    /// The plan's storage — for consumers that need to branch on it.
    #[inline]
    pub fn store(&self) -> &StreamStore {
        &self.store
    }

    /// The stream position of COO entry `e` in `mode`'s layout, on either
    /// placement (resident streams and spilled plans both keep the inverse
    /// entry map in RAM).
    #[inline]
    pub fn position_of(&self, mode: usize, e: usize) -> usize {
        match &self.store {
            StreamStore::InMemory(streams) => streams[mode].position_of(e),
            StreamStore::Spilled { modes, .. } => modes[mode].position_of(e),
        }
    }

    /// The largest slice's position count across **all** modes — the
    /// irreducible window extent of any slice-aligned sweep.
    pub fn max_slice_len(&self) -> usize {
        match &self.store {
            StreamStore::InMemory(streams) => {
                streams.iter().map(|s| s.max_slice_len()).max().unwrap_or(0)
            }
            StreamStore::Spilled { modes, .. } => {
                modes.iter().map(|m| m.max_slice_len).max().unwrap_or(0)
            }
        }
    }

    /// Total stream positions per mode (`|Ω|`).
    fn total_positions(&self) -> usize {
        match &self.store {
            StreamStore::InMemory(streams) => streams.first().map_or(0, |s| s.entry_ids.len()),
            StreamStore::Spilled { modes, .. } => modes.first().map_or(0, |m| m.len()),
        }
    }

    /// The one way to sweep a mode: a [`SweepSource`] of slice-aligned
    /// windows of at most `cap_positions` stream positions each (single
    /// oversized slices become singleton windows).
    ///
    /// * On a **resident** plan, windows are zero-copy
    ///   [`StreamView`]s of the stream — with an effectively unbounded
    ///   capacity the whole sweep is one window, which is exactly the
    ///   classic in-memory fit.
    /// * On a **spilled** plan this is a [`SliceWindows`] sweep: windows
    ///   refill a pinned buffer from the scratch file; with `prefetch` a
    ///   second pinned buffer and a background worker overlap the next
    ///   window's read with the current window's compute.
    ///
    /// The source is reusable for a whole fit: [`SweepSource::rewind`]
    /// restarts it on another mode without reallocating.
    pub fn sweep_source(
        &self,
        mode: usize,
        cap_positions: usize,
        prefetch: bool,
    ) -> SweepSource<'_> {
        self.sweep_source_deep(mode, cap_positions, if prefetch { 2 } else { 1 })
    }

    /// [`ModeStreams::sweep_source`] with an explicit pipeline depth: the
    /// total number of pinned window buffers a spilled sweep keeps. Depth
    /// 1 is the fully synchronous sweep, 2 the classic double buffer, and
    /// `d > 2` a ring that keeps up to `d − 1` refills in flight behind
    /// the window being computed on — deeper pipelines absorb burstier
    /// compute/I/O imbalance at the cost of `d` pinned buffers. Resident
    /// plans serve zero-copy views whatever the depth. Budget accounting
    /// is the caller's job (a spilled sweep pins `depth` buffers).
    pub fn sweep_source_deep(
        &self,
        mode: usize,
        cap_positions: usize,
        depth: usize,
    ) -> SweepSource<'_> {
        match &self.store {
            StreamStore::InMemory(streams) => SweepSource {
                inner: SourceInner::Resident {
                    streams,
                    mode,
                    cap: cap_positions.max(1),
                    next_slice: 0,
                    start_slice: 0,
                    end_slice: streams[mode].num_slices(),
                },
            },
            StreamStore::Spilled { .. } => SweepSource {
                inner: SourceInner::Spilled(Box::new(self.windows_deep(
                    mode,
                    cap_positions,
                    depth,
                ))),
            },
        }
    }

    /// A windowed sweep over a spilled mode (the spilled arm of
    /// [`ModeStreams::sweep_source`], exposed for direct window-level
    /// consumers and tests). `prefetch` enables the second pinned buffer
    /// and the background refill worker.
    ///
    /// # Panics
    /// Panics on an in-memory plan — use [`ModeStreams::sweep_source`],
    /// which serves zero-copy views there.
    pub fn windows(&self, mode: usize, cap_positions: usize, prefetch: bool) -> SliceWindows<'_> {
        self.windows_deep(mode, cap_positions, if prefetch { 2 } else { 1 })
    }

    /// [`ModeStreams::windows`] with an explicit pipeline depth — the
    /// spilled arm of [`ModeStreams::sweep_source_deep`]. Depth is
    /// clamped to at least 1; depth ≥ 2 spawns the background refill
    /// worker and pins `depth − 1` extra buffers for the ring.
    ///
    /// # Panics
    /// Panics on an in-memory plan — use
    /// [`ModeStreams::sweep_source_deep`], which serves zero-copy views
    /// there.
    pub fn windows_deep(
        &self,
        mode: usize,
        cap_positions: usize,
        depth: usize,
    ) -> SliceWindows<'_> {
        let (file, modes) = match &self.store {
            StreamStore::Spilled { file, modes, .. } => (file, &modes[..]),
            StreamStore::InMemory(_) => {
                panic!("ModeStreams::windows on an in-memory plan")
            }
        };
        let cap = cap_positions.max(1);
        let depth = depth.max(1);
        let total = self.total_positions();
        let max_slice = modes.iter().map(|m| m.max_slice_len).max().unwrap_or(0);
        let max_slices = modes.iter().map(|m| m.num_slices()).max().unwrap_or(0);
        // A pinned buffer never needs more than the capacity, one oversized
        // slice, or the whole stream — whichever binds.
        let buf_cap = cap.max(max_slice).min(total);
        let other_count = modes.first().map_or(0, |m| m.other_count);
        let precision = self.precision;
        let pinned = || WindowBuf {
            offsets: Vec::with_capacity(max_slices + 1),
            values: ValueStore::with_capacity(precision, buf_cap),
            others: Vec::with_capacity(buf_cap * other_count),
            entry_ids: Vec::with_capacity(buf_cap),
            raw: Vec::with_capacity(
                RAW_CHUNK.min(buf_cap.max(1) * record_stride(other_count, precision)),
            ),
        };
        let (free, worker) = if depth >= 2 {
            let file = Arc::clone(file);
            (
                (1..depth).map(|_| pinned()).collect(),
                Some(Background::spawn(
                    move |(mut buf, spec): (WindowBuf, RefillSpec)| {
                        let res = refill(&file, &mut buf, &spec);
                        (buf, spec, res)
                    },
                )),
            )
        } else {
            (Vec::new(), None)
        };
        SliceWindows {
            modes,
            file: Arc::clone(file),
            mode,
            cap,
            precision,
            next_slice: 0,
            start_slice: 0,
            end_slice: modes[mode].num_slices(),
            current: pinned(),
            free,
            worker,
            inflight: VecDeque::new(),
        }
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        match &self.store {
            StreamStore::InMemory(streams) => streams.len(),
            StreamStore::Spilled { modes, .. } => modes.len(),
        }
    }

    /// Bytes the fully resident plan for `x` will occupy — computable
    /// *before* building, so callers can reserve against a memory budget
    /// first. Per mode: `|Ω|` values (8 B), `(N−1)·|Ω|` packed indices
    /// (4 B), `|Ω|` entry ids plus `|Ω|` inverse positions (4 B each) and
    /// `Iₙ+1` offsets (8 B). Defaults to f64 values; see
    /// [`ModeStreams::bytes_for_at`].
    pub fn bytes_for(x: &SparseTensor) -> usize {
        Self::bytes_for_at(x, StoragePrecision::F64)
    }

    /// [`ModeStreams::bytes_for`] at an explicit storage precision (the
    /// value term shrinks to 4 B per position under
    /// [`StoragePrecision::F32`]).
    pub fn bytes_for_at(x: &SparseTensor, precision: StoragePrecision) -> usize {
        Self::bytes_for_dims(x.dims(), x.nnz(), precision)
    }

    /// [`ModeStreams::bytes_for_at`] from the shape alone — the size
    /// formulas need only `(dims, |Ω|)`, so placement decisions for a fit
    /// whose source is an on-disk [`CooScratch`] (no resident
    /// [`SparseTensor`] to pass) use these `_dims` variants.
    pub fn bytes_for_dims(dims: &[usize], nnz: usize, precision: StoragePrecision) -> usize {
        let order = dims.len();
        let per_mode_entries = nnz * precision.value_bytes() + (order - 1) * nnz * 4 + 2 * nnz * 4;
        let offsets: usize = dims.iter().map(|&d| (d + 1) * 8).sum();
        order * per_mode_entries + offsets
    }

    /// RAM bytes a **spilled** plan for `x` keeps resident: per-mode slice
    /// offsets plus the inverse entry maps.
    pub fn resident_bytes_for(x: &SparseTensor) -> usize {
        Self::resident_bytes_for_dims(x.dims(), x.nnz())
    }

    /// [`ModeStreams::resident_bytes_for`] from the shape alone.
    pub fn resident_bytes_for_dims(dims: &[usize], nnz: usize) -> usize {
        let offsets: usize = dims.iter().map(|&d| (d + 1) * 8).sum();
        offsets + dims.len() * nnz * 4
    }

    /// Scratch-file bytes a spilled plan for `x` writes: per mode, the
    /// interleaved per-position records (value 8 B/4 B by precision +
    /// packed other-mode indices 4 B each + entry id 4 B) plus the
    /// ids-only section (4 B per position) serving the cheap ids sweeps.
    /// Defaults to f64 values; see [`ModeStreams::spilled_bytes_for_at`].
    pub fn spilled_bytes_for(x: &SparseTensor) -> usize {
        Self::spilled_bytes_for_at(x, StoragePrecision::F64)
    }

    /// [`ModeStreams::spilled_bytes_for`] at an explicit storage
    /// precision.
    pub fn spilled_bytes_for_at(x: &SparseTensor, precision: StoragePrecision) -> usize {
        Self::spilled_bytes_for_dims(x.dims(), x.nnz(), precision)
    }

    /// [`ModeStreams::spilled_bytes_for_at`] from the shape alone.
    pub fn spilled_bytes_for_dims(
        dims: &[usize],
        nnz: usize,
        precision: StoragePrecision,
    ) -> usize {
        let order = dims.len();
        order * (nnz * record_stride(order - 1, precision) + nnz * 4)
    }
}

/// One slice-aligned window of a mode sweep.
#[derive(Debug)]
pub struct Window<'a> {
    /// The global slice range this window covers.
    pub slices: Range<usize>,
    /// Global stream position of the window's first entry (window-local
    /// position `p` ↔ global position `base + p`).
    pub base: usize,
    /// The window's data: slices and positions are window-local.
    pub stream: StreamView<'a>,
}

/// The entry-id section of one slice-aligned window (see
/// [`SweepSource::next_ids_window`]).
#[derive(Debug)]
pub struct IdsWindow<'a> {
    /// The global slice range this window covers.
    pub slices: Range<usize>,
    /// Global stream position of the window's first entry.
    pub base: usize,
    /// COO entry ids, window-local (`entry_ids[p]` is the entry at
    /// global position `base + p`).
    pub entry_ids: &'a [u32],
}

/// A lending iterator of slice-aligned windows over one mode of a plan —
/// resident (zero-copy views) or spilled (pinned-buffer refills) — so the
/// fit driver is a single loop over either placement.
///
/// Create with [`ModeStreams::sweep_source`]; rewind with
/// [`SweepSource::rewind`] to sweep another mode with the same buffers.
#[derive(Debug)]
pub struct SweepSource<'a> {
    inner: SourceInner<'a>,
}

#[derive(Debug)]
enum SourceInner<'a> {
    Resident {
        streams: &'a [ModeStream],
        mode: usize,
        cap: usize,
        next_slice: usize,
        start_slice: usize,
        end_slice: usize,
    },
    // Boxed: the sweeper (pinned-buffer headers, prefetch plumbing) is an
    // order of magnitude larger than the resident cursor.
    Spilled(Box<SliceWindows<'a>>),
}

impl<'a> SweepSource<'a> {
    /// Whether windows are refilled from a scratch file (`true`) or served
    /// as zero-copy views of a resident plan (`false`).
    pub fn is_spilled(&self) -> bool {
        matches!(self.inner, SourceInner::Spilled(_))
    }

    /// Restarts the sweep on `mode`'s first window, reusing any pinned
    /// buffers — how one source serves every mode of a whole fit. Clears
    /// any slice restriction set by [`SweepSource::rewind_range`].
    pub fn rewind(&mut self, mode: usize) {
        match &mut self.inner {
            SourceInner::Resident {
                streams,
                mode: m,
                next_slice,
                start_slice,
                end_slice,
                ..
            } => {
                assert!(mode < streams.len(), "mode {mode} out of range");
                *m = mode;
                *next_slice = 0;
                *start_slice = 0;
                *end_slice = streams[mode].num_slices();
            }
            SourceInner::Spilled(w) => w.rewind(mode),
        }
    }

    /// Restarts the sweep on `mode`, restricted to the slice subrange
    /// `slices` — the shard of a distributed row-parallel fit. Windows
    /// keep their **global** slice ids and stream bases, so window
    /// consumers are restriction-oblivious; an empty range yields no
    /// windows at all. The restriction holds until the next
    /// [`SweepSource::rewind`] or `rewind_range`.
    ///
    /// # Panics
    /// If `mode` is out of range, `slices` ends past the mode's slice
    /// count, or `slices.start > slices.end`.
    pub fn rewind_range(&mut self, mode: usize, slices: std::ops::Range<usize>) {
        match &mut self.inner {
            SourceInner::Resident {
                streams,
                mode: m,
                next_slice,
                start_slice,
                end_slice,
                ..
            } => {
                assert!(mode < streams.len(), "mode {mode} out of range");
                let num = streams[mode].num_slices();
                assert!(
                    slices.start <= slices.end && slices.end <= num,
                    "slice range {slices:?} out of bounds for {num} slices"
                );
                *m = mode;
                *next_slice = slices.start;
                *start_slice = slices.start;
                *end_slice = slices.end;
            }
            SourceInner::Spilled(w) => w.rewind_range(mode, slices),
        }
    }

    /// Rewinds to the current mode's first window (of the current slice
    /// restriction, if any).
    pub fn reset(&mut self) {
        match &mut self.inner {
            SourceInner::Resident {
                next_slice,
                start_slice,
                ..
            } => *next_slice = *start_slice,
            SourceInner::Spilled(w) => w.reset(),
        }
    }

    /// The window capacity in stream positions.
    pub fn capacity(&self) -> usize {
        match &self.inner {
            SourceInner::Resident { cap, .. } => *cap,
            SourceInner::Spilled(w) => w.capacity(),
        }
    }

    /// The most positions any window of any mode can hold: the capacity,
    /// a single oversized slice, or the whole stream — whichever binds.
    /// Consumers sizing per-position side buffers (the spilled `Pres`
    /// tile) use this so no window ever reallocates them mid-sweep.
    pub fn max_window_positions(&self) -> usize {
        match &self.inner {
            SourceInner::Resident { streams, cap, .. } => {
                let max_slice = streams.iter().map(|s| s.max_slice_len()).max().unwrap_or(0);
                let total = streams.first().map_or(0, |s| s.entry_ids.len());
                (*cap).max(max_slice).min(total)
            }
            SourceInner::Spilled(w) => w.max_window_positions(),
        }
    }

    /// Number of windows a full sweep of the current mode (restricted to
    /// the current slice subrange, if any) takes (no I/O).
    pub fn window_count(&self) -> usize {
        match &self.inner {
            SourceInner::Resident {
                streams,
                mode,
                cap,
                start_slice,
                end_slice,
                ..
            } => {
                let s = &streams[*mode];
                let mut n = 0;
                let mut cursor = *start_slice;
                while resident_step(s, *cap, &mut cursor, *end_slice).is_some() {
                    n += 1;
                }
                n
            }
            SourceInner::Spilled(w) => w.window_count(),
        }
    }

    /// Yields the next window, or `None` when every slice of the current
    /// mode has been covered.
    ///
    /// # Errors
    /// [`TensorError::Io`] if a spilled refill fails (a resident source
    /// never errors).
    pub fn next_window(&mut self) -> Result<Option<Window<'_>>> {
        match &mut self.inner {
            SourceInner::Resident {
                streams,
                mode,
                cap,
                next_slice,
                end_slice,
                ..
            } => {
                let s = &streams[*mode];
                Ok(
                    resident_step(s, *cap, next_slice, *end_slice).map(|(lo, hi)| Window {
                        slices: lo..hi,
                        base: s.offsets[lo],
                        stream: s.view_range(lo, hi),
                    }),
                )
            }
            SourceInner::Spilled(w) => w.next_window(),
        }
    }

    /// Like [`SweepSource::next_window`], but yields **only the entry-id
    /// section** — for consumers that map stream positions to COO entries
    /// without touching values or packed indices (the spilled `Pres`
    /// table's build and rescale sweeps), cutting a spilled sweep's read
    /// volume to the 4 bytes per position they actually use. Shares the
    /// cursor with `next_window`: a sweep must use one of the two
    /// consistently between rewinds.
    ///
    /// # Errors
    /// [`TensorError::Io`] if a spilled read fails.
    pub fn next_ids_window(&mut self) -> Result<Option<IdsWindow<'_>>> {
        match &mut self.inner {
            SourceInner::Resident {
                streams,
                mode,
                cap,
                next_slice,
                end_slice,
                ..
            } => {
                let s = &streams[*mode];
                Ok(
                    resident_step(s, *cap, next_slice, *end_slice).map(|(lo, hi)| IdsWindow {
                        slices: lo..hi,
                        base: s.offsets[lo],
                        entry_ids: &s.entry_ids[s.offsets[lo]..s.offsets[hi]],
                    }),
                )
            }
            SourceInner::Spilled(w) => w.next_ids_window(),
        }
    }
}

/// The one copy of the resident sweep's cursor rule: the slice extent of
/// the window starting at `*cursor` (or `None` at the sweep's `end`
/// slice bound), advancing the cursor — shared by `next_window`,
/// `next_ids_window` and `window_count`, mirroring how the spilled arm
/// centralizes the same stepping in `SliceWindows::spec`.
fn resident_step(
    s: &ModeStream,
    cap: usize,
    cursor: &mut usize,
    end: usize,
) -> Option<(usize, usize)> {
    if *cursor >= end {
        return None;
    }
    let lo = *cursor;
    let hi = window_extent(&s.offsets[..=end], lo, cap);
    *cursor = hi;
    Some((lo, hi))
}

/// One pinned refill buffer of a spilled sweep: the bulk arrays of the
/// window it last held, plus its localized slice offsets.
#[derive(Debug)]
struct WindowBuf {
    offsets: Vec<usize>,
    /// Values at the plan's storage precision — a spilled f32 plan keeps
    /// its pinned windows in 4-byte slots too, so the sweep's resident
    /// footprint and memory traffic match the precision's promise.
    values: ValueStore,
    others: Vec<u32>,
    entry_ids: Vec<u32>,
    /// Fixed-size staging chunk for the interleaved record read — the
    /// refill reads up to [`RAW_CHUNK`] bytes per syscall and parses them
    /// into the typed arrays, so window size never grows this buffer.
    raw: Vec<u8>,
}

/// Everything a refill needs, by value, so the background worker borrows
/// nothing: the window's slice range, its global position range and the
/// mode's section offsets in the scratch file.
#[derive(Debug, Clone, Copy)]
struct RefillSpec {
    lo: usize,
    hi: usize,
    start: usize,
    len: usize,
    other_count: usize,
    precision: StoragePrecision,
    rec_off: u64,
    ids_off: u64,
}

/// Bytes of interleaved records read per refill syscall (a multiple of
/// any record stride is not required — chunks are cut at record
/// boundaries).
const RAW_CHUNK: usize = 64 << 10;

/// Reads one window's bulk arrays into `buf` (offsets are the main
/// thread's job — they come from resident metadata, not the file). Shared
/// by the synchronous path and the prefetch worker, so both fill buffers
/// identically.
///
/// The window is one contiguous range of interleaved records, so the read
/// is a single sequential pass ([`RAW_CHUNK`]-sized syscalls through a
/// fixed staging buffer) parsed into the typed arrays — one read per
/// window where the sectioned layout needed three.
fn refill(file: &ScratchFile, buf: &mut WindowBuf, spec: &RefillSpec) -> std::io::Result<()> {
    let vbytes = spec.precision.value_bytes();
    let stride = record_stride(spec.other_count, spec.precision);
    buf.values.clear_reserve(spec.len);
    buf.others.clear();
    buf.others.reserve(spec.len * spec.other_count);
    buf.entry_ids.clear();
    buf.entry_ids.reserve(spec.len);
    let recs_per_chunk = (RAW_CHUNK / stride).max(1);
    let mut done = 0usize;
    while done < spec.len {
        let n = recs_per_chunk.min(spec.len - done);
        buf.raw.resize(n * stride, 0);
        file.read_bytes(
            spec.rec_off + (spec.start + done) as u64 * stride as u64,
            &mut buf.raw,
        )?;
        for rec in buf.raw.chunks_exact(stride) {
            // The value field is stored at the plan's precision; keep it
            // there — a pinned f32 window stays 4 bytes per value and the
            // consumer widens at load, exactly like a resident f32 plan.
            match &mut buf.values {
                ValueStore::F64(vec) => vec.push(f64::from_le_bytes(
                    rec[..8].try_into().expect("8-byte field"),
                )),
                ValueStore::F32(vec) => vec.push(f32::from_le_bytes(
                    rec[..4].try_into().expect("4-byte field"),
                )),
            }
            let mut off = vbytes;
            for _ in 0..spec.other_count {
                buf.others.push(u32::from_le_bytes(
                    rec[off..off + 4].try_into().expect("4-byte field"),
                ));
                off += 4;
            }
            buf.entry_ids.push(u32::from_le_bytes(
                rec[off..off + 4].try_into().expect("4-byte field"),
            ));
        }
        done += n;
    }
    Ok(())
}

/// The spilled arm of [`SweepSource`]: slice-aligned windows refilled from
/// the plan's scratch file into pinned buffers.
///
/// At depth 1, each [`SliceWindows::next_window`] call reads the window
/// synchronously into one pinned buffer. At depth `d ≥ 2` (see
/// [`ModeStreams::windows_deep`]), `d − 1` extra pinned buffers and one
/// [`ptucker_sched::Background`] worker form a **prefetch ring**:
/// presenting window `w` tops the ring up with reads for windows
/// `w+1 … w+d−1` into the idle buffers, so scratch-file I/O runs
/// concurrently with whatever the caller computes — and a burst of slow
/// windows drains up to `d − 1` banked reads before the compute ever
/// stalls on the disk. The worker serves requests FIFO, one at a time, so
/// deeper rings add buffering, never read reordering. At most `d` windows
/// are ever resident; buffers are allocated once and reused across
/// windows and modes.
#[derive(Debug)]
pub struct SliceWindows<'a> {
    modes: &'a [SpilledModeStream],
    file: Arc<ScratchFile>,
    mode: usize,
    cap: usize,
    /// The plan's storage precision (sizes the value field of every
    /// refill's record parse).
    precision: StoragePrecision,
    /// First slice of the next window to *present*.
    next_slice: usize,
    /// First slice of the current sweep — 0 for a full-mode sweep, the
    /// shard's lower bound under [`SliceWindows::rewind_range`].
    start_slice: usize,
    /// Exclusive upper slice bound of the current sweep — the mode's
    /// slice count for a full-mode sweep.
    end_slice: usize,
    /// The buffer backing the currently presented window.
    current: WindowBuf,
    /// Idle ring buffers awaiting a refill request (depth ≥ 2 only;
    /// buffers migrate between here and the worker's queue).
    free: Vec<WindowBuf>,
    /// The refill worker (depth ≥ 2 only).
    #[allow(clippy::type_complexity)]
    worker:
        Option<Background<(WindowBuf, RefillSpec), (WindowBuf, RefillSpec, std::io::Result<()>)>>,
    /// Specs of the refills in flight on the worker, oldest first — the
    /// front is always the window due to be presented next.
    inflight: VecDeque<RefillSpec>,
}

impl<'a> SliceWindows<'a> {
    /// The spilled metadata of the mode currently being swept.
    #[inline]
    fn sp(&self) -> &'a SpilledModeStream {
        &self.modes[self.mode]
    }

    /// The refill spec of the window starting at slice `lo` of the current
    /// mode.
    fn spec(&self, lo: usize) -> RefillSpec {
        let sp = self.sp();
        let hi = window_extent(&sp.offsets[..=self.end_slice], lo, self.cap);
        let start = sp.offsets[lo];
        RefillSpec {
            lo,
            hi,
            start,
            len: sp.offsets[hi] - start,
            other_count: sp.other_count,
            precision: self.precision,
            rec_off: sp.rec_off,
            ids_off: sp.ids_off,
        }
    }

    /// Joins every in-flight prefetch, discarding their data but
    /// recovering their buffers. Called before any cursor movement that
    /// invalidates the queued reads (rewind/reset/ids sweeps) and on
    /// drop-by-scope.
    fn drain(&mut self) {
        while self.inflight.pop_front().is_some() {
            let worker = self.worker.as_ref().expect("inflight implies a worker");
            if let Some((buf, _, _)) = worker.recv() {
                self.free.push(buf);
            }
        }
    }

    /// Loads the next window into a pinned buffer, or returns `None` when
    /// every slice has been covered. In prefetch mode the data was
    /// (usually) already read by the background worker; presenting the
    /// window queues the read of the one after it.
    ///
    /// # Errors
    /// [`TensorError::Io`] if reading the scratch file fails.
    pub fn next_window(&mut self) -> Result<Option<Window<'_>>> {
        let sp = self.sp();
        let num = self.end_slice;
        if self.next_slice >= num {
            debug_assert!(
                self.inflight.is_empty(),
                "prefetch queued past the sweep end"
            );
            return Ok(None);
        }
        let spec = self.spec(self.next_slice);
        match self.inflight.pop_front() {
            Some(queued) => {
                // The cursor only moves through this method between
                // rewinds, so the oldest queued window must be the one due
                // next.
                debug_assert_eq!((queued.lo, queued.hi), (spec.lo, spec.hi));
                let worker = self.worker.as_ref().expect("inflight implies a worker");
                let (buf, _, res) = worker.recv().expect("prefetch worker died");
                if let Err(e) = res {
                    // Recover the remaining ring buffers so a caller that
                    // survives the error can rewind and sweep again.
                    self.free.push(buf);
                    self.drain();
                    return Err(e.into());
                }
                self.free.push(std::mem::replace(&mut self.current, buf));
            }
            None => refill(&self.file, &mut self.current, &spec).map_err(TensorError::from)?,
        }
        self.current.offsets.clear();
        self.current.offsets.extend(
            sp.offsets[spec.lo..=spec.hi]
                .iter()
                .map(|&o| o - spec.start),
        );
        self.next_slice = spec.hi;
        // Top up the ring: queue reads for the windows beyond the deepest
        // one already in flight, one per idle buffer, while the caller
        // computes on this window.
        if let Some(worker) = &self.worker {
            let mut cursor = self.inflight.back().map_or(self.next_slice, |s| s.hi);
            while cursor < num && !self.free.is_empty() {
                let next_spec = self.spec(cursor);
                let buf = self.free.pop().expect("checked non-empty");
                match worker.submit((buf, next_spec)) {
                    Ok(()) => {
                        self.inflight.push_back(next_spec);
                        cursor = next_spec.hi;
                    }
                    Err((buf, _)) => {
                        self.free.push(buf);
                        break;
                    }
                }
            }
        }
        Ok(Some(Window {
            slices: spec.lo..spec.hi,
            base: spec.start,
            stream: StreamView {
                mode: self.mode,
                other_count: spec.other_count,
                offsets: &self.current.offsets,
                values: self.current.values.view(0, self.current.values.len()),
                others: &self.current.others,
                entry_ids: &self.current.entry_ids,
            },
        }))
    }

    /// Like [`SliceWindows::next_window`], but reads **only the entry-id
    /// section** of the next window. Always synchronous (ids sweeps
    /// interleave with other I/O on the consumer side, so pipelining them
    /// buys nothing); any in-flight bulk prefetch is drained first.
    ///
    /// Shares the sweep cursor with `next_window`: a sweep must use one
    /// of the two consistently between rewinds.
    ///
    /// # Errors
    /// [`TensorError::Io`] if reading the scratch file fails.
    pub fn next_ids_window(&mut self) -> Result<Option<IdsWindow<'_>>> {
        self.drain();
        if self.next_slice >= self.end_slice {
            return Ok(None);
        }
        let spec = self.spec(self.next_slice);
        self.current.entry_ids.resize(spec.len, 0);
        self.file
            .read_u32s(
                spec.ids_off + spec.start as u64 * 4,
                &mut self.current.entry_ids,
            )
            .map_err(TensorError::from)?;
        self.next_slice = spec.hi;
        Ok(Some(IdsWindow {
            slices: spec.lo..spec.hi,
            base: spec.start,
            entry_ids: &self.current.entry_ids,
        }))
    }

    /// The most positions any window of any mode can hold: the capacity, a
    /// single oversized slice, or the whole stream — whichever binds.
    pub fn max_window_positions(&self) -> usize {
        let max_slice = self
            .modes
            .iter()
            .map(|m| m.max_slice_len)
            .max()
            .unwrap_or(0);
        let total = self.modes.first().map_or(0, |m| m.len());
        self.cap.max(max_slice).min(total)
    }

    /// Restarts the sweep on `mode`'s first window, reusing the pinned
    /// buffers — how one sweeper serves every mode of a whole fit. Clears
    /// any slice restriction set by [`SliceWindows::rewind_range`].
    pub fn rewind(&mut self, mode: usize) {
        assert!(mode < self.modes.len(), "mode {mode} out of range");
        self.drain();
        self.mode = mode;
        self.next_slice = 0;
        self.start_slice = 0;
        self.end_slice = self.modes[mode].num_slices();
    }

    /// Restarts the sweep on `mode` restricted to the slice subrange
    /// `slices` — the spilled arm of [`SweepSource::rewind_range`].
    /// Windows keep global slice ids and stream bases; the restriction
    /// holds until the next `rewind`/`rewind_range`.
    ///
    /// # Panics
    /// If `mode` or `slices` is out of bounds.
    pub fn rewind_range(&mut self, mode: usize, slices: std::ops::Range<usize>) {
        assert!(mode < self.modes.len(), "mode {mode} out of range");
        let num = self.modes[mode].num_slices();
        assert!(
            slices.start <= slices.end && slices.end <= num,
            "slice range {slices:?} out of bounds for {num} slices"
        );
        self.drain();
        self.mode = mode;
        self.next_slice = slices.start;
        self.start_slice = slices.start;
        self.end_slice = slices.end;
    }

    /// Rewinds to the current mode's first window (of the current slice
    /// restriction, if any; the pinned buffers are kept).
    pub fn reset(&mut self) {
        self.drain();
        self.next_slice = self.start_slice;
    }

    /// Number of windows a full sweep of the current mode (restricted to
    /// the current slice subrange, if any) takes (no I/O).
    pub fn window_count(&self) -> usize {
        let sp = self.sp();
        let offsets = &sp.offsets[..=self.end_slice];
        let mut n = 0;
        let mut lo = self.start_slice;
        while lo < self.end_slice {
            lo = window_extent(offsets, lo, self.cap);
            n += 1;
        }
        n
    }

    /// The window capacity in stream positions.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseTensor {
        SparseTensor::new(
            vec![3, 2, 2],
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 1], 2.0),
                (vec![1, 0, 1], 3.0),
                (vec![2, 1, 0], 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn stream_matches_coo_slice_order() {
        let x = sample();
        let plan = ModeStreams::build(&x).unwrap();
        for n in 0..x.order() {
            let s = plan.mode(n);
            assert_eq!(s.mode(), n);
            assert_eq!(s.num_slices(), x.dims()[n]);
            assert_eq!(s.other_count(), x.order() - 1);
            for i in 0..x.dims()[n] {
                let range = s.slice_range(i);
                assert_eq!(range.len(), x.slice(n, i).len());
                assert_eq!(s.slice_len(i), x.slice_len(n, i));
                for (p, &e) in range.zip(x.slice(n, i)) {
                    assert_eq!(s.entry_id(p), e, "in-slice COO order preserved");
                    assert_eq!(s.value(p), x.value(e));
                    let full = x.index(e);
                    let mut slot = 0;
                    for (k, &ik) in full.iter().enumerate() {
                        if k == n {
                            continue;
                        }
                        assert_eq!(s.others(p)[slot] as usize, ik, "mode {n} pos {p}");
                        slot += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn entry_ids_are_a_permutation() {
        let x = sample();
        let plan = ModeStreams::build(&x).unwrap();
        for n in 0..x.order() {
            let s = plan.mode(n);
            let mut seen = vec![false; x.nnz()];
            for p in 0..x.nnz() {
                let e = s.entry_id(p);
                assert!(!seen[e]);
                seen[e] = true;
                assert_eq!(s.position_of(e), p, "inverse map round-trips");
                assert_eq!(plan.position_of(n, e), p);
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn bytes_estimate_is_positive_and_scales_with_order() {
        let x = sample();
        let b = ModeStreams::bytes_for(&x);
        // 3 modes × (4·8 + 2·4·4 + 2·4·4) B entries + offsets.
        assert_eq!(b, 3 * (32 + 32 + 32) + (4 + 3 + 3) * 8);
    }

    #[test]
    fn empty_tensor_streams() {
        let x = SparseTensor::new(vec![3, 3], vec![]).unwrap();
        let plan = ModeStreams::build(&x).unwrap();
        for n in 0..2 {
            let s = plan.mode(n);
            for i in 0..3 {
                assert!(s.slice_range(i).is_empty());
            }
        }
    }

    /// A resident sweep with unbounded capacity is exactly one zero-copy
    /// window per mode whose view is position-for-position the stream —
    /// the unified fit driver's in-memory case.
    #[test]
    fn resident_sweep_source_is_one_full_window() {
        let x = sample();
        let plan = ModeStreams::build(&x).unwrap();
        let mut source = plan.sweep_source(0, usize::MAX, false);
        assert!(!source.is_spilled());
        for n in 0..x.order() {
            source.rewind(n);
            assert_eq!(source.window_count(), 1);
            let w = source.next_window().unwrap().unwrap();
            assert_eq!(w.slices, 0..x.dims()[n]);
            assert_eq!(w.base, 0);
            let full = plan.mode(n);
            assert_eq!(w.stream.len(), x.nnz());
            assert_eq!(w.stream.num_slices(), full.num_slices());
            for i in 0..full.num_slices() {
                assert_eq!(w.stream.slice_range(i), full.slice_range(i));
            }
            for p in 0..x.nnz() {
                assert_eq!(w.stream.value(p), full.value(p));
                assert_eq!(w.stream.entry_id(p), full.entry_id(p));
                assert_eq!(w.stream.others(p), full.others(p));
            }
            assert!(source.next_window().unwrap().is_none());
        }
    }

    /// A capacity-bounded resident sweep yields slice-aligned sub-views
    /// matching the stream (the hybrid-spill case: plan resident, a
    /// per-position side table windowed).
    #[test]
    fn resident_sweep_source_windows_are_zero_copy_subviews() {
        let x = sample();
        let plan = ModeStreams::build(&x).unwrap();
        for n in 0..x.order() {
            let full = plan.mode(n);
            let mut source = plan.sweep_source(n, 1, false);
            let mut covered = 0;
            let mut next_slice = 0;
            while let Some(w) = source.next_window().unwrap() {
                assert_eq!(w.slices.start, next_slice);
                next_slice = w.slices.end;
                assert_eq!(w.base, full.slice_range(w.slices.start).start);
                for (local_i, i) in w.slices.clone().enumerate() {
                    let local = w.stream.slice_range(local_i);
                    assert_eq!(local.len(), full.slice_len(i));
                    for p in local {
                        let g = w.base + p;
                        assert_eq!(w.stream.value(p), full.value(g));
                        assert_eq!(w.stream.entry_id(p), full.entry_id(g));
                        assert_eq!(w.stream.others(p), full.others(g));
                    }
                }
                covered += w.stream.len();
            }
            assert_eq!(next_slice, x.dims()[n]);
            assert_eq!(covered, x.nnz());
        }
    }

    /// A range-restricted sweep (the sharded fit's per-worker row
    /// ownership) yields exactly the owned slices — windows keep their
    /// global slice ids and stream bases — for resident and spilled
    /// placement alike, and a plain `rewind` clears the restriction.
    #[test]
    fn rewind_range_restricts_the_sweep() {
        let x = sample();
        let resident = ModeStreams::build(&x).unwrap();
        let spilled = ModeStreams::build_spilled(&x, &MemoryBudget::unlimited()).unwrap();
        for (plan, tag) in [(&resident, "resident"), (&spilled, "spilled")] {
            for n in 0..x.order() {
                let full = resident.mode(n);
                let dim = x.dims()[n];
                for lo in 0..=dim {
                    for hi in lo..=dim {
                        let mut source = plan.sweep_source(n, 1, false);
                        source.rewind_range(n, lo..hi);
                        let mut next_slice = lo;
                        let mut windows = 0;
                        while let Some(w) = source.next_window().unwrap() {
                            assert_eq!(w.slices.start, next_slice, "{tag} mode {n}");
                            next_slice = w.slices.end;
                            assert!(w.slices.end <= hi, "{tag}: window past the range");
                            assert_eq!(w.base, full.slice_range(w.slices.start).start);
                            for (local_i, i) in w.slices.clone().enumerate() {
                                let local = w.stream.slice_range(local_i);
                                assert_eq!(local.len(), full.slice_len(i), "{tag}");
                                for p in local {
                                    let g = w.base + p;
                                    assert_eq!(w.stream.value(p), full.value(g), "{tag}");
                                    assert_eq!(w.stream.entry_id(p), full.entry_id(g));
                                }
                            }
                            windows += 1;
                        }
                        assert_eq!(next_slice, if lo == hi { lo } else { hi }, "{tag}");
                        assert_eq!(windows, source.window_count(), "{tag} window_count");
                        if lo == hi {
                            assert_eq!(windows, 0, "{tag}: empty range must be silent");
                        }
                        // A plain rewind clears the restriction entirely.
                        source.rewind(n);
                        let mut covered = 0;
                        while let Some(w) = source.next_window().unwrap() {
                            covered += w.stream.len();
                        }
                        assert_eq!(
                            covered,
                            x.nnz(),
                            "{tag}: rewind must restore the full sweep"
                        );
                    }
                }
            }
        }
    }

    /// Ids windows agree between the resident and spilled sources.
    #[test]
    fn ids_windows_match_across_placements() {
        let x = sample();
        let resident = ModeStreams::build(&x).unwrap();
        let spilled = ModeStreams::build_spilled(&x, &MemoryBudget::unlimited()).unwrap();
        for n in 0..x.order() {
            let mut a = resident.sweep_source(n, 2, false);
            let mut b = spilled.sweep_source(n, 2, false);
            loop {
                match (a.next_ids_window().unwrap(), b.next_ids_window().unwrap()) {
                    (Some(wa), Some(wb)) => {
                        assert_eq!(wa.slices, wb.slices);
                        assert_eq!(wa.base, wb.base);
                        assert_eq!(wa.entry_ids, wb.entry_ids);
                    }
                    (None, None) => break,
                    _ => panic!("window counts diverged on mode {n}"),
                }
            }
        }
    }

    #[test]
    fn spilled_windows_reproduce_resident_streams() {
        let x = sample();
        let budget = MemoryBudget::unlimited();
        let resident = ModeStreams::build(&x).unwrap();
        let spilled = ModeStreams::build_spilled(&x, &budget).unwrap();
        assert!(spilled.is_spilled() && !resident.is_spilled());
        assert_eq!(budget.spilled_in_use(), ModeStreams::spilled_bytes_for(&x));
        assert_eq!(budget.in_use(), ModeStreams::resident_bytes_for(&x));
        for prefetch in [false, true] {
            for n in 0..x.order() {
                let full = resident.mode(n);
                let sp = spilled.spilled_mode(n);
                assert_eq!(sp.len(), x.nnz());
                for e in 0..x.nnz() {
                    assert_eq!(sp.position_of(e), full.position_of(e));
                }
                // Tiny capacity: every window is exactly one slice.
                let mut w = spilled.windows(n, 1, prefetch);
                assert_eq!(w.window_count(), x.dims()[n]);
                let mut covered = 0;
                while let Some(win) = w.next_window().unwrap() {
                    assert_eq!(win.slices.len(), 1);
                    let i = win.slices.start;
                    assert_eq!(win.base, full.slice_range(i).start);
                    let local = win.stream.slice_range(0);
                    assert_eq!(local.len(), full.slice_len(i));
                    for p in local {
                        let g = win.base + p;
                        assert_eq!(win.stream.value(p), full.value(g));
                        assert_eq!(win.stream.entry_id(p), full.entry_id(g));
                        assert_eq!(win.stream.others(p), full.others(g));
                    }
                    covered += win.stream.len();
                }
                assert_eq!(covered, x.nnz(), "prefetch={prefetch}");
            }
        }
    }

    #[test]
    fn oversized_slice_becomes_singleton_window() {
        // Mode 0 slice 0 holds 3 entries — above a capacity of 2 — and must
        // still be taken whole (windows never split slices).
        let x = SparseTensor::new(
            vec![2, 4],
            vec![
                (vec![0, 0], 1.0),
                (vec![0, 1], 2.0),
                (vec![0, 3], 3.0),
                (vec![1, 2], 4.0),
            ],
        )
        .unwrap();
        let plan = ModeStreams::build_spilled(&x, &MemoryBudget::unlimited()).unwrap();
        let mut w = plan.windows(0, 2, false);
        let first = w.next_window().unwrap().unwrap();
        assert_eq!(first.slices, 0..1);
        assert_eq!(first.stream.values().to_f64_vec(), vec![1.0, 2.0, 3.0]);
        let second = w.next_window().unwrap().unwrap();
        assert_eq!(second.slices, 1..2);
        assert_eq!(second.stream.values().to_f64_vec(), vec![4.0]);
        assert!(w.next_window().unwrap().is_none());
        // Empty slices merge into neighbours under a large capacity.
        let mut w = plan.windows(1, 100, false);
        let all = w.next_window().unwrap().unwrap();
        assert_eq!(all.slices, 0..4);
        assert_eq!(all.stream.num_slices(), 4);
        assert!(w.next_window().unwrap().is_none());
    }

    #[test]
    fn window_reset_replays_the_sweep() {
        let x = sample();
        let plan = ModeStreams::build_spilled(&x, &MemoryBudget::unlimited()).unwrap();
        for prefetch in [false, true] {
            let mut w = plan.windows(0, 2, prefetch);
            let first: Vec<f64> = w
                .next_window()
                .unwrap()
                .unwrap()
                .stream
                .values()
                .to_f64_vec();
            while w.next_window().unwrap().is_some() {}
            w.reset();
            let again: Vec<f64> = w
                .next_window()
                .unwrap()
                .unwrap()
                .stream
                .values()
                .to_f64_vec();
            assert_eq!(first, again);
        }
    }

    /// Rewinding mid-sweep with a prefetch in flight must discard the
    /// queued window cleanly and replay the new mode from its start.
    #[test]
    fn prefetch_survives_midsweep_rewind() {
        let x = sample();
        let plan = ModeStreams::build_spilled(&x, &MemoryBudget::unlimited()).unwrap();
        let resident = ModeStreams::build(&x).unwrap();
        let mut w = plan.windows(0, 1, true);
        let _ = w.next_window().unwrap().unwrap(); // queues slice 1's read
        w.rewind(1);
        let full = resident.mode(1);
        let mut covered = 0;
        while let Some(win) = w.next_window().unwrap() {
            for p in 0..win.stream.len() {
                let g = win.base + p;
                assert_eq!(win.stream.value(p), full.value(g));
                assert_eq!(win.stream.entry_id(p), full.entry_id(g));
            }
            covered += win.stream.len();
        }
        assert_eq!(covered, x.nnz());
        // And ids sweeps drain the pipeline too.
        w.rewind(2);
        let _ = w.next_window().unwrap().unwrap();
        w.rewind(0);
        let ids = w.next_ids_window().unwrap().unwrap();
        assert_eq!(ids.entry_ids.len(), x.slice_len(0, 0));
    }

    #[test]
    fn spilled_empty_tensor() {
        let x = SparseTensor::new(vec![3, 3], vec![]).unwrap();
        let plan = ModeStreams::build_spilled(&x, &MemoryBudget::unlimited()).unwrap();
        let mut w = plan.windows(0, 10, false);
        let win = w.next_window().unwrap().unwrap();
        assert_eq!(win.slices, 0..3);
        assert!(win.stream.values().is_empty());
        assert!(w.next_window().unwrap().is_none());
    }

    #[test]
    fn order_one_tensor_has_empty_others() {
        let x = SparseTensor::new(vec![4], vec![(vec![1], 2.0), (vec![3], 5.0)]).unwrap();
        let plan = ModeStreams::build(&x).unwrap();
        let s = plan.mode(0);
        assert_eq!(s.other_count(), 0);
        assert_eq!(s.values().to_f64_vec(), vec![2.0, 5.0]);
        assert!(s.others(0).is_empty());
        assert!(s.others(1).is_empty());
    }

    /// Off-f32-grid values: used by the precision tests so the one-time
    /// ingest rounding is observable.
    fn off_grid_sample() -> SparseTensor {
        SparseTensor::new(
            vec![3, 2, 2],
            vec![
                (vec![0, 0, 0], 0.1),
                (vec![0, 1, 1], 1.0e-7),
                (vec![1, 0, 1], -0.3),
                (vec![2, 1, 0], 1234.5678),
            ],
        )
        .unwrap()
    }

    /// An f32 plan rounds each value exactly once on ingest — every
    /// widened value equals `quantize(coo value)` bitwise — and the
    /// resident and spilled placements hold identical bits (the spilled
    /// 4-byte record field round-trips the same f32).
    #[test]
    fn f32_plans_quantize_once_and_match_across_placements() {
        let x = off_grid_sample();
        let q = StoragePrecision::F32;
        let resident = ModeStreams::build_at(&x, q).unwrap();
        let spilled = ModeStreams::build_spilled_at(&x, &MemoryBudget::unlimited(), q).unwrap();
        assert_eq!(resident.precision(), q);
        assert_eq!(spilled.precision(), q);
        for n in 0..x.order() {
            let full = resident.mode(n);
            assert_eq!(full.values().precision(), q);
            for p in 0..x.nnz() {
                let e = full.entry_id(p);
                assert_eq!(
                    full.value(p).to_bits(),
                    q.quantize(x.value(e)).to_bits(),
                    "one rounding, at ingest"
                );
            }
            for cap in [1, 2, usize::MAX] {
                let mut w = spilled.windows(n, cap, false);
                while let Some(win) = w.next_window().unwrap() {
                    assert_eq!(win.stream.values().precision(), q);
                    for p in 0..win.stream.len() {
                        let g = win.base + p;
                        assert_eq!(
                            win.stream.value(p).to_bits(),
                            full.value(g).to_bits(),
                            "placement-bitwise within f32"
                        );
                    }
                }
            }
        }
    }

    /// A denser random-ish tensor that forces multiple sorted runs and
    /// multi-record merge buffers when built with a tiny budget.
    fn bigger_sample() -> SparseTensor {
        let dims = vec![17, 11, 7];
        let mut entries = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..500 {
            let i = (next() as usize) % dims[0];
            let j = (next() as usize) % dims[1];
            let k = (next() as usize) % dims[2];
            let v = (next() as f64 / u32::MAX as f64) * 2.0 - 1.0;
            entries.push((vec![i, j, k], v));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|a, b| a.0 == b.0);
        SparseTensor::new(dims, entries).unwrap()
    }

    /// Asserts two spilled plans present byte-identical sweeps: same
    /// offsets, inverse maps, value bits, packed indices and entry ids.
    fn assert_spilled_plans_bitwise(a: &ModeStreams, b: &ModeStreams, nnz: usize, tag: &str) {
        assert_eq!(a.order(), b.order(), "{tag}");
        for n in 0..a.order() {
            let sa = a.spilled_mode(n);
            let sb = b.spilled_mode(n);
            assert_eq!(sa.offsets, sb.offsets, "{tag} mode {n} offsets");
            assert_eq!(
                sa.entry_positions, sb.entry_positions,
                "{tag} mode {n} inverse maps"
            );
            assert_eq!(sa.max_slice_len(), sb.max_slice_len(), "{tag} mode {n}");
            let mut wa = a.windows(n, 3, false);
            let mut wb = b.windows(n, 3, false);
            let mut covered = 0;
            loop {
                match (wa.next_window().unwrap(), wb.next_window().unwrap()) {
                    (Some(x), Some(y)) => {
                        assert_eq!(x.slices, y.slices, "{tag} mode {n}");
                        assert_eq!(x.base, y.base, "{tag} mode {n}");
                        for p in 0..x.stream.len() {
                            assert_eq!(
                                x.stream.value(p).to_bits(),
                                y.stream.value(p).to_bits(),
                                "{tag} mode {n} pos {p}"
                            );
                            assert_eq!(x.stream.others(p), y.stream.others(p), "{tag}");
                            assert_eq!(x.stream.entry_id(p), y.stream.entry_id(p), "{tag}");
                        }
                        covered += x.stream.len();
                    }
                    (None, None) => break,
                    _ => panic!("{tag} mode {n}: window counts diverged"),
                }
            }
            assert_eq!(covered, nnz, "{tag} mode {n}");
        }
    }

    /// `build_external` from a COO scratch source reproduces
    /// `build_spilled` from the resident tensor bit for bit, at both
    /// storage precisions — and therefore (via
    /// `spilled_windows_reproduce_resident_streams`) the resident layout
    /// too.
    #[test]
    fn external_build_is_bitwise_identical_to_spilled_build() {
        for x in [sample(), off_grid_sample(), bigger_sample()] {
            for precision in [StoragePrecision::F64, StoragePrecision::F32] {
                let spill_budget = MemoryBudget::unlimited();
                let spilled = ModeStreams::build_spilled_at(&x, &spill_budget, precision).unwrap();
                // A tiny budget forces the minimum (floor-sized) sort
                // arena without changing output.
                let ext_budget = MemoryBudget::new(1);
                let src = CooScratch::from_tensor(&x, &ext_budget).unwrap();
                let external =
                    ModeStreams::build_external_at(&src, &ext_budget, precision).unwrap();
                assert!(external.is_spilled());
                assert_eq!(external.precision(), precision);
                assert_spilled_plans_bitwise(
                    &spilled,
                    &external,
                    x.nnz(),
                    &format!("nnz={} {:?}", x.nnz(), precision),
                );
                assert_eq!(
                    ext_budget.io_write_bytes() > 0,
                    x.nnz() > 0,
                    "tracked source + plan traffic"
                );
            }
        }
    }

    /// Enough entries to overflow the floor-sized sort arena several
    /// times over, so the K-way merge really merges.
    fn large_sample() -> SparseTensor {
        let dims = vec![50, 40, 30];
        let mut entries = Vec::new();
        let mut state = 0x51ed270b0f4a7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..25_000 {
            let i = (next() as usize) % dims[0];
            let j = (next() as usize) % dims[1];
            let k = (next() as usize) % dims[2];
            let v = (next() as f64 / u32::MAX as f64) * 2.0 - 1.0;
            entries.push((vec![i, j, k], v));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|a, b| a.0 == b.0);
        SparseTensor::new(dims, entries).unwrap()
    }

    /// With the arena pinned at its floor, ~20k entries split into
    /// several sorted runs per mode — the K-way merge must still
    /// reproduce the resident-source build bit for bit.
    #[test]
    fn external_build_multi_run_merge_is_bitwise() {
        let x = large_sample();
        assert!(
            x.nnz() * (4 + record_stride(2, StoragePrecision::F64) + 12) > 2 * MIN_SORT_BYTES,
            "sample must not fit one floor-sized run"
        );
        let spilled = ModeStreams::build_spilled(&x, &MemoryBudget::unlimited()).unwrap();
        let budget = MemoryBudget::new(1); // floor-sized arena
        let src = CooScratch::from_tensor(&x, &budget).unwrap();
        let external = ModeStreams::build_external(&src, &budget).unwrap();
        assert_spilled_plans_bitwise(&spilled, &external, x.nnz(), "multi-run");
    }

    /// The external build books the same resident metadata and final
    /// spill bytes as the resident-source spill build (the transient run
    /// files release their spill bytes when the build returns).
    #[test]
    fn external_build_budget_accounting_matches_spilled() {
        let x = bigger_sample();
        let budget = MemoryBudget::new(1);
        let src = CooScratch::from_tensor(&x, &budget).unwrap();
        let before_resident = budget.in_use();
        let plan = ModeStreams::build_external(&src, &budget).unwrap();
        assert_eq!(
            budget.in_use() - before_resident,
            ModeStreams::resident_bytes_for(&x)
        );
        assert_eq!(
            budget.spilled_in_use(),
            ModeStreams::spilled_bytes_for(&x) + src.bytes() as usize
        );
        drop(plan);
        assert_eq!(budget.in_use(), before_resident);
    }

    /// An empty source external-builds into an empty (but well-formed)
    /// plan.
    #[test]
    fn external_build_empty_source() {
        let budget = MemoryBudget::unlimited();
        let x = SparseTensor::new(vec![3, 3], vec![]).unwrap();
        let src = CooScratch::from_tensor(&x, &budget).unwrap();
        let plan = ModeStreams::build_external(&src, &budget).unwrap();
        let mut w = plan.windows(0, 10, false);
        let win = w.next_window().unwrap().unwrap();
        assert_eq!(win.slices, 0..3);
        assert!(win.stream.values().is_empty());
        assert!(w.next_window().unwrap().is_none());
    }

    /// Every pipeline depth presents the same windows — the ring changes
    /// only when bytes are read — and survives mid-sweep rewinds with
    /// several reads in flight.
    #[test]
    fn deep_prefetch_ring_matches_synchronous_sweep() {
        let x = bigger_sample();
        let plan = ModeStreams::build_spilled(&x, &MemoryBudget::unlimited()).unwrap();
        let resident = ModeStreams::build(&x).unwrap();
        for depth in [1, 2, 3, 4, 7] {
            for n in 0..x.order() {
                let full = resident.mode(n);
                let mut w = plan.windows_deep(n, 5, depth);
                let mut covered = 0;
                let mut windows = 0;
                while let Some(win) = w.next_window().unwrap() {
                    for p in 0..win.stream.len() {
                        let g = win.base + p;
                        assert_eq!(
                            win.stream.value(p).to_bits(),
                            full.value(g).to_bits(),
                            "depth {depth} mode {n}"
                        );
                        assert_eq!(win.stream.entry_id(p), full.entry_id(g));
                        assert_eq!(win.stream.others(p), full.others(g));
                    }
                    covered += win.stream.len();
                    windows += 1;
                }
                assert_eq!(covered, x.nnz(), "depth {depth} mode {n}");
                assert_eq!(windows, w.window_count(), "depth {depth} mode {n}");
            }
            // Mid-sweep rewind with up to depth−1 reads in flight must
            // discard them all cleanly.
            let mut w = plan.windows_deep(0, 1, depth);
            let _ = w.next_window().unwrap().unwrap();
            w.rewind(1);
            let mut covered = 0;
            while let Some(win) = w.next_window().unwrap() {
                covered += win.stream.len();
            }
            assert_eq!(covered, x.nnz(), "depth {depth} after rewind");
            // And ids sweeps drain the whole ring too.
            w.rewind(2);
            let _ = w.next_window().unwrap().unwrap();
            w.rewind(0);
            let ids = w.next_ids_window().unwrap().unwrap();
            assert!(!ids.entry_ids.is_empty());
        }
    }

    /// The f64→f32 storage switch shaves exactly 4 bytes per entry per
    /// mode off both placements' size formulas — what the `als`
    /// placement gate keys on.
    #[test]
    fn f32_size_formulas_drop_four_bytes_per_value() {
        let x = sample();
        let per_value = x.order() * x.nnz() * 4;
        assert_eq!(
            ModeStreams::bytes_for_at(&x, StoragePrecision::F64)
                - ModeStreams::bytes_for_at(&x, StoragePrecision::F32),
            per_value
        );
        assert_eq!(
            ModeStreams::spilled_bytes_for_at(&x, StoragePrecision::F64)
                - ModeStreams::spilled_bytes_for_at(&x, StoragePrecision::F32),
            per_value
        );
        assert_eq!(
            ModeStreams::bytes_for(&x),
            ModeStreams::bytes_for_at(&x, StoragePrecision::F64)
        );
        // record_stride: value + packed others + entry id.
        assert_eq!(record_stride(2, StoragePrecision::F64), 8 + 8 + 4);
        assert_eq!(record_stride(2, StoragePrecision::F32), 4 + 8 + 4);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        // Satellite property: for arbitrary sparse tensors, budgets and
        // precisions, the external-sort build from a COO scratch source
        // is bitwise-identical to the resident-source spilled build.
        #[test]
        fn external_build_is_bitwise(
            seed in 0..u64::MAX,
            nnz in 1usize..600,
            budget_bytes in 1usize..(1 << 20),
            f32_storage in 0u32..2
        ) {
            let dims = vec![13, 7, 5];
            let mut entries = Vec::new();
            let mut state = seed | 1;
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            for _ in 0..nnz {
                let idx: Vec<usize> = dims.iter().map(|&d| (next() as usize) % d).collect();
                let v = (next() as f64 / u32::MAX as f64) * 2.0 - 1.0;
                entries.push((idx, v));
            }
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            entries.dedup_by(|a, b| a.0 == b.0);
            let x = SparseTensor::new(dims, entries).unwrap();
            let precision = if f32_storage == 1 {
                StoragePrecision::F32
            } else {
                StoragePrecision::F64
            };
            let spilled =
                ModeStreams::build_spilled_at(&x, &MemoryBudget::unlimited(), precision).unwrap();
            let budget = MemoryBudget::new(budget_bytes);
            let src = CooScratch::from_tensor(&x, &budget).unwrap();
            let external = ModeStreams::build_external_at(&src, &budget, precision).unwrap();
            assert_spilled_plans_bitwise(
                &spilled,
                &external,
                x.nnz(),
                &format!("nnz={} {:?}", x.nnz(), precision),
            );
        }
    }
}
